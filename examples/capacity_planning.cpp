// Capacity planning: "how many nodes does my facility need so that at most
// X% of jobs are rejected?" - the operational question behind the paper's
// multi-tiered QoS motivation (UNL RCF charging by requested response time).
//
// Sweeps the cluster size N for a fixed offered workload and reports the
// reject ratio of EDF-DLT and EDF-OPR-MN per N, then prints the smallest N
// meeting the target for each algorithm - quantifying how many nodes the
// IIT-utilizing scheduler saves.
//
//   ./capacity_planning [--target 0.05] [--load-rate 0.002] [--sigma 200]
//     --load-rate is the arrival rate (tasks per time unit), held constant
//     while N varies (so bigger clusters see proportionally lower load).
#include <cstdio>
#include <vector>

#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"

namespace {

double reject_ratio_for(std::size_t nodes, double arrival_rate, double sigma,
                        double dc_ratio, double sim_time, std::uint64_t seed,
                        const char* algorithm) {
  using namespace rtdls;
  workload::WorkloadParams params;
  params.cluster = {.node_count = nodes, .cms = 1.0, .cps = 100.0};
  params.avg_sigma = sigma;
  params.dc_ratio = dc_ratio;
  params.total_time = sim_time;
  params.seed = seed;
  // WorkloadParams is parameterized by SystemLoad = E(Avgsigma, N) * lambda;
  // convert the fixed arrival rate into the equivalent load for this N.
  params.system_load = 0.5;  // placeholder to pass validation
  const double e_avg = params.mean_interarrival() * params.system_load;  // E(Avgsigma,N)
  params.system_load = e_avg * arrival_rate;

  const std::vector<workload::Task> tasks = workload::generate_workload(params);
  sim::SimulatorConfig config;
  config.params = params.cluster;
  return sim::simulate(config, algorithm, tasks, sim_time).reject_ratio();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtdls;

  util::CliParser cli;
  cli.add_option({"target", "acceptable reject ratio", "0.05", false});
  cli.add_option({"load-rate", "task arrivals per time unit", "0.002", false});
  cli.add_option({"sigma", "average task data size", "200", false});
  cli.add_option({"dcratio", "deadline/cost ratio", "2", false});
  cli.add_option({"simtime", "simulated time units", "300000", false});
  cli.add_option({"help", "show usage", "", true});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("capacity_planning").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }

  const double target = cli.get_double("target", 0.05);
  const double rate = cli.get_double("load-rate", 0.002);
  const double sigma = cli.get_double("sigma", 200.0);
  const double dc_ratio = cli.get_double("dcratio", 2.0);
  const double sim_time = cli.get_double("simtime", 300000.0);

  std::printf("target reject ratio <= %.3f at %.4f tasks/tu (sigma=%.0f, DCRatio=%.1f)\n\n",
              target, rate, sigma, dc_ratio);
  std::printf("%-6s %-14s %-14s\n", "N", "EDF-OPR-MN", "EDF-DLT");

  std::size_t first_fit_mn = 0;
  std::size_t first_fit_dlt = 0;
  for (std::size_t nodes = 4; nodes <= 40; nodes += 4) {
    const double mn = reject_ratio_for(nodes, rate, sigma, dc_ratio, sim_time, 7, "EDF-OPR-MN");
    const double dlt = reject_ratio_for(nodes, rate, sigma, dc_ratio, sim_time, 7, "EDF-DLT");
    std::printf("%-6zu %-14.4f %-14.4f\n", nodes, mn, dlt);
    if (first_fit_mn == 0 && mn <= target) first_fit_mn = nodes;
    if (first_fit_dlt == 0 && dlt <= target) first_fit_dlt = nodes;
  }

  std::printf("\nsmallest swept N meeting the target: EDF-OPR-MN needs %zu, EDF-DLT needs %zu\n",
              first_fit_mn, first_fit_dlt);
  if (first_fit_dlt != 0 && first_fit_mn > first_fit_dlt) {
    std::printf("utilizing IITs saves %zu nodes for this workload\n",
                first_fit_mn - first_fit_dlt);
  }
  return 0;
}
