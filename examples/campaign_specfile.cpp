// Campaign walkthrough: build an experiment plan with the fluent builders,
// serialize it to a spec file (the shippable artifact), parse it back, run
// the cell queue with a progress callback — whole and as two merged shards
// — and verify both give identical results.
//
// This is the single-process version of the multi-machine workflow in the
// README ("Campaign workflow"): each machine would run one shard of the
// same spec file and `rtdls_cli campaign merge` folds the cell files.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/campaign.hpp"
#include "exp/report.hpp"
#include "exp/spec_io.hpp"

using namespace rtdls;

int main() {
  // 1. A declarative plan: two tiny panels comparing the paper's EDF pair.
  exp::SweepSpec baseline = exp::SweepBuilder("demo_baseline", "DCRatio = 2")
                                .cluster(16, 1.0, 100.0)
                                .loads({0.3, 0.6, 0.9})
                                .algorithms({"EDF-OPR-MN", "EDF-DLT"})
                                .runs(2)
                                .sim_time(60000.0)
                                .expected_winner("EDF-DLT")
                                .build();
  exp::SweepSpec loose = exp::SweepBuilder("demo_loose", "DCRatio = 10")
                             .cluster(16, 1.0, 100.0)
                             .dc_ratio(10.0)
                             .loads({0.3, 0.6, 0.9})
                             .algorithms({"EDF-OPR-MN", "EDF-DLT"})
                             .runs(2)
                             .sim_time(60000.0)
                             .build();
  const exp::FigureSpec figure = exp::FigureBuilder("demo", "deadline looseness demo")
                                     .panel(std::move(baseline))
                                     .panel(std::move(loose))
                                     .build();

  // 2. Plans are data: write the spec file, read it back.
  const std::string path =
      (std::filesystem::temp_directory_path() / "rtdls_demo_campaign.spec").string();
  std::ofstream(path) << exp::serialize_campaign({figure});
  std::printf("spec file: %s\n", path.c_str());
  std::ostringstream text;
  {
    std::ifstream file(path);
    text << file.rdbuf();
  }
  const exp::Campaign campaign(exp::parse_campaign(text.str()));
  std::printf("parsed: %zu figure(s), %zu sweep(s), %zu cells\n", campaign.figures().size(),
              campaign.sweeps().size(), campaign.cell_count());

  // 3. Run the whole cell queue with live progress.
  util::ThreadPool pool(2);
  exp::CampaignOptions options;
  options.pool = &pool;
  options.progress = [](const exp::CellRef& ref, std::size_t done, std::size_t total) {
    std::printf("  cell %2zu (sweep %zu load %zu run %zu alg %zu) — %zu/%zu\n", ref.index,
                ref.sweep, ref.load, ref.run, ref.algorithm, done, total);
  };
  exp::AggregateSink aggregate(campaign);
  exp::run_campaign(campaign, options, aggregate);
  const std::vector<exp::SweepResult> whole = aggregate.take();

  // 4. The same queue as two shards streamed to cell files, then merged.
  const std::string shard_dir =
      (std::filesystem::temp_directory_path() / "rtdls_demo_shards").string();
  std::filesystem::create_directories(shard_dir);
  std::vector<std::string> cell_files;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    const std::string cells = shard_dir + "/shard" + std::to_string(shard) + ".csv";
    exp::CampaignOptions shard_options;
    shard_options.pool = &pool;
    shard_options.shard = exp::ShardSelection{shard, 2};
    exp::CellCsvSink sink(cells);
    exp::run_campaign(campaign, shard_options, sink);
    cell_files.push_back(cells);
  }
  const std::vector<exp::SweepResult> merged = exp::merge_cell_files(campaign, cell_files);

  bool identical = true;
  for (std::size_t s = 0; s < whole.size(); ++s) {
    for (std::size_t a = 0; a < whole[s].curves.size(); ++a) {
      const auto& want = whole[s].curves[a].series(exp::SweepMetric::kRejectRatio).raw;
      const auto& got = merged[s].curves[a].series(exp::SweepMetric::kRejectRatio).raw;
      if (want != got) identical = false;
    }
  }
  std::printf("shard-and-merge vs whole run: %s\n",
              identical ? "bit-identical" : "MISMATCH (bug!)");

  for (const exp::SweepResult& panel : merged) {
    std::fputs(exp::render_sweep(panel).c_str(), stdout);
  }
  return identical ? 0 : 1;
}
