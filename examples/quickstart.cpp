// Quickstart: the 60-second tour of the rtdls public API.
//
// Builds the paper's baseline cluster (N=16, Cms=1, Cps=100), generates one
// workload at a chosen system load, runs the paper's new algorithm (EDF-DLT)
// against the prior-work baseline (EDF-OPR-MN) on the *same* trace, and
// prints both metric summaries side by side.
//
//   ./quickstart [--load 0.7] [--sigma 200] [--dcratio 2] [--simtime 200000]
#include <cstdio>

#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace rtdls;

  util::CliParser cli;
  cli.add_option({"load", "system load in (0, 1]", "0.7", false});
  cli.add_option({"sigma", "average task data size", "200", false});
  cli.add_option({"dcratio", "mean deadline / mean min execution time", "2", false});
  cli.add_option({"simtime", "simulated time units", "200000", false});
  cli.add_option({"seed", "workload RNG seed", "42", false});
  cli.add_option({"help", "show usage", "", true});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("quickstart").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }

  // 1. Describe the cluster and the workload (Section 3 / Section 5 models).
  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = cli.get_double("load", 0.7);
  params.avg_sigma = cli.get_double("sigma", 200.0);
  params.dc_ratio = cli.get_double("dcratio", 2.0);
  params.total_time = cli.get_double("simtime", 200000.0);
  params.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  // 2. Generate one task trace: Poisson arrivals, normal data sizes,
  //    uniform deadlines (all per the paper).
  const std::vector<workload::Task> tasks = workload::generate_workload(params);
  std::printf("generated %zu tasks over %.0f time units (empirical load %.3f)\n\n",
              tasks.size(), params.total_time, workload::empirical_load(params, tasks));

  // 3. Run both algorithms on the same trace.
  sim::SimulatorConfig config;
  config.params = params.cluster;
  for (const char* name : {"EDF-OPR-MN", "EDF-DLT"}) {
    const sim::SimMetrics metrics = sim::simulate(config, name, tasks, params.total_time);
    std::printf("--- %s ---\n%s\n", name, metrics.summary().c_str());
  }

  std::puts("EDF-DLT utilizes Inserted Idle Times, so its reject ratio should be");
  std::puts("no higher than EDF-OPR-MN's at every load (paper, Figure 3).");
  return 0;
}
