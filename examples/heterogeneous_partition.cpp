// General heterogeneous partitioning: the paper's Eq. 3-5 kernel works for
// ANY per-node processing costs, not just the virtual ones its IIT
// transform constructs. This example partitions a load across a genuinely
// mixed cluster (e.g. three hardware generations) and contrasts the DLT
// split with a naive equal split.
#include <cstdio>
#include <vector>

#include "dlt/het_model.hpp"

int main() {
  using namespace rtdls;

  // A mixed rack: four new nodes (fast), four mid-life, four old.
  std::vector<double> cps_i;
  for (int i = 0; i < 4; ++i) cps_i.push_back(50.0);   // new: 50 tu per unit
  for (int i = 0; i < 4; ++i) cps_i.push_back(100.0);  // mid: 100
  for (int i = 0; i < 4; ++i) cps_i.push_back(220.0);  // old: 220
  const double cms = 1.0;
  const double sigma = 600.0;

  const std::vector<double> alpha = dlt::general_het_alpha(cms, cps_i);
  const double dlt_time = dlt::general_het_execution_time(cms, cps_i, sigma);

  std::printf("load sigma = %.0f over %zu heterogeneous nodes (Cms = %.0f)\n\n", sigma,
              cps_i.size(), cms);
  std::printf("%-6s %-10s %-12s %-14s\n", "node", "Cps_i", "alpha_i", "chunk (units)");
  for (std::size_t i = 0; i < cps_i.size(); ++i) {
    std::printf("P%-5zu %-10.0f %-12.4f %-14.1f\n", i + 1, cps_i[i], alpha[i],
                alpha[i] * sigma);
  }

  // Naive equal split: the slowest node dominates.
  const double chunk = sigma / static_cast<double>(cps_i.size());
  double channel = 0.0;
  double equal_finish = 0.0;
  for (double cps : cps_i) {
    channel += chunk * cms;
    equal_finish = std::max(equal_finish, channel + chunk * cps);
  }

  std::printf("\nDLT partition execution time:   %10.1f\n", dlt_time);
  std::printf("equal-split execution time:     %10.1f (%.1fx slower)\n", equal_finish,
              equal_finish / dlt_time);
  std::puts("\nThe DLT split loads fast nodes more so all nodes finish together -");
  std::puts("the same kernel the paper uses on its virtual 'IIT-boosted' nodes.");
  return 0;
}
