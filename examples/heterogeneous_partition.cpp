// General heterogeneous partitioning: the paper's Eq. 3-5 kernel works for
// ANY per-node processing costs, not just the virtual ones its IIT
// transform constructs. This example partitions a load across a genuinely
// mixed cluster (e.g. three hardware generations), contrasts the DLT split
// with a naive equal split, then drives the same rack end to end through
// admission and simulation via a SpeedProfile.
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/speed_profile.hpp"
#include "dlt/het_model.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace rtdls;

  // A mixed rack: four new nodes (fast), four mid-life, four old.
  std::vector<double> cps_i;
  for (int i = 0; i < 4; ++i) cps_i.push_back(50.0);   // new: 50 tu per unit
  for (int i = 0; i < 4; ++i) cps_i.push_back(100.0);  // mid: 100
  for (int i = 0; i < 4; ++i) cps_i.push_back(220.0);  // old: 220
  const double cms = 1.0;
  const double sigma = 600.0;

  const std::vector<double> alpha = dlt::general_het_alpha(cms, cps_i);
  const double dlt_time = dlt::general_het_execution_time(cms, cps_i, sigma);

  std::printf("load sigma = %.0f over %zu heterogeneous nodes (Cms = %.0f)\n\n", sigma,
              cps_i.size(), cms);
  std::printf("%-6s %-10s %-12s %-14s\n", "node", "Cps_i", "alpha_i", "chunk (units)");
  for (std::size_t i = 0; i < cps_i.size(); ++i) {
    std::printf("P%-5zu %-10.0f %-12.4f %-14.1f\n", i + 1, cps_i[i], alpha[i],
                alpha[i] * sigma);
  }

  // Naive equal split: the slowest node dominates.
  const double chunk = sigma / static_cast<double>(cps_i.size());
  double channel = 0.0;
  double equal_finish = 0.0;
  for (double cps : cps_i) {
    channel += chunk * cms;
    equal_finish = std::max(equal_finish, channel + chunk * cps);
  }

  std::printf("\nDLT partition execution time:   %10.1f\n", dlt_time);
  std::printf("equal-split execution time:     %10.1f (%.1fx slower)\n", equal_finish,
              equal_finish / dlt_time);
  std::puts("\nThe DLT split loads fast nodes more so all nodes finish together -");
  std::puts("the same kernel the paper uses on its virtual 'IIT-boosted' nodes.");

  // --- the same rack, end to end: SpeedProfile -> admission -> simulation ---
  // Attaching the profile to ClusterParams engages the heterogeneous
  // planning paths everywhere (Eq.-1 equivalent models over the actual
  // speeds, id-pinned plans, per-node rollouts).
  workload::WorkloadParams wl;
  wl.cluster = {.node_count = 12, .cms = cms, .cps = 100.0};  // cps = rack mean-ish
  wl.system_load = 0.8;
  wl.total_time = 200000.0;
  wl.seed = 20070227;
  const auto tasks = workload::generate_workload(wl);

  sim::SimulatorConfig config;
  config.params = wl.cluster;
  config.params.speed_profile =
      std::make_shared<const cluster::SpeedProfile>(cluster::SpeedProfile(cps_i));

  std::printf("\nend-to-end on the mixed rack (%s), %zu arrivals:\n",
              config.params.speed_profile->describe().c_str(), tasks.size());
  for (const char* name : {"EDF-OPR-MN", "EDF-DLT"}) {
    const sim::SimMetrics metrics = sim::simulate(config, name, tasks, wl.total_time);
    std::printf("  %-11s reject_ratio=%.4f utilization=%.3f theorem4_violations=%zu\n",
                name, metrics.reject_ratio(), metrics.utilization(),
                metrics.theorem4_violations);
  }
  std::puts("(same profile keys work in sweep specs: `het_profile = two_tier:...` and");
  std::puts(" on the CLI: `rtdls_cli simulate --het-profile lognormal:0.4`)");
  return 0;
}
