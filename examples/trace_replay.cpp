// Trace save/replay: generate a workload once, persist it to CSV, reload it
// bit-exactly, and replay it across every algorithm the library implements.
// This is the workflow for sharing regression workloads between machines,
// and demonstrates the trace API plus the full algorithm registry.
//
//   ./trace_replay [--trace /tmp/rtdls_trace.csv] [--load 0.8] [--simtime 100000]
#include <cstdio>

#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace rtdls;

  util::CliParser cli;
  cli.add_option({"trace", "trace CSV path", "/tmp/rtdls_trace.csv", false});
  cli.add_option({"load", "system load", "0.8", false});
  cli.add_option({"simtime", "simulated time units", "100000", false});
  cli.add_option({"help", "show usage", "", true});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("trace_replay").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const std::string path = cli.get("trace").value();

  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = cli.get_double("load", 0.8);
  params.total_time = cli.get_double("simtime", 100000.0);
  params.seed = 1234;

  // Generate, save, reload: the replayed set must match the generated one.
  const std::vector<workload::Task> generated = workload::generate_workload(params);
  workload::save_trace_file(path, generated);
  const std::vector<workload::Task> replayed = workload::load_trace_file(path);
  std::printf("saved %zu tasks to %s, reloaded %zu\n\n", generated.size(), path.c_str(),
              replayed.size());

  sim::SimulatorConfig config;
  config.params = params.cluster;
  std::printf("%-16s %-10s %-10s %-12s %-12s\n", "algorithm", "accepted", "rejected",
              "reject_ratio", "mean_resp");
  for (const std::string& name : sched::all_algorithm_names()) {
    const sim::SimMetrics metrics = sim::simulate(config, name, replayed, params.total_time);
    std::printf("%-16s %-10zu %-10zu %-12.4f %-12.1f\n", name.c_str(), metrics.accepted,
                metrics.rejected, metrics.reject_ratio(), metrics.response_time.mean());
  }
  std::puts("\nDLT-based algorithms should dominate OPR-MN; OPR-AN serializes the");
  std::puts("cluster; UserSplit pays for its equal-sized chunks at tight deadlines.");
  return 0;
}
