// CMS-style admission walkthrough: the paper motivates the system with
// CERN's CMS/ATLAS workloads submitted to clusters like the UNL Research
// Computing Facility. This example hand-crafts a burst of large analysis
// jobs arriving while the cluster is busy, and shows - task by task - what
// the Figure-2 schedulability test decides and *why*:
//
//  * the heterogeneous-model construction (per-node Cps_i),
//  * the DLT partition (alpha_i) and the completion estimate r_n + E_hat,
//  * the Theorem-4 per-node completion bounds,
//  * accept/reject decisions with infeasibility reasons.
#include <cstdio>

#include "dlt/het_model.hpp"
#include "dlt/nmin.hpp"
#include "sched/admission.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace rtdls;

  // RCF-like cluster: 16 worker nodes, transmit 1 tu per data unit over the
  // switch, process 100 tu per unit.
  const cluster::ClusterParams cluster{.node_count = 16, .cms = 1.0, .cps = 100.0};

  // The cluster is mid-shift: some nodes are already committed to earlier
  // reconstruction passes and free at different times (the IIT scenario).
  std::vector<cluster::Time> free_times = {0,    0,    500,  500,  900,  900,
                                           1300, 1300, 2000, 2000, 2600, 2600,
                                           3400, 3400, 4200, 4200};

  // A burst of CMS-style jobs: (arrival, data size, relative deadline).
  struct Job {
    const char* label;
    workload::Task task;
  };
  std::vector<Job> jobs;
  auto add_job = [&jobs](const char* label, double arrival, double sigma, double deadline,
                         std::size_t id) {
    Job job;
    job.label = label;
    job.task.id = id;
    job.task.spec = {arrival, sigma, deadline};
    jobs.push_back(job);
  };
  add_job("trigger-skim      ", 0.0, 40.0, 2500.0, 0);
  add_job("full-reconstruction", 0.0, 220.0, 9000.0, 1);
  add_job("monte-carlo-batch ", 0.0, 160.0, 4000.0, 2);
  add_job("urgent-calibration", 0.0, 90.0, 1200.0, 3);  // deliberately tight

  const sched::Algorithm algorithm = sched::make_algorithm("EDF-DLT");
  sched::AdmissionController controller(algorithm.policy, algorithm.rule.get());

  std::puts("=== CMS-style admission under EDF-DLT (IITs utilized) ===\n");
  std::vector<const workload::Task*> admitted;
  for (const Job& job : jobs) {
    std::printf("job %s sigma=%5.0f D=%6.0f : ", job.label, job.task.sigma(),
                job.task.rel_deadline());
    const sched::AdmissionOutcome outcome =
        controller.test(&job.task, admitted, cluster, free_times, 0.0);
    if (!outcome.accepted) {
      std::printf("REJECTED (%s, blocking task %llu)\n",
                  dlt::infeasibility_name(outcome.reason),
                  static_cast<unsigned long long>(outcome.blocking_task));
      continue;
    }
    admitted.push_back(&job.task);
    // Find this job's plan in the accepted temp schedule.
    for (const sched::ScheduledTask& scheduled : outcome.schedule) {
      if (scheduled.task->id != job.task.id) continue;
      std::printf("ACCEPTED on %zu nodes, est completion %.1f (deadline %.1f)\n",
                  scheduled.plan.nodes, scheduled.plan.est_completion,
                  job.task.abs_deadline());
    }
  }

  // Zoom into the heterogeneous model of one job to show the construction.
  std::puts("\n=== Heterogeneous-model detail: full-reconstruction, 6 nodes ===");
  std::vector<cluster::Time> staggered(free_times.begin(), free_times.begin() + 6);
  const dlt::HetPartition part = dlt::build_het_partition(cluster, 220.0, staggered);
  std::printf("%-6s %-10s %-12s %-10s %-14s\n", "node", "avail r_i", "Cps_i (Eq.1)",
              "alpha_i", "Thm4 bound");
  const std::vector<cluster::Time> bounds =
      dlt::theorem4_completion_bounds(cluster, 220.0, part);
  for (std::size_t i = 0; i < part.nodes(); ++i) {
    std::printf("P%-5zu %-10.0f %-12.3f %-10.4f %-14.2f\n", i + 1, part.available[i],
                part.cps_i[i], part.alpha[i], bounds[i]);
  }
  std::printf("E (no IIT) = %.2f, E_hat = %.2f (Eq.9: E_hat <= E), estimate = %.2f\n",
              part.homogeneous_time, part.execution_time, part.estimated_completion());
  std::puts("every Thm4 bound above is <= the estimate: the admission guarantee is sound");
  return 0;
}
