// Visualizing Inserted Idle Times: run the same short task burst under
// EDF-OPR-MN (prior work) and EDF-DLT (the paper) with schedule logging on,
// and print ASCII Gantt charts. The '.' stretches in the OPR-MN chart are
// the IITs - nodes reserved for a task but idling until its last node
// frees; the DLT chart has none.
#include <cstdio>

#include "sim/simulator.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace rtdls;

  // A small cluster and a deliberately bursty arrival pattern so tasks
  // overlap and staggered availability arises.
  workload::WorkloadParams params;
  params.cluster = {.node_count = 8, .cms = 1.0, .cps = 100.0};
  params.system_load = 1.2;
  params.avg_sigma = 120.0;
  params.dc_ratio = 2.0;
  params.total_time = 20000.0;
  params.seed = 6;
  const auto tasks = workload::generate_workload(params);
  std::printf("burst of %zu tasks on %zu nodes, window [0, %.0f)\n\n", tasks.size(),
              params.cluster.node_count, params.total_time);

  for (const char* name : {"EDF-OPR-MN", "EDF-DLT"}) {
    sim::ScheduleLog log;
    sim::SimulatorConfig config;
    config.params = params.cluster;
    config.schedule_log = &log;
    const sim::SimMetrics metrics = sim::simulate(config, name, tasks, params.total_time);

    std::printf("--- %s: accepted %zu/%zu, inserted idle %.0f node-tu ---\n", name,
                metrics.accepted, metrics.arrivals, log.total_inserted_idle());
    std::fputs(log.render_gantt(0.0, params.total_time, params.cluster.node_count).c_str(),
               stdout);
    std::puts("");
  }

  std::puts("EDF-OPR-MN holds early-freed nodes idle ('.') until a task's last node");
  std::puts("frees; EDF-DLT starts each node the moment it is available.");
  return 0;
}
