// Result collection (output-data) walkthrough: many real divisible
// workloads return non-trivial results (histograms, skimmed events,
// reconstructed tracks). The paper's model drops output transfer as
// negligible; this example shows what happens when it is not, and how the
// *-IO rules keep the real-time guarantee.
//
//   ./result_collection [--delta 0.2] [--load 0.7] [--simtime 300000]
#include <cstdio>
#include <string>

#include "dlt/output_model.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace rtdls;
  // The first run below intentionally violates the completion estimates (it
  // ignores result traffic at admission); silence the per-task error spam
  // and let the miss counters tell the story.
  util::Logger::instance().set_level(util::LogLevel::kOff);

  util::CliParser cli;
  cli.add_option({"delta", "output/input data ratio", "0.2", false});
  cli.add_option({"load", "system load", "0.7", false});
  cli.add_option({"simtime", "simulated time units", "300000", false});
  cli.add_option({"help", "show usage", "", true});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("result_collection").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const double delta = cli.get_double("delta", 0.2);

  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = cli.get_double("load", 0.7);
  params.total_time = cli.get_double("simtime", 300000.0);
  params.seed = 99;
  const auto tasks = workload::generate_workload(params);

  std::printf("result volume: delta = %.2f (%.0f%% of the input comes back)\n", delta,
              delta * 100.0);
  std::printf("result channel budget for an average task: %.1f time units\n\n",
              dlt::output_channel_time(params.cluster, params.avg_sigma, delta));

  // Case 1: ignore results at admission (paper's model), but the cluster
  // actually pays for them -> accepted tasks MISS deadlines.
  sim::SimulatorConfig naive;
  naive.params = params.cluster;
  naive.output_ratio = delta;
  const sim::SimMetrics ignored = sim::simulate(naive, "EDF-DLT", tasks, params.total_time);

  // Case 2: budget results into every deadline with the matching *-IO rule.
  const std::string io_name = "EDF-DLT-IO" + std::to_string(static_cast<int>(delta * 100));
  const sim::SimMetrics budgeted = sim::simulate(naive, io_name, tasks, params.total_time);

  std::printf("%-26s %-10s %-12s %-16s\n", "admission policy", "accepted", "reject_ratio",
              "deadline misses");
  std::printf("%-26s %-10zu %-12.4f %-16zu  <- guarantee broken\n", "EDF-DLT (results ignored)",
              ignored.accepted, ignored.reject_ratio(), ignored.deadline_misses);
  std::printf("%-26s %-10zu %-12.4f %-16zu  <- guarantee restored\n", io_name.c_str(),
              budgeted.accepted, budgeted.reject_ratio(), budgeted.deadline_misses);

  std::puts("\nBudgeting the result phase costs some admissions (higher reject ratio)");
  std::puts("but restores the hard guarantee: zero deadline misses among accepted tasks.");
  return budgeted.deadline_misses == 0 ? 0 : 1;
}
