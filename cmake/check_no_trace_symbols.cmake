# Asserts that a library built with -DRTDLS_TRACE=OFF contains no trace
# recorder symbols (see src/obs/trace.hpp). Run as a ctest:
#   cmake -DRTDLS_LIB=<librtdls.a> [-DNM=<nm>] -P check_no_trace_symbols.cmake

if(NOT RTDLS_LIB)
  message(FATAL_ERROR "check_no_trace_symbols: RTDLS_LIB not set")
endif()
if(NOT NM)
  find_program(NM nm)
  if(NOT NM)
    message(FATAL_ERROR "check_no_trace_symbols: nm not found")
  endif()
endif()

execute_process(COMMAND ${NM} ${RTDLS_LIB}
                OUTPUT_VARIABLE symbols
                ERROR_VARIABLE nm_err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_no_trace_symbols: ${NM} failed: ${nm_err}")
endif()

foreach(marker TraceRecorder TraceScope g_trace_armed)
  if(symbols MATCHES "${marker}")
    message(FATAL_ERROR
            "check_no_trace_symbols: '${marker}' present in ${RTDLS_LIB} - "
            "RTDLS_TRACE=OFF must compile the recorder out entirely")
  endif()
endforeach()

message(STATUS "check_no_trace_symbols: ${RTDLS_LIB} is trace-free")
