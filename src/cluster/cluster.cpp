#include "cluster/cluster.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rtdls::cluster {

Cluster::Cluster(ClusterParams params) : params_(params) {
  if (!params_.valid()) throw std::invalid_argument("Cluster: invalid parameters");
  nodes_.reserve(params_.node_count);
  for (std::size_t i = 0; i < params_.node_count; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i));
  }
}

void Cluster::reset() {
  for (Node& node : nodes_) node.reset();
  ++version_;
}

AvailabilityView Cluster::availability(Time now) const {
  AvailabilityView view;
  view.now = now;
  availability_into(now, view.times);
  return view;
}

void Cluster::availability_into(Time now, std::vector<Time>& out) const {
  out.clear();
  out.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    out.push_back(std::max(node.free_at(), now));
  }
  std::sort(out.begin(), out.end());
}

std::vector<NodeId> Cluster::earliest_free_nodes(Time now, std::size_t n) const {
  std::vector<NodeId> ids;
  earliest_free_nodes_into(now, n, ids);
  return ids;
}

void Cluster::earliest_free_nodes_into(Time now, std::size_t n,
                                       std::vector<NodeId>& out) const {
  if (n > nodes_.size()) {
    throw std::invalid_argument("Cluster::earliest_free_nodes: n exceeds cluster size");
  }
  out.resize(nodes_.size());
  std::iota(out.begin(), out.end(), 0);
  std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
    const Time fa = std::max(nodes_[a].free_at(), now);
    const Time fb = std::max(nodes_[b].free_at(), now);
    if (fa != fb) return fa < fb;
    return a < b;
  });
  out.resize(n);
}

void Cluster::commit(NodeId id, TaskId task, Time usable_from, Time start, Time end) {
  nodes_.at(id).commit(task, usable_from, start, end);
  ++version_;
}

void Cluster::release_early(NodeId id, Time at) {
  nodes_.at(id).release_early(at);
  ++version_;
}

Time Cluster::total_busy_time() const {
  Time total = 0.0;
  for (const Node& node : nodes_) total += node.busy_time();
  return total;
}

Time Cluster::total_idle_gap_time() const {
  Time total = 0.0;
  for (const Node& node : nodes_) total += node.idle_gap_time();
  return total;
}

}  // namespace rtdls::cluster
