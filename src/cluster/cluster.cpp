#include "cluster/cluster.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace rtdls::cluster {

namespace {

/// Reposition-depth distribution across every index mutation: the direct
/// observable of the flat backend's O(N) memmove wall (p99 grows with N)
/// versus the bucket backend's bounded bucket-local shifts. Recorded here -
/// not inside the RTDLS_HOT AvailabilityIndex::update - because histogram
/// writes may grow a thread shard on first contact.
obs::Histogram& commit_depth_histogram() {
  static obs::Histogram histogram =
      obs::Registry::global().histogram("rtdls_index_commit_depth");
  return histogram;
}

}  // namespace

Cluster::Cluster(ClusterParams params) : params_(std::move(params)) {
  if (!params_.valid()) throw std::invalid_argument("Cluster: invalid parameters");
  nodes_.reserve(params_.node_count);
  for (std::size_t i = 0; i < params_.node_count; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i));
  }
  index_.reset(params_.node_count,
               resolve_index_backend(params_.index_backend, params_.node_count));
}

void Cluster::reset() {
  for (Node& node : nodes_) node.reset();
  index_.reset(nodes_.size());
  ++version_;
}

AvailabilityView Cluster::availability(Time now) const {
  AvailabilityView view;
  view.now = now;
  if (params_.heterogeneous()) {
    availability_with_ids_into(now, view.times, view.ids);
    view.cps.resize(view.ids.size());
    for (std::size_t i = 0; i < view.ids.size(); ++i) {
      view.cps[i] = params_.node_cps(view.ids[i]);
    }
  } else {
    availability_into(now, view.times);
  }
  return view;
}

void Cluster::availability_into(Time now, std::vector<Time>& out) const {
  index_.availability_into(now, out);
}

void Cluster::availability_with_ids_into(Time now, std::vector<Time>& times,
                                         std::vector<NodeId>& ids) const {
  index_.availability_with_ids_into(now, times, ids);
}

std::vector<NodeId> Cluster::earliest_free_nodes(Time now, std::size_t n) const {
  std::vector<NodeId> ids;
  earliest_free_nodes_into(now, n, ids);
  return ids;
}

void Cluster::earliest_free_nodes_into(Time now, std::size_t n,
                                       std::vector<NodeId>& out) const {
  if (n > nodes_.size()) {
    throw std::invalid_argument("Cluster::earliest_free_nodes: n exceeds cluster size");
  }
  index_.earliest_free_nodes_into(now, n, out);
}

void Cluster::commit(NodeId id, TaskId task, Time usable_from, Time start, Time end) {
  Node& node = nodes_.at(id);
  const Time before = node.free_at();
  node.commit(task, usable_from, start, end);
  const std::size_t depth = index_.update(id, before, node.free_at());
  commit_depth_histogram().record(static_cast<double>(depth));
  ++version_;
}

void Cluster::release_early(NodeId id, Time at) {
  Node& node = nodes_.at(id);
  const Time before = node.free_at();
  node.release_early(at);
  const std::size_t depth = index_.update(id, before, node.free_at());
  commit_depth_histogram().record(static_cast<double>(depth));
  ++version_;
}

void Cluster::restore_node(NodeId id, Time free_at, Time busy_time, Time idle_gap_time,
                           std::size_t commitments) {
  Node& node = nodes_.at(id);
  const Time before = node.free_at();
  node.restore(free_at, busy_time, idle_gap_time, commitments);
  const std::size_t depth = index_.update(id, before, node.free_at());
  commit_depth_histogram().record(static_cast<double>(depth));
  ++version_;
}

Time Cluster::total_busy_time() const {
  Time total = 0.0;
  for (const Node& node : nodes_) total += node.busy_time();
  return total;
}

Time Cluster::total_idle_gap_time() const {
  Time total = 0.0;
  for (const Node& node : nodes_) total += node.idle_gap_time();
  return total;
}

bool Cluster::index_consistent() const {
  std::vector<Time> free_times;
  free_times.reserve(nodes_.size());
  for (const Node& node : nodes_) free_times.push_back(node.free_at());
  return index_.consistent_with(free_times);
}

}  // namespace rtdls::cluster
