// Sparse edit a committed plan makes to a sorted availability row.
//
// Every release-time rule consumes the k earliest entries of the sorted
// availability state and re-inserts its k node releases wherever the sort
// order puts them. The dense admission session materialized the full N-wide
// row after each planned task (O(Q*N) bytes per arrival burst); a plan only
// touches k << N entries, so the row-to-row difference is fully described by
// the k consumed (slot, old) values and the k re-inserted new values - the
// AvailabilityDelta. A delta chain replayed onto a dense base row rebuilds
// any later row bit-identically (the replay runs the exact same forward
// merge the admission test ran when it first applied the plan), which is
// what lets the session keep O(k) deltas plus sparse dense checkpoints
// instead of one row per task.
//
// Heterogeneous rows carry a node-id column in strict (time, id) order; the
// delta mirrors it with id payloads (old ids of the consumed prefix, new ids
// aligned with the sorted releases). Per-position cps never rides along:
// speeds are constants derived from the id column (same reasoning as
// AvailabilityIndex::Entry).
//
// Everything here is header-inline: the apply/replay merges are the
// admission loop's innermost O(N) operation and must inline into their
// call sites (they were measurably slower as cross-TU calls at small N).
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cluster/types.hpp"
#include "util/annotations.hpp"

namespace rtdls::cluster {

struct AvailabilityDelta {
  /// Old values of the consumed slots 0..k-1 (the k earliest entries of the
  /// pre-state, in row order - i.e. sorted ascending).
  std::vector<Time> old_times;
  /// Re-inserted entries, sorted ascending (by (time, id) for het rows).
  std::vector<Time> new_times;
  /// Het payloads: ids owning the consumed slots / the re-inserted entries.
  /// Empty for homogeneous rows.
  std::vector<NodeId> old_ids;
  std::vector<NodeId> new_ids;

  std::size_t nodes() const { return new_times.size(); }

  /// Heap bytes this delta holds (size-based, so the session memory
  /// accounting is deterministic across allocator growth policies).
  std::size_t bytes() const {
    return (old_times.size() + new_times.size()) * sizeof(Time) +
           (old_ids.size() + new_ids.size()) * sizeof(NodeId);
  }

  void clear() {
    old_times.clear();
    new_times.clear();
    old_ids.clear();
    new_ids.clear();
  }
};

namespace detail {

/// In-place forward merge of the sorted run `incoming` (k entries) into
/// state[k..n): safe because the write position i + (j - k) never passes the
/// suffix read position j.
inline void merge_releases(std::vector<Time>& state, const Time* incoming,
                           std::size_t k) {
  const std::size_t n = state.size();
  std::size_t i = 0;
  std::size_t j = k;
  std::size_t pos = 0;
  while (i < k && j < n) {
    state[pos++] = state[j] < incoming[i] ? state[j++] : incoming[i++];
  }
  while (i < k) state[pos++] = incoming[i++];
}

/// Heterogeneous merge core: strict (time, id) pair order across both runs.
/// The incoming run is read through accessors so span-pair (two flat
/// columns) and pair-vector callers share the one merge - the tie-break
/// must stay in a single place for replay to remain bit-identical.
template <typename TimeAt, typename IdAt>
inline void merge_releases_het_core(std::vector<Time>& state, std::vector<NodeId>& ids,
                                    TimeAt in_time, IdAt in_id, std::size_t k) {
  const std::size_t n = state.size();
  std::size_t i = 0;
  std::size_t j = k;
  std::size_t pos = 0;
  while (i < k && j < n) {
    const bool take_suffix =
        state[j] < in_time(i) || (state[j] == in_time(i) && ids[j] < in_id(i));
    if (take_suffix) {
      state[pos] = state[j];
      ids[pos] = ids[j];
      ++j;
    } else {
      state[pos] = in_time(i);
      ids[pos] = in_id(i);
      ++i;
    }
    ++pos;
  }
  while (i < k) {
    state[pos] = in_time(i);
    ids[pos] = in_id(i);
    ++i;
    ++pos;
  }
}

inline void merge_releases_het(std::vector<Time>& state, std::vector<NodeId>& ids,
                               const Time* in_times, const NodeId* in_ids,
                               std::size_t k) {
  merge_releases_het_core(
      state, ids, [in_times](std::size_t i) { return in_times[i]; },
      [in_ids](std::size_t i) { return in_ids[i]; }, k);
}

inline void merge_releases_het(std::vector<Time>& state, std::vector<NodeId>& ids,
                               const std::pair<Time, NodeId>* in, std::size_t k) {
  merge_releases_het_core(
      state, ids, [in](std::size_t i) { return in[i].first; },
      [in](std::size_t i) { return in[i].second; }, k);
}

}  // namespace detail

/// Applies `releases` (the plan's node_release run, nondecreasing for every
/// rule; defensively re-sorted otherwise) to the sorted row `state`: the
/// first releases.size() entries are consumed and the releases merged into
/// the remainder - an in-place O(N) forward merge. When `delta` is non-null
/// it records the edit (consumed old values + sorted releases) so the same
/// transition can be replayed later by apply_delta.
///
/// Contract: on return `scratch` holds exactly the k releases in sorted
/// order (what AvailabilityDelta::new_times would record) - callers that
/// keep deltas in flat storage (the admission session) append it directly
/// instead of paying a per-task delta allocation.
RTDLS_HOT inline void apply_releases(std::vector<Time>& state, const std::vector<Time>& releases,
                           std::vector<Time>& scratch,
                           AvailabilityDelta* delta = nullptr) {
  const std::size_t k = releases.size();
  if (k > state.size()) {
    throw std::invalid_argument("apply_releases: more releases than slots");
  }
  scratch.assign(releases.begin(), releases.end());
  if (!std::is_sorted(scratch.begin(), scratch.end())) {
    std::sort(scratch.begin(), scratch.end());  // defensive; no rule hits this
  }
  if (delta != nullptr) {
    // Capture the consumed prefix before the merge overwrites it.
    delta->old_times.assign(state.begin(),
                            state.begin() + static_cast<std::ptrdiff_t>(k));
    delta->new_times.assign(scratch.begin(), scratch.end());
    delta->old_ids.clear();
    delta->new_ids.clear();
  }
  detail::merge_releases(state, scratch.data(), k);
}

/// Heterogeneous variant: `state`/`ids` are a (time, id) row in strict
/// (time, id) order; `releases`/`release_ids` are slot-aligned (NOT
/// necessarily sorted - het multi-round releases keep slot identity) and
/// re-enter in pair order. Consumes the first releases.size() positions.
/// Same scratch contract: on return it holds the k (time, id) pairs sorted.
RTDLS_HOT inline void apply_releases_het(std::vector<Time>& state, std::vector<NodeId>& ids,
                               const std::vector<Time>& releases,
                               const std::vector<NodeId>& release_ids,
                               std::vector<std::pair<Time, NodeId>>& scratch,
                               AvailabilityDelta* delta = nullptr) {
  const std::size_t k = releases.size();
  if (k > state.size() || release_ids.size() != k) {
    throw std::invalid_argument("apply_releases_het: bad release columns");
  }
  scratch.resize(k);
  for (std::size_t i = 0; i < k; ++i) scratch[i] = {releases[i], release_ids[i]};
  std::sort(scratch.begin(), scratch.end());
  if (delta != nullptr) {
    delta->old_times.assign(state.begin(),
                            state.begin() + static_cast<std::ptrdiff_t>(k));
    delta->old_ids.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(k));
    delta->new_times.resize(k);
    delta->new_ids.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      delta->new_times[i] = scratch[i].first;
      delta->new_ids[i] = scratch[i].second;
    }
    detail::merge_releases_het(state, ids, delta->new_times.data(),
                               delta->new_ids.data(), k);
    return;
  }
  // No recording: merge straight from the pair scratch.
  detail::merge_releases_het(state, ids, scratch.data(), k);
}

/// Span replay for callers that keep many deltas in flat storage (the
/// admission session stores one delta per planned task and must not
/// allocate per task): `new_times`/`new_ids` point at k sorted entries,
/// exactly what AvailabilityDelta::new_times/new_ids would hold. Consumes
/// the first k entries of the row and merges the new entries back in -
/// bit-identical to the apply_releases call that recorded them.
RTDLS_HOT inline void apply_delta(std::vector<Time>& state, const Time* new_times,
                        std::size_t k) {
  if (k > state.size()) {
    throw std::invalid_argument("apply_delta: delta wider than the row");
  }
  detail::merge_releases(state, new_times, k);
}

RTDLS_HOT inline void apply_delta_het(std::vector<Time>& state, std::vector<NodeId>& ids,
                            const Time* new_times, const NodeId* new_ids,
                            std::size_t k) {
  if (k > state.size()) {
    throw std::invalid_argument("apply_delta_het: delta wider than the row");
  }
  detail::merge_releases_het(state, ids, new_times, new_ids, k);
}

/// Replays a recorded delta onto the dense row it was produced from (or any
/// bit-identical copy).
RTDLS_HOT inline void apply_delta(std::vector<Time>& state, const AvailabilityDelta& delta) {
  apply_delta(state, delta.new_times.data(), delta.nodes());
}

/// Het replay (state/ids row, id payloads from the delta).
RTDLS_HOT inline void apply_delta_het(std::vector<Time>& state, std::vector<NodeId>& ids,
                            const AvailabilityDelta& delta) {
  if (delta.new_ids.size() != delta.nodes()) {
    throw std::invalid_argument("apply_delta_het: misaligned id payload");
  }
  apply_delta_het(state, ids, delta.new_times.data(), delta.new_ids.data(),
                  delta.nodes());
}

}  // namespace rtdls::cluster
