// A single processing node: commitment state plus idle/busy accounting.
#pragma once

#include "cluster/types.hpp"

namespace rtdls::cluster {

/// Processing node state tracked by the cluster model.
///
/// `free_at` is the node's *release time*: the instant it finishes the work
/// currently committed to it (or 0 / the last release when idle). The
/// accounting fields let the metrics module report how much Inserted Idle
/// Time each algorithm actually left on the table.
class Node {
 public:
  explicit Node(NodeId id) : id_(id) {}

  NodeId id() const { return id_; }

  /// Time at which this node is (or becomes) available.
  Time free_at() const { return free_at_; }

  /// Task currently committed to this node, or kNoTask.
  TaskId current_task() const { return current_task_; }

  /// Commits the node to `task` over [start, end). `usable_from` is when the
  /// node could have begun serving this task (its available time r_i in the
  /// plan, >= free_at); the gap [usable_from, start) is recorded as Inserted
  /// Idle Time - the waste the paper's new algorithms eliminate (OPR rules
  /// start at r_n > r_i; IIT-utilizing rules start at r_i, gap 0).
  /// Busy time [start, end) is added to the utilization accumulator.
  void commit(TaskId task, Time usable_from, Time start, Time end);

  /// Releases the node (e.g. when an actual completion beats the estimate);
  /// the node becomes free at `at`, which must not exceed the committed
  /// release. The unused tail is credited back from busy accounting.
  void release_early(Time at);

  /// Total time the node spent computing/receiving committed work.
  Time busy_time() const { return busy_time_; }

  /// Total inserted idle time: gaps where the node was free but waiting for
  /// a task that had already reserved it (plus scheduling gaps).
  Time idle_gap_time() const { return idle_gap_time_; }

  /// Number of subtask commitments this node served.
  std::size_t commitments() const { return commitments_; }

  /// Restores an exact accounting state captured by a snapshot (the service
  /// layer's crash recovery). The committed-task identity is not preserved -
  /// planning only ever reads free_at, and the accounting fields are report
  /// material - so a restored node carries kNoTask.
  void restore(Time free_at, Time busy_time, Time idle_gap_time, std::size_t commitments) {
    free_at_ = free_at;
    current_task_ = kNoTask;
    busy_time_ = busy_time;
    idle_gap_time_ = idle_gap_time;
    commitments_ = commitments;
  }

  /// Returns the node to its initial idle state (run-to-run reuse).
  void reset() {
    free_at_ = 0.0;
    current_task_ = kNoTask;
    busy_time_ = 0.0;
    idle_gap_time_ = 0.0;
    commitments_ = 0;
  }

 private:
  NodeId id_;
  Time free_at_ = 0.0;
  TaskId current_task_ = kNoTask;
  Time busy_time_ = 0.0;
  Time idle_gap_time_ = 0.0;
  std::size_t commitments_ = 0;
};

}  // namespace rtdls::cluster
