// Shared vocabulary types for the cluster model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>

namespace rtdls::cluster {

class SpeedProfile;

/// Simulation time. The paper uses abstract "time units"; doubles keep the
/// closed-form DLT expressions exact enough (all comparisons use absolute
/// values well below 1e12, giving ~1e-4 ulp slack).
using Time = double;

/// Identifier of a processing node P1..PN (0-based internally).
using NodeId = std::uint32_t;

/// Identifier of a task.
using TaskId = std::uint64_t;

/// Sentinel for "no task".
inline constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

/// Storage backend of the cluster's AvailabilityIndex. kAuto resolves at
/// cluster construction: the RTDLS_INDEX environment variable
/// ("flat" | "bucket") wins, else a node-count heuristic picks the bucketed
/// timeline for large clusters (see cluster/availability_index.hpp). Both
/// backends produce bit-identical schedules, so this is a pure performance
/// knob - it is deliberately NOT serialized with cluster specs.
enum class IndexBackend : std::uint8_t {
  kAuto,
  kFlat,    ///< one sorted vector; O(N) memmove per commit
  kBucket,  ///< bucketed timeline; O(log N + fanout) per commit
};

/// Static cluster parameters: the tuple (N, Cms, Cps) from the paper's
/// system model, optionally refined by a per-node speed profile.
struct ClusterParams {
  std::size_t node_count = 16;  ///< N: processing nodes (head node excluded)
  double cms = 1.0;             ///< Cms: cost of transmitting one unit of load
  double cps = 100.0;           ///< Cps: cost of processing one unit of load

  /// Optional per-node processing costs (cluster/speed_profile.hpp). Null
  /// means the homogeneous model; a profile whose every value equals `cps`
  /// is treated as homogeneous too, so attaching an all-equal profile keeps
  /// planning on the (bit-identical) homogeneous path. The scalar `cps`
  /// stays the workload-calibration reference (DCRatio, SystemLoad), which
  /// is why generators preserving mean_cps == cps keep load axes comparable
  /// across heterogeneity levels.
  std::shared_ptr<const SpeedProfile> speed_profile;

  /// AvailabilityIndex storage backend (see IndexBackend). Resolved once at
  /// cluster construction; schedules are identical either way.
  IndexBackend index_backend = IndexBackend::kAuto;

  /// beta = Cps / (Cms + Cps), Eq. (8). In (0, 1) whenever both costs > 0.
  double beta() const { return cps / (cms + cps); }

  /// True when the het planning paths must engage: a profile is attached
  /// and differs from the scalar cps somewhere. Defined in speed_profile.cpp.
  bool heterogeneous() const;

  /// Processing cost of node `id`: profile value, or the scalar cps.
  /// Defined in speed_profile.cpp.
  double node_cps(NodeId id) const;

  /// True when the parameters form a valid model.
  bool valid() const {
    return node_count > 0 && cms > 0.0 && cps > 0.0 &&
           (speed_profile == nullptr || profile_valid());
  }

 private:
  /// Profile/N agreement (values are validated at profile construction).
  bool profile_valid() const;
};

}  // namespace rtdls::cluster
