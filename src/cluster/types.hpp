// Shared vocabulary types for the cluster model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace rtdls::cluster {

/// Simulation time. The paper uses abstract "time units"; doubles keep the
/// closed-form DLT expressions exact enough (all comparisons use absolute
/// values well below 1e12, giving ~1e-4 ulp slack).
using Time = double;

/// Identifier of a processing node P1..PN (0-based internally).
using NodeId = std::uint32_t;

/// Identifier of a task.
using TaskId = std::uint64_t;

/// Sentinel for "no task".
inline constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

/// Static cluster parameters: the tuple (N, Cms, Cps) from the paper's
/// system model.
struct ClusterParams {
  std::size_t node_count = 16;  ///< N: processing nodes (head node excluded)
  double cms = 1.0;             ///< Cms: cost of transmitting one unit of load
  double cps = 100.0;           ///< Cps: cost of processing one unit of load

  /// beta = Cps / (Cms + Cps), Eq. (8). In (0, 1) whenever both costs > 0.
  double beta() const { return cps / (cms + cps); }

  /// True when the parameters form a valid model.
  bool valid() const { return node_count > 0 && cms > 0.0 && cps > 0.0; }
};

}  // namespace rtdls::cluster
