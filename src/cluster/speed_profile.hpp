// Per-node processing speeds: the heterogeneous-cluster subsystem.
//
// The paper's Section-2 construction (Eq. 1) builds an *equivalent
// heterogeneous* cluster out of staggered release times on homogeneous
// hardware; this module supplies the converse ingredient - genuinely
// heterogeneous hardware - as a per-node Cps map. A SpeedProfile attached to
// ClusterParams lifts the whole pipeline (availability, admission rules,
// simulator, sweeps) onto per-node speeds; an absent or all-equal profile
// leaves the homogeneous fast path bit-identical.
//
// Profiles come from named generators keyed by a compact string so sweep
// spec files and the CLI can request them declaratively:
//
//   uniform:<lo>,<hi>[,<seed>]          cps_i ~ Uniform[lo, hi]
//   two_tier:<fast>,<slow>,<frac>[,<seed>]
//                                       round(frac*N) fast nodes (cost
//                                       `fast`), the rest slow; the
//                                       fast/slow assignment is a seeded
//                                       shuffle over node ids
//   lognormal:<cv>[,<seed>]             cps_i log-normal with mean = the
//                                       cluster's base Cps and coefficient
//                                       of variation `cv`
//   csv:<path>                          one cps value per line (# comments)
//
// Generators draw from a self-contained splitmix64 stream (not std::
// distributions) so profiles are bit-reproducible across platforms, like
// the workload RNG.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/types.hpp"

namespace rtdls::cluster {

class SpeedProfile {
 public:
  SpeedProfile() = default;

  /// Profile from explicit per-node costs. Throws std::invalid_argument
  /// when empty or any cps is not finite and > 0.
  explicit SpeedProfile(std::vector<double> cps);

  // --- named generators ---

  /// All nodes at `cps` (useful for the homogeneous-equivalence tests).
  static SpeedProfile homogeneous(std::size_t nodes, double cps);

  /// cps_i ~ Uniform[lo, hi], seeded.
  static SpeedProfile uniform(std::size_t nodes, double lo, double hi,
                              std::uint64_t seed);

  /// round(fast_fraction * nodes) nodes at `fast_cps`, the rest at
  /// `slow_cps`; which ids are fast is a seeded shuffle (so speed does not
  /// correlate with node id). fast_fraction in [0, 1].
  static SpeedProfile two_tier(std::size_t nodes, double fast_cps, double slow_cps,
                               double fast_fraction, std::uint64_t seed);

  /// Log-normal speeds with mean `mean_cps` and coefficient of variation
  /// `cv` >= 0 (cv == 0 degenerates to homogeneous).
  static SpeedProfile log_normal(std::size_t nodes, double mean_cps, double cv,
                                 std::uint64_t seed);

  /// One cps value per non-comment line.
  static SpeedProfile from_csv_text(std::string_view text);
  static SpeedProfile from_csv_file(const std::string& path);

  // --- accessors ---

  std::size_t size() const { return cps_.size(); }
  bool empty() const { return cps_.empty(); }
  double cps(NodeId id) const { return cps_[id]; }
  const std::vector<double>& values() const { return cps_; }

  /// Fastest (lowest) unit cost; O(1), cached at construction - the het
  /// resolver's capacity-jump bound reads it once per plan call.
  double min_cps() const { return min_cps_; }
  double max_cps() const;
  double mean_cps() const;

  /// Coefficient of variation (population stddev / mean); 0 when all equal.
  double cv() const;

  /// True when any two nodes differ.
  bool heterogeneous() const;

  /// True when any node's cps differs from `base` - the test that decides
  /// whether the het planning paths engage (ClusterParams::heterogeneous).
  bool heterogeneous_against(double base) const;

  /// "uniform[52.1, 148]x16" style one-liner for reports.
  std::string describe() const;

 private:
  std::vector<double> cps_;
  double min_cps_ = 0.0;
};

/// Parses a profile key (grammar above) for a cluster of `nodes` nodes with
/// base processing cost `base_cps` (the mean the lognormal generator
/// preserves). Throws std::invalid_argument on malformed keys.
SpeedProfile parse_speed_profile(std::string_view key, std::size_t nodes,
                                 double base_cps);

}  // namespace rtdls::cluster
