#include "cluster/speed_profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include "util/fp.hpp"

namespace rtdls::cluster {

namespace {

/// splitmix64 (same construction as workload/rng.cpp, duplicated here so the
/// cluster layer does not depend on the workload layer): bit-reproducible
/// across platforms, unlike std:: distributions.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) with 53 bits of precision.
double next_double(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Standard normal via Box-Muller (explicit formula, platform-stable).
double next_normal(std::uint64_t& state) {
  // u1 in (0, 1]: avoids log(0).
  const double u1 = 1.0 - next_double(state);
  const double u2 = next_double(state);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("SpeedProfile: ") + what);
}

bool valid_cps(double value) { return std::isfinite(value) && value > 0.0; }

std::string format_short(double value) {
  std::ostringstream out;
  out.precision(6);
  out << value;
  return out.str();
}

}  // namespace

SpeedProfile::SpeedProfile(std::vector<double> cps) : cps_(std::move(cps)) {
  require(!cps_.empty(), "need >= 1 node");
  for (double value : cps_) require(valid_cps(value), "every cps must be finite and > 0");
  min_cps_ = *std::min_element(cps_.begin(), cps_.end());
}

SpeedProfile SpeedProfile::homogeneous(std::size_t nodes, double cps) {
  require(nodes > 0, "need >= 1 node");
  require(valid_cps(cps), "cps must be finite and > 0");
  return SpeedProfile(std::vector<double>(nodes, cps));
}

SpeedProfile SpeedProfile::uniform(std::size_t nodes, double lo, double hi,
                                   std::uint64_t seed) {
  require(nodes > 0, "need >= 1 node");
  require(valid_cps(lo) && valid_cps(hi) && lo <= hi, "uniform needs 0 < lo <= hi");
  std::uint64_t state = seed ^ 0x632BE59BD9B4E019ULL;
  std::vector<double> cps(nodes);
  for (double& value : cps) value = lo + (hi - lo) * next_double(state);
  return SpeedProfile(std::move(cps));
}

SpeedProfile SpeedProfile::two_tier(std::size_t nodes, double fast_cps, double slow_cps,
                                    double fast_fraction, std::uint64_t seed) {
  require(nodes > 0, "need >= 1 node");
  require(valid_cps(fast_cps) && valid_cps(slow_cps), "tier costs must be > 0");
  require(fast_fraction >= 0.0 && fast_fraction <= 1.0, "fast_fraction must be in [0, 1]");
  const std::size_t fast_count = static_cast<std::size_t>(
      std::llround(fast_fraction * static_cast<double>(nodes)));
  std::vector<double> cps(nodes, slow_cps);
  std::fill(cps.begin(), cps.begin() + static_cast<std::ptrdiff_t>(fast_count), fast_cps);
  // Fisher-Yates with the splitmix stream: which ids are fast is seeded.
  std::uint64_t state = seed ^ 0x9E6C63D0876A9A35ULL;
  for (std::size_t i = nodes - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(splitmix64(state) % (i + 1));
    std::swap(cps[i], cps[j]);
  }
  return SpeedProfile(std::move(cps));
}

SpeedProfile SpeedProfile::log_normal(std::size_t nodes, double mean_cps, double cv,
                                      std::uint64_t seed) {
  require(nodes > 0, "need >= 1 node");
  require(valid_cps(mean_cps), "mean_cps must be finite and > 0");
  require(std::isfinite(cv) && cv >= 0.0, "cv must be >= 0");
  if (fp::exact_eq(cv, 0.0)) return homogeneous(nodes, mean_cps);
  // X = exp(mu + s*Z) has mean exp(mu + s^2/2) and CV sqrt(exp(s^2) - 1).
  const double s2 = std::log1p(cv * cv);
  const double mu = std::log(mean_cps) - 0.5 * s2;
  const double s = std::sqrt(s2);
  std::uint64_t state = seed ^ 0xD1B54A32D192ED03ULL;
  std::vector<double> cps(nodes);
  for (double& value : cps) value = std::exp(mu + s * next_normal(state));
  return SpeedProfile(std::move(cps));
}

SpeedProfile SpeedProfile::from_csv_text(std::string_view text) {
  std::vector<double> cps;
  std::size_t line_number = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') continue;
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + begin, &end);
    const bool consumed =
        end != line.c_str() + begin &&
        line.find_first_not_of(" \t\r", static_cast<std::size_t>(end - line.c_str())) ==
            std::string::npos;
    if (!consumed || !valid_cps(value)) {
      throw std::invalid_argument("SpeedProfile::from_csv: line " +
                                  std::to_string(line_number) + ": bad cps value '" + line +
                                  "'");
    }
    cps.push_back(value);
  }
  require(!cps.empty(), "csv profile has no values");
  return SpeedProfile(std::move(cps));
}

SpeedProfile SpeedProfile::from_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("SpeedProfile::from_csv_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv_text(buffer.str());
}

double SpeedProfile::max_cps() const { return *std::max_element(cps_.begin(), cps_.end()); }

double SpeedProfile::mean_cps() const {
  double sum = 0.0;
  for (double value : cps_) sum += value;
  return sum / static_cast<double>(cps_.size());
}

double SpeedProfile::cv() const {
  const double mean = mean_cps();
  double var = 0.0;
  for (double value : cps_) var += (value - mean) * (value - mean);
  var /= static_cast<double>(cps_.size());
  return std::sqrt(var) / mean;
}

bool SpeedProfile::heterogeneous() const {
  return heterogeneous_against(cps_.front());
}

bool SpeedProfile::heterogeneous_against(double base) const {
  for (double value : cps_) {
    if (value != base) return true;
  }
  return false;
}

std::string SpeedProfile::describe() const {
  std::ostringstream out;
  if (!heterogeneous()) {
    out << "homogeneous cps=" << format_short(cps_.front()) << " x" << cps_.size();
  } else {
    out << "het cps[" << format_short(min_cps()) << ", " << format_short(max_cps())
        << "] mean=" << format_short(mean_cps()) << " cv=" << format_short(cv()) << " x"
        << cps_.size();
  }
  return out.str();
}

namespace {

[[noreturn]] void key_fail(std::string_view key, const std::string& why) {
  throw std::invalid_argument("parse_speed_profile: '" + std::string(key) + "': " + why);
}

std::vector<std::string> split_args(std::string_view text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? text.size() : comma;
    std::size_t a = start;
    std::size_t b = end;
    while (a < b && (text[a] == ' ' || text[a] == '\t')) ++a;
    while (b > a && (text[b - 1] == ' ' || text[b - 1] == '\t')) --b;
    parts.emplace_back(text.substr(a, b - a));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return parts;
}

double arg_double(std::string_view key, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty()) {
    key_fail(key, "bad number '" + text + "'");
  }
  return value;
}

std::uint64_t arg_seed(std::string_view key, const std::string& text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || text.empty()) {
    key_fail(key, "bad seed '" + text + "'");
  }
  return value;
}

}  // namespace

SpeedProfile parse_speed_profile(std::string_view key, std::size_t nodes,
                                 double base_cps) {
  const std::size_t colon = key.find(':');
  const std::string name(key.substr(0, colon));
  const std::string_view rest = colon == std::string_view::npos
                                    ? std::string_view{}
                                    : key.substr(colon + 1);
  if (name == "csv") {
    if (rest.empty()) key_fail(key, "csv needs a path");
    SpeedProfile profile = SpeedProfile::from_csv_file(std::string(rest));
    if (profile.size() != nodes) {
      key_fail(key, "csv has " + std::to_string(profile.size()) + " values for a " +
                        std::to_string(nodes) + "-node cluster");
    }
    return profile;
  }
  const std::vector<std::string> args = split_args(rest);
  auto want = [&](std::size_t lo, std::size_t hi) {
    if (args.size() < lo || args.size() > hi || (args.size() == 1 && args[0].empty())) {
      key_fail(key, "wrong argument count");
    }
  };
  if (name == "uniform") {
    want(2, 3);
    const std::uint64_t seed = args.size() == 3 ? arg_seed(key, args[2]) : 0;
    return SpeedProfile::uniform(nodes, arg_double(key, args[0]), arg_double(key, args[1]),
                                 seed);
  }
  if (name == "two_tier") {
    want(3, 4);
    const std::uint64_t seed = args.size() == 4 ? arg_seed(key, args[3]) : 0;
    return SpeedProfile::two_tier(nodes, arg_double(key, args[0]), arg_double(key, args[1]),
                                  arg_double(key, args[2]), seed);
  }
  if (name == "lognormal") {
    want(1, 2);
    const std::uint64_t seed = args.size() == 2 ? arg_seed(key, args[1]) : 0;
    return SpeedProfile::log_normal(nodes, base_cps, arg_double(key, args[0]), seed);
  }
  key_fail(key, "unknown generator (uniform|two_tier|lognormal|csv)");
}

// --- ClusterParams glue (declared in cluster/types.hpp) ---------------------

bool ClusterParams::heterogeneous() const {
  return speed_profile != nullptr && speed_profile->heterogeneous_against(cps);
}

double ClusterParams::node_cps(NodeId id) const {
  return speed_profile != nullptr ? speed_profile->cps(id) : cps;
}

bool ClusterParams::profile_valid() const {
  return speed_profile->size() == node_count;
}

}  // namespace rtdls::cluster
