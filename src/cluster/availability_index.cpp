#include "cluster/availability_index.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <type_traits>

namespace rtdls::cluster {

void AvailabilityIndex::reset(std::size_t nodes) {
  entries_.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    entries_[i] = Entry{0.0, static_cast<NodeId>(i)};
  }
}

static_assert(std::is_trivially_copyable_v<AvailabilityIndex::Entry>,
              "update() repositions entries with memmove");

void AvailabilityIndex::update(NodeId node, Time from, Time to) {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), Entry{from, node}, less);
  if (it == entries_.end() || it->node != node || it->free_at != from) {
    throw std::logic_error("AvailabilityIndex::update: entry not found (index desync)");
  }
  // Reposition with a raw shift: a commit typically moves one entry across
  // a large slice of the array (free-now -> released-last), and memmove on
  // the trivially-copyable entries is several times faster there than
  // std::rotate's element cycle.
  const Entry moved{to, node};
  if (to > from) {
    const auto dest = std::lower_bound(it + 1, entries_.end(), moved, less);
    std::memmove(&*it, &*it + 1, static_cast<std::size_t>(dest - it - 1) * sizeof(Entry));
    *(dest - 1) = moved;
  } else if (to < from) {
    const auto dest = std::lower_bound(entries_.begin(), it, moved, less);
    std::memmove(&*dest + 1, &*dest, static_cast<std::size_t>(it - dest) * sizeof(Entry));
    *dest = moved;
  } else {
    it->free_at = to;
  }
}

std::size_t AvailabilityIndex::available_by(Time t) const {
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), t,
      [](Time value, const Entry& entry) { return value < entry.free_at; });
  return static_cast<std::size_t>(it - entries_.begin());
}

Time AvailabilityIndex::kth_free_time(std::size_t k) const {
  if (k >= entries_.size()) {
    throw std::invalid_argument("AvailabilityIndex::kth_free_time: k out of range");
  }
  return entries_[k].free_at;
}

void AvailabilityIndex::availability_into(Time now, std::vector<Time>& out) const {
  const std::size_t floored = available_by(now);
  out.resize(entries_.size());
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(floored), now);
  for (std::size_t i = floored; i < entries_.size(); ++i) out[i] = entries_[i].free_at;
}

void AvailabilityIndex::availability_with_ids_into(Time now, std::vector<Time>& times,
                                                   std::vector<NodeId>& ids) const {
  const std::size_t floored = available_by(now);
  times.resize(entries_.size());
  ids.resize(entries_.size());
  std::fill(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(floored), now);
  for (std::size_t i = 0; i < entries_.size(); ++i) ids[i] = entries_[i].node;
  // The floored prefix all ties at `now`; sorting its ids yields the strict
  // (floored time, id) order the heterogeneous state machinery relies on.
  std::sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(floored));
  for (std::size_t i = floored; i < entries_.size(); ++i) times[i] = entries_[i].free_at;
}

void AvailabilityIndex::earliest_free_nodes_into(Time now, std::size_t n,
                                                 std::vector<NodeId>& out) const {
  if (n > entries_.size()) {
    throw std::invalid_argument("AvailabilityIndex::earliest_free_nodes: n exceeds size");
  }
  const std::size_t floored = available_by(now);
  const std::size_t take = std::min(n, floored);
  out.resize(floored);
  for (std::size_t i = 0; i < floored; ++i) out[i] = entries_[i].node;
  // All floored nodes tie at `now`, so only their n smallest ids are needed.
  if (take < floored) {
    std::nth_element(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(take), out.end());
  }
  std::sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(take));
  out.resize(take);
  // Past the floor the index order (free_at, then id) is the answer order.
  for (std::size_t i = floored; out.size() < n; ++i) out.push_back(entries_[i].node);
}

bool AvailabilityIndex::consistent_with(const std::vector<Time>& free_times) const {
  if (entries_.size() != free_times.size()) return false;
  std::vector<bool> seen(free_times.size(), false);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.node >= free_times.size() || seen[entry.node]) return false;
    seen[entry.node] = true;
    if (entry.free_at != free_times[entry.node]) return false;
    if (i > 0 && !less(entries_[i - 1], entry)) return false;
  }
  return true;
}

}  // namespace rtdls::cluster
