#include "cluster/availability_index.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "util/env.hpp"
#include "util/strings.hpp"

namespace rtdls::cluster {

IndexBackend resolve_index_backend(IndexBackend choice, std::size_t node_count) {
  if (choice != IndexBackend::kAuto) return choice;
  if (const auto env = util::get_env("RTDLS_INDEX")) {
    const std::string value = util::to_lower(*env);
    if (value == "flat") return IndexBackend::kFlat;
    if (value == "bucket") return IndexBackend::kBucket;
    if (value != "auto") {
      throw std::invalid_argument("RTDLS_INDEX: expected flat|bucket|auto, got '" + *env +
                                  "'");
    }
  }
  // Crossover heuristic: one flat memmove touches ~16 bytes/entry, so below
  // a few thousand nodes it stays cheaper than the bucket directory's extra
  // indirection; the replay benches put the crossover near 2-8k.
  constexpr std::size_t kBucketThreshold = 4096;
  return node_count >= kBucketThreshold ? IndexBackend::kBucket : IndexBackend::kFlat;
}

const char* index_backend_name(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kFlat:
      return "flat";
    case IndexBackend::kBucket:
      return "bucket";
    case IndexBackend::kAuto:
      break;
  }
  return "auto";
}

static_assert(std::is_trivially_copyable_v<AvailabilityIndex::Entry>,
              "update() repositions entries with memmove");

void AvailabilityIndex::reset(std::size_t nodes) { reset(nodes, backend_); }

void AvailabilityIndex::reset(std::size_t nodes, IndexBackend backend) {
  if (backend == IndexBackend::kAuto) {
    throw std::invalid_argument(
        "AvailabilityIndex::reset: pass a resolved backend (resolve_index_backend)");
  }
  backend_ = backend;
  size_ = nodes;
  prefix_valid_ = false;
  if (backend_ == IndexBackend::kFlat) {
    entries_.resize(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      entries_[i] = Entry{0.0, static_cast<NodeId>(i)};
    }
    // Release the bucket structures' element storage only lazily (clear
    // keeps capacity): a backend flip on the same index is a test-only move.
    order_.clear();
    mins_.clear();
    free_slots_.clear();
    return;
  }
  entries_.clear();
  order_.clear();
  mins_.clear();
  free_slots_.clear();
  const std::size_t buckets = nodes == 0 ? 0 : (nodes + kTargetFanout - 1) / kTargetFanout;
  if (slots_.size() < buckets) slots_.resize(buckets);
  std::size_t next = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    std::vector<Entry>& bucket = slots_[b];
    bucket.clear();
    const std::size_t count = std::min(kTargetFanout, nodes - next);
    for (std::size_t j = 0; j < count; ++j) {
      bucket.push_back(Entry{0.0, static_cast<NodeId>(next++)});
    }
    order_.push_back(static_cast<std::uint32_t>(b));
    mins_.push_back(bucket.front());
  }
  for (std::size_t s = buckets; s < slots_.size(); ++s) {
    slots_[s].clear();
    free_slots_.push_back(static_cast<std::uint32_t>(s));
  }
}

std::size_t AvailabilityIndex::update(NodeId node, Time from, Time to) {
  if (backend_ == IndexBackend::kFlat) return update_flat(node, from, to);
  return update_bucket(node, from, to);
}

std::size_t AvailabilityIndex::update_flat(NodeId node, Time from, Time to) {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), Entry{from, node}, less);
  if (it == entries_.end() || it->node != node || it->free_at != from) {
    throw std::logic_error("AvailabilityIndex::update: entry not found (index desync)");
  }
  // Reposition with a raw shift: a commit typically moves one entry across
  // a large slice of the array (free-now -> released-last), and memmove on
  // the trivially-copyable entries is several times faster there than
  // std::rotate's element cycle.
  const Entry moved{to, node};
  if (to > from) {
    const auto dest = std::lower_bound(it + 1, entries_.end(), moved, less);
    const std::size_t depth = static_cast<std::size_t>(dest - it - 1);
    std::memmove(&*it, &*it + 1, depth * sizeof(Entry));
    *(dest - 1) = moved;
    return depth;
  }
  if (to < from) {
    const auto dest = std::lower_bound(entries_.begin(), it, moved, less);
    const std::size_t depth = static_cast<std::size_t>(it - dest);
    std::memmove(&*dest + 1, &*dest, depth * sizeof(Entry));
    *dest = moved;
    return depth;
  }
  it->free_at = to;
  return 0;
}

std::size_t AvailabilityIndex::locate_bucket(const Entry& key) const {
  // First bucket whose min is > key, minus one: the only bucket that can
  // contain key, since bucket boundaries preserve the global order.
  const auto it = std::upper_bound(mins_.begin(), mins_.end(), key, less);
  if (it == mins_.begin()) return kNpos;
  return static_cast<std::size_t>(it - mins_.begin()) - 1;
}

std::size_t AvailabilityIndex::update_bucket(NodeId node, Time from, Time to) {
  const Entry key{from, node};
  const std::size_t bi = locate_bucket(key);
  if (bi == kNpos) {
    throw std::logic_error("AvailabilityIndex::update: entry not found (index desync)");
  }
  std::vector<Entry>& src = slots_[order_[bi]];
  const auto it = std::lower_bound(src.begin(), src.end(), key, less);
  if (it == src.end() || it->node != node || it->free_at != from) {
    throw std::logic_error("AvailabilityIndex::update: entry not found (index desync)");
  }
  if (to == from) {
    it->free_at = to;
    return 0;
  }

  const Entry moved{to, node};
  // In-bucket fast path: the moved entry stays between the surrounding
  // buckets, so only a bucket-local shift is needed and the bucket geometry
  // is untouched. Moving up that means staying below the next bucket's min;
  // moving down, staying at or above this bucket's min - or, when the entry
  // *is* the min, above the previous bucket's maximum.
  const bool below_next = bi + 1 == order_.size() || less(moved, mins_[bi + 1]);
  bool above_prev = !less(moved, mins_[bi]);
  if (!above_prev && it == src.begin()) {
    above_prev = bi == 0 || less(slots_[order_[bi - 1]].back(), moved);
  }
  if (below_next && above_prev) {
    std::size_t depth = 0;
    if (to > from) {
      const auto dest = std::lower_bound(it + 1, src.end(), moved, less);
      depth = static_cast<std::size_t>(dest - it - 1);
      std::memmove(&*it, &*it + 1, depth * sizeof(Entry));
      *(dest - 1) = moved;
    } else {
      const auto dest = std::lower_bound(src.begin(), it, moved, less);
      depth = static_cast<std::size_t>(it - dest);
      std::memmove(&*dest + 1, &*dest, depth * sizeof(Entry));
      *dest = moved;
    }
    mins_[bi] = src.front();
    // Entry counts per bucket are unchanged, so the prefix sums survive.
    return depth;
  }

  // Cross-bucket move: erase here, reinsert at the ordered position.
  const std::size_t erase_shift = static_cast<std::size_t>(src.end() - it) - 1;
  std::memmove(&*it, &*it + 1, erase_shift * sizeof(Entry));
  src.pop_back();
  prefix_valid_ = false;
  if (src.empty()) {
    drop_bucket(bi);
  } else {
    mins_[bi] = src.front();
    maybe_merge(bi);
  }
  return erase_shift + insert_bucket_entry(moved);
}

std::size_t AvailabilityIndex::insert_bucket_entry(const Entry& moved) {
  if (order_.empty()) {
    // The erase emptied a single-bucket index (N <= fanout edge case).
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].push_back(moved);
    order_.push_back(slot);
    mins_.push_back(moved);
    return 0;
  }
  std::size_t bj = locate_bucket(moved);
  if (bj == kNpos) bj = 0;  // new global minimum: prepend into the first bucket
  std::vector<Entry>& dst = slots_[order_[bj]];
  const auto pos = std::lower_bound(dst.begin(), dst.end(), moved, less);
  const std::size_t shift = static_cast<std::size_t>(dst.end() - pos);
  dst.push_back(moved);  // grow, then shift the tail right into the new slot
  std::memmove(&dst[dst.size() - 1 - shift] + 1, &dst[dst.size() - 1 - shift],
               shift * sizeof(Entry));
  dst[dst.size() - 1 - shift] = moved;
  mins_[bj] = dst.front();
  if (dst.size() > kMaxFanout) split_bucket(bj);
  return shift;
}

void AvailabilityIndex::split_bucket(std::size_t b) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();  // may move slots_; take references only after
  }
  std::vector<Entry>& lo = slots_[order_[b]];
  std::vector<Entry>& hi = slots_[slot];
  const std::size_t half = lo.size() / 2;
  hi.assign(lo.begin() + static_cast<std::ptrdiff_t>(half), lo.end());
  lo.resize(half);
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(b) + 1, slot);
  mins_.insert(mins_.begin() + static_cast<std::ptrdiff_t>(b) + 1, hi.front());
}

void AvailabilityIndex::drop_bucket(std::size_t b) {
  free_slots_.push_back(order_[b]);
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(b));
  mins_.erase(mins_.begin() + static_cast<std::ptrdiff_t>(b));
}

void AvailabilityIndex::maybe_merge(std::size_t b) {
  if (slots_[order_[b]].size() >= kMinFanout || order_.size() < 2) return;
  // Merge right (so the directory erase stays a single shift); the last
  // bucket merges left instead by retargeting the call.
  const std::size_t left = b + 1 < order_.size() ? b : b - 1;
  std::vector<Entry>& into = slots_[order_[left]];
  std::vector<Entry>& from = slots_[order_[left + 1]];
  if (into.size() + from.size() > kMergeMax) return;
  into.insert(into.end(), from.begin(), from.end());
  from.clear();
  drop_bucket(left + 1);
}

void AvailabilityIndex::ensure_prefix() const {
  if (prefix_valid_) return;
  prefix_.resize(order_.size() + 1);
  prefix_[0] = 0;
  for (std::size_t b = 0; b < order_.size(); ++b) {
    prefix_[b + 1] = prefix_[b] + slots_[order_[b]].size();
  }
  prefix_valid_ = true;
}

std::size_t AvailabilityIndex::available_by(Time t) const {
  if (backend_ == IndexBackend::kFlat) {
    const auto it = std::upper_bound(
        entries_.begin(), entries_.end(), t,
        [](Time value, const Entry& entry) { return value < entry.free_at; });
    return static_cast<std::size_t>(it - entries_.begin());
  }
  // Last bucket whose min free_at is <= t: everything before it is <= t in
  // (free_at, node) order, everything after it starts past t.
  const auto it = std::upper_bound(
      mins_.begin(), mins_.end(), t,
      [](Time value, const Entry& entry) { return value < entry.free_at; });
  if (it == mins_.begin()) return 0;
  const std::size_t b = static_cast<std::size_t>(it - mins_.begin()) - 1;
  ensure_prefix();
  const std::vector<Entry>& bucket = slots_[order_[b]];
  const auto jt = std::upper_bound(
      bucket.begin(), bucket.end(), t,
      [](Time value, const Entry& entry) { return value < entry.free_at; });
  return prefix_[b] + static_cast<std::size_t>(jt - bucket.begin());
}

Time AvailabilityIndex::kth_free_time(std::size_t k) const {
  if (k >= size_) {
    throw std::invalid_argument("AvailabilityIndex::kth_free_time: k out of range");
  }
  if (backend_ == IndexBackend::kFlat) return entries_[k].free_at;
  ensure_prefix();
  // Bucket containing rank k: last prefix <= k.
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), k);
  const std::size_t b = static_cast<std::size_t>(it - prefix_.begin()) - 1;
  return slots_[order_[b]][k - prefix_[b]].free_at;
}

void AvailabilityIndex::availability_into(Time now, std::vector<Time>& out) const {
  const std::size_t floored = available_by(now);
  out.resize(size_);
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(floored), now);
  if (backend_ == IndexBackend::kFlat) {
    for (std::size_t i = floored; i < entries_.size(); ++i) out[i] = entries_[i].free_at;
    return;
  }
  // Start at the bucket containing the first unfloored rank; the floored
  // prefix was already filled without touching its entries.
  ensure_prefix();
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), floored);
  std::size_t b = static_cast<std::size_t>(it - prefix_.begin()) - 1;
  std::size_t i = floored;
  for (; b < order_.size(); ++b) {
    const std::vector<Entry>& bucket = slots_[order_[b]];
    for (std::size_t j = i - prefix_[b]; j < bucket.size(); ++j) {
      out[i++] = bucket[j].free_at;
    }
  }
}

void AvailabilityIndex::availability_with_ids_into(Time now, std::vector<Time>& times,
                                                   std::vector<NodeId>& ids) const {
  const std::size_t floored = available_by(now);
  times.resize(size_);
  ids.resize(size_);
  std::fill(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(floored), now);
  if (backend_ == IndexBackend::kFlat) {
    for (std::size_t i = 0; i < entries_.size(); ++i) ids[i] = entries_[i].node;
    for (std::size_t i = floored; i < entries_.size(); ++i) times[i] = entries_[i].free_at;
  } else {
    std::size_t i = 0;
    for (std::size_t b = 0; b < order_.size(); ++b) {
      const std::vector<Entry>& bucket = slots_[order_[b]];
      for (const Entry& entry : bucket) {
        ids[i] = entry.node;
        if (i >= floored) times[i] = entry.free_at;
        ++i;
      }
    }
  }
  // The floored prefix all ties at `now`; sorting its ids yields the strict
  // (floored time, id) order the heterogeneous state machinery relies on.
  std::sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(floored));
}

void AvailabilityIndex::earliest_free_nodes_into(Time now, std::size_t n,
                                                 std::vector<NodeId>& out) const {
  if (n > size_) {
    throw std::invalid_argument("AvailabilityIndex::earliest_free_nodes: n exceeds size");
  }
  const std::size_t floored = available_by(now);
  const std::size_t take = std::min(n, floored);
  out.resize(floored);
  if (backend_ == IndexBackend::kFlat) {
    for (std::size_t i = 0; i < floored; ++i) out[i] = entries_[i].node;
  } else {
    std::size_t i = 0;
    for (std::size_t b = 0; b < order_.size() && i < floored; ++b) {
      const std::vector<Entry>& bucket = slots_[order_[b]];
      for (std::size_t j = 0; j < bucket.size() && i < floored; ++j) {
        out[i++] = bucket[j].node;
      }
    }
  }
  // All floored nodes tie at `now`, so only their n smallest ids are needed.
  if (take < floored) {
    std::nth_element(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(take), out.end());
  }
  std::sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(take));
  out.resize(take);
  // Past the floor the index order (free_at, then id) is the answer order.
  if (backend_ == IndexBackend::kFlat) {
    for (std::size_t i = floored; out.size() < n; ++i) out.push_back(entries_[i].node);
    return;
  }
  if (out.size() >= n) return;
  ensure_prefix();
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), floored);
  std::size_t b = static_cast<std::size_t>(it - prefix_.begin()) - 1;
  std::size_t i = floored;
  for (; b < order_.size() && out.size() < n; ++b) {
    const std::vector<Entry>& bucket = slots_[order_[b]];
    for (std::size_t j = i - prefix_[b]; j < bucket.size() && out.size() < n; ++j) {
      out.push_back(bucket[j].node);
      ++i;
    }
  }
}

bool AvailabilityIndex::consistent_with(const std::vector<Time>& free_times) const {
  if (size_ != free_times.size()) return false;
  std::vector<bool> seen(free_times.size(), false);
  const Entry* prev = nullptr;
  const auto check_entry = [&](const Entry& entry) {
    if (entry.node >= free_times.size() || seen[entry.node]) return false;
    seen[entry.node] = true;
    if (entry.free_at != free_times[entry.node]) return false;
    if (prev != nullptr && !less(*prev, entry)) return false;
    prev = &entry;
    return true;
  };
  if (backend_ == IndexBackend::kFlat) {
    if (entries_.size() != size_) return false;
    for (const Entry& entry : entries_) {
      if (!check_entry(entry)) return false;
    }
    return true;
  }
  // Bucket invariants on top of the shared order/coverage checks.
  std::size_t total = 0;
  std::vector<bool> slot_used(slots_.size(), false);
  for (std::size_t b = 0; b < order_.size(); ++b) {
    const std::uint32_t slot = order_[b];
    if (slot >= slots_.size() || slot_used[slot]) return false;
    slot_used[slot] = true;
    const std::vector<Entry>& bucket = slots_[slot];
    if (bucket.empty()) return false;
    if (bucket[0].free_at != mins_[b].free_at || bucket[0].node != mins_[b].node) {
      return false;
    }
    total += bucket.size();
    for (const Entry& entry : bucket) {
      if (!check_entry(entry)) return false;
    }
  }
  if (total != size_ || mins_.size() != order_.size()) return false;
  for (const std::uint32_t slot : free_slots_) {
    if (slot >= slots_.size() || slot_used[slot]) return false;
    slot_used[slot] = true;
  }
  if (prefix_valid_) {
    if (prefix_.size() != order_.size() + 1 || prefix_[0] != 0) return false;
    for (std::size_t b = 0; b < order_.size(); ++b) {
      if (prefix_[b + 1] != prefix_[b] + slots_[order_[b]].size()) return false;
    }
  }
  return true;
}

}  // namespace rtdls::cluster
