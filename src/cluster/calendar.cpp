#include "cluster/calendar.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fp.hpp"

namespace rtdls::cluster {

NodeCalendar::NodeCalendar(std::size_t nodes) : busy_(nodes) {
  if (nodes == 0) throw std::invalid_argument("NodeCalendar: need >= 1 node");
}

void NodeCalendar::reserve(NodeId id, Time start, Time end) {
  if (end < start) throw std::invalid_argument("NodeCalendar::reserve: end before start");
  auto& intervals = busy_.at(id);
  const auto insert_at = std::upper_bound(
      intervals.begin(), intervals.end(), start,
      [](Time t, const Interval& interval) { return t < interval.start; });
  // Check the neighbours for overlap.
  if (insert_at != intervals.begin()) {
    const Interval& before = *(insert_at - 1);
    if (fp::after(before.end, start)) {
      throw std::logic_error("NodeCalendar::reserve: overlaps earlier reservation");
    }
  }
  if (insert_at != intervals.end() && fp::before(insert_at->start, end)) {
    throw std::logic_error("NodeCalendar::reserve: overlaps later reservation");
  }
  intervals.insert(insert_at, Interval{start, end});
}

bool NodeCalendar::is_free(NodeId id, Time start, Time end) const {
  const auto& intervals = busy_.at(id);
  for (const Interval& interval : intervals) {
    if (fp::at_or_after(interval.start, end)) break;  // sorted: nothing later overlaps
    if (fp::after(interval.end, start)) return false;
  }
  return true;
}

Time NodeCalendar::earliest_fit(NodeId id, Time from, Time duration) const {
  const auto& intervals = busy_.at(id);
  if (duration <= 0.0) return from;  // the empty window fits anywhere
  Time candidate = from;
  for (const Interval& interval : intervals) {
    if (fp::at_or_before(interval.end, candidate)) continue;      // already past it
    if (fp::at_or_after(interval.start, candidate + duration)) break;  // gap fits
    candidate = interval.end;  // collide: restart after this reservation
  }
  return candidate;
}

Time NodeCalendar::busy_time(NodeId id) const {
  Time total = 0.0;
  for (const Interval& interval : busy_.at(id)) total += interval.end - interval.start;
  return total;
}

std::vector<Time> NodeCalendar::candidate_times(Time from) const {
  std::vector<Time> times{from};
  for (const auto& intervals : busy_) {
    for (const Interval& interval : intervals) {
      if (interval.start > from) times.push_back(interval.start);
      if (interval.end > from) times.push_back(interval.end);
    }
  }
  std::sort(times.begin(), times.end());
  // Anchor-based dedupe: |a-b| <= tol is not transitive, so handing it to
  // std::unique is unspecified - depending on which elements the
  // implementation compares, a chain of near-equal edges (each within
  // tolerance of its neighbour) could collapse into one candidate
  // arbitrarily far from the dropped edges. Comparing against the last
  // KEPT time instead guarantees every dropped edge lies within
  // fp::kTimeTolerance of a surviving anchor.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (kept == 0 || fp::after(times[i], times[kept - 1])) times[kept++] = times[i];
  }
  times.resize(kept);
  return times;
}

std::optional<NodeCalendar::Window> NodeCalendar::earliest_window(
    Time from, std::size_t n, Time duration) const {
  if (n > size()) return std::nullopt;
  if (n == 0) return Window{from, {}};
  for (Time t : candidate_times(from)) {
    Window window;
    window.start = t;
    for (NodeId id = 0; id < size() && window.nodes.size() < n; ++id) {
      if (is_free(id, t, t + duration)) window.nodes.push_back(id);
    }
    if (window.nodes.size() == n) return window;
  }
  // Unreachable: the last candidate time lies past every reservation, where
  // all nodes are free.
  return std::nullopt;
}

}  // namespace rtdls::cluster
