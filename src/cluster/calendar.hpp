// Interval-based reservation calendar.
//
// The paper's Figure-2 framework only needs each node's *release time*
// because its rules reserve contiguous suffixes [start, release). The
// backfilling literature it cites ([21, 24, 29]) instead keeps per-node
// busy-interval sets so later jobs can slide into gaps in front of existing
// reservations - exactly the Inserted Idle Times the paper's DLT rule
// consumes. This calendar is the substrate for the OPR-MN-BF comparator
// ("prior work + conservative backfilling"), letting the benches answer
// whether backfilling alone recovers what IIT-utilization gains.
#pragma once

#include <optional>
#include <vector>

#include "cluster/types.hpp"

namespace rtdls::cluster {

/// A half-open busy interval [start, end).
struct Interval {
  Time start = 0.0;
  Time end = 0.0;
};

/// Per-node disjoint busy-interval sets with gap queries.
class NodeCalendar {
 public:
  explicit NodeCalendar(std::size_t nodes);

  std::size_t size() const { return busy_.size(); }

  /// Reserves [start, end) on `id`. Throws std::logic_error on overlap with
  /// an existing reservation (callers must plan against gaps first).
  void reserve(NodeId id, Time start, Time end);

  /// True if [start, end) does not intersect any reservation on `id`.
  bool is_free(NodeId id, Time start, Time end) const;

  /// Earliest t >= from with [t, t + duration) free on `id`. Always exists
  /// (the calendar is finite); duration may be 0.
  Time earliest_fit(NodeId id, Time from, Time duration) const;

  /// The node's busy intervals (sorted, disjoint) - for tests and metrics.
  const std::vector<Interval>& busy(NodeId id) const { return busy_.at(id); }

  /// Total reserved time on `id`.
  Time busy_time(NodeId id) const;

  /// Drops every reservation, keeping per-node storage (run-to-run reuse).
  void clear() {
    for (auto& intervals : busy_) intervals.clear();
  }

  /// Candidate start times for scan-based planning: `from` plus every
  /// reservation edge >= from, deduplicated and sorted. Any optimal
  /// "earliest k simultaneous nodes" answer lies on one of these.
  std::vector<Time> candidate_times(Time from) const;

  /// A simultaneous window: `n` concrete nodes all free over
  /// [start, start + duration).
  struct Window {
    Time start = 0.0;
    std::vector<NodeId> nodes;
  };

  /// Earliest window at or after `from` where at least `n` nodes are
  /// simultaneously free for `duration`; picks the lowest-id qualifying
  /// nodes for determinism. Returns nullopt only if n > size().
  std::optional<Window> earliest_window(Time from, std::size_t n, Time duration) const;

 private:
  std::vector<std::vector<Interval>> busy_;  // per node, sorted by start
};

}  // namespace rtdls::cluster
