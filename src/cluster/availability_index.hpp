// Sorted free-time index over a cluster's nodes.
//
// The Figure-2 admission test consumes the cluster's availability as the
// sorted vector of node release times on every arrival; rebuilding that
// vector with a full sort is O(N log N) per plan and is the large-N
// bottleneck named in ROADMAP. This index keeps the (free_at, node) pairs
// permanently sorted and repositions exactly one entry per node mutation
// (commit / early release), so snapshot reads degrade to an O(N) copy and
// rank queries to an O(log N) binary search.
//
// Invariants (checked by consistent_with / the index tests):
//  * entries() is strictly ordered by (free_at, node) - the node id breaks
//    ties, so iteration order is deterministic and matches the admission
//    path's historical stable_sort tie-breaking;
//  * there is exactly one entry per node id in [0, size());
//  * every entry's free_at equals the owning Node's free_at() - the Node
//    remains the source of truth, the index is a mirror the Cluster updates
//    inside the same mutation that bumps its availability version.
//
// A Fenwick count over bucketed release times was considered for the
// first-crossing queries and rejected: release times are unbounded
// continuous doubles, so bucketing would either quantize (breaking the
// bit-identical-schedules requirement) or need periodic rebuilds; on a
// permanently sorted vector the same queries are exact O(log N) binary
// searches (available_by / kth_free_time), and the n_min first crossing in
// the partition rules gallops on the sorted state directly.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/types.hpp"
#include "util/annotations.hpp"

namespace rtdls::cluster {

class AvailabilityIndex {
 public:
  /// One indexed node: its current release time and identity. Per-node
  /// speeds deliberately do NOT ride along: they are constant, so the
  /// heterogeneous snapshot derives them from the id column instead of
  /// fattening the entries this index memmoves on every reposition.
  struct Entry {
    Time free_at = 0.0;
    NodeId node = 0;
  };

  /// (Re)builds the index for `nodes` nodes, all free at time 0 (the
  /// cluster's initial / post-reset state). Keeps allocations.
  void reset(std::size_t nodes);

  std::size_t size() const { return entries_.size(); }

  /// Entries sorted ascending by (free_at, node).
  const std::vector<Entry>& entries() const { return entries_; }

  /// Repositions `node` after its release time changed from `from` to `to`.
  /// `from` must be the node's currently indexed time (throws
  /// std::logic_error otherwise - a desynced index is a bug, not a state).
  RTDLS_HOT void update(NodeId node, Time from, Time to);

  /// Number of nodes with free_at <= t: the paper's AN(t) ("available
  /// nodes by t") quantity. O(log N).
  RTDLS_HOT std::size_t available_by(Time t) const;

  /// k-th smallest release time (0-based): the instant k+1 nodes are
  /// simultaneously available. k must be < size().
  RTDLS_HOT Time kth_free_time(std::size_t k) const;

  /// Writes the sorted availability snapshot floored at `now` into `out`:
  /// bit-identical to sorting max(free_at, now) over all nodes, without the
  /// sort (the floored prefix collapses to `now`; the rest is already
  /// ordered). O(N) copy.
  RTDLS_HOT void availability_into(Time now, std::vector<Time>& out) const;

  /// Same snapshot plus the matching node ids (ids[i] owns times[i]),
  /// strictly ordered by (floored time, id): the floored prefix all ties at
  /// `now`, so its ids are re-sorted ascending - the same order a pair sort
  /// of (max(free_at, now), id) would produce. The heterogeneous planning
  /// path consumes this: the id column is what lets rules look up per-node
  /// cps and record the concrete nodes their alpha was computed for, and
  /// the strict (time, id) order is the invariant the admission session's
  /// functional state evolution preserves. O(N) plus the prefix id sort.
  RTDLS_HOT void availability_with_ids_into(Time now, std::vector<Time>& times,
                                  std::vector<NodeId>& ids) const;

  /// Ids of the `n` earliest-available nodes at `now`, ties broken by id:
  /// bit-identical to a stable sort of all ids by (max(free_at, now), id).
  /// Nodes already free at `now` all tie, so the floored prefix is reduced
  /// to its n smallest ids via a partial selection instead of a full sort.
  /// n must not exceed size().
  RTDLS_HOT void earliest_free_nodes_into(Time now, std::size_t n, std::vector<NodeId>& out) const;

  /// Debug/tests: true iff the invariants hold against the authoritative
  /// per-node release times (free_times[i] = node i's free_at()).
  bool consistent_with(const std::vector<Time>& free_times) const;

 private:
  static bool less(const Entry& a, const Entry& b) {
    if (a.free_at != b.free_at) return a.free_at < b.free_at;
    return a.node < b.node;
  }

  std::vector<Entry> entries_;  ///< sorted by (free_at, node)
};

}  // namespace rtdls::cluster
