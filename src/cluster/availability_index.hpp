// Sorted free-time index over a cluster's nodes, with two storage backends.
//
// The Figure-2 admission test consumes the cluster's availability as the
// sorted vector of node release times on every arrival; rebuilding that
// vector with a full sort is O(N log N) per plan and is the large-N
// bottleneck named in ROADMAP. This index keeps the (free_at, node) pairs
// permanently sorted and repositions exactly one entry per node mutation
// (commit / early release), so snapshot reads degrade to an O(N) copy and
// rank queries to an O(log N) binary search.
//
// Two backends maintain the same totally ordered multiset:
//
//  * kFlat - one contiguous sorted vector; update() is a binary search plus
//    a memmove of everything between the old and new position. Unbeatable
//    cache behavior up to a few thousand nodes, but the memmove makes every
//    commit O(N): at N=10^5 a typical commit (free-now -> released-last)
//    drags ~1.6 MB of entries, which is the wall the million-task replay
//    target hits.
//
//  * kBucket - a bucketed timeline (a two-level B-tree, effectively): the
//    sorted sequence is cut into fixed-fanout buckets, each a small sorted
//    vector, with a directory of per-bucket minima for O(log #buckets)
//    bucket location. update() becomes two bucket-local memmoves of at most
//    ~128 entries plus an O(#buckets) directory shift when a bucket splits,
//    merges or empties - O(log N + B) per commit instead of O(N). Rank /
//    order-statistic queries (available_by, kth_free_time) go through a
//    lazily rebuilt per-bucket prefix-sum (invalidated by update, rebuilt
//    O(#buckets) on the next query), so query trains between commits pay
//    the rebuild once.
//
// Both backends produce *bit-identical* query results - they represent the
// same sequence, and every floor/tie-break rule below is shared - which the
// flat-vs-bucket differential and schedule property tests pin down. The
// bucket entries deliberately stay (free_at, node) without a cps column:
// per-node speeds are constant, so the heterogeneous snapshot derives them
// from the id column instead of fattening the entries both backends shift.
//
// Invariants (checked by consistent_with / the index tests):
//  * iteration order is strictly (free_at, node) - the node id breaks
//    ties, so it is deterministic and matches the admission path's
//    historical stable_sort tie-breaking;
//  * there is exactly one entry per node id in [0, size());
//  * every entry's free_at equals the owning Node's free_at() - the Node
//    remains the source of truth, the index is a mirror the Cluster updates
//    inside the same mutation that bumps its availability version;
//  * (bucket) every bucket is non-empty, directory minima equal their
//    bucket's first entry, and bucket boundaries preserve the global order.
//
// A Fenwick count over bucketed release times was considered for the
// first-crossing queries and rejected: release times are unbounded
// continuous doubles, so bucketing *values* would either quantize (breaking
// the bit-identical-schedules requirement) or need periodic rebuilds. The
// kBucket backend buckets *positions*, not values, so every query stays
// exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/types.hpp"
#include "util/annotations.hpp"

namespace rtdls::cluster {

/// Resolves an index-backend choice to a concrete backend: an explicit
/// choice wins; kAuto honors the RTDLS_INDEX environment variable
/// ("flat" | "bucket", anything else throws std::invalid_argument), and
/// falls back to a node-count heuristic - the flat memmove beats the bucket
/// directory below a few thousand nodes, so small clusters stay flat.
IndexBackend resolve_index_backend(IndexBackend choice, std::size_t node_count);

/// Human-readable backend name ("auto" | "flat" | "bucket") for status
/// output and bench reports.
const char* index_backend_name(IndexBackend backend);

class AvailabilityIndex {
 public:
  /// One indexed node: its current release time and identity.
  struct Entry {
    Time free_at = 0.0;
    NodeId node = 0;
  };

  /// (Re)builds the index for `nodes` nodes, all free at time 0 (the
  /// cluster's initial / post-reset state). Keeps allocations and the
  /// currently selected backend.
  void reset(std::size_t nodes);

  /// Same, selecting the storage backend (must be resolved - kFlat or
  /// kBucket; pass the result of resolve_index_backend).
  void reset(std::size_t nodes, IndexBackend backend);

  IndexBackend backend() const { return backend_; }

  std::size_t size() const { return size_; }

  /// Repositions `node` after its release time changed from `from` to `to`.
  /// `from` must be the node's currently indexed time (throws
  /// std::logic_error otherwise - a desynced index is a bug, not a state).
  /// Returns the reposition depth: how many entries were shifted to make
  /// room (the flat backend's memmove length; bucket-local shifts for the
  /// bucket backend). The cluster feeds it to the
  /// `rtdls_index_commit_depth` histogram.
  RTDLS_HOT std::size_t update(NodeId node, Time from, Time to);

  /// Number of nodes with free_at <= t: the paper's AN(t) ("available
  /// nodes by t") quantity. O(log N).
  RTDLS_HOT std::size_t available_by(Time t) const;

  /// k-th smallest release time (0-based): the instant k+1 nodes are
  /// simultaneously available. k must be < size().
  RTDLS_HOT Time kth_free_time(std::size_t k) const;

  /// Writes the sorted availability snapshot floored at `now` into `out`:
  /// bit-identical to sorting max(free_at, now) over all nodes, without the
  /// sort (the floored prefix collapses to `now`; the rest is already
  /// ordered). O(N) copy.
  RTDLS_HOT void availability_into(Time now, std::vector<Time>& out) const;

  /// Same snapshot plus the matching node ids (ids[i] owns times[i]),
  /// strictly ordered by (floored time, id): the floored prefix all ties at
  /// `now`, so its ids are re-sorted ascending - the same order a pair sort
  /// of (max(free_at, now), id) would produce. The heterogeneous planning
  /// path consumes this: the id column is what lets rules look up per-node
  /// cps and record the concrete nodes their alpha was computed for, and
  /// the strict (time, id) order is the invariant the admission session's
  /// functional state evolution preserves. O(N) plus the prefix id sort.
  RTDLS_HOT void availability_with_ids_into(Time now, std::vector<Time>& times,
                                  std::vector<NodeId>& ids) const;

  /// Ids of the `n` earliest-available nodes at `now`, ties broken by id:
  /// bit-identical to a stable sort of all ids by (max(free_at, now), id).
  /// Nodes already free at `now` all tie, so the floored prefix is reduced
  /// to its n smallest ids via a partial selection instead of a full sort.
  /// n must not exceed size().
  RTDLS_HOT void earliest_free_nodes_into(Time now, std::size_t n, std::vector<NodeId>& out) const;

  /// Debug/tests: true iff the invariants hold against the authoritative
  /// per-node release times (free_times[i] = node i's free_at()).
  bool consistent_with(const std::vector<Time>& free_times) const;

 private:
  static bool less(const Entry& a, const Entry& b) {
    if (a.free_at != b.free_at) return a.free_at < b.free_at;
    return a.node < b.node;
  }

  // --- flat backend ---------------------------------------------------------
  RTDLS_HOT std::size_t update_flat(NodeId node, Time from, Time to);

  // --- bucket backend -------------------------------------------------------
  RTDLS_HOT std::size_t update_bucket(NodeId node, Time from, Time to);
  /// Directory position of the last bucket whose minimum is <= `key`
  /// (npos when the key precedes every bucket).
  RTDLS_HOT std::size_t locate_bucket(const Entry& key) const;
  /// Rebuilds the per-bucket prefix-sum when an update invalidated it.
  RTDLS_HOT void ensure_prefix() const;
  /// Splits the oversized bucket at directory position `b` in two.
  RTDLS_HOT void split_bucket(std::size_t b);
  /// Removes the (empty) bucket at directory position `b`.
  RTDLS_HOT void drop_bucket(std::size_t b);
  /// Merges the undersized bucket at `b` into a neighbor when the combined
  /// size stays below the split threshold.
  RTDLS_HOT void maybe_merge(std::size_t b);
  /// Inserts `moved` at its ordered position; returns entries shifted.
  RTDLS_HOT std::size_t insert_bucket_entry(const Entry& moved);

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  /// Bucket geometry: reset() fills buckets to kTargetFanout; update()
  /// splits past kMaxFanout and merges neighbors whose combined size is at
  /// most kMergeMax once one of them shrinks below kMinFanout. kMergeMax <
  /// kMaxFanout keeps split/merge from ping-ponging on one hot boundary.
  static constexpr std::size_t kTargetFanout = 64;
  static constexpr std::size_t kMaxFanout = 128;
  static constexpr std::size_t kMinFanout = 16;
  static constexpr std::size_t kMergeMax = 96;

  IndexBackend backend_ = IndexBackend::kFlat;
  std::size_t size_ = 0;

  /// kFlat storage: all entries, sorted by (free_at, node).
  std::vector<Entry> entries_;

  /// kBucket storage. Buckets live in stable `slots_` (never reordered, so
  /// the hot path only ever grows members - the rtdls-hot-path-alloc
  /// contract); `order_[b]` is the slot of the b-th bucket in timeline
  /// order and `mins_[b]` mirrors that bucket's first entry for directory
  /// binary searches. Emptied slots are recycled through `free_slots_`
  /// keeping their capacity. `prefix_[b]` = entries in buckets [0, b),
  /// rebuilt lazily (mutable) because rank queries want it but updates
  /// would pay O(#buckets) each to keep it eager.
  std::vector<std::vector<Entry>> slots_;
  std::vector<std::uint32_t> order_;
  std::vector<Entry> mins_;
  std::vector<std::uint32_t> free_slots_;
  mutable std::vector<std::size_t> prefix_;
  mutable bool prefix_valid_ = false;
};

}  // namespace rtdls::cluster
