#include "cluster/node.hpp"

#include <stdexcept>

#include "util/fp.hpp"
namespace rtdls::cluster {

void Node::commit(TaskId task, Time usable_from, Time start, Time end) {
  if (end < start) throw std::invalid_argument("Node::commit: end before start");
  if (fp::before(start, free_at_)) {
    throw std::logic_error("Node::commit: overlapping commitment");
  }
  if (start > usable_from) idle_gap_time_ += start - usable_from;
  busy_time_ += end - start;
  free_at_ = end;
  current_task_ = task;
  ++commitments_;
}

void Node::release_early(Time at) {
  if (at > free_at_) {
    throw std::logic_error("Node::release_early: later than committed release");
  }
  busy_time_ -= free_at_ - at;
  free_at_ = at;
  current_task_ = kNoTask;
}

}  // namespace rtdls::cluster
