// The cluster model: N homogeneous processing nodes behind one head node.
//
// The scheduler plans against the *sorted vector of node release times*
// (nodes are interchangeable in the paper's model); the cluster maps an
// accepted plan onto concrete node ids and keeps per-node accounting.
#pragma once

#include <vector>

#include "cluster/availability_index.hpp"
#include "cluster/node.hpp"
#include "cluster/types.hpp"

namespace rtdls::cluster {

/// Availability snapshot used by planning: release times of all N nodes,
/// floored at `now` and sorted ascending, so `times[k-1]` is the instant at
/// which k nodes are simultaneously available (and also the available time
/// r_k of the k-th earliest node for IIT-utilizing partitioning).
///
/// Under a heterogeneous speed profile the snapshot additionally carries
/// which node sits at each position and its unit processing cost: `ids[i]`
/// owns `times[i]` and costs `cps[i]`, strictly ordered by (time, id). The
/// id/cps columns are empty for homogeneous clusters, where positions are
/// interchangeable.
struct AvailabilityView {
  Time now = 0.0;
  std::vector<Time> times;   ///< sorted ascending, size N
  std::vector<NodeId> ids;   ///< het only: node at each position
  std::vector<double> cps;   ///< het only: unit processing cost per position
};

/// Mutable cluster state.
class Cluster {
 public:
  explicit Cluster(ClusterParams params);

  const ClusterParams& params() const { return params_; }
  std::size_t size() const { return nodes_.size(); }

  const Node& node(NodeId id) const { return nodes_.at(id); }

  /// Monotonic availability version: bumped by every mutation of any node's
  /// release time (commit, early release, reset). An unchanged version
  /// guarantees an unchanged availability snapshot for any `now` at or
  /// before the earliest node release, which lets the incremental admission
  /// path skip rebuilding and re-planning entirely.
  std::uint64_t version() const { return version_; }

  /// Returns every node to the initial idle state, keeping allocations
  /// (back-to-back sweep cells reuse one cluster instead of reconstructing).
  void reset();

  /// Builds the availability snapshot at time `now`.
  AvailabilityView availability(Time now) const;

  /// Same snapshot written into `out` (capacity reused; hot path). Served
  /// from the sorted free-time index: an O(N) copy, no per-call sort.
  void availability_into(Time now, std::vector<Time>& out) const;

  /// Snapshot plus the owning node ids in strict (time, id) order - the
  /// heterogeneous planning/admission input (see
  /// AvailabilityIndex::availability_with_ids_into).
  void availability_with_ids_into(Time now, std::vector<Time>& times,
                                  std::vector<NodeId>& ids) const;

  /// Ids of the `n` earliest-available nodes at `now` (ties broken by id so
  /// commitments are deterministic). `n` must not exceed size().
  std::vector<NodeId> earliest_free_nodes(Time now, std::size_t n) const;

  /// Same, written into `out` (capacity reused; hot path).
  void earliest_free_nodes_into(Time now, std::size_t n, std::vector<NodeId>& out) const;

  /// Commits node `id` to `task` over [start, end); see Node::commit for
  /// the `usable_from` IIT-accounting parameter.
  void commit(NodeId id, TaskId task, Time usable_from, Time start, Time end);

  /// Releases node `id` early at `at` (actual completion before estimate).
  void release_early(NodeId id, Time at);

  /// Restores node `id` to an exact snapshot state (service-layer crash
  /// recovery): release time and accounting are taken verbatim, the sorted
  /// index is repositioned, and the availability version is bumped so any
  /// admission session standing on the old state invalidates.
  void restore_node(NodeId id, Time free_at, Time busy_time, Time idle_gap_time,
                    std::size_t commitments);

  /// Totals across nodes, for utilization / IIT reports.
  Time total_busy_time() const;
  Time total_idle_gap_time() const;

  /// The sorted free-time index backing the availability reads; exposed for
  /// rank queries (AvailabilityIndex::available_by / kth_free_time) and the
  /// index-consistency tests.
  const AvailabilityIndex& index() const { return index_; }

  /// The index storage backend this cluster resolved at construction
  /// (params().index_backend with kAuto resolved; see resolve_index_backend).
  IndexBackend index_backend() const { return index_.backend(); }

  /// Debug/tests: true iff the index invariants hold against every node's
  /// authoritative free_at().
  bool index_consistent() const;

 private:
  ClusterParams params_;
  std::vector<Node> nodes_;
  AvailabilityIndex index_;
  std::uint64_t version_ = 0;
};

}  // namespace rtdls::cluster
