// Homogeneous-cluster DLT results from the prior work [22] (Lin et al.,
// RTSS'07) that this paper builds on and compares against:
//
//  * the optimal single-round partition when all n nodes start at the same
//    time (geometric fractions alpha_i ~ beta^{i-1}), and
//  * the resulting execution time
//        E(sigma, n) = (1-beta)/(1-beta^n) * sigma * (Cms + Cps),
//    which the paper reuses both as the OPR-MN baseline cost and as the "E"
//    input of the heterogeneous model construction (Eq. 1).
#pragma once

#include <cstddef>
#include <vector>

#include "dlt/params.hpp"

namespace rtdls::dlt {

/// E(sigma, n): execution time of load `sigma` on `n` simultaneously
/// allocated homogeneous nodes under the optimal DLT partition.
/// Requires sigma >= 0 and 1 <= n.
double homogeneous_execution_time(const ClusterParams& params, double sigma, std::size_t n);

/// Optimal homogeneous partition fractions: alpha_i = beta^{i-1} * alpha_1
/// with alpha_1 = (1-beta)/(1-beta^n). Sum is 1 by construction.
std::vector<double> homogeneous_partition(const ClusterParams& params, std::size_t n);

/// Same kernel writing into `out` (capacity reused; the planning rules call
/// this once per accepted plan and must not allocate per call).
void homogeneous_partition_into(const ClusterParams& params, std::size_t n,
                                std::vector<double>& out);

/// Limit of E(sigma, n) as n -> infinity: sigma * Cms (pure transmission).
/// No finite n can beat this; useful for feasibility pre-checks.
double homogeneous_execution_time_limit(const ClusterParams& params, double sigma);

/// Verifies the DLT optimality invariant for a homogeneous partition: every
/// node finishes at the same instant. Returns the maximum absolute finish
/// skew (0 for the optimal partition, up to rounding).
double homogeneous_finish_skew(const ClusterParams& params, double sigma,
                               const std::vector<double>& alpha);

}  // namespace rtdls::dlt
