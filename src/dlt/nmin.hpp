// The n_min machinery of Section 4.1.1 B: the minimum (OPR-MN, exact under
// the no-IIT cost model) / upper-bound-minimum (DLT-IIT, Eq. 8-14) number of
// nodes needed to meet a deadline when the task starts at r_n.
//
//   beta  = Cps / (Cms + Cps)                       (Eq. 8)
//   gamma = 1 - sigma*Cms / (A + D - r_n)           (Eq. 14)
//   n_min_tilde = ceil(ln gamma / ln beta)
//
// Rejection cases (the paper's two explicit branches):
//   A + D - r_n <= 0  -> kDeadlinePassed
//   gamma      <= 0   -> kTransmissionTooLong
#pragma once

#include <cstddef>

#include "dlt/params.hpp"

namespace rtdls::dlt {

/// Result of an n_min computation.
struct NminResult {
  Infeasibility reason = Infeasibility::kNone;  ///< kNone when `nodes` is valid
  std::size_t nodes = 0;                        ///< n_min_tilde; >= 1 when feasible

  bool feasible() const { return reason == Infeasibility::kNone; }
};

/// Computes n_min_tilde for a task with data size `sigma` and absolute
/// deadline `abs_deadline`, assuming the task's last node becomes available
/// at `rn`. The same closed form serves both
///   * OPR-MN: the minimal n with rn + E(sigma,n) <= deadline (exact under
///     the homogeneous no-IIT model), and
///   * DLT-IIT: an upper bound n_min_tilde >= n_min that still guarantees
///     the deadline because E_hat <= E (Eq. 9).
/// The returned node count is NOT clamped to the cluster size; callers
/// compare against N and report kNeedsMoreNodes themselves (they know how
/// many nodes could be offered).
NminResult minimum_nodes(const ClusterParams& params, double sigma,
                         Time abs_deadline, Time rn);

/// Feasibility check used at task-admission edges: the largest load a
/// cluster of N nodes can finish within `window` time units when started
/// immediately (inverse of E(sigma, N) <= window).
double max_feasible_sigma(const ClusterParams& params, std::size_t n, Time window);

}  // namespace rtdls::dlt
