// User-Split partitioning (Section 4.1.2): the "current practice" baseline
// where a user manually splits a task into n equal subtasks, n drawn by the
// user from [N_min, N].
//
//   N_min = ceil( sigma*Cps / (D - sigma*Cms) )
//   C_i(sigma, n) = s_i + sigma*Cms/n + sigma*Cps/n
//   s_1 = r_1,  s_i = max(r_i, s_{i-1} + sigma*Cms/n)      (Eq. 15 context)
//   C(sigma, n) = s_n + sigma*Cms/n + sigma*Cps/n          (Eq. 15)
//
// Unlike DLT partitioning, chunks are equal-sized, so the sequential
// distribution channel (not the computation) shapes the start times; the
// method still uses IITs because node i starts as soon as it is both free
// and reached by the channel.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dlt/params.hpp"

namespace rtdls::dlt {

/// N_min for user-split: the minimum node count that meets the relative
/// deadline when the task starts immediately on arrival. Returns nullopt
/// when no finite node count works (D <= sigma*Cms).
std::optional<std::size_t> user_split_min_nodes(const ClusterParams& params,
                                                double sigma, Time rel_deadline);

/// Per-node schedule of an equal split over nodes available at `available`
/// (sorted ascending internally).
struct UserSplitSchedule {
  std::vector<Time> available;     ///< r_i, sorted
  std::vector<Time> start;         ///< s_i: when node i's transmission starts
  std::vector<Time> completion;    ///< C_i = s_i + chunk*(Cms+Cps)
  double chunk = 0.0;              ///< sigma / n

  /// Task completion time C(sigma, n) = completion of the last node.
  Time task_completion() const { return completion.empty() ? 0.0 : completion.back(); }
};

/// Builds the equal-split schedule for load `sigma` over the given node
/// available times. Preconditions: valid params, sigma > 0, >= 1 node.
UserSplitSchedule build_user_split_schedule(const ClusterParams& params, double sigma,
                                            std::vector<Time> available);

}  // namespace rtdls::dlt
