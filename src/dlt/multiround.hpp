// Multi-round (multi-installment) divisible load scheduling - the paper's
// stated future-work direction (Section 6): "by adopting multi-round
// scheduling [10], we can further improve the IITs utilization".
//
// This module implements a uniform multi-installment heuristic on top of the
// heterogeneous-model partitioner: the load is divided into R installments
// of sigma/R; each installment is DLT-partitioned against the nodes'
// availability after the previous installment, and the full timeline
// (sequential single-channel transmissions, per-node computation) is rolled
// out explicitly so the completion estimate is exact by construction rather
// than an upper bound.
//
// This is an EXTENSION beyond the paper's evaluated algorithms; see
// bench/ablation_multiround for its measured effect.
#pragma once

#include <cstddef>
#include <vector>

#include "dlt/params.hpp"

namespace rtdls::dlt {

/// Timeline of one installment.
struct RoundPlan {
  std::vector<double> alpha;     ///< fractions of the *installment* load
  std::vector<Time> tx_start;    ///< per node, when its chunk starts transmitting
  std::vector<Time> completion;  ///< per node, when its chunk finishes computing
};

/// Full multi-round schedule.
struct MultiRoundSchedule {
  std::vector<Time> initial_available;  ///< r_i, sorted ascending
  std::vector<RoundPlan> rounds;
  std::vector<Time> node_completion;    ///< per node, completion of its last chunk
  Time channel_busy_until = 0.0;        ///< end of the last installment transmission

  /// Exact task completion time (max over nodes, last round).
  Time task_completion() const;
};

/// Builds a multi-round schedule for load `sigma` over nodes available at
/// `available`, using `rounds` uniform installments. rounds == 1 degenerates
/// to the single-round heterogeneous-model schedule (with the exact timeline
/// instead of the r_n + E_hat upper bound).
///
/// `channel_available`: earliest time the head node's link may serve this
/// task. Planning assumes a dedicated channel (0); the shared-link execution
/// rollout passes the global channel-free time so installments wait for the
/// link instead of double-booking it.
/// Preconditions: valid params, sigma > 0, >= 1 node, rounds >= 1.
MultiRoundSchedule build_multiround_schedule(const ClusterParams& params, double sigma,
                                             std::vector<Time> available,
                                             std::size_t rounds,
                                             Time channel_available = 0.0);

}  // namespace rtdls::dlt
