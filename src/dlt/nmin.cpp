#include "dlt/nmin.hpp"

#include <cmath>
#include <stdexcept>
#include "util/fp.hpp"

namespace rtdls::dlt {

NminResult minimum_nodes(const ClusterParams& params, double sigma,
                         Time abs_deadline, Time rn) {
  if (!params.valid()) throw std::invalid_argument("minimum_nodes: invalid cluster params");
  if (!(sigma > 0.0)) throw std::invalid_argument("minimum_nodes: sigma must be > 0");

  NminResult result;
  const Time slack = abs_deadline - rn;
  if (slack <= 0.0) {
    result.reason = Infeasibility::kDeadlinePassed;
    return result;
  }
  const double gamma = 1.0 - sigma * params.cms / slack;
  if (gamma <= 0.0) {
    // Even pure transmission (the n -> infinity limit of E) misses.
    result.reason = Infeasibility::kTransmissionTooLong;
    return result;
  }
  const double beta = params.beta();
  // 0 < beta < 1 and 0 < gamma < 1, so the ratio is positive and finite.
  const double raw = std::log(gamma) / std::log(beta);
  double n = std::ceil(raw);
  // Guard against raw being an exact integer nudged up by rounding: accept
  // n-1 when it still satisfies beta^(n-1) <= gamma within one ulp-ish slack.
  if (n >= 2.0 && fp::le_rel(std::pow(beta, n - 1.0), gamma)) {
    n -= 1.0;
  }
  if (n < 1.0) n = 1.0;
  result.nodes = static_cast<std::size_t>(n);
  return result;
}

double max_feasible_sigma(const ClusterParams& params, std::size_t n, Time window) {
  if (!params.valid()) throw std::invalid_argument("max_feasible_sigma: invalid params");
  if (n == 0) throw std::invalid_argument("max_feasible_sigma: n must be >= 1");
  if (!(window > 0.0)) return 0.0;
  // E(sigma, n) = K(n) * sigma with K(n) = (1-beta)/(1-beta^n)*(Cms+Cps);
  // invert the linear relation.
  const double beta = params.beta();
  const double log_beta = std::log(beta);
  const double one_minus_beta_n = -std::expm1(static_cast<double>(n) * log_beta);
  const double k = (params.cms / (params.cms + params.cps)) / one_minus_beta_n *
                   (params.cms + params.cps);
  return window / k;
}

}  // namespace rtdls::dlt
