#include "dlt/het_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "dlt/homogeneous.hpp"

namespace rtdls::dlt {

std::vector<double> general_het_alpha(double cms, const std::vector<double>& cps_i) {
  std::vector<double> alpha;
  general_het_alpha_into(cms, cps_i, alpha);
  return alpha;
}

void general_het_alpha_into(double cms, const std::vector<double>& cps_i,
                            std::vector<double>& out) {
  general_het_alpha_into(cms, cps_i, cps_i.size(), out);
}

void general_het_alpha_into(double cms, const std::vector<double>& cps_i, std::size_t n,
                            std::vector<double>& out) {
  if (!(cms > 0.0)) throw std::invalid_argument("general_het_alpha: cms must be > 0");
  if (n == 0 || n > cps_i.size()) {
    throw std::invalid_argument("general_het_alpha: need 1 <= n <= cps_i.size()");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!(cps_i[i] > 0.0)) throw std::invalid_argument("general_het_alpha: cps_i must be > 0");
  }
  // out[i] = prod_{j=2..i+1} X_j with X_j = cps_{j-1} / (cms + cps_j).
  out.assign(n, 0.0);
  out[0] = 1.0;
  double denom = 1.0;
  for (std::size_t i = 1; i < n; ++i) {
    out[i] = out[i - 1] * (cps_i[i - 1] / (cms + cps_i[i]));
    denom += out[i];
  }
  for (double& p : out) p /= denom;
}

double general_het_execution_time(double cms, const std::vector<double>& cps_i,
                                  double sigma) {
  if (!(sigma >= 0.0)) {
    throw std::invalid_argument("general_het_execution_time: sigma must be >= 0");
  }
  if (!(cms > 0.0)) throw std::invalid_argument("general_het_alpha: cms must be > 0");
  const std::size_t n = cps_i.size();
  if (n == 0) throw std::invalid_argument("general_het_alpha: need 1 <= n <= cps_i.size()");
  for (std::size_t i = 0; i < n; ++i) {
    if (!(cps_i[i] > 0.0)) throw std::invalid_argument("general_het_alpha: cps_i must be > 0");
  }
  // Only alpha_n = p_n / sum p_i is needed: stream the recurrence without
  // storing the products. Same accumulation order as general_het_alpha_into,
  // so the result is bit-identical to the allocating path it replaces.
  double p = 1.0;
  double denom = 1.0;
  for (std::size_t i = 1; i < n; ++i) {
    p = p * (cps_i[i - 1] / (cms + cps_i[i]));
    denom += p;
  }
  return sigma * cms + (p / denom) * sigma * cps_i.back();
}

void AlphaRecurrence::reset(double cms) {
  if (!(cms > 0.0)) throw std::invalid_argument("AlphaRecurrence: cms must be > 0");
  cms_ = cms;
  denom_ = 1.0;
  last_cps_ = 0.0;
  products_.clear();
}

void AlphaRecurrence::extend(double cps) {
  if (!(cps > 0.0)) throw std::invalid_argument("AlphaRecurrence: cps must be > 0");
  if (products_.empty()) {
    products_.push_back(1.0);
  } else {
    const double p = products_.back() * (last_cps_ / (cms_ + cps));
    products_.push_back(p);
    denom_ += p;
  }
  last_cps_ = cps;
}

void AlphaRecurrence::materialize(std::vector<double>& out) const {
  out.resize(products_.size());
  for (std::size_t i = 0; i < products_.size(); ++i) out[i] = products_[i] / denom_;
}

HetPartition build_het_partition(const ClusterParams& params, double sigma,
                                 std::vector<Time> available) {
  std::sort(available.begin(), available.end());
  HetPartition out;
  build_het_partition_into(params, sigma, available, available.size(), out);
  return out;
}

void build_het_partition_into(const ClusterParams& params, double sigma,
                              const std::vector<Time>& available, std::size_t n,
                              HetPartition& out) {
  if (!params.valid()) throw std::invalid_argument("het_partition: invalid cluster params");
  if (!(sigma > 0.0)) throw std::invalid_argument("het_partition: sigma must be > 0");
  if (n == 0 || n > available.size()) {
    throw std::invalid_argument("het_partition: need 1 <= n <= available nodes");
  }
  assert(std::is_sorted(available.begin(),
                        available.begin() + static_cast<std::ptrdiff_t>(n)) &&
         "build_het_partition_into: available times must be sorted ascending");

  out.available.assign(available.begin(),
                       available.begin() + static_cast<std::ptrdiff_t>(n));
  const Time rn = out.available.back();
  out.homogeneous_time = homogeneous_execution_time(params, sigma, n);

  // Eq. (1): the earlier a node frees, the "faster" its model counterpart.
  // E + rn - ri >= E > 0, so cps_i is well defined and <= Cps.
  const double e_no_iit = out.homogeneous_time;
  out.cps_i.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.cps_i[i] = e_no_iit / (e_no_iit + (rn - out.available[i])) * params.cps;
  }

  // Eq. (4)-(5): the general heterogeneous kernel on the constructed costs.
  general_het_alpha_into(params.cms, out.cps_i, out.alpha);

  // Eq. (6): E_hat = sigma*Cms + alpha_n*sigma*Cps (Cps_n == Cps since
  // r_n - r_n = 0).
  out.execution_time = sigma * params.cms + out.alpha.back() * sigma * params.cps;
}

void build_het_partition_into(const ClusterParams& params, double sigma,
                              const std::vector<Time>& available,
                              const std::vector<double>& cps_actual, std::size_t n,
                              HetPartition& out) {
  if (!params.valid()) throw std::invalid_argument("het_partition: invalid cluster params");
  if (!(sigma > 0.0)) throw std::invalid_argument("het_partition: sigma must be > 0");
  if (n == 0 || n > available.size() || n > cps_actual.size()) {
    throw std::invalid_argument("het_partition: need 1 <= n <= offered nodes");
  }
  assert(std::is_sorted(available.begin(),
                        available.begin() + static_cast<std::ptrdiff_t>(n)) &&
         "build_het_partition_into: available times must be sorted ascending");

  out.available.assign(available.begin(),
                       available.begin() + static_cast<std::ptrdiff_t>(n));
  const Time rn = out.available.back();

  // E_ref: the no-IIT reference of the generalized Eq. (1) - all n nodes
  // allocated simultaneously at r_n with their actual speeds (out.alpha is
  // scratch here and overwritten with the final partition below).
  general_het_alpha_into(params.cms, cps_actual, n, out.alpha);
  const double e_ref = sigma * params.cms + out.alpha.back() * sigma * cps_actual[n - 1];
  out.homogeneous_time = e_ref;

  // Generalized Eq. (1): an earlier-freeing node's model counterpart is
  // faster in proportion to its head start. E_ref + (rn - ri) >= E_ref > 0.
  out.cps_i.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.cps_i[i] = e_ref / (e_ref + (rn - out.available[i])) * cps_actual[i];
  }

  general_het_alpha_into(params.cms, out.cps_i, n, out.alpha);

  // Eq. (6) analog: cps_tilde_n == cps_actual_n since r_n - r_n = 0.
  out.execution_time = sigma * params.cms + out.alpha.back() * sigma * cps_actual[n - 1];
}

std::vector<Time> theorem4_completion_bounds(const ClusterParams& params, double sigma,
                                             const HetPartition& partition) {
  const std::size_t n = partition.nodes();
  std::vector<Time> bounds(n);
  double transmission_prefix = 0.0;  // sum_{j<=i} alpha_j * sigma * Cms
  for (std::size_t i = 0; i < n; ++i) {
    transmission_prefix += partition.alpha[i] * sigma * params.cms;
    bounds[i] = transmission_prefix + partition.alpha[i] * sigma * params.cps +
                partition.available[i];
  }
  return bounds;
}

std::vector<Time> theorem4_completion_bounds(const ClusterParams& params, double sigma,
                                             const HetPartition& partition,
                                             const std::vector<double>& cps_actual) {
  const std::size_t n = partition.nodes();
  std::vector<Time> bounds(n);
  double transmission_prefix = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    transmission_prefix += partition.alpha[i] * sigma * params.cms;
    bounds[i] = transmission_prefix + partition.alpha[i] * sigma * cps_actual[i] +
                partition.available[i];
  }
  return bounds;
}

}  // namespace rtdls::dlt
