// Task-level vocabulary shared by the DLT math and the scheduler.
#pragma once

#include "cluster/types.hpp"

namespace rtdls::dlt {

using cluster::ClusterParams;
using cluster::Time;

/// The divisible-task tuple T = (A, sigma, D) from the paper's task model.
struct TaskSpec {
  Time arrival = 0.0;       ///< A: arrival time
  double sigma = 0.0;       ///< sigma: total data size
  Time rel_deadline = 0.0;  ///< D: relative deadline

  /// Absolute deadline A + D.
  Time absolute_deadline() const { return arrival + rel_deadline; }

  /// Basic sanity: positive load, positive deadline.
  bool valid() const { return sigma > 0.0 && rel_deadline > 0.0; }
};

/// Why a task cannot be scheduled at a proposed start time. Mirrors the two
/// rejection branches in the paper's n_min derivation (Section 4.1.1 B).
enum class Infeasibility {
  kNone = 0,
  kDeadlinePassed,       ///< A + D - rn <= 0: no time left at all
  kTransmissionTooLong,  ///< gamma <= 0: even pure transmission misses
  kNeedsMoreNodes,       ///< n_min exceeds the nodes that can be offered
};

/// Human-readable name for an Infeasibility value.
const char* infeasibility_name(Infeasibility reason);

}  // namespace rtdls::dlt
