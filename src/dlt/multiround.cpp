#include "dlt/multiround.hpp"

#include <algorithm>
#include <stdexcept>

#include "dlt/het_model.hpp"

namespace rtdls::dlt {

Time MultiRoundSchedule::task_completion() const {
  Time latest = 0.0;
  for (Time t : node_completion) latest = std::max(latest, t);
  return latest;
}

MultiRoundSchedule build_multiround_schedule(const ClusterParams& params, double sigma,
                                             std::vector<Time> available,
                                             std::size_t rounds,
                                             Time channel_available) {
  if (!params.valid()) throw std::invalid_argument("multiround: invalid cluster params");
  if (!(sigma > 0.0)) throw std::invalid_argument("multiround: sigma must be > 0");
  if (available.empty()) throw std::invalid_argument("multiround: need >= 1 node");
  if (rounds == 0) throw std::invalid_argument("multiround: rounds must be >= 1");

  std::sort(available.begin(), available.end());
  const std::size_t n = available.size();
  const double installment = sigma / static_cast<double>(rounds);

  MultiRoundSchedule schedule;
  schedule.initial_available = available;
  schedule.rounds.reserve(rounds);

  std::vector<Time> node_free = available;   // sorted each round below
  Time channel_free = channel_available;     // single sequential channel

  for (std::size_t r = 0; r < rounds; ++r) {
    std::sort(node_free.begin(), node_free.end());
    // Partition this installment with the heterogeneous-model rule against
    // the nodes' current availability; the partition shape is the heuristic,
    // the rolled-out timeline below is exact.
    const HetPartition part = build_het_partition(params, installment, node_free);

    RoundPlan plan;
    plan.alpha = part.alpha;
    plan.tx_start.resize(n);
    plan.completion.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double tx = part.alpha[i] * installment * params.cms;
      const double compute = part.alpha[i] * installment * params.cps;
      const Time start = std::max(part.available[i], channel_free);
      channel_free = start + tx;
      plan.tx_start[i] = start;
      plan.completion[i] = channel_free + compute;
      node_free[i] = plan.completion[i];
    }
    schedule.rounds.push_back(std::move(plan));
  }
  schedule.node_completion = node_free;
  schedule.channel_busy_until = channel_free;
  return schedule;
}

}  // namespace rtdls::dlt
