#include "dlt/homogeneous.hpp"

#include <cmath>
#include <stdexcept>

namespace rtdls::dlt {

namespace {
void check_inputs(const ClusterParams& params, double sigma, std::size_t n) {
  if (!params.valid()) throw std::invalid_argument("homogeneous: invalid cluster params");
  if (!(sigma >= 0.0)) throw std::invalid_argument("homogeneous: sigma must be >= 0");
  if (n == 0) throw std::invalid_argument("homogeneous: n must be >= 1");
}
}  // namespace

double homogeneous_execution_time(const ClusterParams& params, double sigma, std::size_t n) {
  check_inputs(params, sigma, n);
  const double beta = params.beta();
  // (1 - beta) / (1 - beta^n), evaluated stably: for beta close to 1 (large
  // Cps/Cms) use expm1/log1p to avoid catastrophic cancellation in 1-beta^n.
  const double log_beta = std::log(beta);
  const double one_minus_beta_n = -std::expm1(static_cast<double>(n) * log_beta);
  const double one_minus_beta = params.cms / (params.cms + params.cps);
  return one_minus_beta / one_minus_beta_n * sigma * (params.cms + params.cps);
}

std::vector<double> homogeneous_partition(const ClusterParams& params, std::size_t n) {
  std::vector<double> alpha;
  homogeneous_partition_into(params, n, alpha);
  return alpha;
}

void homogeneous_partition_into(const ClusterParams& params, std::size_t n,
                                std::vector<double>& out) {
  check_inputs(params, 1.0, n);
  const double beta = params.beta();
  const double log_beta = std::log(beta);
  const double one_minus_beta_n = -std::expm1(static_cast<double>(n) * log_beta);
  const double alpha1 = (params.cms / (params.cms + params.cps)) / one_minus_beta_n;

  out.resize(n);
  double current = alpha1;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = current;
    sum += current;
    current *= beta;
  }
  // Normalize away the accumulated floating-point drift so downstream code
  // can rely on sum(alpha) == 1 to machine precision.
  for (double& a : out) a /= sum;
}

double homogeneous_execution_time_limit(const ClusterParams& params, double sigma) {
  check_inputs(params, sigma, 1);
  return sigma * params.cms;
}

double homogeneous_finish_skew(const ClusterParams& params, double sigma,
                               const std::vector<double>& alpha) {
  if (alpha.empty()) throw std::invalid_argument("finish_skew: empty partition");
  double transmission_end = 0.0;
  double first_finish = 0.0;
  double min_finish = 0.0;
  double max_finish = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    transmission_end += alpha[i] * sigma * params.cms;
    const double finish = transmission_end + alpha[i] * sigma * params.cps;
    if (i == 0) {
      first_finish = min_finish = max_finish = finish;
    } else {
      min_finish = std::min(min_finish, finish);
      max_finish = std::max(max_finish, finish);
    }
  }
  (void)first_finish;
  return max_finish - min_finish;
}

}  // namespace rtdls::dlt
