#include "dlt/user_split.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rtdls::dlt {

std::optional<std::size_t> user_split_min_nodes(const ClusterParams& params,
                                                double sigma, Time rel_deadline) {
  if (!params.valid()) throw std::invalid_argument("user_split_min_nodes: invalid params");
  if (!(sigma > 0.0)) throw std::invalid_argument("user_split_min_nodes: sigma must be > 0");
  const double denom = rel_deadline - sigma * params.cms;
  if (denom <= 0.0) return std::nullopt;  // even infinite nodes cannot help
  const double raw = sigma * params.cps / denom;
  std::size_t n = static_cast<std::size_t>(std::ceil(raw));
  return std::max<std::size_t>(n, 1);
}

UserSplitSchedule build_user_split_schedule(const ClusterParams& params, double sigma,
                                            std::vector<Time> available) {
  if (!params.valid()) throw std::invalid_argument("user_split_schedule: invalid params");
  if (!(sigma > 0.0)) throw std::invalid_argument("user_split_schedule: sigma must be > 0");
  if (available.empty()) throw std::invalid_argument("user_split_schedule: need >= 1 node");

  std::sort(available.begin(), available.end());
  const std::size_t n = available.size();

  UserSplitSchedule schedule;
  schedule.available = std::move(available);
  schedule.chunk = sigma / static_cast<double>(n);
  schedule.start.resize(n);
  schedule.completion.resize(n);

  const double tx = schedule.chunk * params.cms;
  const double compute = schedule.chunk * params.cps;
  for (std::size_t i = 0; i < n; ++i) {
    // s_1 = r_1; s_i = max(r_i, s_{i-1} + chunk*Cms): node i cannot start
    // before it is free, nor before the head node finished transmitting the
    // previous chunks over the single channel.
    const Time channel_free = (i == 0) ? schedule.available[0] : schedule.start[i - 1] + tx;
    schedule.start[i] = std::max(schedule.available[i], channel_free);
    schedule.completion[i] = schedule.start[i] + tx + compute;
  }
  return schedule;
}

}  // namespace rtdls::dlt
