// Output-data (result collection) extension.
//
// The paper's system model transfers only input data, noting that "the
// extension to consider the transfer of output data using DLT is
// straightforward" (Section 3). This module makes that extension concrete:
// each task additionally returns delta * sigma units of result data
// (delta = output/input ratio), transmitted node-by-node back through the
// same sequential channel after each node finishes computing.
//
// For admission control we need an upper bound on the completion time with
// results. Let T0 = r_n + E_hat be the input-phase bound (Theorem 4): by T0
// every input transmission and every computation has finished, so at most
// delta * sigma * Cms of result-channel work can remain. Hence
//
//     completion_with_results <= T0 + delta * sigma * Cms
//
// which is the bound used by the *-IO scheduling rules. The exact rollout
// (results served in node-completion order) lives in sim/exec_model and is
// property-tested against this bound.
#pragma once

#include "dlt/params.hpp"

namespace rtdls::dlt {

/// Channel time needed to return the results of load `sigma` with
/// output/input ratio `delta` (>= 0).
double output_channel_time(const ClusterParams& params, double sigma, double delta);

/// Upper bound on the completion time with result collection, given the
/// input-phase completion bound `input_completion` (typically r_n + E_hat
/// for DLT-IIT plans or r_n + E for OPR plans).
Time output_completion_bound(const ClusterParams& params, double sigma, double delta,
                             Time input_completion);

/// The deadline available to the *input* phase once the result phase is
/// budgeted: abs_deadline - delta*sigma*Cms. Feeding this into the standard
/// n_min machinery (Eq. 8-14) yields a node count whose plan meets the real
/// deadline including results. Returns a value <= abs_deadline; may be
/// non-positive (task infeasible due to result volume alone).
Time input_phase_deadline(const ClusterParams& params, double sigma, double delta,
                          Time abs_deadline);

}  // namespace rtdls::dlt
