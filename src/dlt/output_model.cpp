#include "dlt/output_model.hpp"

#include <stdexcept>

namespace rtdls::dlt {

namespace {
void check(const ClusterParams& params, double sigma, double delta) {
  if (!params.valid()) throw std::invalid_argument("output_model: invalid cluster params");
  if (!(sigma >= 0.0)) throw std::invalid_argument("output_model: sigma must be >= 0");
  if (!(delta >= 0.0)) throw std::invalid_argument("output_model: delta must be >= 0");
}
}  // namespace

double output_channel_time(const ClusterParams& params, double sigma, double delta) {
  check(params, sigma, delta);
  return delta * sigma * params.cms;
}

Time output_completion_bound(const ClusterParams& params, double sigma, double delta,
                             Time input_completion) {
  return input_completion + output_channel_time(params, sigma, delta);
}

Time input_phase_deadline(const ClusterParams& params, double sigma, double delta,
                          Time abs_deadline) {
  return abs_deadline - output_channel_time(params, sigma, delta);
}

}  // namespace rtdls::dlt
