// The paper's first contribution (Section 4.1.1 A/B): casting n homogeneous
// nodes with *different available times* r_1 <= ... <= r_n into an
// equivalent heterogeneous model where all nodes are allocated at r_n, and
// partitioning the load on that model.
//
//   Cps_i = E / (E + r_n - r_i) * Cps          (Eq. 1)
//   Cms_i = Cms                                (Eq. 2)
//   X_i   = Cps_{i-1} / (Cms + Cps_i)          (i = 2..n)
//   alpha_i = alpha_1 * prod_{j=2..i} X_j,  sum alpha_i = 1   (Eq. 4, 5)
//   E_hat(sigma, n) = sigma*Cms + alpha_n*sigma*Cps           (Eq. 6)
//
// with E = E(sigma, n) the homogeneous no-IIT execution time. Eq. (9)
// guarantees E_hat <= E, and Theorem 4 guarantees that executing the
// resulting fractions on the real homogeneous cluster (node i starting at
// its own r_i, single sequential distribution channel) completes no later
// than r_n + E_hat.
#pragma once

#include <cstddef>
#include <vector>

#include "dlt/params.hpp"
#include "util/annotations.hpp"

namespace rtdls::dlt {

/// Optimal single-round DLT fractions for a *general* heterogeneous bus
/// cluster: n nodes allocated simultaneously, node i with unit processing
/// cost cps_i, shared sequential channel with unit cost cms (Eq. 3-5 with
/// arbitrary Cps_i). Returns alpha (sums to 1). This is both the inner
/// kernel of the paper's IIT transform and a standalone partitioner for
/// genuinely heterogeneous clusters.
std::vector<double> general_het_alpha(double cms, const std::vector<double>& cps_i);

/// Same kernel writing into `out` (capacity reused; the admission hot loop
/// plans thousands of tasks per run and must not reallocate per plan).
void general_het_alpha_into(double cms, const std::vector<double>& cps_i,
                            std::vector<double>& out);

/// Same kernel over the first `n` entries of `cps_i` only (the het planning
/// scan evaluates growing prefixes of the availability-ordered speeds).
void general_het_alpha_into(double cms, const std::vector<double>& cps_i, std::size_t n,
                            std::vector<double>& out);

/// Execution time of the general heterogeneous partition (Eq. 6 with
/// arbitrary Cps_i): sigma*cms + alpha_n*sigma*cps_n. Streams the recurrence
/// (only alpha_n is needed, and alpha_n = p_n / sum p_i over the
/// unnormalized prefix products), so the hot estimate path allocates
/// nothing; bit-identical to materializing the full alpha vector.
double general_het_execution_time(double cms, const std::vector<double>& cps_i,
                                  double sigma);

/// O(1)-extendable cursor over the Eq. (4)-(5) recurrence.
///
/// general_het_alpha_into evaluates, per call, the whole chain
///   p_1 = 1,  p_i = p_{i-1} * (cps_{i-1} / (cms + cps_i)),
///   alpha_i = p_i / sum_j p_j,
/// so a planner walking growing prefixes n = 1..N pays O(n) per candidate -
/// O(N^2) per task when every prefix is inspected. The cursor keeps the
/// unnormalized products and the running denominator instead: extending the
/// prefix by one node is a single divide/multiply/add, normalization is
/// deferred (alpha_last() divides once; only an accepted prefix pays the
/// O(n) materialize()). Every accumulation happens in the exact scan order
/// of general_het_alpha_into, so alpha_last() and materialize() are
/// bit-identical to the scalar kernel at every prefix length - the
/// differential property tests pin this across graded sizes.
class AlphaRecurrence {
 public:
  /// Starts an empty recurrence for channel cost `cms` (> 0). Reuses the
  /// product column's capacity, so resetting per plan allocates nothing in
  /// steady state.
  void reset(double cms);

  /// Appends the next node (unit cost `cps` > 0); O(1).
  RTDLS_HOT void extend(double cps);

  /// Number of nodes consumed so far.
  std::size_t size() const { return products_.size(); }

  /// alpha_n of the current prefix: the last unnormalized product over the
  /// running denominator - the exact division general_het_alpha_into
  /// performs when normalizing its last entry.
  RTDLS_HOT double alpha_last() const { return products_.back() / denom_; }

  /// Normalized alpha of the current prefix (general_het_alpha_into's
  /// output, bit for bit). O(n); intended for the one accepted prefix.
  void materialize(std::vector<double>& out) const;

 private:
  double cms_ = 1.0;
  double denom_ = 1.0;
  double last_cps_ = 0.0;
  std::vector<double> products_;  ///< unnormalized p_1..p_n
};

/// The constructed heterogeneous model plus the DLT partition on it.
struct HetPartition {
  std::vector<Time> available;   ///< r_1..r_n, sorted ascending
  std::vector<double> cps_i;     ///< per-node unit processing cost, Eq. (1)
  std::vector<double> alpha;     ///< load fractions, Eq. (4)-(5); sums to 1
  double execution_time = 0.0;   ///< E_hat(sigma, n), Eq. (6)
  double homogeneous_time = 0.0; ///< E(sigma, n): no-IIT reference (Eq. 9 RHS)

  std::size_t nodes() const { return alpha.size(); }

  /// Estimated completion time r_n + E_hat (Eq. 7).
  Time estimated_completion() const {
    return (available.empty() ? 0.0 : available.back()) + execution_time;
  }
};

/// Builds the heterogeneous model and its optimal DLT partition for load
/// `sigma` over nodes with available times `available` (will be sorted).
/// Preconditions: valid params, sigma > 0, at least one node.
HetPartition build_het_partition(const ClusterParams& params, double sigma,
                                 std::vector<Time> available);

/// Same construction over the first `n` entries of `available`, which must
/// already be sorted ascending (the admission controller's availability
/// state always is). Writes into `out` reusing its vectors' capacity.
void build_het_partition_into(const ClusterParams& params, double sigma,
                              const std::vector<Time>& available, std::size_t n,
                              HetPartition& out);

/// Generalized Eq. (1) for a genuinely heterogeneous cluster: the offered
/// nodes have *actual* unit costs `cps_actual[i]` (aligned with `available`,
/// both availability-ordered, first `n` entries used). The construction
/// replaces the homogeneous reference E with
///   E_ref = no-IIT het execution time (all n allocated at r_n with their
///           actual speeds; Eq. 3-6 on cps_actual), and
///   cps_tilde_i = E_ref / (E_ref + (r_n - r_i)) * cps_actual_i,
/// then partitions with general_het_alpha on cps_tilde and estimates
///   E_hat = sigma*Cms + alpha_n*sigma*cps_actual_n   (cps_tilde_n == actual).
/// The Theorem-4 argument survives verbatim (cps_tilde_i <= cps_actual_i and
/// E_hat <= E_ref by speed monotonicity), so executing alpha on the real
/// nodes - each starting at its own r_i at its actual speed - completes no
/// later than r_n + E_hat; the simulator validates this for every commit.
/// out.homogeneous_time holds E_ref, out.cps_i the equivalent costs.
void build_het_partition_into(const ClusterParams& params, double sigma,
                              const std::vector<Time>& available,
                              const std::vector<double>& cps_actual, std::size_t n,
                              HetPartition& out);

/// Upper bound on node i's *actual* completion time in the homogeneous
/// cluster (proof of Theorem 4):
///   t_act_i <= sum_{j<=i} alpha_j*sigma*Cms + alpha_i*sigma*Cps + r_i.
/// Returns the bound for every node. All entries are <= estimated_completion
/// (the theorem; validated by tests and by the simulator's exec model).
std::vector<Time> theorem4_completion_bounds(const ClusterParams& params, double sigma,
                                             const HetPartition& partition);

/// Generalized bound for a genuinely heterogeneous partition: node i's
/// actual completion is at most
///   sum_{j<=i} alpha_j*sigma*Cms + alpha_i*sigma*cps_actual_i + r_i.
std::vector<Time> theorem4_completion_bounds(const ClusterParams& params, double sigma,
                                             const HetPartition& partition,
                                             const std::vector<double>& cps_actual);

}  // namespace rtdls::dlt
