#include "dlt/params.hpp"

namespace rtdls::dlt {

const char* infeasibility_name(Infeasibility reason) {
  switch (reason) {
    case Infeasibility::kNone: return "none";
    case Infeasibility::kDeadlinePassed: return "deadline-passed";
    case Infeasibility::kTransmissionTooLong: return "transmission-too-long";
    case Infeasibility::kNeedsMoreNodes: return "needs-more-nodes";
  }
  return "unknown";
}

}  // namespace rtdls::dlt
