#include "sim/event_queue.hpp"

// Header-only template; this translation unit anchors the target.
