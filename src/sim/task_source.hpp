// Arrival sources for the simulator's merged event loop.
//
// The event loop only ever needs the *next* arrival (the trace is sorted),
// so it consumes tasks through this cursor interface instead of a
// materialized vector. Two implementations:
//
//  * VectorTaskSource - adapts the classic in-memory trace; run() wraps
//    every call in one of these, so the vector path is the streamed path
//    with a trivial source.
//
//  * StreamingTaskSource - pulls bounded-size chunks from a
//    workload::TraceReader, so a multi-million-task CSV replays at O(chunk)
//    peak RSS. Lifetime is the subtle part: the simulator (waiting entries,
//    commit events, the admission session) holds `const Task*` pointers
//    into the chunks, so a chunk may only be recycled once every task it
//    contains has retired. The source refcounts admissions per chunk
//    (admitted/retired callbacks from the event loop) and retires fully
//    drained front chunks into a recycled-vector pool - steady-state
//    streaming allocates nothing once chunk capacity has been grown.
//
// Contract for every source:
//  * peek() returns the next arrival (or nullptr at end of trace); the
//    pointer stays stable until the pop() that consumes it, and - when the
//    loop admits the task and announces it via on_task_admitted - until the
//    matching on_task_retired;
//  * pop() consumes the peeked task; peek()/pop() never invalidate
//    pointers of previously admitted, not-yet-retired tasks;
//  * arrivals must be non-decreasing (the loop enforces this on the fly,
//    since a streamed trace cannot be pre-checked).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "workload/task.hpp"
#include "workload/trace.hpp"

namespace rtdls::sim {

class TaskSource {
 public:
  virtual ~TaskSource() = default;

  /// Next task in arrival order, or nullptr once the trace is exhausted.
  virtual const workload::Task* peek() = 0;

  /// Consumes the task last returned by peek().
  virtual void pop() = 0;

  /// The event loop admitted `task`: its pointer must stay valid until the
  /// matching on_task_retired. (Rejected tasks are simply popped.)
  virtual void on_task_admitted(const workload::Task* task);

  /// The admitted `task` committed and left the waiting queue for good; its
  /// storage may be reclaimed.
  virtual void on_task_retired(const workload::Task* task);
};

/// The whole trace is already in memory; peek/pop walk it.
class VectorTaskSource final : public TaskSource {
 public:
  /// `tasks` must outlive the source.
  explicit VectorTaskSource(const std::vector<workload::Task>& tasks) : tasks_(&tasks) {}

  const workload::Task* peek() override {
    return next_ < tasks_->size() ? &(*tasks_)[next_] : nullptr;
  }
  void pop() override { ++next_; }

 private:
  const std::vector<workload::Task>* tasks_;
  std::size_t next_ = 0;
};

/// Chunked arrivals from a TraceReader (see the file comment for the
/// lifetime contract).
class StreamingTaskSource final : public TaskSource {
 public:
  /// `reader` must outlive the source.
  explicit StreamingTaskSource(workload::TraceReader& reader) : reader_(&reader) {}

  const workload::Task* peek() override;
  void pop() override;
  void on_task_admitted(const workload::Task* task) override;
  void on_task_retired(const workload::Task* task) override;

  /// Peak number of simultaneously resident tasks across all live chunks -
  /// the bounded-memory claim's direct observable (reported by
  /// bench/replay_storm).
  std::size_t peak_resident_tasks() const { return peak_resident_; }

  /// Chunks currently held live (>= 1 while tasks are outstanding).
  std::size_t live_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::vector<workload::Task> tasks;
    std::size_t outstanding = 0;  ///< admitted, not yet retired
  };

  /// The chunk owning `task`, found by pointer-range membership (the deque
  /// is short: old chunks retire as their tasks drain).
  Chunk& chunk_of(const workload::Task* task);

  /// Recycles fully drained front chunks (never the cursor's own chunk).
  void retire_drained_front();

  workload::TraceReader* reader_;
  std::deque<Chunk> chunks_;  ///< back() is the chunk the cursor walks
  std::size_t cursor_ = 0;    ///< next unconsumed task within chunks_.back()
  bool exhausted_ = false;
  std::vector<std::vector<workload::Task>> pool_;  ///< recycled chunk storage
  std::size_t resident_ = 0;
  std::size_t peak_resident_ = 0;
};

}  // namespace rtdls::sim
