#include "sim/task_source.hpp"

#include <stdexcept>
#include <utility>

namespace rtdls::sim {

void TaskSource::on_task_admitted(const workload::Task*) {}
void TaskSource::on_task_retired(const workload::Task*) {}

const workload::Task* StreamingTaskSource::peek() {
  if (!chunks_.empty() && cursor_ < chunks_.back().tasks.size()) {
    return &chunks_.back().tasks[cursor_];
  }
  if (exhausted_) return nullptr;
  // The cursor drained its chunk; that chunk stays parked in the deque
  // until its admitted tasks retire, and the cursor moves to a fresh one.
  // Loading happens here - never inside pop() - so the pointer returned by
  // the previous peek() stayed valid through its whole arrival handling.
  retire_drained_front();
  Chunk next;
  if (!pool_.empty()) {
    next.tasks = std::move(pool_.back());
    pool_.pop_back();
  }
  if (!reader_->next_chunk(next.tasks)) {
    exhausted_ = true;
    pool_.push_back(std::move(next.tasks));
    return nullptr;
  }
  resident_ += next.tasks.size();
  peak_resident_ = std::max(peak_resident_, resident_);
  chunks_.push_back(std::move(next));
  cursor_ = 0;
  return &chunks_.back().tasks[0];
}

void StreamingTaskSource::pop() {
  if (chunks_.empty() || cursor_ >= chunks_.back().tasks.size()) {
    throw std::logic_error("StreamingTaskSource::pop: nothing peeked");
  }
  ++cursor_;
}

StreamingTaskSource::Chunk& StreamingTaskSource::chunk_of(const workload::Task* task) {
  for (Chunk& chunk : chunks_) {
    if (!chunk.tasks.empty() && task >= chunk.tasks.data() &&
        task < chunk.tasks.data() + chunk.tasks.size()) {
      return chunk;
    }
  }
  throw std::logic_error("StreamingTaskSource: task does not belong to any live chunk");
}

void StreamingTaskSource::on_task_admitted(const workload::Task* task) {
  ++chunk_of(task).outstanding;
}

void StreamingTaskSource::on_task_retired(const workload::Task* task) {
  Chunk& chunk = chunk_of(task);
  if (chunk.outstanding == 0) {
    throw std::logic_error("StreamingTaskSource: retire without matching admit");
  }
  --chunk.outstanding;
  retire_drained_front();
}

void StreamingTaskSource::retire_drained_front() {
  // Only fully consumed chunks precede the cursor's chunk, so any front
  // chunk with no outstanding admissions is dead; its vector keeps its
  // capacity through the pool (chunk refills then allocate nothing).
  while (chunks_.size() > 1 && chunks_.front().outstanding == 0) {
    resident_ -= chunks_.front().tasks.size();
    pool_.push_back(std::move(chunks_.front().tasks));
    pool_.back().clear();
    chunks_.pop_front();
  }
}

}  // namespace rtdls::sim
