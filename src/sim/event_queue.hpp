// A deterministic discrete-event queue.
//
// Ordering is total and reproducible: (time, priority, insertion sequence).
// Priorities resolve same-instant races by event *kind* (e.g. a task
// commitment at time t must be observed by an arrival at the same t), and
// the insertion sequence makes equal-(time, priority) events FIFO.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "cluster/types.hpp"

namespace rtdls::sim {

using cluster::Time;

/// Event-kind priorities at equal timestamps; lower runs first.
enum class EventPriority : int {
  kCommit = 0,   ///< resource commitments happen "just before" arrivals
  kArrival = 1,
  kReport = 2,   ///< bookkeeping after the interesting work at an instant
};

/// One queued event. `Payload` is caller-defined (the engine uses callbacks).
template <typename Payload>
struct Event {
  Time time = 0.0;
  EventPriority priority = EventPriority::kArrival;
  std::uint64_t seq = 0;  ///< assigned by the queue
  Payload payload;
};

/// Min-queue over Event<Payload>.
template <typename Payload>
class EventQueue {
 public:
  /// Inserts an event; returns its sequence number.
  std::uint64_t push(Time time, EventPriority priority, Payload payload) {
    Event<Payload> event;
    event.time = time;
    event.priority = priority;
    event.seq = next_seq_++;
    event.payload = std::move(payload);
    heap_.push(std::move(event));
    return event.seq;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// The earliest event (undefined when empty).
  const Event<Payload>& top() const { return heap_.top(); }

  /// Removes and returns the earliest event.
  Event<Payload> pop() {
    Event<Payload> event = heap_.top();
    heap_.pop();
    return event;
  }

 private:
  struct Later {
    bool operator()(const Event<Payload>& a, const Event<Payload>& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event<Payload>, std::vector<Event<Payload>>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rtdls::sim
