// A deterministic discrete-event queue.
//
// Ordering is total and reproducible: (time, priority, insertion sequence).
// Priorities resolve same-instant races by event *kind* (e.g. a task
// commitment at time t must be observed by an arrival at the same t), and
// the insertion sequence makes equal-(time, priority) events FIFO.
//
// The heap is kept in a plain vector (std::push_heap/std::pop_heap) instead
// of std::priority_queue so clear() can drop all events while keeping the
// allocation - the simulator reuses one queue across back-to-back runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/types.hpp"

namespace rtdls::sim {

using cluster::Time;

/// Event-kind priorities at equal timestamps; lower runs first.
enum class EventPriority : int {
  kCommit = 0,   ///< resource commitments happen "just before" arrivals
  kArrival = 1,
  kReport = 2,   ///< bookkeeping after the interesting work at an instant
};

/// One queued event. `Payload` is caller-defined (the engine uses callbacks).
template <typename Payload>
struct Event {
  Time time = 0.0;
  EventPriority priority = EventPriority::kArrival;
  std::uint64_t seq = 0;  ///< assigned by the queue
  Payload payload;
};

/// Min-queue over Event<Payload>.
template <typename Payload>
class EventQueue {
 public:
  /// Inserts an event; returns its sequence number.
  std::uint64_t push(Time time, EventPriority priority, Payload payload) {
    Event<Payload> event;
    event.time = time;
    event.priority = priority;
    const std::uint64_t seq = next_seq_++;
    event.seq = seq;
    event.payload = std::move(payload);
    heap_.push_back(std::move(event));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return seq;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// The earliest event (undefined when empty).
  const Event<Payload>& top() const { return heap_.front(); }

  /// Removes and returns the earliest event.
  Event<Payload> pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event<Payload> event = std::move(heap_.back());
    heap_.pop_back();
    return event;
  }

  /// Drops every queued event and restarts the sequence numbering; the
  /// backing storage keeps its capacity (run-to-run reuse).
  void clear() {
    heap_.clear();
    next_seq_ = 0;
  }

  /// Pre-grows the heap storage to hold `events` without reallocating.
  /// The streamed replay loop calls this once per run so chunked arrival
  /// refills never grow the heap mid-chunk (and across back-to-back sweep
  /// cells the first run's high-water capacity is simply kept by clear()).
  void reserve(std::size_t events) { heap_.reserve(events); }

  /// Current storage capacity in events (tests pin the recycling contract).
  std::size_t capacity() const { return heap_.capacity(); }

 private:
  struct Later {
    bool operator()(const Event<Payload>& a, const Event<Payload>& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  std::vector<Event<Payload>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rtdls::sim
