// Callback-driven discrete-event engine on top of EventQueue.
//
// The engine owns the simulation clock; handlers schedule further events.
// Time never moves backwards: scheduling an event earlier than `now` throws,
// which turns subtle causality bugs into immediate failures.
#pragma once

#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace rtdls::sim {

/// Discrete-event execution engine.
class Engine {
 public:
  using Handler = std::function<void(Engine&)>;

  /// Current simulation time.
  Time now() const { return now_; }

  /// Number of events executed so far.
  std::uint64_t executed() const { return executed_; }

  /// Schedules `handler` at `time` (>= now()).
  void schedule(Time time, EventPriority priority, Handler handler) {
    if (time < now_) {
      throw std::logic_error("Engine::schedule: event in the past");
    }
    queue_.push(time, priority, std::move(handler));
  }

  /// Runs until the queue drains (or `max_events` is hit, a runaway guard).
  void run(std::uint64_t max_events = ~static_cast<std::uint64_t>(0)) {
    while (!queue_.empty() && executed_ < max_events) {
      Event<Handler> event = queue_.pop();
      now_ = event.time;
      ++executed_;
      event.payload(*this);
    }
  }

  /// True when no events remain.
  bool idle() const { return queue_.empty(); }

 private:
  EventQueue<Handler> queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace rtdls::sim
