#include "sim/exec_model.hpp"

#include <algorithm>
#include <stdexcept>
#include "util/fp.hpp"

namespace rtdls::sim {

Time ActualTimeline::task_completion() const {
  Time latest = 0.0;
  for (Time t : completion) latest = std::max(latest, t);
  return latest;
}

ActualTimeline roll_out(const cluster::ClusterParams& params, double sigma,
                        const sched::TaskPlan& plan, Time channel_available) {
  if (plan.nodes == 0) throw std::invalid_argument("roll_out: empty plan");
  if (!(sigma > 0.0)) throw std::invalid_argument("roll_out: sigma must be > 0");

  ActualTimeline timeline;
  timeline.tx_start.resize(plan.nodes);
  timeline.tx_end.resize(plan.nodes);
  timeline.completion.resize(plan.nodes);

  Time channel_free = channel_available;
  for (std::size_t i = 0; i < plan.nodes; ++i) {
    const double tx_cost = plan.alpha[i] * sigma * params.cms;
    // Heterogeneous plans pin each slot's actual speed; homogeneous plans
    // leave node_cps empty and every slot computes at params.cps.
    const double node_cps = plan.node_cps.empty() ? params.cps : plan.node_cps[i];
    const double compute_cost = plan.alpha[i] * sigma * node_cps;
    // The chunk may not be sent before the node is reserved for the task
    // (its own available time; r_n for OPR rules) nor before the previous
    // chunk left the channel.
    timeline.tx_start[i] = std::max(plan.reserve_from[i], channel_free);
    timeline.tx_end[i] = timeline.tx_start[i] + tx_cost;
    timeline.completion[i] = timeline.tx_end[i] + compute_cost;
    channel_free = timeline.tx_end[i];
  }
  return timeline;
}

ResultTimeline roll_out_with_results(const cluster::ClusterParams& params, double sigma,
                                     double delta, const sched::TaskPlan& plan,
                                     Time channel_available) {
  if (!(delta >= 0.0)) {
    throw std::invalid_argument("roll_out_with_results: delta must be >= 0");
  }
  ResultTimeline timeline;
  timeline.input = roll_out(params, sigma, plan, channel_available);
  if (fp::exact_eq(delta, 0.0)) {
    timeline.result_tx_start = timeline.input.completion;
    timeline.result_tx_end = timeline.input.completion;
    timeline.task_completion = timeline.input.task_completion();
    return timeline;
  }

  // Serve result returns in node-completion order on the shared channel,
  // which frees after the last input transmission.
  std::vector<std::size_t> order(plan.nodes);
  for (std::size_t i = 0; i < plan.nodes; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return timeline.input.completion[a] < timeline.input.completion[b];
  });

  timeline.result_tx_start.resize(plan.nodes);
  timeline.result_tx_end.resize(plan.nodes);
  Time channel_free = timeline.input.tx_end.back();
  for (std::size_t i : order) {
    const double result_cost = delta * plan.alpha[i] * sigma * params.cms;
    timeline.result_tx_start[i] = std::max(timeline.input.completion[i], channel_free);
    timeline.result_tx_end[i] = timeline.result_tx_start[i] + result_cost;
    channel_free = timeline.result_tx_end[i];
    timeline.task_completion = std::max(timeline.task_completion, channel_free);
  }
  return timeline;
}

}  // namespace rtdls::sim
