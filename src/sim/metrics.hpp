// Metrics collected by one simulation run. The paper's headline metric is
// the Task Reject Ratio; the rest (response times, utilization, inserted
// idle time, queue lengths, Theorem-4 validation) support the analysis and
// ablation benches.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "dlt/params.hpp"
#include "stats/running_stats.hpp"

namespace rtdls::sim {

using cluster::Time;

/// Aggregated results of one simulated run.
struct SimMetrics {
  // --- admission ---
  std::size_t arrivals = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  /// Rejections by Infeasibility reason (indexed by its enum value).
  std::array<std::size_t, 4> reject_reasons{};

  // --- execution (accepted tasks) ---
  stats::RunningStats response_time;   ///< completion - arrival
  stats::RunningStats wait_time;       ///< first node engagement - arrival
  stats::RunningStats deadline_slack;  ///< absolute deadline - completion
  stats::RunningStats nodes_per_task;  ///< n assigned per accepted task
  stats::RunningStats queue_length;    ///< waiting-queue length at arrivals

  /// Committed tasks whose actual rollout beat the paper's estimate by this
  /// much on average (estimate - actual completion; >= 0 by Theorem 4).
  stats::RunningStats estimate_margin;

  /// Availability stagger r_n - r_1 across each accepted task's nodes (the
  /// raw material the IIT-utilizing rules exploit).
  stats::RunningStats stagger;

  /// Relative execution-time compression (E - E_planned)/E per accepted
  /// task, where E is the no-IIT homogeneous execution time for the same n
  /// and E_planned = est_completion - r_n. Zero for OPR rules; the paper's
  /// Eq. (9) gain for DLT-IIT.
  stats::RunningStats iit_compression;

  // --- invariant checks ---
  std::size_t theorem4_violations = 0;  ///< actual completion > estimate
  std::size_t deadline_misses = 0;      ///< actual completion > deadline
                                        ///< (only possible in shared-link mode)

  // --- planner internals (sched::PlannerCounters, accumulated per run) ---
  /// OPR-MN-BF het (selection, duration) fixed points that did not settle
  /// within the iteration budget and took the conservative-window fallback.
  std::size_t backfill_fixed_point_fallbacks = 0;
  /// Node-count resolver walks and the candidate prefixes they evaluated.
  std::size_t planner_resolver_walks = 0;
  std::size_t planner_resolver_positions = 0;
  /// Batched SoA kernel evaluations (walk estimates + window durations).
  std::size_t planner_batch_passes = 0;
  /// OPR-MN-BF (selection, duration) fixed-point iterations executed.
  std::size_t backfill_fixed_point_iterations = 0;

  // --- cluster accounting ---
  double busy_time = 0.0;      ///< sum of per-node committed busy time
  double idle_gap_time = 0.0;  ///< sum of per-node inserted idle time
  Time horizon = 0.0;
  std::size_t node_count = 0;

  // --- admission session footprint (incremental mode only; 0 otherwise) ---
  /// Peak bytes the admission session's sparse state (plan deltas +
  /// checkpoint rows + frontier) held during the run, and what the
  /// historical dense one-row-per-task representation would have held at the
  /// same moment - the measured O(Q*N) -> O(Q*k + sqrt(N)*N) drop.
  std::size_t admission_peak_bytes = 0;
  std::size_t admission_peak_dense_bytes = 0;

  /// The paper's metric: rejections / arrivals (0 when no arrivals).
  double reject_ratio() const {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(rejected) / static_cast<double>(arrivals);
  }

  /// Fraction of node-time spent busy over the horizon.
  double utilization() const {
    const double capacity = static_cast<double>(node_count) * horizon;
    return capacity <= 0.0 ? 0.0 : busy_time / capacity;
  }

  /// Fraction of node-time lost to inserted idle gaps.
  double iit_fraction() const {
    const double capacity = static_cast<double>(node_count) * horizon;
    return capacity <= 0.0 ? 0.0 : idle_gap_time / capacity;
  }

  /// Multi-line human-readable summary.
  std::string summary() const;
};

/// Counters of the admission-control service (`rtdlsd`): one instance per
/// daemon, updated under its counters mutex and reported verbatim in
/// `status` replies and the storm harness. Lives here with the simulation
/// metrics because it is the same kind of artifact - aggregate run
/// accounting with a human-readable summary - just over requests instead of
/// simulated tasks.
struct ServiceCounters {
  // --- request volume, by type ---
  std::size_t connections = 0;  ///< accepted client connections
  std::size_t requests = 0;     ///< frames decoded and dispatched
  std::size_t admits = 0;
  std::size_t commits = 0;
  std::size_t cancels = 0;
  std::size_t status_queries = 0;
  std::size_t snapshots = 0;  ///< snapshot requests served (incl. final)

  // --- failure modes ---
  std::size_t errors = 0;    ///< error replies sent (bad frames/payloads/...)
  std::size_t timeouts = 0;  ///< requests that hit their wall-clock deadline

  // --- crash recovery ---
  std::size_t restores = 0;  ///< shards restored from a snapshot at startup

  /// One-line summary for logs and the storm harness.
  std::string summary() const;
};

}  // namespace rtdls::sim
