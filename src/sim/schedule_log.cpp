#include "sim/schedule_log.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace rtdls::sim {

cluster::Time ScheduleLog::total_inserted_idle() const {
  cluster::Time total = 0.0;
  for (const ScheduleEntry& entry : entries_) total += entry.inserted_idle();
  return total;
}

void ScheduleLog::save_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.write_row({"task", "node", "usable_from", "start", "end", "alpha",
                    "inserted_idle", "cps", "actual_finish"});
  for (const ScheduleEntry& entry : entries_) {
    writer.write_numeric_row({static_cast<double>(entry.task),
                              static_cast<double>(entry.node), entry.usable_from,
                              entry.start, entry.end, entry.alpha,
                              entry.inserted_idle(), entry.cps, entry.actual_finish});
  }
}

void ScheduleLog::save_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ScheduleLog::save_csv_file: cannot open " + path);
  save_csv(out);
}

std::string ScheduleLog::render_gantt(cluster::Time t0, cluster::Time t1,
                                      std::size_t nodes, std::size_t width) const {
  if (!(t1 > t0)) throw std::invalid_argument("render_gantt: t1 must exceed t0");
  if (nodes == 0 || width == 0) throw std::invalid_argument("render_gantt: empty grid");

  static constexpr char kMarks[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::vector<std::string> rows(nodes, std::string(width, ' '));

  auto column = [&](cluster::Time t) {
    const double fraction = (t - t0) / (t1 - t0);
    return static_cast<long long>(fraction * static_cast<double>(width));
  };
  auto clamp_col = [&](long long c) {
    return static_cast<std::size_t>(std::clamp<long long>(c, 0, static_cast<long long>(width) - 1));
  };

  for (const ScheduleEntry& entry : entries_) {
    if (entry.node >= nodes) continue;
    if (entry.end <= t0 || entry.start >= t1) continue;
    std::string& row = rows[entry.node];
    // Inserted idle ('.') from usable_from to start, then the task mark.
    if (entry.inserted_idle() > 0.0 && entry.start > t0) {
      for (std::size_t c = clamp_col(column(entry.usable_from));
           c <= clamp_col(column(entry.start) - 1); ++c) {
        if (row[c] == ' ') row[c] = '.';
      }
    }
    const char mark = kMarks[entry.task % (sizeof(kMarks) - 1)];
    for (std::size_t c = clamp_col(column(entry.start)); c <= clamp_col(column(entry.end) - 1);
         ++c) {
      row[c] = mark;
    }
  }

  std::ostringstream out;
  for (std::size_t node = 0; node < nodes; ++node) {
    out << 'P' << node + 1 << (node + 1 < 10 ? "  |" : " |") << rows[node] << "|\n";
  }
  out << "marks: task id mod 62; '.': inserted idle; window [" << t0 << ", " << t1 << ")\n";
  return out.str();
}

}  // namespace rtdls::sim
