// The cluster simulator: drives a task trace through an admission-controlled
// cluster, reproducing the paper's discrete simulation (Section 5).
//
// Lifecycle of a task:
//   arrival --(Figure-2 schedulability test)--> accepted (waiting, re-plannable)
//           \-> rejected (counted; previously admitted tasks keep their plans)
//   waiting --(clock reaches its plan's first resource commitment)--> committed
//   committed --> nodes reserved per plan; actual rollout recorded; nodes
//                 released at the estimate (default) or the actual finish
//
// Waiting tasks are re-planned on every arrival (TempTaskList = new +
// waiting); committed tasks are immutable. Commit events are versioned so a
// re-plan invalidates stale commitments in the event queue.
//
// Engine notes: the waiting queue is kept in policy order so the admission
// controller's incremental mode can re-plan only from the new task's
// insertion point (see sched/admission.hpp); arrivals are merged from the
// (sorted) trace instead of being enqueued, so the event heap only carries
// commit events; and run() resets per-run state in place, which lets one
// simulator instance serve back-to-back sweep cells without reallocating.
#pragma once

#include <cstdint>
#include <vector>

#include <optional>

#include "cluster/calendar.hpp"
#include "cluster/cluster.hpp"
#include "sched/admission.hpp"
#include "sched/het_planner.hpp"
#include "sched/registry.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/schedule_log.hpp"
#include "sim/task_source.hpp"
#include "workload/task.hpp"

namespace rtdls::sim {

/// When a committed task's nodes become available to later tasks.
enum class ReleasePolicy {
  kEstimate,  ///< at the plan's estimated completion (the Figure-2 quantity)
  kActual,    ///< at each node's actual rollout finish (<= estimate, Thm. 4)
};

/// Simulator configuration.
struct SimulatorConfig {
  cluster::ClusterParams params;
  ReleasePolicy release_policy = ReleasePolicy::kEstimate;

  /// Model the head node's link as shared across concurrently-distributing
  /// tasks (ablation of the paper's dedicated-channel assumption). With a
  /// shared link the Theorem-4 estimate no longer upper-bounds actual
  /// completions; misses are counted in SimMetrics::deadline_misses.
  bool shared_link = false;

  /// Check actual rollouts against estimates/deadlines (cheap; keep on).
  bool validate = true;

  /// Use the incremental admission session for non-calendar rules (schedules
  /// are identical to the full Figure-2 re-plan; see sched/admission.hpp).
  /// Off: every arrival runs the full stateless test - the reference mode
  /// the property tests compare against.
  bool incremental_admission = true;

  /// Debug: assert on every arrival that the incremental outcome matches
  /// the full Figure-2 test bit-for-bit (throws std::logic_error if not).
  bool cross_check_admission = false;

  /// When non-null, every committed per-node reservation is appended to
  /// this log (Gantt export; see sim/schedule_log.hpp). Not owned.
  ScheduleLog* schedule_log = nullptr;

  /// Output-data extension: result volume as a fraction of the input
  /// (delta). When > 0, execution rollouts include result returns over the
  /// channel; pair with *-IO rules of the same delta so the admission
  /// estimates budget the same traffic (a plain rule with output_ratio > 0
  /// will be flagged through theorem4_violations/deadline_misses - that
  /// mismatch is the point of the output ablation).
  double output_ratio = 0.0;
};

/// Runs one algorithm over one task trace.
class ClusterSimulator {
 public:
  /// `algorithm` must outlive the simulator.
  ClusterSimulator(SimulatorConfig config, const sched::Algorithm& algorithm);

  /// Simulates `tasks` (must be sorted by arrival time; ids unique).
  /// `horizon` is the nominal TotalSimulationTime used for utilization
  /// accounting (arrivals beyond it should not be in `tasks`). May be
  /// called repeatedly; per-run state is reset in place. Equivalent to
  /// run_stream over a VectorTaskSource (it is exactly that).
  SimMetrics run(const std::vector<workload::Task>& tasks, Time horizon);

  /// Same event loop, pulling arrivals from `source` instead of a
  /// materialized vector - the bounded-memory replay path (pair with
  /// StreamingTaskSource over a TraceReader). Arrivals must be
  /// non-decreasing; a mid-stream decrease throws std::invalid_argument at
  /// the offending arrival (a streamed trace cannot be pre-checked).
  /// Schedules and metrics are bit-identical to run() on the same tasks.
  SimMetrics run_stream(TaskSource& source, Time horizon);

 private:
  struct WaitingEntry {
    const workload::Task* task = nullptr;
    sched::TaskPlan plan;
    std::uint64_t version = 0;
  };

  /// Commit event payload: versions invalidate superseded plans.
  struct CommitEvent {
    cluster::TaskId id = cluster::kNoTask;
    std::uint64_t version = 0;
  };

  void handle_arrival(const workload::Task& task);
  void handle_commit(cluster::TaskId id, std::uint64_t version);
  /// Returns true when the cluster's post-commit availability equals the
  /// plan's releases exactly (no early release), i.e. the admission session
  /// may advance instead of invalidating.
  bool commit_task(Time now, const WaitingEntry& entry);
  void adopt_schedule(std::size_t reused_prefix,
                      std::vector<sched::ScheduledTask>& schedule);

  SimulatorConfig config_;
  const sched::Algorithm* algorithm_;
  sched::AdmissionController controller_;
  /// Arrival source of the in-flight run (admitted/retired notifications
  /// let a streaming source bound chunk lifetimes). Only valid mid-run.
  TaskSource* source_ = nullptr;

  // Per-run state (reset in place by run()).
  cluster::Cluster cluster_;
  /// Committed reservations with gap information; engaged only when the
  /// algorithm's rule uses_calendar() (backfilling comparators).
  std::optional<cluster::NodeCalendar> calendar_;
  std::vector<WaitingEntry> waiting_;  ///< policy order (see sched/policy.hpp)
  EventQueue<CommitEvent> queue_;
  Time now_ = 0.0;
  std::uint64_t next_version_ = 1;
  Time channel_free_ = 0.0;  // shared-link mode only
  SimMetrics metrics_;

  // Scratch reused across arrivals/commits (no steady-state allocation).
  std::vector<const workload::Task*> waiting_view_;
  std::vector<Time> free_scratch_;
  std::vector<cluster::NodeId> free_ids_scratch_;
  std::vector<cluster::NodeId> ids_scratch_;
  std::vector<cluster::NodeId> by_release_scratch_;
  std::vector<Time> actual_sorted_scratch_;
  std::vector<double> alpha_scratch_;
  sched::het::PlannerScratch het_roll_scratch_;
};

/// Convenience: run one named algorithm over a trace.
SimMetrics simulate(const SimulatorConfig& config, const std::string& algorithm_name,
                    const std::vector<workload::Task>& tasks, Time horizon);

}  // namespace rtdls::sim
