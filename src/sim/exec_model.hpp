// Actual-execution rollout of a committed plan on the homogeneous cluster:
// the head node transmits chunks sequentially in plan order; node i's
// transmission starts once the node is usable (reserve_from[i]) and the
// channel is free; computation follows immediately.
//
// For DLT-IIT plans this is exactly the timeline of Theorem 4's proof, so
//   max_i completion_i <= plan.est_completion
// must hold - the simulator validates it for every committed task, turning
// the paper's central theorem into a continuously-checked invariant.
#pragma once

#include "dlt/params.hpp"
#include "sched/plan.hpp"

namespace rtdls::sim {

using cluster::Time;

/// Exact per-node execution timeline of one task. Under a heterogeneous
/// plan (TaskPlan::node_cps set) each slot computes at its own node's
/// actual speed; otherwise every slot uses params.cps.
struct ActualTimeline {
  std::vector<Time> tx_start;    ///< when node i's chunk starts transmitting
  std::vector<Time> tx_end;      ///< tx_start + alpha_i * sigma * Cms
  std::vector<Time> completion;  ///< tx_end + alpha_i * sigma * cps_i

  /// Actual task completion: the last node's finish.
  Time task_completion() const;
};

/// Rolls out `plan` for a task of size `sigma`.
///
/// `channel_available`: earliest time the head node's link may serve this
/// task. The paper's model dedicates the link to the task from its start
/// (pass 0 / any time <= the first reserve_from); the shared-link ablation
/// passes the global channel-free time instead.
ActualTimeline roll_out(const cluster::ClusterParams& params, double sigma,
                        const sched::TaskPlan& plan, Time channel_available = 0.0);

/// Timeline including the result-collection phase (output-data extension).
struct ResultTimeline {
  ActualTimeline input;              ///< input transmissions + computation
  std::vector<Time> result_tx_start; ///< per node, in node-completion order
  std::vector<Time> result_tx_end;
  Time task_completion = 0.0;        ///< last result delivered to the head node
};

/// Rolls out `plan` including result returns: each node sends back
/// delta * alpha_i * sigma units over the same sequential channel, served
/// in the order nodes finish computing. The completion is guaranteed
/// <= output_completion_bound(params, sigma, delta, plan.est input bound);
/// property-tested in exec_model_test.
ResultTimeline roll_out_with_results(const cluster::ClusterParams& params, double sigma,
                                     double delta, const sched::TaskPlan& plan,
                                     Time channel_available = 0.0);

}  // namespace rtdls::sim
