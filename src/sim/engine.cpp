#include "sim/engine.hpp"

// Header-only engine; this translation unit anchors the target.
