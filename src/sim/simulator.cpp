#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "dlt/het_model.hpp"
#include "dlt/homogeneous.hpp"
#include "dlt/multiround.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/exec_model.hpp"
#include "util/fp.hpp"
#include "util/log.hpp"

namespace rtdls::sim {

namespace {

/// Process-registry mirrors of the per-run tallies, bumped once per run (the
/// per-event hot path only touches SimMetrics / PlannerCounters fields).
struct SimObs {
  obs::Counter runs = obs::Registry::global().counter("rtdls_sim_runs_total");
  obs::Counter arrivals = obs::Registry::global().counter("rtdls_sim_arrivals_total");
  obs::Counter accepted = obs::Registry::global().counter("rtdls_sim_accepted_total");
  obs::Counter rejected = obs::Registry::global().counter("rtdls_sim_rejected_total");
  obs::Counter resolver_walks =
      obs::Registry::global().counter("rtdls_planner_resolver_walks_total");
  obs::Counter resolver_positions =
      obs::Registry::global().counter("rtdls_planner_resolver_positions_total");
  obs::Counter batch_passes =
      obs::Registry::global().counter("rtdls_planner_batch_passes_total");
  obs::Counter fixed_point_iterations = obs::Registry::global().counter(
      "rtdls_planner_backfill_fixed_point_iterations_total");
  obs::Counter fixed_point_fallbacks = obs::Registry::global().counter(
      "rtdls_planner_backfill_fixed_point_fallbacks_total");
};

SimObs& sim_obs() {
  static SimObs handles;
  return handles;
}

}  // namespace

ClusterSimulator::ClusterSimulator(SimulatorConfig config, const sched::Algorithm& algorithm)
    : config_(config),
      algorithm_(&algorithm),
      controller_(algorithm.policy, algorithm.rule.get()),
      cluster_(config.params) {
  controller_.set_cross_check(config_.cross_check_admission);
}

SimMetrics ClusterSimulator::run(const std::vector<workload::Task>& tasks, Time horizon) {
  if (!std::is_sorted(tasks.begin(), tasks.end(),
                      [](const workload::Task& a, const workload::Task& b) {
                        return a.arrival() < b.arrival();
                      })) {
    throw std::invalid_argument("ClusterSimulator::run: tasks not sorted by arrival");
  }
  VectorTaskSource source(tasks);
  return run_stream(source, horizon);
}

SimMetrics ClusterSimulator::run_stream(TaskSource& source, Time horizon) {
  // Reset per-run state in place (back-to-back sweep cells reuse all the
  // storage this simulator has grown).
  cluster_.reset();
  if (algorithm_->rule->uses_calendar()) {
    if (calendar_) {
      calendar_->clear();
    } else {
      calendar_.emplace(config_.params.node_count);
    }
  } else {
    calendar_.reset();
  }
  waiting_.clear();
  queue_.clear();
  controller_.invalidate();
  controller_.reset_session_stats();
  algorithm_->rule->reset_planner_counters();
  now_ = 0.0;
  next_version_ = 1;
  channel_free_ = 0.0;
  metrics_ = SimMetrics{};
  metrics_.horizon = horizon;
  metrics_.node_count = config_.params.node_count;

  // Arrivals are merged straight from the (sorted) source; the event heap
  // only carries commit events. Ordering matches the EventPriority rule:
  // at equal instants commitments run before arrivals. The source's peeked
  // pointer stays stable through any number of interleaved commit events
  // (loading happens inside peek(), never pop() - see sim/task_source.hpp).
  RTDLS_TRACE_SCOPE("sim.run", "sim");
  source_ = &source;
  queue_.reserve(64);
  bool any_arrival = false;
  Time last_arrival = 0.0;
  const workload::Task* next = source.peek();
  while (next != nullptr || !queue_.empty()) {
    const bool take_commit = !queue_.empty() &&
                             (next == nullptr || queue_.top().time <= next->arrival());
    if (take_commit) {
      const Event<CommitEvent> event = queue_.pop();
      now_ = event.time;
      handle_commit(event.payload.id, event.payload.version);
    } else {
      // A vector source was pre-checked by run(); a streamed trace can only
      // be validated as it flows.
      if (any_arrival && next->arrival() < last_arrival) {
        source_ = nullptr;
        throw std::invalid_argument(
            "ClusterSimulator::run_stream: arrivals decrease mid-stream");
      }
      any_arrival = true;
      last_arrival = next->arrival();
      now_ = next->arrival();
      handle_arrival(*next);
      source.pop();
      next = source.peek();
    }
  }
  source_ = nullptr;

  // Every adopted entry carries a commit event at its current version and
  // the loop above drains the queue, so nothing can still be waiting -
  // completions/utilization already include work planned past the last
  // arrival.
  if (!waiting_.empty()) {
    throw std::logic_error("ClusterSimulator::run: waiting tasks survived the event loop");
  }

  if (calendar_) {
    for (cluster::NodeId id = 0; id < calendar_->size(); ++id) {
      metrics_.busy_time += calendar_->busy_time(id);
    }
    // Gaps in a calendar are not "inserted" idle: any later task may still
    // backfill them, so no IIT is attributed in calendar mode.
  } else {
    metrics_.busy_time = cluster_.total_busy_time();
    metrics_.idle_gap_time = cluster_.total_idle_gap_time();
  }
  const auto session_peak = controller_.peak_session_memory();
  metrics_.admission_peak_bytes = session_peak.bytes;
  metrics_.admission_peak_dense_bytes = session_peak.dense_equivalent_bytes;
  const sched::PlannerCounters planner = algorithm_->rule->planner_counters();
  metrics_.backfill_fixed_point_fallbacks = planner.backfill_fixed_point_fallbacks;
  metrics_.planner_resolver_walks = planner.resolver_walks;
  metrics_.planner_resolver_positions = planner.resolver_positions;
  metrics_.planner_batch_passes = planner.batch_passes;
  metrics_.backfill_fixed_point_iterations = planner.backfill_fixed_point_iterations;

  SimObs& mirrors = sim_obs();
  mirrors.runs.inc();
  mirrors.arrivals.add(metrics_.arrivals);
  mirrors.accepted.add(metrics_.accepted);
  mirrors.rejected.add(metrics_.rejected);
  mirrors.resolver_walks.add(planner.resolver_walks);
  mirrors.resolver_positions.add(planner.resolver_positions);
  mirrors.batch_passes.add(planner.batch_passes);
  mirrors.fixed_point_iterations.add(planner.backfill_fixed_point_iterations);
  mirrors.fixed_point_fallbacks.add(planner.backfill_fixed_point_fallbacks);
  return metrics_;
}

void ClusterSimulator::handle_arrival(const workload::Task& task) {
  RTDLS_TRACE_SCOPE("sim.arrival", "sim");
  const Time now = now_;
  ++metrics_.arrivals;
  metrics_.queue_length.add(static_cast<double>(waiting_.size()));

  waiting_view_.clear();
  for (const WaitingEntry& entry : waiting_) waiting_view_.push_back(entry.task);

  sched::AdmissionOutcome outcome;
  {
    RTDLS_TRACE_SCOPE("sim.admit_test", "sim");
    if (calendar_) {
      // Calendar mode: "release time" = end of the node's last committed
      // reservation (the BF rule itself plans against the gaps).
      free_scratch_.clear();
      free_scratch_.reserve(calendar_->size());
      for (cluster::NodeId id = 0; id < calendar_->size(); ++id) {
        const auto& busy = calendar_->busy(id);
        free_scratch_.push_back(std::max(now, busy.empty() ? now : busy.back().end));
      }
      outcome = controller_.test(&task, waiting_view_, config_.params, free_scratch_, now,
                                 &*calendar_);
    } else if (config_.incremental_admission) {
      outcome =
          controller_.test_incremental(task, waiting_view_, config_.params, cluster_, now);
    } else if (config_.params.heterogeneous()) {
      cluster_.availability_with_ids_into(now, free_scratch_, free_ids_scratch_);
      outcome = controller_.test(&task, waiting_view_, config_.params, free_scratch_, now,
                                 nullptr, free_ids_scratch_);
    } else {
      cluster_.availability_into(now, free_scratch_);
      outcome = controller_.test(&task, waiting_view_, config_.params, free_scratch_, now);
    }
  }

  if (!outcome.accepted) {
    ++metrics_.rejected;
    ++metrics_.reject_reasons[static_cast<std::size_t>(outcome.reason)];
    RTDLS_LOG(kDebug) << "t=" << now << " reject task " << task.id << " ("
                      << dlt::infeasibility_name(outcome.reason) << ")";
    return;
  }

  ++metrics_.accepted;
  adopt_schedule(outcome.reused_prefix, outcome.schedule);
  // The waiting entry (and possibly the admission session) now hold this
  // task's pointer; pin its chunk until the commit retires it.
  source_->on_task_admitted(&task);
}

void ClusterSimulator::adopt_schedule(std::size_t reused_prefix,
                                      std::vector<sched::ScheduledTask>& schedule) {
  // Replace the waiting suffix with the accepted temp schedule (the leading
  // `reused_prefix` entries' plans are unchanged, so their versions - and
  // the commit events already queued for them - stay valid). Every replaced
  // entry gets a fresh version so commit events for superseded plans are
  // ignored. The schedule arrives in policy order, preserving the waiting
  // queue's ordering invariant.
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(reused_prefix),
                 waiting_.end());
  waiting_.reserve(reused_prefix + schedule.size());
  for (sched::ScheduledTask& scheduled : schedule) {
    WaitingEntry entry;
    entry.task = scheduled.task;
    entry.plan = std::move(scheduled.plan);
    entry.version = next_version_++;
    const Time commit_at = std::max(entry.plan.commit_time(), now_);
    const cluster::TaskId id = entry.task->id;
    const std::uint64_t version = entry.version;
    waiting_.push_back(std::move(entry));
    queue_.push(commit_at, EventPriority::kCommit, CommitEvent{id, version});
  }
}

void ClusterSimulator::handle_commit(cluster::TaskId id, std::uint64_t version) {
  RTDLS_TRACE_SCOPE("sim.commit", "sim");
  const auto it = std::find_if(waiting_.begin(), waiting_.end(), [&](const WaitingEntry& w) {
    return w.task->id == id && w.version == version;
  });
  if (it == waiting_.end()) return;  // superseded by a later re-plan
  WaitingEntry entry = std::move(*it);
  waiting_.erase(it);
  const bool matches_plan = commit_task(now_, entry);
  if (matches_plan) {
    // The committed reservations equal this plan's releases, so the
    // admission session can advance (a policy-order-front commit whose
    // plan matches its cache) instead of rebuilding.
    controller_.on_commit(entry.task, entry.plan, cluster_.version());
  } else {
    controller_.invalidate();
  }
  // Committed tasks are immutable and never re-enter the waiting queue:
  // this pointer's last dereference was the session advance above, so a
  // streaming source may now recycle its chunk.
  source_->on_task_retired(entry.task);
}

bool ClusterSimulator::commit_task(Time now, const WaitingEntry& entry) {
  const sched::TaskPlan& plan = entry.plan;
  const workload::Task& task = *entry.task;

  std::vector<cluster::NodeId>& ids = ids_scratch_;
  if (calendar_) {
    // Calendar-based plan: reserve the exact intervals it chose (possibly
    // backfilled into gaps in front of existing reservations).
    ids = plan.node_ids;
    for (std::size_t i = 0; i < plan.nodes; ++i) {
      calendar_->reserve(ids[i], plan.reserve_from[i], plan.node_release[i]);
    }
  } else if (!plan.node_ids.empty()) {
    // Heterogeneous plan: the partition was computed for exactly these
    // nodes' speeds, so commit them directly (nodes of different speeds
    // are not interchangeable).
    ids = plan.node_ids;
    for (std::size_t i = 0; i < plan.nodes; ++i) {
      cluster_.commit(ids[i], task.id, plan.available[i], plan.reserve_from[i],
                      plan.node_release[i]);
    }
  } else {
    // Map the plan's sorted slots onto the n earliest-free concrete nodes.
    cluster_.earliest_free_nodes_into(now, plan.nodes, ids);
    for (std::size_t i = 0; i < plan.nodes; ++i) {
      cluster_.commit(ids[i], task.id, plan.available[i], plan.reserve_from[i],
                      plan.node_release[i]);
    }
  }

  // Roll out the actual timeline on the (dedicated or shared) channel.
  // Multi-round plans already carry their exact rolled-out per-node
  // finishes (built by build_multiround_schedule); re-rolling them through
  // the single-round model would be the wrong execution semantics.
  RTDLS_TRACE_SCOPE("sim.rollout", "sim");
  ActualTimeline timeline;
  Time actual = 0.0;
  if (plan.rounds > 1) {
    timeline.tx_start = plan.reserve_from;
    timeline.tx_end = plan.reserve_from;
    if (config_.shared_link) {
      // The plan's MR timeline assumed a dedicated channel; re-roll the
      // installments against the channel's current occupancy so a busy
      // shared link delays them instead of being double-booked.
      if (!plan.node_cps.empty()) {
        sched::het::HetMultiRoundRollout rolled;
        sched::het::roll_multiround(config_.params, task.sigma(), plan.available,
                                    plan.node_cps, plan.rounds, channel_free_,
                                    het_roll_scratch_, rolled);
        // Slot identity survives (each slot's speed is its own); no sort.
        timeline.completion = std::move(rolled.completion);
        channel_free_ = rolled.channel_busy_until;
      } else {
        const dlt::MultiRoundSchedule rolled = dlt::build_multiround_schedule(
            config_.params, task.sigma(), plan.available, plan.rounds, channel_free_);
        timeline.completion = rolled.node_completion;
        std::sort(timeline.completion.begin(), timeline.completion.end());
        channel_free_ = rolled.channel_busy_until;
      }
    } else {
      timeline.completion = plan.node_release;
    }
    actual = timeline.task_completion();
  } else if (config_.output_ratio > 0.0) {
    const Time channel_at = config_.shared_link ? channel_free_ : 0.0;
    ResultTimeline with_results = roll_out_with_results(
        config_.params, task.sigma(), config_.output_ratio, plan, channel_at);
    actual = with_results.task_completion;
    timeline = std::move(with_results.input);
    // A node is truly done once its result left for the head node.
    timeline.completion = std::move(with_results.result_tx_end);
    if (config_.shared_link) channel_free_ = actual;
  } else {
    const Time channel_at = config_.shared_link ? channel_free_ : 0.0;
    timeline = roll_out(config_.params, task.sigma(), plan, channel_at);
    if (config_.shared_link) channel_free_ = timeline.tx_end.back();
    actual = timeline.task_completion();
  }
  const Time estimate = plan.est_completion;

  if (config_.schedule_log != nullptr) {
    for (std::size_t i = 0; i < plan.nodes; ++i) {
      const double cps = plan.node_cps.empty() ? config_.params.cps : plan.node_cps[i];
      config_.schedule_log->add(ScheduleEntry{task.id, ids[i], plan.available[i],
                                              plan.reserve_from[i], plan.node_release[i],
                                              plan.alpha[i], cps, timeline.completion[i]});
    }
  }

  if (config_.validate) {
    if (!config_.shared_link && fp::after(actual, estimate, fp::kEventTolerance)) {
      ++metrics_.theorem4_violations;
      RTDLS_LOG(kError) << "Theorem 4 violated: task " << task.id << " actual=" << actual
                        << " estimate=" << estimate;
    }
    if (fp::after(actual, task.abs_deadline(), fp::kEventTolerance)) {
      ++metrics_.deadline_misses;
    }
  }

  const Time completion = config_.release_policy == ReleasePolicy::kActual && !config_.shared_link
                              ? actual
                              : estimate;
  metrics_.response_time.add(completion - task.arrival());
  metrics_.wait_time.add(plan.commit_time() - task.arrival());
  metrics_.deadline_slack.add(task.abs_deadline() - completion);
  metrics_.nodes_per_task.add(static_cast<double>(plan.nodes));
  metrics_.estimate_margin.add(estimate - actual);
  metrics_.stagger.add(plan.available.back() - plan.available.front());
  // The no-IIT reference: homogeneous E(sigma, n), or for heterogeneous
  // plans the het-optimal simultaneous allocation over the same nodes'
  // actual speeds.
  double e_no_iit = 0.0;
  if (plan.node_cps.empty()) {
    e_no_iit = dlt::homogeneous_execution_time(config_.params, task.sigma(), plan.nodes);
  } else {
    dlt::general_het_alpha_into(config_.params.cms, plan.node_cps, plan.nodes,
                                alpha_scratch_);
    e_no_iit = task.sigma() * config_.params.cms +
               alpha_scratch_.back() * task.sigma() * plan.node_cps.back();
  }
  const double e_planned = plan.est_completion - plan.available.back();
  metrics_.iit_compression.add((e_no_iit - e_planned) / e_no_iit);

  if (config_.release_policy == ReleasePolicy::kActual && !config_.shared_link &&
      !calendar_) {
    if (!plan.node_cps.empty()) {
      // Heterogeneous plans keep slot identity end to end: slot i's work ran
      // on node ids[i] at its own speed, so each node hands back exactly its
      // own unused tail (order statistics would release the wrong node when
      // speeds differ).
      for (std::size_t i = 0; i < plan.nodes; ++i) {
        const Time at = std::min(timeline.completion[i], cluster_.node(ids[i]).free_at());
        cluster_.release_early(ids[i], at);
      }
      return false;  // availability no longer matches the plan's releases
    }
    // Theorem 4: each node's actual finish is no later than the estimate it
    // was committed until; hand the unused tail back. Pair sorted actual
    // completions with the nodes sorted by committed release so order
    // statistics keep every early release valid.
    std::vector<Time>& actual_sorted = actual_sorted_scratch_;
    actual_sorted = timeline.completion;
    std::sort(actual_sorted.begin(), actual_sorted.end());
    std::vector<cluster::NodeId>& by_release = by_release_scratch_;
    by_release = ids;
    std::sort(by_release.begin(), by_release.end(), [&](cluster::NodeId a, cluster::NodeId b) {
      return cluster_.node(a).free_at() < cluster_.node(b).free_at();
    });
    for (std::size_t i = 0; i < by_release.size(); ++i) {
      const Time at = std::min(actual_sorted[i], cluster_.node(by_release[i]).free_at());
      cluster_.release_early(by_release[i], at);
    }
    return false;  // availability no longer matches the plan's releases
  }
  return !calendar_;
}

SimMetrics simulate(const SimulatorConfig& config, const std::string& algorithm_name,
                    const std::vector<workload::Task>& tasks, Time horizon) {
  const sched::Algorithm algorithm = sched::make_algorithm(algorithm_name);
  ClusterSimulator simulator(config, algorithm);
  return simulator.run(tasks, horizon);
}

}  // namespace rtdls::sim
