// Committed-schedule logging: an optional record of every reservation the
// simulator commits, exportable as CSV for Gantt-style inspection (which
// node ran which task when, where the Inserted Idle Times sat, how the
// DLT rule fills them). Enabled via SimulatorConfig::schedule_log.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/types.hpp"

namespace rtdls::sim {

/// One committed per-node reservation.
struct ScheduleEntry {
  cluster::TaskId task = 0;
  cluster::NodeId node = 0;
  cluster::Time usable_from = 0.0;  ///< the node's availability r_i for this task
  cluster::Time start = 0.0;        ///< reservation start (r_i, or r_n for OPR)
  cluster::Time end = 0.0;          ///< reservation end (release)
  double alpha = 0.0;               ///< load fraction carried by this node
  double cps = 0.0;                 ///< node's unit processing cost for this task
  /// Actual rollout finish of this slot's work, computed from the node's
  /// own speed (<= end on a dedicated channel; equals the slot's order
  /// statistic for multi-round plans, whose rounds permute node identity).
  cluster::Time actual_finish = 0.0;

  /// Inserted idle time this reservation wasted: start - usable_from.
  cluster::Time inserted_idle() const { return start - usable_from; }
};

/// Append-only log of committed reservations.
class ScheduleLog {
 public:
  void add(ScheduleEntry entry) { entries_.push_back(entry); }
  void clear() { entries_.clear(); }

  const std::vector<ScheduleEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Total inserted idle time across all reservations.
  cluster::Time total_inserted_idle() const;

  /// Writes CSV: task,node,usable_from,start,end,alpha,inserted_idle.
  void save_csv(std::ostream& out) const;
  void save_csv_file(const std::string& path) const;

  /// Renders a coarse ASCII Gantt chart over [t0, t1): one row per node,
  /// task ids modulo 62 as marks, '.' for inserted idle, ' ' for free.
  std::string render_gantt(cluster::Time t0, cluster::Time t1, std::size_t nodes,
                           std::size_t width = 72) const;

 private:
  std::vector<ScheduleEntry> entries_;
};

}  // namespace rtdls::sim
