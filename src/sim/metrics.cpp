#include "sim/metrics.hpp"

#include <sstream>

namespace rtdls::sim {

std::string SimMetrics::summary() const {
  std::ostringstream out;
  out << "arrivals=" << arrivals << " accepted=" << accepted << " rejected=" << rejected
      << " reject_ratio=" << reject_ratio() << '\n';
  out << "rejects by reason:";
  for (std::size_t i = 0; i < reject_reasons.size(); ++i) {
    if (reject_reasons[i] == 0) continue;
    out << ' ' << dlt::infeasibility_name(static_cast<dlt::Infeasibility>(i)) << '='
        << reject_reasons[i];
  }
  out << '\n';
  if (response_time.count() > 0) {
    out << "response time: mean=" << response_time.mean() << " max=" << response_time.max()
        << '\n';
    out << "wait time: mean=" << wait_time.mean() << " max=" << wait_time.max() << '\n';
    out << "deadline slack: mean=" << deadline_slack.mean() << " min=" << deadline_slack.min()
        << '\n';
    out << "nodes per task: mean=" << nodes_per_task.mean() << '\n';
  }
  out << "queue length: mean=" << queue_length.mean() << " max=" << queue_length.max() << '\n';
  out << "utilization=" << utilization() << " iit_fraction=" << iit_fraction() << '\n';
  out << "theorem4 violations=" << theorem4_violations
      << " deadline misses=" << deadline_misses << '\n';
  if (planner_resolver_walks > 0) {
    out << "planner: resolver walks=" << planner_resolver_walks
        << " positions=" << planner_resolver_positions
        << " batch passes=" << planner_batch_passes << '\n';
  }
  if (backfill_fixed_point_iterations > 0) {
    out << "backfill fixed-point iterations=" << backfill_fixed_point_iterations
        << " fallbacks=" << backfill_fixed_point_fallbacks << '\n';
  } else if (backfill_fixed_point_fallbacks > 0) {
    out << "backfill fixed-point fallbacks=" << backfill_fixed_point_fallbacks << '\n';
  }
  return out.str();
}

std::string ServiceCounters::summary() const {
  std::ostringstream out;
  out << "connections=" << connections << " requests=" << requests << " (admit=" << admits
      << " commit=" << commits << " cancel=" << cancels << " status=" << status_queries
      << " snapshot=" << snapshots << ") errors=" << errors << " timeouts=" << timeouts
      << " restores=" << restores;
  return out.str();
}

}  // namespace rtdls::sim
