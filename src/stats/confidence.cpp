#include "stats/confidence.hpp"

#include <stdexcept>

#include "stats/student_t.hpp"

namespace rtdls::stats {

ConfidenceInterval mean_confidence_interval(const RunningStats& stats,
                                            double confidence) {
  ConfidenceInterval ci;
  ci.confidence = confidence;
  ci.samples = stats.count();
  ci.mean = stats.mean();
  if (stats.count() >= 2) {
    const double t = student_t_critical(confidence, static_cast<double>(stats.count() - 1));
    ci.half_width = t * stats.stderror();
  }
  return ci;
}

ConfidenceInterval mean_confidence_interval(const std::vector<double>& samples,
                                            double confidence) {
  RunningStats stats;
  for (double s : samples) stats.add(s);
  return mean_confidence_interval(stats, confidence);
}

ConfidenceInterval paired_difference_interval(const std::vector<double>& a,
                                              const std::vector<double>& b,
                                              double confidence) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("paired_difference_interval: size mismatch");
  }
  RunningStats stats;
  for (size_t i = 0; i < a.size(); ++i) stats.add(a[i] - b[i]);
  return mean_confidence_interval(stats, confidence);
}

}  // namespace rtdls::stats
