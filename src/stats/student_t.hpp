// Student-t distribution quantiles, implemented from scratch via the
// regularized incomplete beta function (continued fraction, Lentz's method)
// and bisection/Newton inversion.
//
// The experiment harness needs t quantiles for the 95% confidence intervals
// the paper reports in Figure 3b; we avoid a table so any confidence level
// and any degrees-of-freedom work.
#pragma once

namespace rtdls::stats {

/// Natural log of the gamma function (Lanczos approximation).
double log_gamma(double x);

/// Regularized incomplete beta function I_x(a, b) for x in [0,1], a,b > 0.
double regularized_incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `dof` degrees of freedom.
double student_t_cdf(double t, double dof);

/// Quantile (inverse CDF) of Student's t distribution.
/// `p` must be in (0, 1); `dof` must be >= 1.
double student_t_quantile(double p, double dof);

/// Two-sided critical value t* such that P(|T| <= t*) = confidence.
/// E.g. student_t_critical(0.95, 9) ~= 2.2622.
double student_t_critical(double confidence, double dof);

}  // namespace rtdls::stats
