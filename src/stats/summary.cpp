#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rtdls::stats {

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty set");
  ensure_sorted();
  return samples_.front();
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty set");
  ensure_sorted();
  return samples_.back();
}

double Summary::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Summary::quantile on empty set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q must be in [0,1]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double position = q * static_cast<double>(samples_.size() - 1);
  const size_t below = static_cast<size_t>(std::floor(position));
  const size_t above = std::min(below + 1, samples_.size() - 1);
  const double fraction = position - static_cast<double>(below);
  return samples_[below] * (1.0 - fraction) + samples_[above] * fraction;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (buckets == 0) throw std::invalid_argument("Histogram: need >= 1 bucket");
}

void Histogram::add(double x) {
  const double fraction = (x - lo_) / (hi_ - lo_);
  long long index = static_cast<long long>(std::floor(fraction * static_cast<double>(counts_.size())));
  index = std::clamp<long long>(index, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(index)];
  ++total_;
}

double Histogram::bucket_lo(size_t index) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(index) / static_cast<double>(counts_.size());
}

std::string Histogram::render(size_t max_bar_width) const {
  size_t peak = 1;
  for (size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double lo = bucket_lo(i);
    const double hi = bucket_lo(i + 1);
    const size_t bar = counts_[i] * max_bar_width / peak;
    out << "[" << lo << ", " << hi << ") " << counts_[i] << " "
        << std::string(bar, '#') << '\n';
  }
  return out.str();
}

}  // namespace rtdls::stats
