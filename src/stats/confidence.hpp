// Confidence intervals over sets of simulation-run results, as used for the
// paper's per-point "average of ten simulations" with 95% CIs (Fig. 3b).
#pragma once

#include <vector>

#include "stats/running_stats.hpp"

namespace rtdls::stats {

/// A mean with a symmetric confidence half-width.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  ///< t* x stderr; 0 when fewer than 2 samples
  double confidence = 0.95;
  size_t samples = 0;

  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
};

/// Student-t confidence interval for the mean of `samples`.
ConfidenceInterval mean_confidence_interval(const std::vector<double>& samples,
                                            double confidence = 0.95);

/// Same, from an already-populated accumulator.
ConfidenceInterval mean_confidence_interval(const RunningStats& stats,
                                            double confidence = 0.95);

/// Paired-difference interval for (a_i - b_i); used to decide whether one
/// algorithm's reject ratio is significantly lower than another's when both
/// ran on identical workload traces.
ConfidenceInterval paired_difference_interval(const std::vector<double>& a,
                                              const std::vector<double>& b,
                                              double confidence = 0.95);

}  // namespace rtdls::stats
