#include "stats/student_t.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include "util/fp.hpp"

namespace rtdls::stats {

double log_gamma(double x) {
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static constexpr double kCoefficients[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps the approximation accurate for small x.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoefficients[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) {
    a += kCoefficients[i] / (x + static_cast<double>(i));
  }
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

namespace {

// Continued-fraction evaluation of the incomplete beta function
// (Numerical-Recipes style modified Lentz algorithm).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (fp::near_strict(delta, 1.0, fp::kConvergenceEps)) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("regularized_incomplete_beta: a, b must be > 0");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                           a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(log_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
  if (!(dof > 0.0)) {
    throw std::invalid_argument("student_t_cdf: dof must be > 0");
  }
  if (fp::exact_eq(t, 0.0)) return 0.5;
  const double x = dof / (dof + t * t);
  const double p = 0.5 * regularized_incomplete_beta(dof / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - p : p;
}

double student_t_quantile(double p, double dof) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("student_t_quantile: p must be in (0,1)");
  }
  if (!(dof > 0.0)) {
    throw std::invalid_argument("student_t_quantile: dof must be > 0");
  }
  if (fp::exact_eq(p, 0.5)) return 0.0;
  // Symmetric distribution: reduce to the upper half.
  if (p < 0.5) return -student_t_quantile(1.0 - p, dof);

  // Bracket, then bisect. The t quantile for p < 1 is finite; grow the
  // bracket geometrically until the CDF passes p.
  double lo = 0.0;
  double hi = 1.0;
  while (student_t_cdf(hi, dof) < p) {
    hi *= 2.0;
    if (hi > 1.0e12) break;  // p astronomically close to 1
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, dof) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (fp::near_strict(hi, lo, fp::kRelSlack * (1.0 + hi))) break;
  }
  return 0.5 * (lo + hi);
}

double student_t_critical(double confidence, double dof) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("student_t_critical: confidence must be in (0,1)");
  }
  return student_t_quantile(0.5 + confidence / 2.0, dof);
}

}  // namespace rtdls::stats
