// Batch summaries: quantiles and histograms over stored samples.
//
// RunningStats covers streaming moments; Summary keeps the raw samples for
// order statistics (median response time, p99 queue length, ...).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rtdls::stats {

/// Sample container with order-statistic queries.
class Summary {
 public:
  /// Adds one observation.
  void add(double x) { samples_.push_back(x); sorted_ = false; }

  /// Reserves storage for `n` observations.
  void reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double min() const;
  double max() const;

  /// Linear-interpolated quantile, q in [0, 1]. Throws when empty.
  double quantile(double q) const;

  /// Median (quantile 0.5).
  double median() const { return quantile(0.5); }

  /// Read-only access to the (unsorted) samples.
  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket. Used by metrics dumps (waiting-time distribution).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void add(double x);

  size_t bucket_count() const { return counts_.size(); }
  size_t count() const { return total_; }
  size_t bucket(size_t index) const { return counts_.at(index); }

  /// Lower edge of bucket `index`.
  double bucket_lo(size_t index) const;

  /// Renders "lo..hi : count" lines with a proportional bar.
  std::string render(size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace rtdls::stats
