// Numerically stable streaming moments (Welford / Chan parallel merge).
//
// Used for reject-ratio aggregation across simulation runs and for online
// metrics inside the simulator (response times, node utilization, ...).
#pragma once

#include <cstddef>
#include <limits>

namespace rtdls::stats {

/// Streaming mean/variance/min/max accumulator.
///
/// Welford's update keeps the variance stable for long simulations; merge()
/// implements Chan et al.'s pairwise combination so per-thread accumulators
/// can be reduced after a parallel sweep.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction step).
  void merge(const RunningStats& other);

  /// Number of observations.
  size_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Standard error of the mean (stddev / sqrt(n)).
  double stderror() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace rtdls::stats
