// Lock-light metrics registry: named monotonic counters, gauges, and
// fixed-bucket log-scale latency histograms.
//
// Write-path design: counter and histogram increments land in per-thread
// shards of relaxed atomics, so concurrent writers never contend on a lock
// or a shared cache line; a scrape (snapshot / prometheus_text) merges the
// live shards, the folded remains of exited threads, and a locked overflow
// table (metrics registered after a thread's shard was sized - the shard is
// regrown on that thread's next write). Gauges are single process-global
// atomic cells (set/add semantics don't shard).
//
// Histograms are log-scale: bucket k covers [lowest*g^k, lowest*g^(k+1))
// with growth g = 2^(1/buckets_per_octave), so quantile extraction has a
// bounded relative error of g-1 (~9% at the default 8 buckets per octave)
// regardless of the value range; exact min/max/sum/count ride along.
//
// Lifetime: Registry::global() is a leaked process-wide instance (reachable
// from a static pointer, so LeakSanitizer treats it as live). Independent
// Registry instances are supported (the daemon keeps its request-path
// metrics separate from the process registry); the shared state is
// refcounted so a thread that outlives a Registry folds its shard into
// state that is still alive.
//
// Handles (Counter/Gauge/Histogram) are trivially copyable values; a
// default-constructed handle no-ops, so instrumentation points don't need
// registration to have happened.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"

namespace rtdls::obs {

namespace detail {
struct RegistryState;
}  // namespace detail

class Registry;

/// Monotonic counter handle.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n) const;
  void inc() const { add(1); }

 private:
  friend class Registry;
  Counter(detail::RegistryState* state, std::uint32_t slot) : state_(state), slot_(slot) {}
  detail::RegistryState* state_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Point-in-time gauge handle (process-global cell, relaxed atomics).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) const {
    if (cell_ != nullptr) cell_->fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Log-scale bucket layout. The defaults cover [1, 2^32) with ~9% relative
/// bucket width - microsecond latencies from 1us to ~71min.
struct HistogramOptions {
  double lowest = 1.0;  ///< lower edge of bucket 0; smaller values clamp in
  std::uint32_t buckets_per_octave = 8;
  std::uint32_t bucket_count = 256;
};

/// Histogram handle. Carries its own bucket layout so the record path never
/// touches the registry's registration tables (which may grow concurrently).
class Histogram {
 public:
  Histogram() = default;
  void record(double value) const;

 private:
  friend class Registry;
  friend struct detail::RegistryState;
  detail::RegistryState* state_ = nullptr;
  std::uint32_t index_ = 0;       ///< per-histogram aux slot (count/sum/min/max)
  std::uint32_t first_slot_ = 0;  ///< first bucket slot in the shard bucket array
  std::uint32_t bucket_count_ = 0;
  double lowest_ = 1.0;
  double scale_ = 0.0;  ///< buckets_per_octave / ln 2
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

/// Merged histogram contents plus the layout needed to interpret buckets.
struct HistogramSample {
  std::string name;
  HistogramOptions options;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact; 0 when empty
  double max = 0.0;  ///< exact; 0 when empty
  std::vector<std::uint64_t> buckets;

  /// Quantile estimate (linear interpolation inside the landing bucket,
  /// clamped to [min, max]); q in [0, 1]. Returns 0 when empty.
  double quantile(double q) const;
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Leaked process-wide registry: the default home for instrumentation.
  static Registry& global();

  /// Returns the handle for `name`, registering it on first use.
  /// Re-registration with the same name yields the same underlying metric.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `options` only applies on first registration of `name`.
  Histogram histogram(std::string_view name, HistogramOptions options = {});

  /// Coherent-enough merge of all shards; concurrent writers may or may not
  /// be included, but nothing tears and counters never run backwards.
  Snapshot snapshot() const;

  /// Scrape conveniences (linear scans of the snapshot).
  std::uint64_t counter_value(std::string_view name) const;
  HistogramSample histogram_sample(std::string_view name) const;

  /// Prometheus text exposition (counter/gauge/summary families).
  std::string prometheus_text() const;

 private:
  std::shared_ptr<detail::RegistryState> state_;
};

/// Renders a snapshot in Prometheus text exposition format.
std::string prometheus_text(const Snapshot& snapshot);

}  // namespace rtdls::obs
