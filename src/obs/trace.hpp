// Structured trace-event recorder emitting Chrome trace-event JSON (the
// format Perfetto and chrome://tracing load directly).
//
// Usage:
//   RTDLS_TRACE_SCOPE("sim.arrival", "sim");     // complete ("X") span
//   RTDLS_TRACE_INSTANT("svc.timeout", "svc");   // instant ("i") event
//   obs::TraceRecorder::instance().start();      // arm recording
//   ... workload ...
//   obs::TraceRecorder::instance().write_json_file(path);
//
// Both macros compile to nothing when the build sets RTDLS_TRACE_ENABLED=0
// (CMake -DRTDLS_TRACE=OFF): no recorder symbols exist in that build, which
// the obs_trace_compiled_out ctest asserts with nm. When compiled in but
// not start()ed, the cost per site is one relaxed atomic load and a branch.
//
// Events land in per-thread ring buffers (fixed capacity, oldest events
// overwritten; the drop count is reported), so memory stays bounded no
// matter how long a traced run is. Name/category strings must be string
// literals (or otherwise outlive the recorder) - only the pointers are
// stored.
#pragma once

#include <cstddef>
#include <cstdint>

#if !defined(RTDLS_TRACE_ENABLED)
#define RTDLS_TRACE_ENABLED 1
#endif

#if RTDLS_TRACE_ENABLED

#include <atomic>
#include <iosfwd>
#include <string>

namespace rtdls::obs {

namespace detail {
/// Hot-path arm flag, read before anything else is touched.
extern std::atomic<bool> g_trace_armed;
inline bool trace_armed() { return g_trace_armed.load(std::memory_order_relaxed); }
}  // namespace detail

class TraceRecorder {
 public:
  /// Leaked process-wide recorder (same lifetime rationale as
  /// Registry::global()).
  static TraceRecorder& instance();

  /// Arms recording. `ring_capacity` sets the per-thread ring size in
  /// events for buffers created from now on (0 keeps the current setting;
  /// the default is 64Ki events, ~2.5 MiB per traced thread).
  void start(std::size_t ring_capacity = 0);

  /// Disarms recording; buffered events are kept for write_json.
  void stop();

  /// Drops all buffered events (and buffers of exited threads).
  void clear();

  bool armed() const { return detail::trace_armed(); }

  /// Nanoseconds since the recorder's epoch (process start, effectively).
  std::uint64_t now_ns() const;

  /// Records a complete span / an instant event on the calling thread.
  void complete(const char* name, const char* cat, std::uint64_t begin_ns,
                std::uint64_t end_ns);
  void instant(const char* name, const char* cat);

  /// Events currently buffered / overwritten by ring wrap-around.
  std::size_t event_count() const;
  std::size_t dropped() const;

  /// Writes the Chrome trace-event JSON object; returns events written.
  std::size_t write_json(std::ostream& out) const;

  /// write_json to `path`; false (with `error` filled) on I/O failure.
  bool write_json_file(const std::string& path, std::string* error = nullptr) const;

 private:
  TraceRecorder();
  struct Impl;
  Impl* impl_;
};

/// RAII span: measures construction-to-destruction when the recorder is
/// armed at construction, otherwise costs one load + branch per end.
class TraceScope {
 public:
  TraceScope(const char* name, const char* cat) : name_(name), cat_(cat) {
    if (detail::trace_armed()) begin_ns_ = TraceRecorder::instance().now_ns();
  }
  ~TraceScope() {
    if (begin_ns_ != kDisarmed) {
      TraceRecorder& recorder = TraceRecorder::instance();
      recorder.complete(name_, cat_, begin_ns_, recorder.now_ns());
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  static constexpr std::uint64_t kDisarmed = ~std::uint64_t{0};
  const char* name_;
  const char* cat_;
  std::uint64_t begin_ns_ = kDisarmed;
};

}  // namespace rtdls::obs

#define RTDLS_TRACE_CONCAT_IMPL(a, b) a##b
#define RTDLS_TRACE_CONCAT(a, b) RTDLS_TRACE_CONCAT_IMPL(a, b)
#define RTDLS_TRACE_SCOPE(name, cat) \
  ::rtdls::obs::TraceScope RTDLS_TRACE_CONCAT(rtdls_trace_scope_, __LINE__)(name, cat)
#define RTDLS_TRACE_INSTANT(name, cat)                                   \
  do {                                                                   \
    if (::rtdls::obs::detail::trace_armed()) {                           \
      ::rtdls::obs::TraceRecorder::instance().instant((name), (cat));    \
    }                                                                    \
  } while (false)

#else  // !RTDLS_TRACE_ENABLED

#define RTDLS_TRACE_SCOPE(name, cat) \
  do {                               \
  } while (false)
#define RTDLS_TRACE_INSTANT(name, cat) \
  do {                                 \
  } while (false)

#endif  // RTDLS_TRACE_ENABLED
