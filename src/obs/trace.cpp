#include "obs/trace.hpp"

#if RTDLS_TRACE_ENABLED

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/annotations.hpp"

namespace rtdls::obs {

namespace detail {
std::atomic<bool> g_trace_armed{false};
}  // namespace detail

namespace {

constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  char phase = 'X';
};

/// One thread's ring. The mutex is uncontended on the record path (only the
/// owning thread writes; a flush/clear walks all buffers) - and must rank
/// above the recorder registry mutex it is nested under during flushes.
struct TraceBuffer {
  std::mutex ring_mutex RTDLS_LOCK_LEVEL(40);
  std::vector<TraceEvent> ring;
  std::size_t next = 0;  ///< total events recorded; ring index = next % size
  std::uint32_t tid = 0;
};

void escape_json(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", static_cast<unsigned>(c));
      out += buffer;
    } else {
      out += c;
    }
  }
}

}  // namespace

struct TraceRecorder::Impl {
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  mutable std::mutex recorder_mutex RTDLS_LOCK_LEVEL(30);  ///< buffer registry + capacity
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::size_t ring_capacity = kDefaultRingCapacity;
  std::uint32_t next_tid = 1;

  TraceBuffer& local_buffer();
  void record(const TraceEvent& event);
};

namespace {
thread_local std::shared_ptr<TraceBuffer> t_buffer;
}  // namespace

TraceBuffer& TraceRecorder::Impl::local_buffer() {
  // The thread-local shared_ptr and the registry both hold the buffer, so
  // events from exited threads survive until clear().
  if (t_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(recorder_mutex);
    auto buffer = std::make_shared<TraceBuffer>();
    buffer->ring.resize(ring_capacity);
    buffer->tid = next_tid++;
    buffers.push_back(buffer);
    t_buffer = std::move(buffer);
  }
  return *t_buffer;
}

void TraceRecorder::Impl::record(const TraceEvent& event) {
  TraceBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.ring_mutex);
  if (!buffer.ring.empty()) {
    buffer.ring[buffer.next % buffer.ring.size()] = event;
    ++buffer.next;
  }
}

TraceRecorder::TraceRecorder() : impl_(new Impl()) {}

TraceRecorder& TraceRecorder::instance() {
  // Leaked on purpose; see Registry::global().
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::start(std::size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(impl_->recorder_mutex);
    if (ring_capacity > 0) impl_->ring_capacity = ring_capacity;
  }
  detail::g_trace_armed.store(true, std::memory_order_relaxed);
}

void TraceRecorder::stop() { detail::g_trace_armed.store(false, std::memory_order_relaxed); }

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(impl_->recorder_mutex);
  for (auto it = impl_->buffers.begin(); it != impl_->buffers.end();) {
    // A buffer only referenced by the registry belongs to an exited thread.
    if (it->use_count() == 1) {
      it = impl_->buffers.erase(it);
    } else {
      std::lock_guard<std::mutex> buffer_lock((*it)->ring_mutex);
      (*it)->next = 0;
      ++it;
    }
  }
}

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - impl_->epoch)
                                        .count());
}

void TraceRecorder::complete(const char* name, const char* cat, std::uint64_t begin_ns,
                             std::uint64_t end_ns) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ts_ns = begin_ns;
  event.dur_ns = end_ns >= begin_ns ? end_ns - begin_ns : 0;
  event.phase = 'X';
  impl_->record(event);
}

void TraceRecorder::instant(const char* name, const char* cat) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ts_ns = now_ns();
  event.phase = 'i';
  impl_->record(event);
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->recorder_mutex);
  std::size_t total = 0;
  for (const auto& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->ring_mutex);
    total += std::min(buffer->next, buffer->ring.size());
  }
  return total;
}

std::size_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->recorder_mutex);
  std::size_t total = 0;
  for (const auto& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->ring_mutex);
    if (buffer->next > buffer->ring.size()) total += buffer->next - buffer->ring.size();
  }
  return total;
}

std::size_t TraceRecorder::write_json(std::ostream& out) const {
  struct Row {
    TraceEvent event;
    std::uint32_t tid;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(impl_->recorder_mutex);
    for (const auto& buffer : impl_->buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->ring_mutex);
      const std::size_t kept = std::min(buffer->next, buffer->ring.size());
      for (std::size_t i = 0; i < kept; ++i) {
        rows.push_back(Row{buffer->ring[i], buffer->tid});
      }
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.event.ts_ns < b.event.ts_ns; });

  std::string body;
  body.reserve(rows.size() * 96 + 64);
  body += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buffer[160];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TraceEvent& event = rows[i].event;
    if (i > 0) body += ',';
    body += "{\"name\":\"";
    escape_json(body, event.name);
    body += "\",\"cat\":\"";
    escape_json(body, event.cat);
    body += "\",\"ph\":\"";
    body += event.phase;
    body += '"';
    // Chrome trace timestamps are microseconds; fractional values are fine.
    std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f",
                  static_cast<double>(event.ts_ns) / 1000.0);
    body += buffer;
    if (event.phase == 'X') {
      std::snprintf(buffer, sizeof(buffer), ",\"dur\":%.3f",
                    static_cast<double>(event.dur_ns) / 1000.0);
      body += buffer;
    } else {
      body += ",\"s\":\"t\"";  // instant scope: thread
    }
    std::snprintf(buffer, sizeof(buffer), ",\"pid\":1,\"tid\":%u}", rows[i].tid);
    body += buffer;
  }
  body += "]}";
  out << body;
  return rows.size();
}

bool TraceRecorder::write_json_file(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "trace: cannot open " + path;
    return false;
  }
  write_json(out);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "trace: write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace rtdls::obs

#endif  // RTDLS_TRACE_ENABLED
