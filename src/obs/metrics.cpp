#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace rtdls::obs {

namespace detail {

namespace {

constexpr std::uint64_t kPosInfBits = 0x7FF0000000000000ull;
constexpr std::uint64_t kNegInfBits = 0xFFF0000000000000ull;

/// Monotone CAS of a double stored as bits; keep = true keeps the smaller.
template <bool Min>
void update_extreme(std::atomic<std::uint64_t>& bits, double value) {
  std::uint64_t current = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double seen = std::bit_cast<double>(current);
    const bool improves = Min ? value < seen : value > seen;
    if (!improves) return;
    if (bits.compare_exchange_weak(current, std::bit_cast<std::uint64_t>(value),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

/// One thread's write arena: arrays of relaxed atomics, sized to the
/// registration counts at creation. A write to a slot past the end regrows
/// the shard (fold + replace) under the registry mutex - rare, since
/// registration normally precedes steady-state traffic.
struct Shard {
  Shard(std::size_t counter_slots, std::size_t bucket_slots, std::size_t hist_slots)
      : counters(counter_slots),
        hist_buckets(bucket_slots),
        hist_count(hist_slots),
        hist_sum(hist_slots),
        hist_min_bits(hist_slots),
        hist_max_bits(hist_slots) {
    for (auto& b : hist_min_bits) b.store(kPosInfBits, std::memory_order_relaxed);
    for (auto& b : hist_max_bits) b.store(kNegInfBits, std::memory_order_relaxed);
  }

  std::vector<std::atomic<std::uint64_t>> counters;
  std::vector<std::atomic<std::uint64_t>> hist_buckets;  ///< concatenated per histogram
  std::vector<std::atomic<std::uint64_t>> hist_count;
  std::vector<std::atomic<double>> hist_sum;
  std::vector<std::atomic<std::uint64_t>> hist_min_bits;
  std::vector<std::atomic<std::uint64_t>> hist_max_bits;
};

struct RegistryState : std::enable_shared_from_this<RegistryState> {
  struct HistInfo {
    std::string name;
    HistogramOptions options;
    std::uint32_t first_slot = 0;
  };

  // Guards registration tables, the live-shard list, and the folded remains;
  // never held across user code. Nested only under older locks (the daemon
  // bumps counters while holding its level-20 shard mutex), hence the
  // explicit stray rank.
  mutable std::mutex registry_mutex RTDLS_LOCK_LEVEL(30);

  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> gauge_cells;
  std::vector<HistInfo> hists;
  std::size_t bucket_slots = 0;

  std::vector<std::shared_ptr<Shard>> shards;

  // Contributions from exited threads and regrown shards (plain values,
  // only touched under `registry_mutex`).
  std::vector<std::uint64_t> folded_counters;
  std::vector<std::uint64_t> folded_hist_buckets;
  std::vector<std::uint64_t> folded_hist_count;
  std::vector<double> folded_hist_sum;
  std::vector<double> folded_hist_min;
  std::vector<double> folded_hist_max;

  void fold_locked(const Shard& shard) {
    folded_counters.resize(std::max(folded_counters.size(), shard.counters.size()), 0);
    folded_hist_buckets.resize(std::max(folded_hist_buckets.size(), shard.hist_buckets.size()),
                               0);
    const std::size_t hist_slots = shard.hist_count.size();
    if (folded_hist_count.size() < hist_slots) {
      folded_hist_count.resize(hist_slots, 0);
      folded_hist_sum.resize(hist_slots, 0.0);
      folded_hist_min.resize(hist_slots, std::numeric_limits<double>::infinity());
      folded_hist_max.resize(hist_slots, -std::numeric_limits<double>::infinity());
    }
    for (std::size_t i = 0; i < shard.counters.size(); ++i) {
      folded_counters[i] += shard.counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < shard.hist_buckets.size(); ++i) {
      folded_hist_buckets[i] += shard.hist_buckets[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < hist_slots; ++i) {
      folded_hist_count[i] += shard.hist_count[i].load(std::memory_order_relaxed);
      folded_hist_sum[i] += shard.hist_sum[i].load(std::memory_order_relaxed);
      folded_hist_min[i] = std::min(
          folded_hist_min[i],
          std::bit_cast<double>(shard.hist_min_bits[i].load(std::memory_order_relaxed)));
      folded_hist_max[i] = std::max(
          folded_hist_max[i],
          std::bit_cast<double>(shard.hist_max_bits[i].load(std::memory_order_relaxed)));
    }
  }

  void drop_shard_locked(const Shard* shard) {
    for (auto it = shards.begin(); it != shards.end(); ++it) {
      if (it->get() == shard) {
        shards.erase(it);
        return;
      }
    }
  }

  Shard& local_shard(std::size_t counter_slots_needed, std::size_t bucket_slots_needed,
                     std::size_t hist_slots_needed);
  void counter_add(std::uint32_t slot, std::uint64_t n);
  void hist_record(const Histogram& h, double value);
};

namespace {

struct LocalEntry {
  std::shared_ptr<RegistryState> state;  ///< keeps the state past Registry death
  std::shared_ptr<Shard> shard;
};

/// Per-thread shard table; the destructor folds every shard back into its
/// (still-alive, via the strong ref) registry so exited threads keep
/// counting and the live-shard list stays bounded by live threads.
struct LocalShards {
  std::vector<LocalEntry> entries;

  ~LocalShards() {
    for (LocalEntry& entry : entries) {
      std::lock_guard<std::mutex> lock(entry.state->registry_mutex);
      entry.state->fold_locked(*entry.shard);
      entry.state->drop_shard_locked(entry.shard.get());
    }
  }
};

thread_local LocalShards t_shards;

}  // namespace

Shard& RegistryState::local_shard(std::size_t counter_slots_needed,
                                  std::size_t bucket_slots_needed,
                                  std::size_t hist_slots_needed) {
  LocalEntry* entry = nullptr;
  for (LocalEntry& candidate : t_shards.entries) {
    if (candidate.state.get() == this) {
      entry = &candidate;
      break;
    }
  }
  if (entry != nullptr && entry->shard->counters.size() > counter_slots_needed &&
      entry->shard->hist_buckets.size() >= bucket_slots_needed &&
      entry->shard->hist_count.size() > hist_slots_needed) {
    return *entry->shard;
  }

  // Create (or regrow) this thread's shard, sized to the current
  // registration counts - at least what this write needs.
  std::lock_guard<std::mutex> lock(registry_mutex);
  const std::size_t counter_slots = std::max(counter_names.size(), counter_slots_needed + 1);
  const std::size_t buckets = std::max(bucket_slots, bucket_slots_needed);
  const std::size_t hist_slots = std::max(hists.size(), hist_slots_needed + 1);
  auto grown = std::make_shared<Shard>(counter_slots, buckets, hist_slots);
  if (entry != nullptr) {
    fold_locked(*entry->shard);
    drop_shard_locked(entry->shard.get());
    entry->shard = grown;
  } else {
    t_shards.entries.push_back(LocalEntry{shared_from_this(), grown});
    entry = &t_shards.entries.back();
  }
  shards.push_back(grown);
  return *entry->shard;
}

void RegistryState::counter_add(std::uint32_t slot, std::uint64_t n) {
  Shard& shard = local_shard(slot, 0, 0);
  shard.counters[slot].fetch_add(n, std::memory_order_relaxed);
}

void RegistryState::hist_record(const Histogram& h, double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  std::size_t bucket = 0;
  if (value > h.lowest_) {
    const double raw = std::floor(std::log(value / h.lowest_) * h.scale_);
    bucket = std::min<std::size_t>(static_cast<std::size_t>(std::max(raw, 0.0)),
                                   h.bucket_count_ - 1);
  }
  Shard& shard =
      local_shard(0, static_cast<std::size_t>(h.first_slot_) + h.bucket_count_, h.index_);
  shard.hist_buckets[h.first_slot_ + bucket].fetch_add(1, std::memory_order_relaxed);
  shard.hist_count[h.index_].fetch_add(1, std::memory_order_relaxed);
  shard.hist_sum[h.index_].fetch_add(value, std::memory_order_relaxed);
  update_extreme<true>(shard.hist_min_bits[h.index_], value);
  update_extreme<false>(shard.hist_max_bits[h.index_], value);
}

}  // namespace detail

// --- handles ----------------------------------------------------------------

void Counter::add(std::uint64_t n) const {
  if (state_ == nullptr || n == 0) return;
  state_->counter_add(slot_, n);
}

void Histogram::record(double value) const {
  if (state_ == nullptr) return;
  state_->hist_record(*this, value);
}

// --- registry ---------------------------------------------------------------

Registry::Registry() : state_(std::make_shared<detail::RegistryState>()) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  // Leaked on purpose: reachable from this static pointer (so LSan counts it
  // live) and immune to static-destruction ordering against late threads.
  static Registry* registry = new Registry();
  return *registry;
}

Counter Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(state_->registry_mutex);
  for (std::size_t i = 0; i < state_->counter_names.size(); ++i) {
    if (state_->counter_names[i] == name) {
      return Counter(state_.get(), static_cast<std::uint32_t>(i));
    }
  }
  state_->counter_names.emplace_back(name);
  return Counter(state_.get(), static_cast<std::uint32_t>(state_->counter_names.size() - 1));
}

Gauge Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(state_->registry_mutex);
  for (std::size_t i = 0; i < state_->gauge_names.size(); ++i) {
    if (state_->gauge_names[i] == name) return Gauge(state_->gauge_cells[i].get());
  }
  state_->gauge_names.emplace_back(name);
  state_->gauge_cells.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
  return Gauge(state_->gauge_cells.back().get());
}

Histogram Registry::histogram(std::string_view name, HistogramOptions options) {
  std::lock_guard<std::mutex> lock(state_->registry_mutex);
  const detail::RegistryState::HistInfo* info = nullptr;
  std::size_t index = 0;
  for (std::size_t i = 0; i < state_->hists.size(); ++i) {
    if (state_->hists[i].name == name) {
      info = &state_->hists[i];
      index = i;
      break;
    }
  }
  if (info == nullptr) {
    detail::RegistryState::HistInfo fresh;
    fresh.name = std::string(name);
    fresh.options = options;
    if (fresh.options.bucket_count == 0) fresh.options.bucket_count = 1;
    if (fresh.options.buckets_per_octave == 0) fresh.options.buckets_per_octave = 1;
    if (!(fresh.options.lowest > 0.0)) fresh.options.lowest = 1.0;
    fresh.first_slot = static_cast<std::uint32_t>(state_->bucket_slots);
    state_->bucket_slots += fresh.options.bucket_count;
    state_->hists.push_back(std::move(fresh));
    index = state_->hists.size() - 1;
    info = &state_->hists[index];
  }
  Histogram h;
  h.state_ = state_.get();
  h.index_ = static_cast<std::uint32_t>(index);
  h.first_slot_ = info->first_slot;
  h.bucket_count_ = info->options.bucket_count;
  h.lowest_ = info->options.lowest;
  h.scale_ = static_cast<double>(info->options.buckets_per_octave) / std::log(2.0);
  return h;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(state_->registry_mutex);

  const std::size_t n_counters = state_->counter_names.size();
  std::vector<std::uint64_t> counters(n_counters, 0);
  for (std::size_t i = 0; i < state_->folded_counters.size() && i < n_counters; ++i) {
    counters[i] = state_->folded_counters[i];
  }

  const std::size_t n_hists = state_->hists.size();
  std::vector<std::uint64_t> buckets(state_->bucket_slots, 0);
  std::vector<std::uint64_t> hist_count(n_hists, 0);
  std::vector<double> hist_sum(n_hists, 0.0);
  std::vector<double> hist_min(n_hists, std::numeric_limits<double>::infinity());
  std::vector<double> hist_max(n_hists, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < state_->folded_hist_buckets.size() && i < buckets.size(); ++i) {
    buckets[i] = state_->folded_hist_buckets[i];
  }
  for (std::size_t i = 0; i < state_->folded_hist_count.size() && i < n_hists; ++i) {
    hist_count[i] = state_->folded_hist_count[i];
    hist_sum[i] = state_->folded_hist_sum[i];
    hist_min[i] = state_->folded_hist_min[i];
    hist_max[i] = state_->folded_hist_max[i];
  }

  for (const auto& shard : state_->shards) {
    const std::size_t nc = std::min(shard->counters.size(), n_counters);
    for (std::size_t i = 0; i < nc; ++i) {
      counters[i] += shard->counters[i].load(std::memory_order_relaxed);
    }
    const std::size_t nb = std::min(shard->hist_buckets.size(), buckets.size());
    for (std::size_t i = 0; i < nb; ++i) {
      buckets[i] += shard->hist_buckets[i].load(std::memory_order_relaxed);
    }
    const std::size_t nh = std::min(shard->hist_count.size(), n_hists);
    for (std::size_t i = 0; i < nh; ++i) {
      hist_count[i] += shard->hist_count[i].load(std::memory_order_relaxed);
      hist_sum[i] += shard->hist_sum[i].load(std::memory_order_relaxed);
      hist_min[i] = std::min(
          hist_min[i],
          std::bit_cast<double>(shard->hist_min_bits[i].load(std::memory_order_relaxed)));
      hist_max[i] = std::max(
          hist_max[i],
          std::bit_cast<double>(shard->hist_max_bits[i].load(std::memory_order_relaxed)));
    }
  }

  out.counters.reserve(n_counters);
  for (std::size_t i = 0; i < n_counters; ++i) {
    out.counters.push_back(CounterSample{state_->counter_names[i], counters[i]});
  }
  out.gauges.reserve(state_->gauge_names.size());
  for (std::size_t i = 0; i < state_->gauge_names.size(); ++i) {
    out.gauges.push_back(GaugeSample{
        state_->gauge_names[i], state_->gauge_cells[i]->load(std::memory_order_relaxed)});
  }
  out.histograms.reserve(n_hists);
  for (std::size_t i = 0; i < n_hists; ++i) {
    const auto& info = state_->hists[i];
    HistogramSample sample;
    sample.name = info.name;
    sample.options = info.options;
    sample.count = hist_count[i];
    sample.sum = hist_sum[i];
    sample.min = hist_count[i] > 0 ? hist_min[i] : 0.0;
    sample.max = hist_count[i] > 0 ? hist_max[i] : 0.0;
    sample.buckets.assign(buckets.begin() + info.first_slot,
                          buckets.begin() + info.first_slot + info.options.bucket_count);
    out.histograms.push_back(std::move(sample));
  }
  return out;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const Snapshot snap = snapshot();
  for (const CounterSample& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

HistogramSample Registry::histogram_sample(std::string_view name) const {
  Snapshot snap = snapshot();
  for (HistogramSample& h : snap.histograms) {
    if (h.name == name) return std::move(h);
  }
  return HistogramSample{};
}

std::string Registry::prometheus_text() const { return obs::prometheus_text(snapshot()); }

// --- samples ----------------------------------------------------------------

double HistogramSample::quantile(double q) const {
  if (count == 0) return 0.0;
  // The extremes are tracked exactly; don't pay the bucket-width error there.
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank in (0, count]; the r-th smallest recorded value.
  const double rank = std::max(q * static_cast<double>(count), 1.0);
  const double per_octave = static_cast<double>(options.buckets_per_octave);
  std::uint64_t cumulative = 0;
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    if (buckets[k] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[k];
    if (static_cast<double>(cumulative) >= rank) {
      // Linear interpolation inside the landing bucket. Bucket 0 also
      // catches values below `lowest`, so its lower edge is taken as 0.
      const double lo = k == 0 ? 0.0
                               : options.lowest * std::exp2(static_cast<double>(k) / per_octave);
      const double hi = options.lowest * std::exp2(static_cast<double>(k + 1) / per_octave);
      const double frac = (rank - before) / static_cast<double>(buckets[k]);
      return std::clamp(lo + (hi - lo) * frac, min, max);
    }
  }
  return max;
}

// --- exposition -------------------------------------------------------------

namespace {

void append_double(std::string& out, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  out += buffer;
}

}  // namespace

std::string prometheus_text(const Snapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    out += "# TYPE " + h.name + " summary\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      out += h.name + "{quantile=\"";
      append_double(out, q);
      out += "\"} ";
      append_double(out, h.quantile(q));
      out += "\n";
    }
    out += h.name + "_sum ";
    append_double(out, h.sum);
    out += "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
    out += "# TYPE " + h.name + "_max gauge\n";
    out += h.name + "_max ";
    append_double(out, h.max);
    out += "\n";
  }
  return out;
}

}  // namespace rtdls::obs
