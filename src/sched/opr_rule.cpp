// Prior-work baselines from [22] (Lin et al., RTSS'07):
//
//  * OPR-MN ("optimal partitioning rule, minimum nodes"): the task waits
//    until its n nodes are simultaneously available at r_n, wasting the
//    earlier nodes' time as Inserted Idle Time; execution time is the
//    homogeneous E(sigma, n). The n search is shared with the DLT rule
//    (the Section 4.1.1 B closed form is common to both).
//  * OPR-AN ("all nodes"): every task gets the whole cluster; tasks
//    serialize and no IITs arise, at the cost of eliminating parallelism
//    between tasks.
#include <algorithm>
#include <vector>

#include "dlt/homogeneous.hpp"
#include "util/fp.hpp"
#include "dlt/nmin.hpp"
#include "sched/het_planner.hpp"
#include "sched/rule_detail.hpp"

namespace rtdls::sched {

namespace {

/// Fills the OPR plan: all `assigned` nodes reserved from r_n to est.
TaskPlan make_opr_plan(const PlanRequest& request, std::size_t assigned, Time rn) {
  const workload::Task& task = *request.task;
  const std::vector<Time>& free_times = *request.free_times;
  const Time est = rn + dlt::homogeneous_execution_time(request.params, task.sigma(),
                                                        assigned);
  TaskPlan plan;
  plan.task = task.id;
  plan.nodes = assigned;
  plan.available.assign(free_times.begin(),
                        free_times.begin() + static_cast<std::ptrdiff_t>(assigned));
  plan.reserve_from.assign(assigned, rn);  // simultaneous allocation: IITs wasted
  plan.node_release.assign(assigned, est);
  dlt::homogeneous_partition_into(request.params, assigned, plan.alpha);
  plan.est_completion = est;
  return plan;
}

class OprMnRule final : public PartitionRule {
 public:
  explicit OprMnRule(NodeSearch search) : search_(search) {}

  PlanResult plan(const PlanRequest& request) const override {
    detail::validate_request(request);
    if (request.params.heterogeneous()) return het::plan_opr_mn(request, het_scratch_);
    const workload::Task& task = *request.task;
    const std::vector<Time>& free_times = *request.free_times;
    const Time deadline = task.abs_deadline();

    const auto [assigned, reason] =
        detail::resolve_node_count(search_, request.params, task.sigma(), deadline, free_times);
    if (reason != dlt::Infeasibility::kNone) return PlanResult::infeasible(reason);

    PlanResult result;
    result.plan = make_opr_plan(request, assigned, free_times[assigned - 1]);
    if (fp::after(result.plan.est_completion, deadline)) {
      // Live under kOptimistic; floating-point guard under kIterative.
      return PlanResult::infeasible(dlt::Infeasibility::kNeedsMoreNodes);
    }
    return result;
  }

  std::string_view name() const override { return "OPR-MN"; }

  // Same first-position hard rejections as the DLT rule (shared
  // resolve_node_count / het scan).
  bool hard_rejects_at_front() const override { return true; }

 private:
  NodeSearch search_;
  mutable het::PlannerScratch het_scratch_;
};

class OprAnRule final : public PartitionRule {
 public:
  PlanResult plan(const PlanRequest& request) const override {
    detail::validate_request(request);
    if (request.params.heterogeneous()) return het::plan_opr_an(request, het_scratch_);
    const workload::Task& task = *request.task;
    const std::vector<Time>& free_times = *request.free_times;
    const std::size_t n = free_times.size();
    const Time rn = free_times.back();
    const Time deadline = task.abs_deadline();

    if (deadline <= rn) return PlanResult::infeasible(dlt::Infeasibility::kDeadlinePassed);

    PlanResult result;
    result.plan = make_opr_plan(request, n, rn);
    if (fp::after(result.plan.est_completion, deadline)) {
      return PlanResult::infeasible(dlt::Infeasibility::kNeedsMoreNodes);
    }
    return result;
  }

  std::string_view name() const override { return "OPR-AN"; }

 private:
  mutable het::PlannerScratch het_scratch_;
};

}  // namespace

std::unique_ptr<PartitionRule> make_opr_mn_rule(NodeSearch search) {
  return std::make_unique<OprMnRule>(search);
}

std::unique_ptr<PartitionRule> make_opr_an_rule() {
  return std::make_unique<OprAnRule>();
}

}  // namespace rtdls::sched
