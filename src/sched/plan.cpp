#include "sched/plan.hpp"

#include <algorithm>
#include <cmath>
#include "util/fp.hpp"

namespace rtdls::sched {

bool TaskPlan::consistent() const {
  if (nodes == 0) return false;
  if (available.size() != nodes || reserve_from.size() != nodes ||
      node_release.size() != nodes || alpha.size() != nodes) {
    return false;
  }
  if (!node_ids.empty() && node_ids.size() != nodes) return false;
  if (!node_cps.empty() && node_cps.size() != nodes) return false;
  for (double cps : node_cps) {
    if (!(cps > 0.0)) return false;
  }
  if (!std::is_sorted(available.begin(), available.end())) return false;
  double alpha_sum = 0.0;
  for (double a : alpha) {
    if (!(a > 0.0) || fp::after(a, 1.0, fp::kRelSlack)) return false;
    alpha_sum += a;
  }
  if (!fp::near(alpha_sum, 1.0)) return false;
  for (std::size_t i = 0; i < nodes; ++i) {
    // A reservation may not begin before the node is available.
    if (fp::before(reserve_from[i], available[i])) return false;
    if (fp::before(node_release[i], reserve_from[i])) return false;
  }
  return true;
}

}  // namespace rtdls::sched
