#include "sched/plan.hpp"

#include <algorithm>
#include <cmath>

namespace rtdls::sched {

bool TaskPlan::consistent() const {
  if (nodes == 0) return false;
  if (available.size() != nodes || reserve_from.size() != nodes ||
      node_release.size() != nodes || alpha.size() != nodes) {
    return false;
  }
  if (!node_ids.empty() && node_ids.size() != nodes) return false;
  if (!node_cps.empty() && node_cps.size() != nodes) return false;
  for (double cps : node_cps) {
    if (!(cps > 0.0)) return false;
  }
  if (!std::is_sorted(available.begin(), available.end())) return false;
  double alpha_sum = 0.0;
  for (double a : alpha) {
    if (!(a > 0.0) || a > 1.0 + 1e-12) return false;
    alpha_sum += a;
  }
  if (std::fabs(alpha_sum - 1.0) > 1e-9) return false;
  for (std::size_t i = 0; i < nodes; ++i) {
    // A reservation may not begin before the node is available.
    if (reserve_from[i] + 1e-9 < available[i]) return false;
    if (node_release[i] + 1e-9 < reserve_from[i]) return false;
  }
  return true;
}

}  // namespace rtdls::sched
