#include "sched/het_planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "cluster/calendar.hpp"
#include "util/fp.hpp"
#include "cluster/speed_profile.hpp"
#include "sched/rule_detail.hpp"

namespace rtdls::sched::het {

namespace {

/// Fills scratch.cps with the actual speed at every availability position.
void gather_cps(const PlanRequest& request, PlannerScratch& scratch) {
  const std::vector<cluster::NodeId>& ids = *request.node_ids;
  scratch.cps.resize(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    scratch.cps[i] = request.params.node_cps(ids[i]);
  }
}

/// Copies the chosen prefix's identity columns into the plan.
void pin_prefix(const PlanRequest& request, const PlannerScratch& scratch, std::size_t n,
                TaskPlan& plan) {
  const std::vector<cluster::NodeId>& ids = *request.node_ids;
  plan.node_ids.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(n));
  plan.node_cps.assign(scratch.cps.begin(),
                       scratch.cps.begin() + static_cast<std::ptrdiff_t>(n));
}

/// The scan's shared hard-rejection checks at prefix end r_n. Both only
/// worsen as r_n grows, so hitting one aborts the whole scan (mirroring the
/// homogeneous resolver's early aborts).
dlt::Infeasibility hard_reject(double sigma, double cms, Time deadline, Time rn) {
  const Time slack = deadline - rn;
  if (slack <= 0.0) return dlt::Infeasibility::kDeadlinePassed;
  if (sigma * cms >= slack) return dlt::Infeasibility::kTransmissionTooLong;
  return dlt::Infeasibility::kNone;
}

/// Extends scratch.cps with actual speeds up to position `upto` (exclusive
/// prefix length). The scan gathers lazily so a plan touching k positions
/// never reads the other N - k ids.
void gather_cps_prefix(const PlanRequest& request, PlannerScratch& scratch,
                       std::size_t upto) {
  const std::vector<cluster::NodeId>& ids = *request.node_ids;
  for (std::size_t i = scratch.cps.size(); i < upto; ++i) {
    scratch.cps.push_back(request.params.node_cps(ids[i]));
  }
}

/// The position-by-position walk hard-checks every prefix end and returns
/// the reason found at the FIRST failing position; the jump scan only
/// checks its landings. Hard rejection fires iff deadline - r_n <= sigma*cms
/// (slack <= 0 implies it), which is monotone in r_n, so the first firing
/// position in (clear, landing] is recovered by binary search.
/// `known_reason` was already evaluated at `landing`, so the common case
/// (the range is a single position) costs no extra check.
dlt::Infeasibility first_hard_reason(double sigma, double cms, Time deadline,
                                     const std::vector<Time>& free_times,
                                     std::size_t clear, std::size_t landing,
                                     dlt::Infeasibility known_reason) {
  std::size_t lo = clear + 1;
  std::size_t hi = landing;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (hard_reject(sigma, cms, deadline, free_times[mid - 1]) ==
        dlt::Infeasibility::kNone) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == landing) return known_reason;
  return hard_reject(sigma, cms, deadline, free_times[lo - 1]);
}

/// First-feasible availability-prefix scan shared by the DLT-IIT and OPR-MN
/// het planners, outcome-identical to the linear n = 1..N walk those rules
/// historically ran (same accept position, same reject reason), with the
/// work-conservation capacity prune turned into a provable lower-bound
/// jump:
///
///  * Work conservation makes capacity(n) = sum_{i<=n} (deadline-r_i)/cps_i
///    >= sigma necessary for any prefix to carry the load, so no partition
///    is built before the first capacity crossing.
///  * One more node contributes at most (deadline - r_n)/cps_floor (release
///    times only grow along the prefix, cps_floor is the profile's fastest
///    unit cost), so from a position short of the crossing the scan jumps
///    straight to landing = n + ceil((sigma - capacity)/that bound) - the
///    galloped starting index. Skipped positions still accumulate their
///    exact capacity terms in scan order (an add and a compare each - the
///    crossing position stays bit-identical to the linear walk's), but are
///    not hard-checked and never build partitions.
///  * Hard rejection is monotone in r_n, so a clean landing proves every
///    skipped position clean, and a rejecting landing recovers the linear
///    scan's exact first-failure reason via first_hard_reason.
///  * From the crossing on (capacity terms stay positive wherever the hard
///    checks pass, so the prune can never re-arm) the scan is the plain
///    linear walk: hard-check, build via `estimate_at`, accept the first
///    prefix whose estimate meets the deadline.
///
/// `estimate_at(n)` must leave the caller's scratch (partition/alpha/batch)
/// in the state matching position n; scratch.cps is gathered up to every
/// position handed to it. Positions are handed out in strictly increasing
/// order, which is what lets the estimate lambdas ride scratch.batch's
/// shared alpha cursor (begun here) instead of re-running the Eq. (4)-(5)
/// chain from scratch per candidate. Returns the accepted n, or (0, reason).
template <typename EstimateAt>
std::pair<std::size_t, dlt::Infeasibility> first_feasible_prefix(
    const PlanRequest& request, PlannerScratch& scratch, double sigma, Time deadline,
    EstimateAt&& estimate_at) {
  const std::vector<Time>& free_times = *request.free_times;
  const double cms = request.params.cms;
  const std::size_t cluster_size = free_times.size();
  ++scratch.counters.resolver_walks;
  scratch.cps.clear();
  scratch.batch.begin_walk(cms, sigma);
  // Fastest unit cost of the profile: the denominator of the jump bound
  // (cached inside SpeedProfile, so this is O(1)).
  const double cps_floor = request.params.speed_profile->min_cps();

  std::size_t clear = 0;    // positions 1..clear passed the hard checks
  std::size_t summed = 0;   // capacity covers positions 1..summed
  double capacity = 0.0;
  std::size_t crossing = 0;  // first position with capacity >= sigma
  std::size_t target = 1;    // next jump landing to hard-check

  // Phase 1: gallop to the capacity crossing.
  while (crossing == 0) {
    bool crossed = false;
    while (summed < target) {
      gather_cps_prefix(request, scratch, summed + 1);
      capacity += (deadline - free_times[summed]) / scratch.cps[summed];
      ++summed;
      if (capacity >= sigma) {
        crossed = true;
        break;
      }
    }
    const std::size_t landing = crossed ? summed : target;
    const dlt::Infeasibility hard =
        hard_reject(sigma, cms, deadline, free_times[landing - 1]);
    if (hard != dlt::Infeasibility::kNone) {
      return {0, first_hard_reason(sigma, cms, deadline, free_times, clear, landing, hard)};
    }
    clear = landing;
    if (crossed) {
      crossing = landing;
      break;
    }
    if (landing == cluster_size) {
      // The whole cluster cannot carry the load; the linear walk falls off
      // the end with the same reason (its hard checks all passed: monotone).
      return {0, dlt::Infeasibility::kNeedsMoreNodes};
    }
    const double per_node = (deadline - free_times[landing - 1]) / cps_floor;
    const double short_by = (sigma - capacity) / per_node;
    if (short_by >= static_cast<double>(cluster_size - landing)) {
      target = cluster_size;
    } else {
      target = landing + std::max<std::size_t>(
                             1, static_cast<std::size_t>(std::ceil(short_by)));
    }
  }

  // Phase 2: linear first-feasible walk from the crossing.
  for (std::size_t n = crossing; n <= cluster_size; ++n) {
    if (n > clear) {
      const dlt::Infeasibility hard =
          hard_reject(sigma, cms, deadline, free_times[n - 1]);
      if (hard != dlt::Infeasibility::kNone) return {0, hard};
      clear = n;
    }
    gather_cps_prefix(request, scratch, n);
    ++scratch.counters.resolver_positions;
    ++scratch.counters.batch_passes;
    const Time est = estimate_at(n);
    if (fp::at_or_before(est, deadline)) return {n, dlt::Infeasibility::kNone};
  }
  return {0, dlt::Infeasibility::kNeedsMoreNodes};
}

}  // namespace

PlanResult plan_dlt_iit(const PlanRequest& request, PlannerScratch& scratch) {
  const workload::Task& task = *request.task;
  const std::vector<Time>& free_times = *request.free_times;
  const double sigma = task.sigma();
  const Time deadline = task.abs_deadline();

  // Walk estimates come from the batched kernel (shared alpha cursor for
  // E_ref, flat SoA columns for the equivalent model) - bit-identical to the
  // historical build_het_partition_into rebuild at every prefix, without the
  // partition struct or its allocations.
  Time accepted_est = 0.0;
  const auto [n, reason] = first_feasible_prefix(
      request, scratch, sigma, deadline, [&](std::size_t prefix) {
        accepted_est =
            scratch.batch.dlt_walk_estimate(free_times, scratch.cps, prefix);
        return accepted_est;
      });
  if (reason != dlt::Infeasibility::kNone) return PlanResult::infeasible(reason);

  PlanResult result;
  TaskPlan& plan = result.plan;
  const Time est = accepted_est;
  plan.task = task.id;
  plan.nodes = n;
  plan.available.assign(free_times.begin(),
                        free_times.begin() + static_cast<std::ptrdiff_t>(n));
  plan.reserve_from = plan.available;  // IITs utilized
  plan.node_release.assign(n, est);
  scratch.batch.materialize_dlt_alpha(plan.alpha);
  plan.est_completion = est;
  pin_prefix(request, scratch, n, plan);
  return result;
}

PlanResult plan_opr_mn(const PlanRequest& request, PlannerScratch& scratch) {
  const workload::Task& task = *request.task;
  const std::vector<Time>& free_times = *request.free_times;
  const double sigma = task.sigma();
  const Time deadline = task.abs_deadline();

  // The shared prune stays a valid necessary condition for OPR too:
  // (deadline - r_i)/cps_i over-estimates what the simultaneous start at
  // r_n >= r_i allows.
  // O(1) amortized per inspected prefix: the walk extends the shared alpha
  // cursor one node at a time instead of re-running the whole recurrence.
  const auto [n, reason] = first_feasible_prefix(
      request, scratch, sigma, deadline, [&](std::size_t prefix) {
        return scratch.batch.opr_walk_estimate(free_times, scratch.cps, prefix);
      });
  if (reason != dlt::Infeasibility::kNone) return PlanResult::infeasible(reason);

  // Only the accepted prefix materializes its normalized alpha.
  scratch.batch.materialize_walk_alpha(scratch.alpha);
  const Time rn = free_times[n - 1];
  const double exec =
      sigma * request.params.cms + scratch.alpha.back() * sigma * scratch.cps[n - 1];
  const Time est = rn + exec;
  PlanResult result;
  TaskPlan& plan = result.plan;
  plan.task = task.id;
  plan.nodes = n;
  plan.available.assign(free_times.begin(),
                        free_times.begin() + static_cast<std::ptrdiff_t>(n));
  plan.reserve_from.assign(n, rn);  // simultaneous allocation: IITs wasted
  plan.node_release.assign(n, est);
  plan.alpha = scratch.alpha;
  plan.est_completion = est;
  pin_prefix(request, scratch, n, plan);
  return result;
}

PlanResult plan_opr_an(const PlanRequest& request, PlannerScratch& scratch) {
  const workload::Task& task = *request.task;
  const std::vector<Time>& free_times = *request.free_times;
  const double sigma = task.sigma();
  const Time deadline = task.abs_deadline();
  const std::size_t n = free_times.size();
  const Time rn = free_times.back();
  if (deadline <= rn) return PlanResult::infeasible(dlt::Infeasibility::kDeadlinePassed);
  gather_cps(request, scratch);

  dlt::general_het_alpha_into(request.params.cms, scratch.cps, n, scratch.alpha);
  const double exec =
      sigma * request.params.cms + scratch.alpha.back() * sigma * scratch.cps[n - 1];
  const Time est = rn + exec;
  if (fp::after(est, deadline)) {
    return PlanResult::infeasible(dlt::Infeasibility::kNeedsMoreNodes);
  }

  PlanResult result;
  TaskPlan& plan = result.plan;
  plan.task = task.id;
  plan.nodes = n;
  plan.available = free_times;
  plan.reserve_from.assign(n, rn);
  plan.node_release.assign(n, est);
  plan.alpha = scratch.alpha;
  plan.est_completion = est;
  pin_prefix(request, scratch, n, plan);
  return result;
}

PlanResult plan_user_split(const PlanRequest& request, PlannerScratch& scratch) {
  const workload::Task& task = *request.task;
  const std::vector<Time>& free_times = *request.free_times;
  const double sigma = task.sigma();
  const Time deadline = task.abs_deadline();
  std::size_t n = task.user_nodes == 0 ? free_times.size() : task.user_nodes;
  n = std::min(n, free_times.size());
  gather_cps(request, scratch);

  // Exact equal-split rollout: node i receives chunk i over the sequential
  // channel once it is free, then computes at its own speed.
  const double chunk = sigma / static_cast<double>(n);
  const double tx = chunk * request.params.cms;
  PlanResult result;
  TaskPlan& plan = result.plan;
  plan.node_release.resize(n);
  Time est = 0.0;
  Time channel_free = free_times[0];
  for (std::size_t i = 0; i < n; ++i) {
    const Time start = std::max(free_times[i], channel_free);
    channel_free = start + tx;
    plan.node_release[i] = channel_free + chunk * scratch.cps[i];
    est = std::max(est, plan.node_release[i]);
  }
  if (fp::after(est, deadline)) {
    return PlanResult::infeasible(dlt::Infeasibility::kNeedsMoreNodes);
  }

  plan.task = task.id;
  plan.nodes = n;
  plan.available.assign(free_times.begin(),
                        free_times.begin() + static_cast<std::ptrdiff_t>(n));
  plan.reserve_from = plan.available;  // node held from its r_i
  plan.alpha.assign(n, 1.0 / static_cast<double>(n));
  plan.est_completion = est;
  pin_prefix(request, scratch, n, plan);
  return result;
}

Time HetMultiRoundRollout::task_completion() const {
  Time latest = 0.0;
  for (Time t : completion) latest = std::max(latest, t);
  return latest;
}

void roll_multiround(const cluster::ClusterParams& params, double sigma,
                     const std::vector<Time>& available, const std::vector<double>& cps,
                     std::size_t rounds, Time channel_available, PlannerScratch& scratch,
                     HetMultiRoundRollout& out, std::vector<double>* slot_alpha) {
  const std::size_t n = available.size();
  if (n == 0 || cps.size() < n) throw std::invalid_argument("roll_multiround: bad slots");
  if (rounds == 0) throw std::invalid_argument("roll_multiround: rounds must be >= 1");
  const double installment = sigma / static_cast<double>(rounds);

  scratch.round_free.assign(available.begin(), available.begin() + static_cast<std::ptrdiff_t>(n));
  if (slot_alpha != nullptr) slot_alpha->assign(n, 0.0);
  Time channel_free = channel_available;

  for (std::size_t r = 0; r < rounds; ++r) {
    // Installments re-rank slots by their evolving availability (slot index
    // breaks ties deterministically); speeds ride along with their slot.
    scratch.order.resize(n);
    for (std::size_t i = 0; i < n; ++i) scratch.order[i] = i;
    std::sort(scratch.order.begin(), scratch.order.end(),
              [&](std::size_t a, std::size_t b) {
                if (scratch.round_free[a] != scratch.round_free[b]) {
                  return scratch.round_free[a] < scratch.round_free[b];
                }
                return a < b;
              });
    scratch.sorted_free.resize(n);
    scratch.sorted_cps.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      scratch.sorted_free[k] = scratch.round_free[scratch.order[k]];
      scratch.sorted_cps[k] = cps[scratch.order[k]];
    }
    dlt::build_het_partition_into(params, installment, scratch.sorted_free,
                                  scratch.sorted_cps, n, scratch.partition);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t slot = scratch.order[k];
      const double alpha = scratch.partition.alpha[k];
      const Time start = std::max(scratch.sorted_free[k], channel_free);
      channel_free = start + alpha * installment * params.cms;
      scratch.round_free[slot] = channel_free + alpha * installment * cps[slot];
      if (slot_alpha != nullptr) {
        (*slot_alpha)[slot] += alpha / static_cast<double>(rounds);
      }
    }
  }
  out.completion = scratch.round_free;
  out.channel_busy_until = channel_free;
}

PlanResult plan_multiround(const PlanRequest& request, std::size_t rounds,
                           PlannerScratch& scratch) {
  // Resolve the node count through the single-round het scan: its accepted
  // plan doubles as the guaranteed-feasible fallback.
  PlanResult single = plan_dlt_iit(request, scratch);
  if (!single.feasible()) return single;
  const workload::Task& task = *request.task;
  const std::size_t n = single.plan.nodes;

  HetMultiRoundRollout rollout;
  roll_multiround(request.params, task.sigma(), single.plan.available,
                  single.plan.node_cps, rounds, 0.0, scratch, rollout,
                  &scratch.slot_alpha);
  const Time est = rollout.task_completion();
  if (fp::after(est, task.abs_deadline())) {
    // R installments happened to be slower here; keep the single-round plan.
    return single;
  }

  PlanResult result;
  TaskPlan& plan = result.plan;
  plan.task = task.id;
  plan.nodes = n;
  plan.available = single.plan.available;
  plan.reserve_from = single.plan.available;
  // Exact per-slot finish of each node's last installment. Unlike the
  // homogeneous MR rule these are NOT sorted: slot identity must survive so
  // each node's release carries its own speed (the het availability merge
  // re-sorts (release, id) pairs itself).
  plan.node_release = rollout.completion;
  plan.alpha = scratch.slot_alpha;
  plan.est_completion = est;
  plan.rounds = rounds;
  plan.node_ids = single.plan.node_ids;
  plan.node_cps = single.plan.node_cps;
  return result;
}

PlanResult plan_opr_mn_backfill(const PlanRequest& request, PlannerScratch& scratch) {
  if (request.calendar == nullptr) {
    throw std::invalid_argument("plan_opr_mn_backfill: PlanRequest::calendar required");
  }
  const workload::Task& task = *request.task;
  const cluster::NodeCalendar& calendar = *request.calendar;
  const double sigma = task.sigma();
  const Time deadline = task.abs_deadline();
  const std::size_t cluster_size = calendar.size();

  for (Time t : calendar.candidate_times(request.now)) {
    const dlt::Infeasibility hard = hard_reject(sigma, request.params.cms, deadline, t);
    if (hard != dlt::Infeasibility::kNone) return PlanResult::infeasible(hard);

    // Every fixed point starts from a zero-length window, whose selection is
    // simply the m lowest ids free at the instant t - and the (m+1)-node
    // seed is the m-node seed plus the next free id. The pool and its scan
    // cursor therefore persist across the whole candidate time (grown
    // incrementally, each id probed at most once per t) instead of
    // re-scanning 0..N for every (candidate, m) pair. Because consecutive
    // seeds are prefixes of this one pool, their window durations ride one
    // shared alpha cursor: seeding m costs O(1) amortized instead of O(m).
    scratch.instant_free.clear();
    scratch.instant_cps.clear();
    cluster::NodeId instant_cursor = 0;
    scratch.batch.begin_walk(request.params.cms, sigma);

    for (std::size_t m = 1; m <= cluster_size; ++m) {
      // The window length depends on which nodes fill it and vice versa;
      // iterate the (selection, duration) fixed point a few steps. The het
      // no-IIT execution time shrinks as m grows (an extra recipient can
      // always take ~0 load), so larger m remains worth trying after a
      // tight window.
      double duration = 0.0;
      double next = 0.0;
      double previous = 0.0;
      bool selected = false;
      bool instant_shortfall = false;
      bool window_shortfall = false;
      for (int iteration = 0; iteration < 4; ++iteration) {
        ++scratch.counters.backfill_fixed_point_iterations;
        if (fp::exact_eq(duration, 0.0)) {
          // Seed: the m-prefix of the instant-free pool on the shared cursor.
          while (scratch.instant_free.size() < m && instant_cursor < cluster_size) {
            if (calendar.is_free(instant_cursor, t, t)) {
              scratch.instant_free.push_back(instant_cursor);
              scratch.instant_cps.push_back(request.params.node_cps(instant_cursor));
            }
            ++instant_cursor;
          }
          if (scratch.instant_free.size() < m) {
            instant_shortfall = true;
            break;
          }
          scratch.window_nodes.assign(
              scratch.instant_free.begin(),
              scratch.instant_free.begin() + static_cast<std::ptrdiff_t>(m));
          scratch.window_cps.assign(
              scratch.instant_cps.begin(),
              scratch.instant_cps.begin() + static_cast<std::ptrdiff_t>(m));
          ++scratch.counters.batch_passes;
          next = scratch.batch.window_duration_prefix(scratch.instant_cps, m);
        } else {
          // Re-selection over a positive window is an arbitrary id set (not
          // a pool prefix): one-shot streaming kernel, still allocation-free.
          scratch.window_nodes.clear();
          scratch.window_cps.clear();
          for (cluster::NodeId id = 0;
               id < cluster_size && scratch.window_nodes.size() < m; ++id) {
            if (calendar.is_free(id, t, t + duration)) {
              scratch.window_nodes.push_back(id);
              scratch.window_cps.push_back(request.params.node_cps(id));
            }
          }
          if (scratch.window_nodes.size() < m) {
            // Free-over-window implies free-at-instant, so only a positive
            // window can fall short here; it may still resolve with more
            // nodes (shorter window).
            window_shortfall = true;
            break;
          }
          ++scratch.counters.batch_passes;
          next = PlannerBatch::window_duration(request.params.cms, sigma,
                                               scratch.window_cps, m);
        }
        if (next == duration) {
          selected = true;
          break;
        }
        previous = duration;
        duration = next;
      }
      if (instant_shortfall) break;     // next candidate time
      if (window_shortfall) continue;   // try more nodes
      if (!selected) {
        // The (selection, duration) fixed point did not settle within the
        // iteration budget (the selection can 2-cycle when reservations make
        // node sets flip between two window lengths). Fall back to the
        // conservative window W = max of the last two iterates: re-select
        // over W, then verify that selection's own duration fits inside W,
        // so every accepted member is genuinely free across its reservation.
        ++scratch.counters.backfill_fixed_point_fallbacks;
        const double window = std::max(previous, duration);
        scratch.window_nodes.clear();
        scratch.window_cps.clear();
        for (cluster::NodeId id = 0;
             id < cluster_size && scratch.window_nodes.size() < m; ++id) {
          if (calendar.is_free(id, t, t + window)) {
            scratch.window_nodes.push_back(id);
            scratch.window_cps.push_back(request.params.node_cps(id));
          }
        }
        if (scratch.window_nodes.size() < m) continue;  // try more nodes
        ++scratch.counters.batch_passes;
        const double exec =
            PlannerBatch::window_duration(request.params.cms, sigma,
                                          scratch.window_cps, m);
        if (exec > window) continue;  // conservative window still too tight
        duration = exec;
        selected = true;
      }
      if (fp::after(t + duration, deadline)) continue;  // more nodes shrink it

      // Only the accepted selection materializes its normalized alpha.
      dlt::general_het_alpha_into(request.params.cms, scratch.window_cps, m,
                                  scratch.alpha);
      PlanResult result;
      TaskPlan& plan = result.plan;
      plan.task = task.id;
      plan.nodes = m;
      plan.available.assign(m, t);
      plan.reserve_from.assign(m, t);
      plan.node_release.assign(m, t + duration);
      plan.alpha = scratch.alpha;
      plan.est_completion = t + duration;
      plan.node_ids = scratch.window_nodes;
      plan.node_cps = scratch.window_cps;
      return result;
    }
  }
  return PlanResult::infeasible(dlt::Infeasibility::kNeedsMoreNodes);
}

}  // namespace rtdls::sched::het
