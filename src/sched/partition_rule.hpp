// Decision #2/#3 of the Figure-2 framework: how a task is partitioned and
// how many nodes it is assigned. Each concrete rule plans one task against
// the sorted node release times; the admission controller composes rules
// with an ordering policy into a full schedulability test.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/calendar.hpp"
#include "dlt/params.hpp"
#include "sched/plan.hpp"
#include "workload/task.hpp"

namespace rtdls::sched {

/// Inputs to planning one task.
struct PlanRequest {
  const workload::Task* task = nullptr;
  cluster::ClusterParams params;

  /// Release times of all N nodes, sorted ascending and floored at `now`.
  /// free_times[k-1] is both (a) the earliest instant k nodes are
  /// simultaneously available and (b) the available time r_k of the k-th
  /// earliest node for IIT-utilizing rules.
  const std::vector<Time>* free_times = nullptr;

  /// Owning node of each free_times position, in strict (time, id) order.
  /// Non-null exactly when params.heterogeneous(): rules look up per-node
  /// cps through params.node_cps(ids[i]) and record the chosen ids in the
  /// plan, pinning the speeds their partition was computed for.
  const std::vector<cluster::NodeId>* node_ids = nullptr;

  Time now = 0.0;

  /// Reservation calendar with gap information; required by rules with
  /// uses_calendar() == true (the backfilling comparators), null otherwise.
  const cluster::NodeCalendar* calendar = nullptr;
};

/// Outcome of planning one task.
struct PlanResult {
  dlt::Infeasibility reason = dlt::Infeasibility::kNone;
  TaskPlan plan;

  bool feasible() const { return reason == dlt::Infeasibility::kNone; }

  static PlanResult infeasible(dlt::Infeasibility why) {
    PlanResult result;
    result.reason = why;
    return result;
  }
};

/// Planner-internal event counters a rule may expose (collected into
/// SimMetrics per run and mirrored to the obs registry; see Simulator::run).
/// Plain fields, not obs handles: the bump sites are inside RTDLS_HOT
/// kernels where even a thread-local atomic increment is unwelcome.
struct PlannerCounters {
  /// OPR-MN-BF (selection, duration) fixed points that did not settle within
  /// the iteration budget and took the conservative-window fallback instead
  /// of being silently skipped.
  std::size_t backfill_fixed_point_fallbacks = 0;
  /// first_feasible_prefix invocations (one per node-count resolve).
  std::size_t resolver_walks = 0;
  /// Candidate prefixes the resolver's linear phase actually evaluated.
  std::size_t resolver_positions = 0;
  /// Batched SoA kernel evaluations (walk estimates + window durations).
  std::size_t batch_passes = 0;
  /// OPR-MN-BF (selection, duration) fixed-point iterations executed.
  std::size_t backfill_fixed_point_iterations = 0;

  PlannerCounters& operator+=(const PlannerCounters& other) {
    backfill_fixed_point_fallbacks += other.backfill_fixed_point_fallbacks;
    resolver_walks += other.resolver_walks;
    resolver_positions += other.resolver_positions;
    batch_passes += other.batch_passes;
    backfill_fixed_point_iterations += other.backfill_fixed_point_iterations;
    return *this;
  }
};

/// Abstract partitioning + node-assignment rule.
///
/// Thread affinity: plan() is a pure function of the request (identical
/// requests yield identical plans - the incremental admission cache relies
/// on this), but implementations may keep mutable scratch buffers, so one
/// rule *instance* must not be shared across threads. Each simulator owns
/// its own Algorithm (make_algorithm constructs fresh rules), which is what
/// the parallel sweep runner relies on.
class PartitionRule {
 public:
  virtual ~PartitionRule() = default;

  /// Plans `request.task` against the availability snapshot; returns an
  /// infeasibility reason when no assignment meets the deadline.
  virtual PlanResult plan(const PlanRequest& request) const = 0;

  /// Short rule name used in algorithm identifiers ("DLT", "OPR-MN", ...).
  virtual std::string_view name() const = 0;

  /// True when the rule plans against PlanRequest::calendar (gap-aware
  /// backfilling) instead of the sorted release times.
  virtual bool uses_calendar() const { return false; }

  /// Exactness contract for the admission controller's batched queue screen
  /// (het::QueueScreen): a rule returning true promises that whenever
  ///   deadline - front <= 0            (kDeadlinePassed), or
  ///   sigma*Cms >= deadline - front    (kTransmissionTooLong)
  /// holds at the availability row's front (= r_1 of the row the task plans
  /// against), its plan() returns infeasible with that exact reason - so the
  /// controller may reject straight off precomputed columns without calling
  /// plan(). Holds for the first-position hard rejections of the DLT/OPR-MN
  /// prefix scans (monotone in r_n, so position 1 fires first) and for
  /// dlt::minimum_nodes' gamma test (fl(a/b) >= 1 whenever a >= b, so the
  /// closed form rejects identically). Must stay false for rules that modify
  /// the deadline (output-aware decorator) or plan against a calendar.
  virtual bool hard_rejects_at_front() const { return false; }

  /// Planner counters accumulated since the last reset (rules without
  /// counters report zeros).
  virtual PlannerCounters planner_counters() const { return {}; }

  /// Clears the counters (const for the same reason plan() is: counters live
  /// in the rule's mutable scratch).
  virtual void reset_planner_counters() const {}
};

/// How the n_min-based rules resolve the circular dependence between the
/// node count n and the start time r_n (the paper's pseudocode computes
/// "n <- n_min_tilde(t)" and then "the earliest time t when AN(t) >= n";
/// Section 4.1.1 B derives n_min_tilde assuming r_n is known).
enum class NodeSearch {
  /// Least fixed point of n -> n_min_tilde(r_n(n)): scan n = 1..N and take
  /// the first n with n_min_tilde(free[n-1]) <= n. The completion check can
  /// then never fail; the task always gets the smallest self-consistent n.
  kIterative,
  /// Single-shot: n = n_min_tilde(free[0]) (the earliest any node frees,
  /// i.e. "start now" optimism), start when those n nodes are available,
  /// then the explicit e_i <= A_i + D_i check does the real rejection work.
  kOptimistic,
};

/// The paper's new contribution: DLT-based partitioning with different
/// processor available times (Section 4.1.1). Assigns n_min_tilde nodes; the
/// chosen nodes start as soon as they individually free (IITs utilized).
std::unique_ptr<PartitionRule> make_dlt_iit_rule(NodeSearch search = NodeSearch::kIterative);

/// Prior work [22] baseline OPR-MN: optimal homogeneous partitioning with
/// the minimum node count, all nodes allocated simultaneously at r_n (the
/// gaps before r_n are wasted as Inserted Idle Time).
std::unique_ptr<PartitionRule> make_opr_mn_rule(NodeSearch search = NodeSearch::kIterative);

/// Prior work [22] OPR-AN: every task runs on all N nodes (no IIT problem,
/// but serializes the cluster). Listed in Section 5 as "rarely adopted";
/// provided for completeness and ablation.
std::unique_ptr<PartitionRule> make_opr_an_rule();

/// Current practice baseline (Section 4.1.2): the user's equal split over a
/// user-chosen node count (Task::user_nodes), IITs utilized.
std::unique_ptr<PartitionRule> make_user_split_rule();

/// Extension (paper Section 6 future work): multi-installment DLT
/// partitioning with `rounds` uniform installments.
std::unique_ptr<PartitionRule> make_multiround_rule(std::size_t rounds);

/// Backfilling comparator: OPR-MN planning against a reservation calendar
/// (conservative backfilling in the sense of [24]): a task may start in a
/// gap IN FRONT of existing reservations as long as its n nodes are
/// simultaneously free for E(sigma, n). Quantifies how much of the IIT
/// waste backfilling alone recovers versus the paper's DLT rule.
std::unique_ptr<PartitionRule> make_opr_mn_backfill_rule();

/// Extension (paper Section 3: output-data transfer): decorates any rule so
/// the result-collection phase (delta = output/input data ratio) is
/// budgeted into the deadline; see dlt/output_model.hpp for the bound.
/// Pair with SimulatorConfig::output_ratio == delta so the execution
/// rollout models the same result traffic the plan budgeted.
std::unique_ptr<PartitionRule> make_output_aware_rule(std::unique_ptr<PartitionRule> inner,
                                                      double delta);

}  // namespace rtdls::sched
