#include "sched/planner_batch.hpp"

#include <stdexcept>

#include "util/simd.hpp"

namespace rtdls::sched::het {

void PlannerBatch::begin_walk(double cms, double sigma) {
  cursor_.reset(cms);
  cms_ = cms;
  sigma_ = sigma;
  dlt_n_ = 0;
}

void PlannerBatch::sync_cursor(const std::vector<double>& cps, std::size_t n) {
  while (cursor_.size() < n) cursor_.extend(cps[cursor_.size()]);
}

Time PlannerBatch::opr_walk_estimate(const std::vector<Time>& free,
                                     const std::vector<double>& cps, std::size_t n) {
  sync_cursor(cps, n);
  const double exec = sigma_ * cms_ + cursor_.alpha_last() * sigma_ * cps[n - 1];
  return free[n - 1] + exec;
}

Time PlannerBatch::dlt_walk_estimate(const std::vector<Time>& free,
                                     const std::vector<double>& cps, std::size_t n) {
  // Stage 1 - E_ref, the no-IIT reference of the generalized Eq. (1): all n
  // nodes allocated at r_n with their actual speeds. One cursor step.
  sync_cursor(cps, n);
  const Time rn = free[n - 1];
  const double e_ref = sigma_ * cms_ + cursor_.alpha_last() * sigma_ * cps[n - 1];

  // Stage 2 - the equivalent-model costs depend on both r_n and E_ref, so
  // the whole column changes at every n: two elementwise passes (each lane
  // independent - the SIMD build widens these without changing a bit) and
  // one order-sensitive scalar scan, on flat reused columns.
  tilde_.resize(n);
  const double* fr = free.data();
  const double* cp = cps.data();
  double* tl = tilde_.data();
  RTDLS_IVDEP
  for (std::size_t i = 0; i < n; ++i) {
    tl[i] = e_ref / (e_ref + (rn - fr[i])) * cp[i];
  }

  ratio_.resize(n);
  double* ra = ratio_.data();
  const double cms = cms_;
  RTDLS_IVDEP
  for (std::size_t i = 1; i < n; ++i) {
    ra[i] = tl[i - 1] / (cms + tl[i]);
  }

  // The scan accumulates in the scalar reference's exact order: product
  // first, then the denominator add, element by element.
  products_.resize(n);
  products_[0] = 1.0;
  double p = 1.0;
  double denom = 1.0;
  for (std::size_t i = 1; i < n; ++i) {
    p = p * ra[i];
    products_[i] = p;
    denom += p;
  }
  dlt_denom_ = denom;
  dlt_n_ = n;

  // Eq. (6) analog: cps_tilde_n == cps_actual_n since r_n - r_n = 0.
  const double e_hat = sigma_ * cms_ + (p / denom) * sigma_ * cps[n - 1];
  return rn + e_hat;
}

void PlannerBatch::materialize_dlt_alpha(std::vector<double>& out) const {
  if (dlt_n_ == 0) throw std::logic_error("PlannerBatch: no DLT prefix evaluated");
  out.resize(dlt_n_);
  for (std::size_t i = 0; i < dlt_n_; ++i) out[i] = products_[i] / dlt_denom_;
}

Time PlannerBatch::window_duration_prefix(const std::vector<double>& cps, std::size_t m) {
  sync_cursor(cps, m);
  return sigma_ * cms_ + cursor_.alpha_last() * sigma_ * cps[m - 1];
}

Time PlannerBatch::window_duration(double cms, double sigma, const std::vector<double>& cps,
                                   std::size_t m) {
  double p = 1.0;
  double denom = 1.0;
  for (std::size_t i = 1; i < m; ++i) {
    p = p * (cps[i - 1] / (cms + cps[i]));
    denom += p;
  }
  return sigma * cms + (p / denom) * sigma * cps[m - 1];
}

void PlannerBatch::opr_mn_estimates(double cms, double sigma, const std::vector<Time>& free,
                                    const std::vector<double>& cps, std::size_t count,
                                    std::vector<Time>& out) {
  if (count == 0 || count > free.size() || count > cps.size()) {
    throw std::invalid_argument("opr_mn_estimates: need 1 <= count <= column size");
  }
  out.resize(count);
  double p = 1.0;
  double denom = 1.0;
  {
    const double exec = sigma * cms + (p / denom) * sigma * cps[0];
    out[0] = free[0] + exec;
  }
  for (std::size_t n = 2; n <= count; ++n) {
    p = p * (cps[n - 2] / (cms + cps[n - 1]));
    denom += p;
    const double exec = sigma * cms + (p / denom) * sigma * cps[n - 1];
    out[n - 1] = free[n - 1] + exec;
  }
}

void QueueScreen::build(double cms, const workload::Task* const* tasks, std::size_t count) {
  tx_floor_.resize(count);
  deadline_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    tx_floor_[i] = tasks[i]->sigma() * cms;
    deadline_[i] = tasks[i]->abs_deadline();
  }
}

}  // namespace rtdls::sched::het
