#include "sched/partition_rule.hpp"

#include <stdexcept>

namespace rtdls::sched {

namespace detail {

void validate_request(const PlanRequest& request) {
  if (request.task == nullptr) throw std::invalid_argument("PlanRequest: null task");
  if (request.free_times == nullptr) {
    throw std::invalid_argument("PlanRequest: null free_times");
  }
  if (request.free_times->size() != request.params.node_count) {
    throw std::invalid_argument("PlanRequest: free_times size != node count");
  }
  if (!request.params.valid()) throw std::invalid_argument("PlanRequest: invalid params");
  if (request.params.heterogeneous()) {
    if (request.node_ids == nullptr ||
        request.node_ids->size() != request.free_times->size()) {
      throw std::invalid_argument(
          "PlanRequest: heterogeneous params need node_ids aligned with free_times");
    }
  }
}

}  // namespace detail

}  // namespace rtdls::sched
