#include "sched/policy.hpp"

#include <algorithm>

namespace rtdls::sched {

std::string_view policy_name(Policy policy) {
  switch (policy) {
    case Policy::kEdf: return "EDF";
    case Policy::kFifo: return "FIFO";
  }
  return "?";
}

bool policy_less(Policy policy, const workload::Task& a, const workload::Task& b) {
  if (policy == Policy::kEdf) {
    if (a.abs_deadline() != b.abs_deadline()) return a.abs_deadline() < b.abs_deadline();
  }
  if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
  return a.id < b.id;
}

void order_tasks(Policy policy, std::vector<const workload::Task*>& tasks) {
  std::sort(tasks.begin(), tasks.end(),
            [policy](const workload::Task* a, const workload::Task* b) {
              return policy_less(policy, *a, *b);
            });
}

}  // namespace rtdls::sched
