// EDF/FIFO-UserSplit (Section 4.1.2): the current-practice baseline. The
// task is split into n equal chunks where n is the *user's* request
// (Task::user_nodes, drawn uniformly from [N_min, N] at generation time and
// stable across re-tests), the chunks go to the n earliest-available nodes,
// and each node starts as soon as it is free and the channel reaches it
// (IITs utilized, but with the suboptimal equal partition).
#include <algorithm>
#include <vector>

#include "dlt/user_split.hpp"
#include "util/fp.hpp"
#include "sched/het_planner.hpp"
#include "sched/rule_detail.hpp"

namespace rtdls::sched {

namespace {

class UserSplitRule final : public PartitionRule {
 public:
  PlanResult plan(const PlanRequest& request) const override {
    detail::validate_request(request);
    if (request.params.heterogeneous()) return het::plan_user_split(request, het_scratch_);
    const workload::Task& task = *request.task;
    const std::vector<Time>& free_times = *request.free_times;
    const Time deadline = task.abs_deadline();

    // The "user" request; a degenerate 0 (e.g. hand-built task) means "ask
    // for the whole cluster".
    std::size_t n = task.user_nodes == 0 ? free_times.size() : task.user_nodes;
    n = std::min(n, free_times.size());

    std::vector<Time> available(free_times.begin(),
                                free_times.begin() + static_cast<std::ptrdiff_t>(n));
    const dlt::UserSplitSchedule schedule =
        dlt::build_user_split_schedule(request.params, task.sigma(), available);
    if (fp::after(schedule.task_completion(), deadline)) {
      return PlanResult::infeasible(dlt::Infeasibility::kNeedsMoreNodes);
    }

    PlanResult result;
    TaskPlan& plan = result.plan;
    plan.task = task.id;
    plan.nodes = n;
    plan.available = schedule.available;
    plan.reserve_from = schedule.available;        // node is held from its r_i
    plan.node_release = schedule.completion;       // each node frees at its own C_i
    plan.alpha.assign(n, 1.0 / static_cast<double>(n));
    plan.est_completion = schedule.task_completion();
    return result;
  }

  std::string_view name() const override { return "UserSplit"; }

 private:
  mutable het::PlannerScratch het_scratch_;
};

}  // namespace

std::unique_ptr<PartitionRule> make_user_split_rule() {
  return std::make_unique<UserSplitRule>();
}

}  // namespace rtdls::sched
