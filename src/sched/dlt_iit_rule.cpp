// EDF/FIFO-DLT partitioning (Section 4.1.1): the paper's new algorithm.
//
// Node-count resolution (see NodeSearch in partition_rule.hpp):
//  * kIterative - scan n = 1..N; with rn(n) = free_times[n-1], take the
//    first n with n_min_tilde(rn(n)) <= n. rn(n) is nondecreasing in n and
//    n_min_tilde nondecreasing in rn, so the first crossing satisfies the
//    bound with equality (n > 1): it IS the n_min_tilde assignment, reached
//    as the least fixed point of the pseudocode's circular definition.
//  * kOptimistic - n = n_min_tilde(free_times[0]) computed once at the
//    earliest possible start; the explicit completion check then rejects
//    tasks whose n nodes only gather too late.
// The two hard-infeasibility reasons (deadline passed / pure transmission
// too long) only worsen as rn grows, so they abort the search immediately.
#include <algorithm>
#include <vector>

#include "dlt/het_model.hpp"
#include "util/fp.hpp"
#include "dlt/nmin.hpp"
#include "sched/het_planner.hpp"
#include "sched/rule_detail.hpp"

namespace rtdls::sched {

namespace {

class DltIitRule final : public PartitionRule {
 public:
  explicit DltIitRule(NodeSearch search) : search_(search) {}

  PlanResult plan(const PlanRequest& request) const override {
    detail::validate_request(request);
    if (request.params.heterogeneous()) return het::plan_dlt_iit(request, het_scratch_);
    const workload::Task& task = *request.task;
    const std::vector<Time>& free_times = *request.free_times;
    const Time deadline = task.abs_deadline();

    auto [assigned, reason] =
        detail::resolve_node_count(search_, request.params, task.sigma(), deadline, free_times);
    if (reason == dlt::Infeasibility::kNeedsMoreNodes) {
      // n_min_tilde is only an UPPER bound for the IIT-utilizing execution
      // time E_hat <= E (Eq. 9). When the bound exceeds the cluster, the
      // pseudocode still assigns the task its nodes and lets the explicit
      // e_i <= A_i + D_i test decide - and with E_hat the whole cluster can
      // succeed where the bound (and OPR-MN) must give up. This clamped
      // retry is where utilizing IITs admits tasks the baseline rejects.
      assigned = free_times.size();
      reason = dlt::Infeasibility::kNone;
    }
    if (reason != dlt::Infeasibility::kNone) return PlanResult::infeasible(reason);

    // free_times is sorted; the scratch partition avoids re-allocating the
    // model vectors on every one of the admission loop's plan() calls.
    dlt::build_het_partition_into(request.params, task.sigma(), free_times, assigned,
                                  scratch_);
    const dlt::HetPartition& part = scratch_;
    const Time est = part.estimated_completion();
    if (fp::after(est, deadline)) {
      // Live under kOptimistic (the n nodes gathered too late); a
      // floating-point guard under kIterative.
      return PlanResult::infeasible(dlt::Infeasibility::kNeedsMoreNodes);
    }

    PlanResult result;
    TaskPlan& plan = result.plan;
    plan.task = task.id;
    plan.nodes = assigned;
    plan.available = part.available;
    plan.reserve_from = part.available;  // IITs utilized: start when free
    plan.node_release.assign(assigned, est);
    plan.alpha = part.alpha;
    plan.est_completion = est;
    return result;
  }

  std::string_view name() const override { return "DLT"; }

  // Both paths reject at the row front exactly as the screen predicts: het
  // via hard_reject at position 1, homogeneous via minimum_nodes at
  // free_times[0] (kNeedsMoreNodes is the only clamped-retried reason; the
  // screen never returns it).
  bool hard_rejects_at_front() const override { return true; }

 private:
  NodeSearch search_;
  /// Reused across plan() calls (see PartitionRule's thread-affinity note).
  mutable dlt::HetPartition scratch_;
  mutable het::PlannerScratch het_scratch_;
};

}  // namespace

namespace detail {

namespace {

/// The linear scan returns the reason found at the FIRST infeasible
/// position; feasibility is monotone in rn (the slack and gamma only shrink
/// as rn grows), so that position is recovered by binary search over
/// (first_feasible, known_infeasible]. `known_reason` is the reason already
/// evaluated at the `infeasible` endpoint, so the common case (the range is
/// a single position) costs no extra n_min evaluation.
std::pair<std::size_t, dlt::Infeasibility> first_infeasible_reason(
    const cluster::ClusterParams& params, double sigma, Time deadline,
    const std::vector<Time>& free_times, std::size_t feasible, std::size_t infeasible,
    dlt::Infeasibility known_reason) {
  std::size_t lo = feasible + 1;
  std::size_t hi = infeasible;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (dlt::minimum_nodes(params, sigma, deadline, free_times[mid - 1]).feasible()) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == infeasible) return {0, known_reason};
  return {0, dlt::minimum_nodes(params, sigma, deadline, free_times[lo - 1]).reason};
}

}  // namespace

std::pair<std::size_t, dlt::Infeasibility> resolve_node_count(
    NodeSearch search, const cluster::ClusterParams& params, double sigma, Time deadline,
    const std::vector<Time>& free_times) {
  const std::size_t cluster_size = free_times.size();
  if (search == NodeSearch::kOptimistic) {
    const dlt::NminResult need =
        dlt::minimum_nodes(params, sigma, deadline, free_times.front());
    if (!need.feasible()) return {0, need.reason};
    if (need.nodes > cluster_size) return {0, dlt::Infeasibility::kNeedsMoreNodes};
    return {need.nodes, dlt::Infeasibility::kNone};
  }
  // Galloping least-fixed-point search, outcome-identical to the linear
  // n = 1..N scan. n_min_tilde(rn) is nondecreasing in rn and
  // rn(n) = free_times[n-1] is nondecreasing in n, so from a failing n with
  // m = n_min_tilde(rn(n)) > n every n' in (n, m) also fails
  // (n_min_tilde(rn(n')) >= m > n') and the search jumps straight to m:
  // O(log N)-ish evaluations on real availability states instead of O(N).
  std::size_t feasible_up_to = 0;  // largest position known feasible
  std::size_t n = 1;
  while (n <= cluster_size) {
    const dlt::NminResult need =
        dlt::minimum_nodes(params, sigma, deadline, free_times[n - 1]);
    if (!need.feasible()) {
      return first_infeasible_reason(params, sigma, deadline, free_times, feasible_up_to, n,
                                     need.reason);
    }
    if (need.nodes <= n) return {need.nodes, dlt::Infeasibility::kNone};
    feasible_up_to = n;
    if (need.nodes > cluster_size) {
      // No position can succeed any more; the scan would still surface an
      // infeasibility if rn crosses the threshold before N.
      const dlt::NminResult at_end =
          dlt::minimum_nodes(params, sigma, deadline, free_times[cluster_size - 1]);
      if (!at_end.feasible()) {
        return first_infeasible_reason(params, sigma, deadline, free_times, feasible_up_to,
                                       cluster_size, at_end.reason);
      }
      return {0, dlt::Infeasibility::kNeedsMoreNodes};
    }
    n = need.nodes;
  }
  return {0, dlt::Infeasibility::kNeedsMoreNodes};
}

}  // namespace detail

std::unique_ptr<PartitionRule> make_dlt_iit_rule(NodeSearch search) {
  return std::make_unique<DltIitRule>(search);
}

}  // namespace rtdls::sched
