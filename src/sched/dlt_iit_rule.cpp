// EDF/FIFO-DLT partitioning (Section 4.1.1): the paper's new algorithm.
//
// Node-count resolution (see NodeSearch in partition_rule.hpp):
//  * kIterative - scan n = 1..N; with rn(n) = free_times[n-1], take the
//    first n with n_min_tilde(rn(n)) <= n. rn(n) is nondecreasing in n and
//    n_min_tilde nondecreasing in rn, so the first crossing satisfies the
//    bound with equality (n > 1): it IS the n_min_tilde assignment, reached
//    as the least fixed point of the pseudocode's circular definition.
//  * kOptimistic - n = n_min_tilde(free_times[0]) computed once at the
//    earliest possible start; the explicit completion check then rejects
//    tasks whose n nodes only gather too late.
// The two hard-infeasibility reasons (deadline passed / pure transmission
// too long) only worsen as rn grows, so they abort the search immediately.
#include <algorithm>
#include <vector>

#include "dlt/het_model.hpp"
#include "dlt/nmin.hpp"
#include "sched/rule_detail.hpp"

namespace rtdls::sched {

namespace {

class DltIitRule final : public PartitionRule {
 public:
  explicit DltIitRule(NodeSearch search) : search_(search) {}

  PlanResult plan(const PlanRequest& request) const override {
    detail::validate_request(request);
    const workload::Task& task = *request.task;
    const std::vector<Time>& free_times = *request.free_times;
    const Time deadline = task.abs_deadline();

    auto [assigned, reason] =
        detail::resolve_node_count(search_, request.params, task.sigma(), deadline, free_times);
    if (reason == dlt::Infeasibility::kNeedsMoreNodes) {
      // n_min_tilde is only an UPPER bound for the IIT-utilizing execution
      // time E_hat <= E (Eq. 9). When the bound exceeds the cluster, the
      // pseudocode still assigns the task its nodes and lets the explicit
      // e_i <= A_i + D_i test decide - and with E_hat the whole cluster can
      // succeed where the bound (and OPR-MN) must give up. This clamped
      // retry is where utilizing IITs admits tasks the baseline rejects.
      assigned = free_times.size();
      reason = dlt::Infeasibility::kNone;
    }
    if (reason != dlt::Infeasibility::kNone) return PlanResult::infeasible(reason);

    // free_times is sorted; the scratch partition avoids re-allocating the
    // model vectors on every one of the admission loop's plan() calls.
    dlt::build_het_partition_into(request.params, task.sigma(), free_times, assigned,
                                  scratch_);
    const dlt::HetPartition& part = scratch_;
    const Time est = part.estimated_completion();
    if (est > deadline + 1e-9) {
      // Live under kOptimistic (the n nodes gathered too late); a
      // floating-point guard under kIterative.
      return PlanResult::infeasible(dlt::Infeasibility::kNeedsMoreNodes);
    }

    PlanResult result;
    TaskPlan& plan = result.plan;
    plan.task = task.id;
    plan.nodes = assigned;
    plan.available = part.available;
    plan.reserve_from = part.available;  // IITs utilized: start when free
    plan.node_release.assign(assigned, est);
    plan.alpha = part.alpha;
    plan.est_completion = est;
    return result;
  }

  std::string_view name() const override { return "DLT"; }

 private:
  NodeSearch search_;
  /// Reused across plan() calls (see PartitionRule's thread-affinity note).
  mutable dlt::HetPartition scratch_;
};

}  // namespace

namespace detail {

std::pair<std::size_t, dlt::Infeasibility> resolve_node_count(
    NodeSearch search, const cluster::ClusterParams& params, double sigma, Time deadline,
    const std::vector<Time>& free_times) {
  const std::size_t cluster_size = free_times.size();
  if (search == NodeSearch::kOptimistic) {
    const dlt::NminResult need =
        dlt::minimum_nodes(params, sigma, deadline, free_times.front());
    if (!need.feasible()) return {0, need.reason};
    if (need.nodes > cluster_size) return {0, dlt::Infeasibility::kNeedsMoreNodes};
    return {need.nodes, dlt::Infeasibility::kNone};
  }
  for (std::size_t n = 1; n <= cluster_size; ++n) {
    const dlt::NminResult need =
        dlt::minimum_nodes(params, sigma, deadline, free_times[n - 1]);
    if (!need.feasible()) {
      // gamma and the slack only shrink as rn grows: no larger n helps.
      return {0, need.reason};
    }
    if (need.nodes <= n) return {need.nodes, dlt::Infeasibility::kNone};
  }
  return {0, dlt::Infeasibility::kNeedsMoreNodes};
}

}  // namespace detail

std::unique_ptr<PartitionRule> make_dlt_iit_rule(NodeSearch search) {
  return std::make_unique<DltIitRule>(search);
}

}  // namespace rtdls::sched
