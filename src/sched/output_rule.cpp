// Output-aware decorator rule (*-IO variants): wraps any inner partition
// rule and budgets the result-collection phase (dlt/output_model) into the
// deadline. The inner rule plans the input phase against a deadline tighter
// by delta*sigma*Cms; the decorated plan then extends the completion
// estimate (and node holds) by exactly that channel time, which
// output_completion_bound proves sufficient.
#include <algorithm>
#include <string>

#include "dlt/output_model.hpp"
#include "sched/rule_detail.hpp"

namespace rtdls::sched {

namespace {

class OutputAwareRule final : public PartitionRule {
 public:
  OutputAwareRule(std::unique_ptr<PartitionRule> inner, double delta)
      : inner_(std::move(inner)),
        delta_(delta),
        name_(std::string(inner_->name()) + "-IO") {
    if (!(delta_ >= 0.0)) {
      throw std::invalid_argument("OutputAwareRule: delta must be >= 0");
    }
  }

  PlanResult plan(const PlanRequest& request) const override {
    detail::validate_request(request);
    const workload::Task& task = *request.task;
    const double result_time =
        dlt::output_channel_time(request.params, task.sigma(), delta_);

    // The input phase must finish early enough to leave channel time for
    // the results; infeasible outright if the result volume alone blows
    // the deadline.
    workload::Task input_task = task;
    input_task.spec.rel_deadline = task.rel_deadline() - result_time;
    if (input_task.spec.rel_deadline <= 0.0) {
      return PlanResult::infeasible(dlt::Infeasibility::kTransmissionTooLong);
    }

    PlanRequest input_request = request;
    input_request.task = &input_task;
    PlanResult result = inner_->plan(input_request);
    if (!result.feasible()) return result;

    TaskPlan& plan = result.plan;
    plan.task = task.id;
    plan.est_completion += result_time;
    // Conservative hold: the result-return order across nodes is not fixed
    // at planning time, so every node is held until the full bound.
    for (Time& release : plan.node_release) {
      release = std::max(release, plan.est_completion);
    }
    return result;
  }

  std::string_view name() const override { return name_; }

  // The decorator tightens the deadline before delegating, so the screen's
  // raw-deadline columns would mispredict: keep hard_rejects_at_front()
  // false. Counters still flow through from the inner rule.
  PlannerCounters planner_counters() const override { return inner_->planner_counters(); }
  void reset_planner_counters() const override { inner_->reset_planner_counters(); }

 private:
  std::unique_ptr<PartitionRule> inner_;
  double delta_;
  std::string name_;
};

}  // namespace

std::unique_ptr<PartitionRule> make_output_aware_rule(std::unique_ptr<PartitionRule> inner,
                                                      double delta) {
  return std::make_unique<OutputAwareRule>(std::move(inner), delta);
}

}  // namespace rtdls::sched
