// Exact wire serialization of the admission session's semantic state: tasks
// and their TaskPlans.
//
// The snapshot/restore guarantee of the service layer is *bit-identical*
// future admit decisions, and the session design makes that achievable by
// serializing surprisingly little: the incremental session's delta stack,
// checkpoints, and cursor are pure caches of results derivable from
// (waiting tasks, their plans, cluster availability) - the admission
// contract says violating cache assumptions "cannot produce wrong schedules
// ... it only costs speed". So a snapshot carries exactly the semantic
// inputs - the waiting queue's tasks and plans (this module) plus the
// cluster/calendar state (svc/snapshot.cpp) - and a restored controller
// rebuilds its sparse state warm on the first admit, with outcomes
// bit-identical to the uninterrupted session because every field round-trips
// through util/wire exactly (doubles as IEEE bit patterns).
#pragma once

#include "sched/plan.hpp"
#include "util/wire.hpp"
#include "workload/task.hpp"

namespace rtdls::sched {

/// Serializes every TaskPlan field, vectors length-prefixed.
void write_plan(util::WireWriter& out, const TaskPlan& plan);

/// Inverse of write_plan; throws util::WireError on malformed input and
/// std::runtime_error when the decoded plan is internally inconsistent
/// (defense against corrupted snapshots - a bad plan must fail restore, not
/// poison later admission decisions).
TaskPlan read_plan(util::WireReader& in);

/// Serializes one workload task (id, arrival, sigma, relative deadline,
/// user-requested node count).
void write_task(util::WireWriter& out, const workload::Task& task);

/// Inverse of write_task.
workload::Task read_task(util::WireReader& in);

}  // namespace rtdls::sched
