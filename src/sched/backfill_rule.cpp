// OPR-MN with conservative backfilling (the comparator the paper's related
// work positions itself against, [21, 24, 29] adapted to divisible loads):
//
// Planning scans the calendar's candidate start times t (reservation edges);
// at each t it computes m = n_min_tilde(rn = t) from the shared Section
// 4.1.1 B closed form and takes the first t where m nodes are simultaneously
// free over [t, t + E(sigma, m)). Unlike the paper's release-time framework,
// the window may sit in a gap IN FRONT of existing reservations - that is
// the backfilling. Execution still allocates all m nodes simultaneously with
// the homogeneous optimal partition (no IIT utilization within the task).
#include <algorithm>
#include <vector>

#include "dlt/homogeneous.hpp"
#include "util/fp.hpp"
#include "dlt/nmin.hpp"
#include "sched/het_planner.hpp"
#include "sched/rule_detail.hpp"

namespace rtdls::sched {

namespace {

class OprMnBackfillRule final : public PartitionRule {
 public:
  PlanResult plan(const PlanRequest& request) const override {
    detail::validate_request(request);
    if (request.calendar == nullptr) {
      throw std::invalid_argument("OprMnBackfillRule: PlanRequest::calendar required");
    }
    if (request.params.heterogeneous()) {
      return het::plan_opr_mn_backfill(request, het_scratch_);
    }
    const workload::Task& task = *request.task;
    const cluster::NodeCalendar& calendar = *request.calendar;
    const Time deadline = task.abs_deadline();

    for (Time t : calendar.candidate_times(request.now)) {
      const dlt::NminResult need =
          dlt::minimum_nodes(request.params, task.sigma(), deadline, t);
      if (!need.feasible()) {
        // Later candidates only shrink the slack further: hard stop.
        return PlanResult::infeasible(need.reason);
      }
      if (need.nodes > calendar.size()) {
        // n_min only grows with t: no later candidate can need fewer nodes.
        return PlanResult::infeasible(dlt::Infeasibility::kNeedsMoreNodes);
      }
      std::size_t m = need.nodes;
      double duration =
          dlt::homogeneous_execution_time(request.params, task.sigma(), m);
      if (fp::after(t + duration, deadline)) {
        // n_min's "accept n-1 within 1e-12 relative slack" nudge can make
        // E(m) overshoot the deadline by more than the 1e-9 tolerance at
        // large time magnitudes. That makes only this node count tight, not
        // the whole scan hopeless: one extra node restores the un-nudged
        // bound; failing even that, try the next edge rather than reject.
        if (m >= calendar.size()) continue;
        const double retry =
            dlt::homogeneous_execution_time(request.params, task.sigma(), m + 1);
        if (fp::after(t + retry, deadline)) continue;
        m += 1;
        duration = retry;
      }

      // Are m nodes simultaneously free over [t, t + duration)?
      std::vector<cluster::NodeId> nodes;
      for (cluster::NodeId id = 0; id < calendar.size() && nodes.size() < m; ++id) {
        if (calendar.is_free(id, t, t + duration)) nodes.push_back(id);
      }
      if (nodes.size() < m) continue;  // this edge is too crowded; try the next

      PlanResult result;
      TaskPlan& plan = result.plan;
      plan.task = task.id;
      plan.nodes = m;
      plan.available.assign(m, t);
      plan.reserve_from.assign(m, t);
      plan.node_release.assign(m, t + duration);
      dlt::homogeneous_partition_into(request.params, m, plan.alpha);
      plan.est_completion = t + duration;
      plan.node_ids = std::move(nodes);
      return result;
    }
    return PlanResult::infeasible(dlt::Infeasibility::kNeedsMoreNodes);
  }

  std::string_view name() const override { return "OPR-MN-BF"; }
  bool uses_calendar() const override { return true; }

  PlannerCounters planner_counters() const override { return het_scratch_.counters; }
  void reset_planner_counters() const override { het_scratch_.counters = {}; }

 private:
  mutable het::PlannerScratch het_scratch_;
};

}  // namespace

std::unique_ptr<PartitionRule> make_opr_mn_backfill_rule() {
  return std::make_unique<OprMnBackfillRule>();
}

}  // namespace rtdls::sched
