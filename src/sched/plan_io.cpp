#include "sched/plan_io.hpp"

#include <stdexcept>

namespace rtdls::sched {

namespace {

std::vector<cluster::NodeId> read_node_ids(util::WireReader& in) {
  const std::vector<std::uint64_t> raw = in.u64_array();
  std::vector<cluster::NodeId> ids;
  ids.reserve(raw.size());
  for (std::uint64_t id : raw) ids.push_back(static_cast<cluster::NodeId>(id));
  return ids;
}

void write_node_ids(util::WireWriter& out, const std::vector<cluster::NodeId>& ids) {
  std::vector<std::uint64_t> raw(ids.begin(), ids.end());
  out.u64_array(raw);
}

}  // namespace

void write_plan(util::WireWriter& out, const TaskPlan& plan) {
  out.u64(plan.task);
  out.u64(plan.nodes);
  out.f64_array(plan.available);
  out.f64_array(plan.reserve_from);
  out.f64_array(plan.node_release);
  out.f64_array(plan.alpha);
  out.f64(plan.est_completion);
  out.u64(plan.rounds);
  write_node_ids(out, plan.node_ids);
  out.f64_array(plan.node_cps);
}

TaskPlan read_plan(util::WireReader& in) {
  TaskPlan plan;
  plan.task = in.u64();
  plan.nodes = static_cast<std::size_t>(in.u64());
  plan.available = in.f64_array();
  plan.reserve_from = in.f64_array();
  plan.node_release = in.f64_array();
  plan.alpha = in.f64_array();
  plan.est_completion = in.f64();
  plan.rounds = static_cast<std::size_t>(in.u64());
  plan.node_ids = read_node_ids(in);
  plan.node_cps = in.f64_array();
  if (!plan.consistent()) {
    throw std::runtime_error("read_plan: decoded plan is inconsistent");
  }
  return plan;
}

void write_task(util::WireWriter& out, const workload::Task& task) {
  out.u64(task.id);
  out.f64(task.spec.arrival);
  out.f64(task.spec.sigma);
  out.f64(task.spec.rel_deadline);
  out.u64(task.user_nodes);
}

workload::Task read_task(util::WireReader& in) {
  workload::Task task;
  task.id = in.u64();
  task.spec.arrival = in.f64();
  task.spec.sigma = in.f64();
  task.spec.rel_deadline = in.f64();
  task.user_nodes = static_cast<std::size_t>(in.u64());
  return task;
}

}  // namespace rtdls::sched
