// Decision #1 of the Figure-2 framework: the task execution order.
#pragma once

#include <string_view>
#include <vector>

#include "workload/task.hpp"

namespace rtdls::sched {

/// Scheduling policy: how the temp task list is ordered.
enum class Policy {
  kEdf,   ///< earliest absolute deadline first
  kFifo,  ///< earliest arrival first
};

/// Canonical policy names ("EDF", "FIFO").
std::string_view policy_name(Policy policy);

/// Strict-weak-order comparator for the chosen policy. Ties (equal deadline
/// or arrival) break by arrival then id so orders are deterministic.
bool policy_less(Policy policy, const workload::Task& a, const workload::Task& b);

/// Sorts task pointers by the policy (stable and deterministic).
void order_tasks(Policy policy, std::vector<const workload::Task*>& tasks);

}  // namespace rtdls::sched
