// A task plan: the outcome of one partition-rule invocation inside the
// Figure-2 schedulability test. Plans are made against the *sorted multiset*
// of node release times (nodes are interchangeable in the paper's model);
// the simulator later maps a committed plan onto concrete node ids.
#pragma once

#include <cstddef>
#include <vector>

#include "dlt/params.hpp"

namespace rtdls::sched {

using cluster::TaskId;
using cluster::Time;

/// Fully determined execution plan for one task.
struct TaskPlan {
  TaskId task = cluster::kNoTask;
  std::size_t nodes = 0;            ///< n: node count used

  /// r_1..r_n: available time of each chosen node (sorted ascending).
  /// r_n is the task "start time" in the paper's sense.
  std::vector<Time> available;

  /// When each node's reservation begins. Equal to `available` for the
  /// IIT-utilizing rules; equal to r_n for OPR (simultaneous allocation),
  /// which makes the gap [available_k, r_n) Inserted Idle Time.
  std::vector<Time> reserve_from;

  /// When each node is released for subsequent tasks under estimate-based
  /// accounting (the quantity the Figure-2 framework propagates).
  std::vector<Time> node_release;

  /// Load fractions alpha_1..alpha_n (sum == 1).
  std::vector<double> alpha;

  /// Estimated task completion e_i; admission requires e_i <= A_i + D_i.
  Time est_completion = 0.0;

  /// Number of installments (1 for all paper algorithms; >1 for the
  /// multi-round extension).
  std::size_t rounds = 1;

  /// Concrete node ids, set by calendar-based (backfilling) rules that
  /// placed reservations into specific gaps and by every heterogeneous-mode
  /// plan (node identity fixes the speeds the partition was computed for);
  /// empty for the paper's homogeneous rules, whose interchangeable slots
  /// map onto the earliest-free nodes at commit time.
  std::vector<cluster::NodeId> node_ids;

  /// Actual unit processing cost of each chosen node (aligned with `alpha`
  /// and `node_ids`), set only by heterogeneous-mode plans; empty means the
  /// homogeneous params.cps applies to every slot. The execution rollout
  /// computes per-node finish times from these.
  std::vector<double> node_cps;

  /// Earliest resource commitment instant: once the simulation clock passes
  /// this, the task can no longer be re-planned.
  Time commit_time() const {
    Time earliest = est_completion;
    for (Time t : reserve_from) earliest = (t < earliest) ? t : earliest;
    return earliest;
  }

  /// Internal consistency (sizes agree, vectors sorted, fractions sum to 1).
  bool consistent() const;

  /// Exact (bitwise on every field) equality; the incremental admission
  /// cross-check demands bit-identical plans, not approximate ones.
  friend bool operator==(const TaskPlan& a, const TaskPlan& b) {
    return a.task == b.task && a.nodes == b.nodes && a.available == b.available &&
           a.reserve_from == b.reserve_from && a.node_release == b.node_release &&
           a.alpha == b.alpha && a.est_completion == b.est_completion &&
           a.rounds == b.rounds && a.node_ids == b.node_ids && a.node_cps == b.node_cps;
  }
};

}  // namespace rtdls::sched
