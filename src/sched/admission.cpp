#include "sched/admission.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace rtdls::sched {

AdmissionController::AdmissionController(Policy policy, const PartitionRule* rule)
    : policy_(policy), rule_(rule) {
  if (rule_ == nullptr) throw std::invalid_argument("AdmissionController: null rule");
}

AdmissionOutcome AdmissionController::test(
    const workload::Task* new_task,
    const std::vector<const workload::Task*>& waiting,
    const cluster::ClusterParams& params,
    std::vector<Time> free_times, Time now,
    const cluster::NodeCalendar* calendar) const {
  if (free_times.size() != params.node_count) {
    throw std::invalid_argument("AdmissionController::test: free_times size mismatch");
  }
  if (rule_->uses_calendar() && calendar == nullptr) {
    throw std::invalid_argument("AdmissionController::test: rule requires a calendar");
  }
  // Private working copy accumulating the temp schedule's reservations.
  std::optional<cluster::NodeCalendar> temp_calendar;
  if (rule_->uses_calendar()) temp_calendar = *calendar;

  // TempTaskList <- NewTask + TaskWaitingQueue, ordered by the policy.
  std::vector<const workload::Task*> temp_list = waiting;
  if (new_task != nullptr) temp_list.push_back(new_task);
  order_tasks(policy_, temp_list);

  for (Time& t : free_times) t = std::max(t, now);
  std::sort(free_times.begin(), free_times.end());

  AdmissionOutcome outcome;
  outcome.schedule.reserve(temp_list.size());

  for (const workload::Task* task : temp_list) {
    PlanRequest request;
    request.task = task;
    request.params = params;
    request.free_times = &free_times;
    request.now = now;
    request.calendar = temp_calendar ? &*temp_calendar : nullptr;

    PlanResult result = rule_->plan(request);
    if (!result.feasible()) {
      outcome.accepted = false;
      outcome.reason = result.reason;
      outcome.blocking_task = task->id;
      outcome.schedule.clear();
      return outcome;  // deadline miss somewhere in the temp list
    }

    // Propagate the plan's reservations to the later temp-schedule tasks.
    const TaskPlan& plan = result.plan;
    if (!plan.node_ids.empty()) {
      // Calendar-based rule: reserve the concrete intervals it chose.
      for (std::size_t i = 0; i < plan.nodes; ++i) {
        temp_calendar->reserve(plan.node_ids[i], plan.reserve_from[i],
                               plan.node_release[i]);
      }
    } else {
      // Release-time rules always consume the `plan.nodes` earliest entries
      // of the sorted snapshot.
      for (std::size_t i = 0; i < plan.nodes; ++i) {
        free_times[i] = plan.node_release[i];
      }
      std::sort(free_times.begin(), free_times.end());
    }

    outcome.schedule.push_back(ScheduledTask{task, std::move(result.plan)});
  }

  outcome.accepted = true;
  return outcome;
}

}  // namespace rtdls::sched
