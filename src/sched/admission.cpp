#include "sched/admission.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

namespace rtdls::sched {

namespace {

/// Release-time rules always consume the `plan.nodes` earliest entries of
/// the sorted availability state and replace them with the plan's releases.
/// Every rule emits node_release nondecreasing, so the new state is the
/// merge of two sorted runs (the k releases and the untouched suffix) - an
/// O(N) forward merge into `state` instead of a full O(N log N) re-sort.
/// `scratch` holds the k releases during the merge (reused across calls).
void apply_plan(std::vector<Time>& state, const TaskPlan& plan,
                std::vector<Time>& scratch) {
  const std::size_t k = plan.nodes;
  const std::size_t n = state.size();
  scratch.assign(plan.node_release.begin(), plan.node_release.end());
  if (!std::is_sorted(scratch.begin(), scratch.end())) {
    std::sort(scratch.begin(), scratch.end());  // defensive; no rule hits this
  }
  // Forward merge is safe in place: the write position i + (j - k) never
  // passes the suffix read position j.
  std::size_t i = 0;
  std::size_t j = k;
  std::size_t pos = 0;
  while (i < k && j < n) {
    state[pos++] = state[j] < scratch[i] ? state[j++] : scratch[i++];
  }
  while (i < k) state[pos++] = scratch[i++];
}

/// Heterogeneous variant: the state is (time, id) pairs in strict (time,
/// id) order, and the plan consumed the prefix of exactly the ids it
/// recorded. The k (release, id) pairs re-enter wherever the pair order
/// puts them - the same positions the cluster's availability index will
/// hold after the real commits, so cached rows stay snapshot-identical.
void apply_plan_het(std::vector<Time>& state, std::vector<cluster::NodeId>& ids,
                    const TaskPlan& plan,
                    std::vector<std::pair<Time, cluster::NodeId>>& scratch) {
  const std::size_t k = plan.nodes;
  const std::size_t n = state.size();
  scratch.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    scratch[i] = {plan.node_release[i], plan.node_ids[i]};
  }
  std::sort(scratch.begin(), scratch.end());
  std::size_t i = 0;
  std::size_t j = k;
  std::size_t pos = 0;
  while (i < k && j < n) {
    const bool take_suffix = state[j] < scratch[i].first ||
                             (state[j] == scratch[i].first && ids[j] < scratch[i].second);
    if (take_suffix) {
      state[pos] = state[j];
      ids[pos] = ids[j];
      ++j;
    } else {
      state[pos] = scratch[i].first;
      ids[pos] = scratch[i].second;
      ++i;
    }
    ++pos;
  }
  while (i < k) {
    state[pos] = scratch[i].first;
    ids[pos] = scratch[i].second;
    ++i;
    ++pos;
  }
}

}  // namespace

AdmissionController::AdmissionController(Policy policy, const PartitionRule* rule)
    : policy_(policy), rule_(rule) {
  if (rule_ == nullptr) throw std::invalid_argument("AdmissionController: null rule");
}

AdmissionOutcome AdmissionController::test(
    const workload::Task* new_task,
    const std::vector<const workload::Task*>& waiting,
    const cluster::ClusterParams& params,
    std::vector<Time> free_times, Time now,
    const cluster::NodeCalendar* calendar,
    std::vector<cluster::NodeId> node_ids) const {
  if (free_times.size() != params.node_count) {
    throw std::invalid_argument("AdmissionController::test: free_times size mismatch");
  }
  if (rule_->uses_calendar() && calendar == nullptr) {
    throw std::invalid_argument("AdmissionController::test: rule requires a calendar");
  }
  // Private working copy accumulating the temp schedule's reservations.
  std::optional<cluster::NodeCalendar> temp_calendar;
  if (rule_->uses_calendar()) temp_calendar = *calendar;

  // TempTaskList <- NewTask + TaskWaitingQueue, ordered by the policy.
  std::vector<const workload::Task*> temp_list = waiting;
  if (new_task != nullptr) temp_list.push_back(new_task);
  order_tasks(policy_, temp_list);

  const bool het = params.heterogeneous();
  if (het) {
    // Co-floor and co-sort the (time, id) columns into strict (time, id)
    // order; an empty id column means free_times is indexed by node id.
    if (node_ids.empty()) {
      node_ids.resize(free_times.size());
      for (std::size_t i = 0; i < node_ids.size(); ++i) {
        node_ids[i] = static_cast<cluster::NodeId>(i);
      }
    } else if (node_ids.size() != free_times.size()) {
      throw std::invalid_argument("AdmissionController::test: node_ids size mismatch");
    }
    het_merge_scratch_.resize(free_times.size());
    for (std::size_t i = 0; i < free_times.size(); ++i) {
      het_merge_scratch_[i] = {std::max(free_times[i], now), node_ids[i]};
    }
    std::sort(het_merge_scratch_.begin(), het_merge_scratch_.end());
    for (std::size_t i = 0; i < free_times.size(); ++i) {
      free_times[i] = het_merge_scratch_[i].first;
      node_ids[i] = het_merge_scratch_[i].second;
    }
  } else {
    for (Time& t : free_times) t = std::max(t, now);
    std::sort(free_times.begin(), free_times.end());
  }

  AdmissionOutcome outcome;
  outcome.schedule.reserve(temp_list.size());

  for (const workload::Task* task : temp_list) {
    PlanRequest request;
    request.task = task;
    request.params = params;
    request.free_times = &free_times;
    request.node_ids = het ? &node_ids : nullptr;
    request.now = now;
    request.calendar = temp_calendar ? &*temp_calendar : nullptr;

    PlanResult result = rule_->plan(request);
    if (!result.feasible()) {
      outcome.accepted = false;
      outcome.reason = result.reason;
      outcome.blocking_task = task->id;
      outcome.schedule.clear();
      return outcome;  // deadline miss somewhere in the temp list
    }

    // Propagate the plan's reservations to the later temp-schedule tasks.
    const TaskPlan& plan = result.plan;
    if (temp_calendar) {
      // Calendar-based rule: reserve the concrete intervals it chose.
      for (std::size_t i = 0; i < plan.nodes; ++i) {
        temp_calendar->reserve(plan.node_ids[i], plan.reserve_from[i],
                               plan.node_release[i]);
      }
    } else if (het) {
      apply_plan_het(free_times, node_ids, plan, het_merge_scratch_);
    } else {
      apply_plan(free_times, plan, merge_scratch_);
    }

    outcome.schedule.push_back(ScheduledTask{task, std::move(result.plan)});
  }

  outcome.accepted = true;
  return outcome;
}

void AdmissionController::invalidate() {
  cache_valid_ = false;
  head_ = 0;
  planned_ = 0;
  synced_prefix_ = 0;
  order_.clear();
  plans_.clear();
  states_.clear();
  het_session_ = false;
  id_states_.clear();
}

void AdmissionController::compact_head() {
  if (head_ == 0) return;
  const auto offset = static_cast<std::ptrdiff_t>(head_);
  order_.erase(order_.begin(), order_.begin() + offset);
  plans_.erase(plans_.begin(), plans_.begin() + offset);
  states_.erase(states_.begin(),
                states_.begin() + static_cast<std::ptrdiff_t>(head_ * node_count_));
  if (het_session_) {
    id_states_.erase(id_states_.begin(),
                     id_states_.begin() + static_cast<std::ptrdiff_t>(head_ * node_count_));
  }
  head_ = 0;
}

void AdmissionController::on_commit(const workload::Task* task, const TaskPlan& plan,
                                    std::uint64_t cluster_version) {
  if (!cache_valid_) return;
  if (order_.size() == head_ || order_[head_] != task || planned_ == 0 ||
      !(plans_[head_] == plan)) {
    // Out-of-policy-order commit, an unplanned front, or a committed plan
    // differing from the cached one (possible when the caller still holds
    // plans from before a rejected rebuild): the remaining waiting plans
    // were threaded through different inputs, so the next arrival must
    // rebuild.
    invalidate();
    return;
  }
  // Policy-order-front commit: its reservations are exactly the front
  // plan's releases, so the post-commit availability snapshot equals the
  // next state row and the whole session just shifts by one - O(1) via the
  // head offset, compacted once the consumed prefix outweighs the live
  // part (amortized O(1) per advance).
  ++head_;
  --planned_;
  if (synced_prefix_ > 0) --synced_prefix_;
  cache_version_ = cluster_version;
  if (head_ > 64 && head_ > order_.size() - head_) compact_head();
}

AdmissionOutcome AdmissionController::test_incremental(
    const workload::Task& new_task, const std::vector<const workload::Task*>& waiting,
    const cluster::ClusterParams& params, const cluster::Cluster& cluster, Time now) {
  if (rule_->uses_calendar()) {
    throw std::logic_error("test_incremental: calendar rules require the full test()");
  }
  if (cluster.size() != params.node_count) {
    throw std::invalid_argument("test_incremental: cluster/params node count mismatch");
  }
  const std::size_t n = params.node_count;
  const std::size_t q = waiting.size();
  const bool het = params.heterogeneous();

  // The session is reusable when nothing that feeds the plans has changed:
  // same availability version, no entry floored below `now` (row 0 is
  // sorted, so checking its front suffices), the same waiting order, and
  // the same homogeneous/heterogeneous mode.
  bool reuse = cache_valid_ && cache_version_ == cluster.version() &&
               node_count_ == n && het_session_ == het && order_.size() - head_ == q &&
               states_.size() >= (head_ + 1) * n && states_[head_ * n] >= now;
  if (reuse) reuse = std::equal(waiting.begin(), waiting.end(), order_.begin() + head_);

  if (!reuse) {
    invalidate();
    node_count_ = n;
    het_session_ = het;
    order_.assign(waiting.begin(), waiting.end());
    // The caller keeps `waiting` in policy order; re-sorting an already
    // sorted list is cheap and keeps a misordered caller correct (it merely
    // costs the incremental reuse).
    order_tasks(policy_, order_);
    if (het) {
      cluster.availability_with_ids_into(now, work_state_, work_ids_);
      id_states_.assign(work_ids_.begin(), work_ids_.end());
    } else {
      cluster.availability_into(now, work_state_);
    }
    states_.assign(work_state_.begin(), work_state_.end());
    cache_valid_ = true;
    cache_version_ = cluster.version();
  }

  // Policy insertion point of the new task in the ordered waiting queue.
  // policy_less is a strict total order (ties break by arrival then id), so
  // inserting here reproduces order_tasks() on the merged list exactly.
  const std::size_t p = static_cast<std::size_t>(
      std::upper_bound(order_.begin() + static_cast<std::ptrdiff_t>(head_), order_.end(),
                       &new_task,
                       [this](const workload::Task* a, const workload::Task* b) {
                         return policy_less(policy_, *a, *b);
                       }) -
      (order_.begin() + static_cast<std::ptrdiff_t>(head_)));

  AdmissionOutcome outcome;
  const std::size_t start = std::min(p, planned_);
  outcome.reused_prefix = std::min(synced_prefix_, start);

  // Working availability state := state row of live position `start`.
  work_state_.assign(
      states_.begin() + static_cast<std::ptrdiff_t>((head_ + start) * n),
      states_.begin() + static_cast<std::ptrdiff_t>((head_ + start + 1) * n));
  if (het) {
    work_ids_.assign(
        id_states_.begin() + static_cast<std::ptrdiff_t>((head_ + start) * n),
        id_states_.begin() + static_cast<std::ptrdiff_t>((head_ + start + 1) * n));
  }

  PlanRequest request;
  request.params = params;
  request.free_times = &work_state_;
  request.node_ids = het ? &work_ids_ : nullptr;
  request.now = now;

  auto reject = [&](dlt::Infeasibility reason, const workload::Task* blocker) {
    outcome.accepted = false;
    outcome.reason = reason;
    outcome.blocking_task = blocker->id;
    outcome.reused_prefix = 0;
    outcome.schedule.clear();
    if (cross_check_) verify_against_full(new_task, waiting, params, cluster, now, outcome);
    return outcome;
  };

  // Extend the waiting-only prefix up to the insertion point (runs only
  // after a rejected rebuild left the session partially planned). These
  // plans do not involve the new task, so they survive a rejection.
  for (std::size_t i = planned_; i < p; ++i) {
    request.task = order_[head_ + i];
    PlanResult result = rule_->plan(request);
    if (!result.feasible()) return reject(result.reason, order_[head_ + i]);
    if (het) {
      apply_plan_het(work_state_, work_ids_, result.plan, het_merge_scratch_);
      id_states_.insert(id_states_.end(), work_ids_.begin(), work_ids_.end());
    } else {
      apply_plan(work_state_, result.plan, merge_scratch_);
    }
    plans_.push_back(std::move(result.plan));
    states_.insert(states_.end(), work_state_.begin(), work_state_.end());
    ++planned_;
  }

  // From the insertion point on the temp list diverges from the waiting
  // queue; plan into scratch and adopt only if the whole suffix fits.
  scratch_plans_.clear();
  scratch_rows_.clear();
  scratch_id_rows_.clear();
  for (std::size_t i = p; i <= q; ++i) {
    const workload::Task* task = (i == p) ? &new_task : order_[head_ + i - 1];
    request.task = task;
    PlanResult result = rule_->plan(request);
    if (!result.feasible()) return reject(result.reason, task);
    if (het) {
      apply_plan_het(work_state_, work_ids_, result.plan, het_merge_scratch_);
      scratch_id_rows_.insert(scratch_id_rows_.end(), work_ids_.begin(), work_ids_.end());
    } else {
      apply_plan(work_state_, result.plan, merge_scratch_);
    }
    scratch_plans_.push_back(std::move(result.plan));
    scratch_rows_.insert(scratch_rows_.end(), work_state_.begin(), work_state_.end());
  }

  // Accepted: adopt the scratch suffix into the session.
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(head_ + p), &new_task);
  plans_.resize(head_ + p);
  for (TaskPlan& plan : scratch_plans_) plans_.push_back(std::move(plan));
  states_.resize((head_ + p + 1) * n);
  states_.insert(states_.end(), scratch_rows_.begin(), scratch_rows_.end());
  if (het) {
    id_states_.resize((head_ + p + 1) * n);
    id_states_.insert(id_states_.end(), scratch_id_rows_.begin(), scratch_id_rows_.end());
  }
  planned_ = q + 1;
  synced_prefix_ = q + 1;

  outcome.accepted = true;
  outcome.schedule.reserve(q + 1 - outcome.reused_prefix);
  for (std::size_t i = outcome.reused_prefix; i <= q; ++i) {
    outcome.schedule.push_back(ScheduledTask{order_[head_ + i], plans_[head_ + i]});
  }
  if (cross_check_) verify_against_full(new_task, waiting, params, cluster, now, outcome);
  return outcome;
}

void AdmissionController::verify_against_full(
    const workload::Task& new_task, const std::vector<const workload::Task*>& waiting,
    const cluster::ClusterParams& params, const cluster::Cluster& cluster, Time now,
    const AdmissionOutcome& outcome) const {
  cluster::AvailabilityView view = cluster.availability(now);
  const AdmissionOutcome reference = test(&new_task, waiting, params,
                                          std::move(view.times), now, nullptr,
                                          std::move(view.ids));
  auto fail = [](const std::string& what) {
    throw std::logic_error(
        "AdmissionController cross-check: incremental vs full Figure-2 mismatch: " + what);
  };
  if (reference.accepted != outcome.accepted) fail("acceptance");
  if (!outcome.accepted) {
    if (reference.reason != outcome.reason) fail("infeasibility reason");
    if (reference.blocking_task != outcome.blocking_task) fail("blocking task");
    return;
  }
  // On acceptance the session holds the full adopted schedule.
  const std::size_t live = order_.size() - head_;
  if (reference.schedule.size() != live) fail("schedule size");
  for (std::size_t i = 0; i < live; ++i) {
    if (reference.schedule[i].task != order_[head_ + i]) fail("task order");
    if (!(reference.schedule[i].plan == plans_[head_ + i])) fail("plan equality");
  }
}

}  // namespace rtdls::sched
