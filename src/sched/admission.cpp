#include "sched/admission.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace rtdls::sched {

namespace {

/// Process-registry counters for the incremental session's internals. Bumped
/// at per-arrival granularity (never inside the planner kernels), so the
/// thread-local relaxed increments are noise next to one plan() call.
struct AdmissionObs {
  obs::Counter session_rebuilds =
      obs::Registry::global().counter("rtdls_admission_session_rebuilds_total");
  obs::Counter delta_replays =
      obs::Registry::global().counter("rtdls_admission_delta_replays_total");
  obs::Counter checkpoints =
      obs::Registry::global().counter("rtdls_admission_checkpoints_total");
  obs::Counter opportunistic_checkpoints = obs::Registry::global().counter(
      "rtdls_admission_opportunistic_checkpoints_total");
  /// Re-planned suffix length (temp-list entries from the insertion point)
  /// per accepted incremental admission.
  obs::Histogram replan_suffix = obs::Registry::global().histogram(
      "rtdls_admission_replan_suffix", obs::HistogramOptions{1.0, 4, 64});
};

AdmissionObs& admission_obs() {
  static AdmissionObs handles;
  return handles;
}

}  // namespace

AdmissionController::AdmissionController(Policy policy, const PartitionRule* rule)
    : policy_(policy), rule_(rule) {
  if (rule_ == nullptr) throw std::invalid_argument("AdmissionController: null rule");
}

AdmissionOutcome AdmissionController::test(
    const workload::Task* new_task,
    const std::vector<const workload::Task*>& waiting,
    const cluster::ClusterParams& params,
    std::vector<Time> free_times, Time now,
    const cluster::NodeCalendar* calendar,
    std::vector<cluster::NodeId> node_ids) const {
  if (free_times.size() != params.node_count) {
    throw std::invalid_argument("AdmissionController::test: free_times size mismatch");
  }
  if (rule_->uses_calendar() && calendar == nullptr) {
    throw std::invalid_argument("AdmissionController::test: rule requires a calendar");
  }
  // Private working copy accumulating the temp schedule's reservations.
  std::optional<cluster::NodeCalendar> temp_calendar;
  if (rule_->uses_calendar()) temp_calendar = *calendar;

  // TempTaskList <- NewTask + TaskWaitingQueue, ordered by the policy.
  std::vector<const workload::Task*> temp_list = waiting;
  if (new_task != nullptr) temp_list.push_back(new_task);
  order_tasks(policy_, temp_list);

  const bool het = params.heterogeneous();
  if (het) {
    // Co-floor and co-sort the (time, id) columns into strict (time, id)
    // order; an empty id column means free_times is indexed by node id.
    if (node_ids.empty()) {
      node_ids.resize(free_times.size());
      for (std::size_t i = 0; i < node_ids.size(); ++i) {
        node_ids[i] = static_cast<cluster::NodeId>(i);
      }
    } else if (node_ids.size() != free_times.size()) {
      throw std::invalid_argument("AdmissionController::test: node_ids size mismatch");
    }
    het_merge_scratch_.resize(free_times.size());
    for (std::size_t i = 0; i < free_times.size(); ++i) {
      het_merge_scratch_[i] = {std::max(free_times[i], now), node_ids[i]};
    }
    std::sort(het_merge_scratch_.begin(), het_merge_scratch_.end());
    for (std::size_t i = 0; i < free_times.size(); ++i) {
      free_times[i] = het_merge_scratch_[i].first;
      node_ids[i] = het_merge_scratch_[i].second;
    }
  } else {
    for (Time& t : free_times) t = std::max(t, now);
    std::sort(free_times.begin(), free_times.end());
  }

  AdmissionOutcome outcome;
  outcome.schedule.reserve(temp_list.size());

  for (const workload::Task* task : temp_list) {
    PlanRequest request;
    request.task = task;
    request.params = params;
    request.free_times = &free_times;
    request.node_ids = het ? &node_ids : nullptr;
    request.now = now;
    request.calendar = temp_calendar ? &*temp_calendar : nullptr;

    PlanResult result = rule_->plan(request);
    if (!result.feasible()) {
      outcome.accepted = false;
      outcome.reason = result.reason;
      outcome.blocking_task = task->id;
      outcome.schedule.clear();
      return outcome;  // deadline miss somewhere in the temp list
    }

    // Propagate the plan's reservations to the later temp-schedule tasks.
    const TaskPlan& plan = result.plan;
    if (temp_calendar) {
      // Calendar-based rule: reserve the concrete intervals it chose.
      for (std::size_t i = 0; i < plan.nodes; ++i) {
        temp_calendar->reserve(plan.node_ids[i], plan.reserve_from[i],
                               plan.node_release[i]);
      }
    } else if (het) {
      cluster::apply_releases_het(free_times, node_ids, plan.node_release, plan.node_ids,
                                  het_merge_scratch_);
    } else {
      cluster::apply_releases(free_times, plan.node_release, merge_scratch_);
    }

    outcome.schedule.push_back(ScheduledTask{task, std::move(result.plan)});
  }

  outcome.accepted = true;
  return outcome;
}

void AdmissionController::invalidate() {
  cache_valid_ = false;
  head_ = 0;
  planned_ = 0;
  synced_prefix_ = 0;
  order_.clear();
  plans_.clear();
  delta_end_.clear();
  delta_times_.clear();
  delta_ids_.clear();
  fronts_.clear();
  for (Checkpoint& cp : checkpoints_) retire_checkpoint(std::move(cp));
  checkpoints_.clear();
  cursor_valid_ = false;
  top_times_.clear();
  het_session_ = false;
  top_ids_.clear();
  // peak_ deliberately survives: a burst's high-water mark must outlive the
  // session rebuilds inside it (reset_session_stats() is the explicit reset).
}

AdmissionController::SessionMemory AdmissionController::session_memory() const {
  SessionMemory mem;
  if (!cache_valid_) return mem;
  std::size_t bytes = delta_times_.size() * sizeof(Time) +
                      delta_ids_.size() * sizeof(cluster::NodeId) +
                      delta_end_.size() * sizeof(std::size_t);
  for (const Checkpoint& cp : checkpoints_) {
    bytes += cp.times.size() * sizeof(Time) + cp.ids.size() * sizeof(cluster::NodeId);
  }
  bytes += top_times_.size() * sizeof(Time) + top_ids_.size() * sizeof(cluster::NodeId);
  if (cursor_valid_) {
    bytes += cursor_times_.size() * sizeof(Time) +
             cursor_ids_.size() * sizeof(cluster::NodeId);
  }
  bytes += fronts_.size() * sizeof(Time);
  mem.bytes = bytes;
  // The historical representation held one dense row per planned position
  // (rows head_..head_+planned_ pre-compaction, each N wide; het rows also
  // mirrored an id column).
  const std::size_t entry =
      sizeof(Time) + (het_session_ ? sizeof(cluster::NodeId) : 0);
  mem.dense_equivalent_bytes = (head_ + planned_ + 1) * node_count_ * entry;
  return mem;
}

void AdmissionController::note_session_peak() {
  const SessionMemory mem = session_memory();
  peak_.bytes = std::max(peak_.bytes, mem.bytes);
  peak_.dense_equivalent_bytes =
      std::max(peak_.dense_equivalent_bytes, mem.dense_equivalent_bytes);
}

AdmissionController::Checkpoint AdmissionController::take_checkpoint(std::size_t pos) {
  Checkpoint cp;
  if (!checkpoint_pool_.empty()) {
    cp = std::move(checkpoint_pool_.back());
    checkpoint_pool_.pop_back();
  }
  cp.pos = pos;
  admission_obs().checkpoints.inc();
  return cp;
}

void AdmissionController::retire_checkpoint(Checkpoint&& checkpoint) {
  // Cleared (not shrunk): the next take_checkpoint reuses the row capacity,
  // so the checkpoint churn of adoption truncations allocates nothing in
  // steady state.
  checkpoint.times.clear();
  checkpoint.ids.clear();
  checkpoint_pool_.push_back(std::move(checkpoint));
}

void AdmissionController::compact_head() {
  if (head_ == 0) return;
  // The cut must land on a dense row (everything below it is erased, so the
  // delta chain can no longer reach positions before the first checkpoint):
  // use the last checkpoint at or before head_. One always exists at
  // position 0 (the rebuild seeds it and every compaction keeps the cut).
  std::size_t cut = 0;
  for (const Checkpoint& cp : checkpoints_) {
    if (cp.pos > head_) break;
    cut = cp.pos;
  }
  if (cut == 0) return;  // nothing erasable yet; try again after more commits
  const auto offset = static_cast<std::ptrdiff_t>(cut);
  const std::size_t flat_cut = delta_start(cut);
  order_.erase(order_.begin(), order_.begin() + offset);
  plans_.erase(plans_.begin(), plans_.begin() + offset);
  delta_end_.erase(delta_end_.begin(), delta_end_.begin() + offset);
  for (std::size_t& end : delta_end_) end -= flat_cut;
  delta_times_.erase(delta_times_.begin(),
                     delta_times_.begin() + static_cast<std::ptrdiff_t>(flat_cut));
  if (het_session_) {
    delta_ids_.erase(delta_ids_.begin(),
                     delta_ids_.begin() + static_cast<std::ptrdiff_t>(flat_cut));
  }
  fronts_.erase(fronts_.begin(), fronts_.begin() + offset);
  const auto keep = std::find_if(checkpoints_.begin(), checkpoints_.end(),
                                 [cut](const Checkpoint& cp) { return cp.pos >= cut; });
  for (auto it = checkpoints_.begin(); it != keep; ++it) {
    retire_checkpoint(std::move(*it));
  }
  checkpoints_.erase(checkpoints_.begin(), keep);
  for (Checkpoint& cp : checkpoints_) cp.pos -= cut;
  if (cursor_valid_) {
    if (cursor_pos_ < cut) {
      cursor_valid_ = false;
    } else {
      cursor_pos_ -= cut;
    }
  }
  head_ -= cut;
}

void AdmissionController::materialize_row(std::size_t pos) {
  if (pos == head_ + planned_) {
    // The frontier row is kept dense: append-at-the-end planning (FIFO
    // always, EDF whenever the new deadline sorts last) replays nothing.
    work_state_ = top_times_;
    if (het_session_) work_ids_ = top_ids_;
    return;
  }
  const auto after = std::upper_bound(
      checkpoints_.begin(), checkpoints_.end(), pos,
      [](std::size_t p, const Checkpoint& cp) { return p < cp.pos; });
  const Checkpoint& base = *(after - 1);  // exists: position 0 is always kept
  // Start from whichever dense row is closest below `pos`: the nearest
  // checkpoint, or the cursor (the row the previous arrival rebuilt).
  std::size_t from = base.pos;
  if (cursor_valid_ && cursor_pos_ <= pos && cursor_pos_ > from) {
    from = cursor_pos_;
    work_state_ = cursor_times_;
    if (het_session_) work_ids_ = cursor_ids_;
  } else {
    work_state_ = base.times;
    if (het_session_) work_ids_ = base.ids;
  }
  const std::size_t chain = pos - base.pos;
  admission_obs().delta_replays.add(pos - from);
  for (std::size_t r = from; r < pos; ++r) {
    const std::size_t begin = delta_start(r);
    const std::size_t k = delta_end_[r] - begin;
    if (het_session_) {
      cluster::apply_delta_het(work_state_, work_ids_, delta_times_.data() + begin,
                               delta_ids_.data() + begin, k);
    } else {
      cluster::apply_delta(work_state_, delta_times_.data() + begin, k);
    }
  }
  // A long replay marks a hot insertion point (policies tend to insert
  // arrivals into the same deadline neighborhood); checkpoint the rebuilt
  // row so the next arrival landing here replays nothing. The budget keeps
  // the dense-row count at the sqrt(N)-cadence O(rows / sqrt(N)) bound even
  // when insertion points wander (otherwise opportunistic rows would erode
  // the memory win the sparse session exists for).
  const std::size_t budget = (head_ + planned_) / checkpoint_every_ + 3;
  if (chain > checkpoint_every_ / 2 && checkpoints_.size() < budget) {
    admission_obs().opportunistic_checkpoints.inc();
    Checkpoint cp = take_checkpoint(pos);
    cp.times = work_state_;
    if (het_session_) cp.ids = work_ids_;
    checkpoints_.insert(after, std::move(cp));
  }
  if (pos != from) {
    // Remember the rebuilt row; the next nearby insertion replays only the
    // gap between the two positions.
    cursor_valid_ = true;
    cursor_pos_ = pos;
    cursor_times_ = work_state_;
    if (het_session_) cursor_ids_ = work_ids_;
  }
}

void AdmissionController::on_commit(const workload::Task* task, const TaskPlan& plan,
                                    std::uint64_t cluster_version) {
  if (!cache_valid_) return;
  if (order_.size() == head_ || order_[head_] != task || planned_ == 0 ||
      !(plans_[head_] == plan)) {
    // Out-of-policy-order commit, an unplanned front, or a committed plan
    // differing from the cached one (possible when the caller still holds
    // plans from before a rejected rebuild): the remaining waiting plans
    // were threaded through different inputs, so the next arrival must
    // rebuild.
    invalidate();
    return;
  }
  // Policy-order-front commit: its reservations are exactly the front
  // plan's releases, so the post-commit availability snapshot equals the
  // next row and the whole session just shifts by one - O(1) via the head
  // offset (the frontier row and every checkpoint keep their positions),
  // compacted back to the nearest checkpoint once the consumed prefix
  // outweighs the live part (amortized O(1) per advance).
  ++head_;
  --planned_;
  if (synced_prefix_ > 0) --synced_prefix_;
  cache_version_ = cluster_version;
  if (head_ > 64 && head_ > order_.size() - head_) compact_head();
}

AdmissionOutcome AdmissionController::test_incremental(
    const workload::Task& new_task, const std::vector<const workload::Task*>& waiting,
    const cluster::ClusterParams& params, const cluster::Cluster& cluster, Time now) {
  if (rule_->uses_calendar()) {
    throw std::logic_error("test_incremental: calendar rules require the full test()");
  }
  if (cluster.size() != params.node_count) {
    throw std::invalid_argument("test_incremental: cluster/params node count mismatch");
  }
  const std::size_t n = params.node_count;
  const std::size_t q = waiting.size();
  const bool het = params.heterogeneous();

  // The session is reusable when nothing that feeds the plans has changed:
  // same availability version, no entry floored below `now` (rows are
  // sorted, so the cached front of row head_ suffices), the same waiting
  // order, and the same homogeneous/heterogeneous mode.
  bool reuse = cache_valid_ && cache_version_ == cluster.version() &&
               node_count_ == n && het_session_ == het && order_.size() - head_ == q &&
               fronts_.size() > head_ && fronts_[head_] >= now;
  if (reuse) reuse = std::equal(waiting.begin(), waiting.end(), order_.begin() + head_);

  if (!reuse) {
    admission_obs().session_rebuilds.inc();
    invalidate();
    node_count_ = n;
    het_session_ = het;
    // ~sqrt(N), floored at 16: below that the dense rows are so small that
    // checkpoint churn costs more than the replays it saves (the sparse
    // representation is a large-N play; tiny clusters just replay).
    checkpoint_every_ = std::max<std::size_t>(
        16, static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(n)))));
    order_.assign(waiting.begin(), waiting.end());
    // The caller keeps `waiting` in policy order; re-sorting an already
    // sorted list is cheap and keeps a misordered caller correct (it merely
    // costs the incremental reuse).
    order_tasks(policy_, order_);
    if (het) {
      cluster.availability_with_ids_into(now, top_times_, top_ids_);
    } else {
      cluster.availability_into(now, top_times_);
    }
    Checkpoint base = take_checkpoint(0);
    base.times = top_times_;
    if (het) base.ids = top_ids_;
    checkpoints_.push_back(std::move(base));
    fronts_.push_back(top_times_.front());
    cache_valid_ = true;
    cache_version_ = cluster.version();
  }

  // Policy insertion point of the new task in the ordered waiting queue.
  // policy_less is a strict total order (ties break by arrival then id), so
  // inserting here reproduces order_tasks() on the merged list exactly.
  const std::size_t p = static_cast<std::size_t>(
      std::upper_bound(order_.begin() + static_cast<std::ptrdiff_t>(head_), order_.end(),
                       &new_task,
                       [this](const workload::Task* a, const workload::Task* b) {
                         return policy_less(policy_, *a, *b);
                       }) -
      (order_.begin() + static_cast<std::ptrdiff_t>(head_)));

  AdmissionOutcome outcome;
  const std::size_t start = std::min(p, planned_);
  outcome.reused_prefix = std::min(synced_prefix_, start);

  // Working availability state := row of live position `start`: the dense
  // frontier when planning appends at the end, otherwise the nearest
  // checkpoint plus a bounded delta-chain replay.
  materialize_row(head_ + start);

  // Batched hard-rejection screen: gather every task this call may plan
  // (temp-list order, i.e. screen index i - start for temp position i) into
  // flat (sigma*Cms, deadline) columns once. Each planning step below then
  // rejects a doomed task straight off the columns - the exact (reason,
  // blocker) the rule's own scan would return, per the
  // hard_rejects_at_front() contract - without paying for the plan() call.
  const bool screened = rule_->hard_rejects_at_front();
  if (screened) {
    screen_tasks_.clear();
    for (std::size_t i = start; i < p; ++i) screen_tasks_.push_back(order_[head_ + i]);
    screen_tasks_.push_back(&new_task);
    for (std::size_t i = p + 1; i <= q; ++i) screen_tasks_.push_back(order_[head_ + i - 1]);
    screen_.build(params.cms, screen_tasks_.data(), screen_tasks_.size());
  }

  PlanRequest request;
  request.params = params;
  request.free_times = &work_state_;
  request.node_ids = het ? &work_ids_ : nullptr;
  request.now = now;

  auto reject = [&](dlt::Infeasibility reason, const workload::Task* blocker) {
    outcome.accepted = false;
    outcome.reason = reason;
    outcome.blocking_task = blocker->id;
    outcome.reused_prefix = 0;
    outcome.schedule.clear();
    note_session_peak();
    if (cross_check_) verify_against_full(new_task, waiting, params, cluster, now, outcome);
    return outcome;
  };

  // Applies the freshly planned releases to the working row and appends the
  // resulting O(k) delta (the merge scratch holds exactly the sorted
  // entries the merge consumed) to the given flat delta columns.
  auto apply_and_record = [&](const TaskPlan& plan, std::vector<std::size_t>& ends,
                              std::vector<Time>& times,
                              std::vector<cluster::NodeId>& ids) {
    if (het) {
      cluster::apply_releases_het(work_state_, work_ids_, plan.node_release,
                                  plan.node_ids, het_merge_scratch_);
      for (std::size_t i = 0; i < plan.node_release.size(); ++i) {
        times.push_back(het_merge_scratch_[i].first);
        ids.push_back(het_merge_scratch_[i].second);
      }
    } else {
      cluster::apply_releases(work_state_, plan.node_release, merge_scratch_);
      times.insert(times.end(), merge_scratch_.begin(), merge_scratch_.end());
    }
    ends.push_back(times.size());
  };

  // Extend the waiting-only prefix up to the insertion point (runs only
  // after a rejected rebuild left the session partially planned). These
  // plans do not involve the new task, so they survive a rejection; the
  // frontier row is synced per step so a mid-loop rejection leaves the
  // session consistent.
  for (std::size_t i = planned_; i < p; ++i) {
    if (screened) {
      const dlt::Infeasibility doomed = screen_.screen(i - start, work_state_.front());
      if (doomed != dlt::Infeasibility::kNone) return reject(doomed, order_[head_ + i]);
    }
    request.task = order_[head_ + i];
    PlanResult result = rule_->plan(request);
    if (!result.feasible()) return reject(result.reason, order_[head_ + i]);
    apply_and_record(result.plan, delta_end_, delta_times_, delta_ids_);
    plans_.push_back(std::move(result.plan));
    fronts_.push_back(work_state_.front());
    ++planned_;
    top_times_ = work_state_;
    if (het) top_ids_ = work_ids_;
    if (head_ + planned_ >= checkpoints_.back().pos + checkpoint_every_) {
      Checkpoint cp = take_checkpoint(head_ + planned_);
      cp.times = work_state_;
      if (het) cp.ids = work_ids_;
      checkpoints_.push_back(std::move(cp));
    }
  }

  // From the insertion point on the temp list diverges from the waiting
  // queue; plan into scratch and adopt only if the whole suffix fits.
  scratch_plans_.clear();
  scratch_delta_end_.clear();
  scratch_delta_times_.clear();
  scratch_delta_ids_.clear();
  scratch_fronts_.clear();
  for (Checkpoint& cp : scratch_checkpoints_) retire_checkpoint(std::move(cp));
  scratch_checkpoints_.clear();
  // Checkpoints above the insertion point describe rows of the suffix being
  // replaced and are dropped at adoption; the cadence for the re-planned
  // rows measures from the last one that will survive.
  std::size_t last_checkpoint = 0;
  for (const Checkpoint& cp : checkpoints_) {
    if (cp.pos > head_ + p) break;
    last_checkpoint = cp.pos;
  }
  for (std::size_t i = p; i <= q; ++i) {
    const workload::Task* task = (i == p) ? &new_task : order_[head_ + i - 1];
    if (screened) {
      const dlt::Infeasibility doomed = screen_.screen(i - start, work_state_.front());
      if (doomed != dlt::Infeasibility::kNone) return reject(doomed, task);
    }
    request.task = task;
    PlanResult result = rule_->plan(request);
    if (!result.feasible()) return reject(result.reason, task);
    apply_and_record(result.plan, scratch_delta_end_, scratch_delta_times_,
                     scratch_delta_ids_);
    scratch_plans_.push_back(std::move(result.plan));
    scratch_fronts_.push_back(work_state_.front());
    const std::size_t row = head_ + i + 1;  // row after planning temp entry i
    if (i < q && row >= last_checkpoint + checkpoint_every_) {
      // The final row needs no checkpoint: it becomes the dense frontier.
      Checkpoint cp = take_checkpoint(row);
      cp.times = work_state_;
      if (het) cp.ids = work_ids_;
      scratch_checkpoints_.push_back(std::move(cp));
      last_checkpoint = row;
    }
  }

  // Accepted: adopt the scratch suffix into the session. The replaced
  // suffix rolls back by truncation (its deltas, fronts, and checkpoints
  // simply fall off the stack).
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(head_ + p), &new_task);
  plans_.resize(head_ + p);
  for (TaskPlan& plan : scratch_plans_) plans_.push_back(std::move(plan));
  const std::size_t flat_base = delta_start(head_ + p);
  delta_end_.resize(head_ + p);
  delta_times_.resize(flat_base);
  if (het) delta_ids_.resize(flat_base);
  for (std::size_t end : scratch_delta_end_) delta_end_.push_back(flat_base + end);
  delta_times_.insert(delta_times_.end(), scratch_delta_times_.begin(),
                      scratch_delta_times_.end());
  if (het) {
    delta_ids_.insert(delta_ids_.end(), scratch_delta_ids_.begin(),
                      scratch_delta_ids_.end());
  }
  fronts_.resize(head_ + p + 1);
  fronts_.insert(fronts_.end(), scratch_fronts_.begin(), scratch_fronts_.end());
  while (checkpoints_.back().pos > head_ + p) {
    retire_checkpoint(std::move(checkpoints_.back()));
    checkpoints_.pop_back();
  }
  // The cursor row at the insertion point survives (row head_ + p depends
  // only on the plans before it); anything above described replaced rows.
  if (cursor_valid_ && cursor_pos_ > head_ + p) cursor_valid_ = false;
  for (Checkpoint& cp : scratch_checkpoints_) checkpoints_.push_back(std::move(cp));
  scratch_checkpoints_.clear();  // moved-from shells
  std::swap(top_times_, work_state_);
  if (het) std::swap(top_ids_, work_ids_);
  planned_ = q + 1;
  synced_prefix_ = q + 1;
  note_session_peak();
  admission_obs().replan_suffix.record(static_cast<double>(q + 1 - p));

  outcome.accepted = true;
  outcome.schedule.reserve(q + 1 - outcome.reused_prefix);
  for (std::size_t i = outcome.reused_prefix; i <= q; ++i) {
    outcome.schedule.push_back(ScheduledTask{order_[head_ + i], plans_[head_ + i]});
  }
  if (cross_check_) verify_against_full(new_task, waiting, params, cluster, now, outcome);
  return outcome;
}

void AdmissionController::verify_against_full(
    const workload::Task& new_task, const std::vector<const workload::Task*>& waiting,
    const cluster::ClusterParams& params, const cluster::Cluster& cluster, Time now,
    const AdmissionOutcome& outcome) const {
  cluster::AvailabilityView view = cluster.availability(now);
  const AdmissionOutcome reference = test(&new_task, waiting, params,
                                          std::move(view.times), now, nullptr,
                                          std::move(view.ids));
  auto fail = [](const std::string& what) {
    throw std::logic_error(
        "AdmissionController cross-check: incremental vs full Figure-2 mismatch: " + what);
  };
  if (reference.accepted != outcome.accepted) fail("acceptance");
  if (!outcome.accepted) {
    if (reference.reason != outcome.reason) fail("infeasibility reason");
    if (reference.blocking_task != outcome.blocking_task) fail("blocking task");
    return;
  }
  // On acceptance the session holds the full adopted schedule.
  const std::size_t live = order_.size() - head_;
  if (reference.schedule.size() != live) fail("schedule size");
  for (std::size_t i = 0; i < live; ++i) {
    if (reference.schedule[i].task != order_[head_ + i]) fail("task order");
    if (!(reference.schedule[i].plan == plans_[head_ + i])) fail("plan equality");
  }
}

}  // namespace rtdls::sched
