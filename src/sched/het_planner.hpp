// Heterogeneous-mode planning paths for every partition rule.
//
// When ClusterParams carries a speed profile that actually differs from the
// scalar Cps, each rule delegates here instead of its homogeneous body. The
// shared structure:
//
//  * The closed-form n_min (Section 4.1.1 B) assumes one Cps, so the node
//    count is resolved by a first-feasible scan over availability-ordered
//    prefixes instead: candidates are ordered by release time, the paper's
//    two hard rejections (deadline passed / pure transmission too long) only
//    worsen as r_n grows and abort the scan, and a work-conservation
//    capacity prune (sum_i (deadline - r_i)/cps_i >= sigma is necessary for
//    feasibility) skips building partitions that cannot possibly fit.
//    The prune is not walked position by position: because one more node can
//    contribute at most (deadline - r_n)/min_cps of capacity, the scan jumps
//    straight to the provable lower bound on the first prefix that could
//    carry the load (galloped like the homogeneous n_min first crossing) and
//    only hard-checks the jump landings; an infeasible landing binary-
//    searches the skipped range so the linear scan's exact accept position
//    and reject reason are preserved (hard rejection is monotone in r_n).
//    Speeds are gathered lazily up to the largest inspected position, so a
//    plan that accepts a k-node prefix costs O(k), not O(N).
//  * Each prefix's estimate comes from the generalized Eq.-1 equivalent
//    model over the offered nodes' *actual* speeds
//    (dlt::build_het_partition_into feeding general_het_alpha_into).
//  * Accepted plans pin node identity: node_ids/node_cps record exactly
//    which nodes the alpha fractions were computed for, and the simulator
//    commits those ids (nodes of different speeds are not interchangeable).
//
// NodeSearch::kOptimistic has no het analogue (the single-shot n_min closed
// form is homogeneous-only); -Opt algorithm variants fall back to the
// iterative scan under a heterogeneous profile.
#pragma once

#include <cstddef>
#include <vector>

#include "dlt/het_model.hpp"
#include "sched/partition_rule.hpp"
#include "sched/planner_batch.hpp"

namespace rtdls::sched::het {

/// Reusable scratch shared by the het planning entry points. One instance
/// per rule (same single-thread affinity as the rules' other scratch).
struct PlannerScratch {
  /// Actual speeds of the offered positions. The prefix scan fills this
  /// lazily up to the largest position it actually inspects (O(accept)
  /// instead of O(N) per plan); entry points that consume every position
  /// (OPR-AN, UserSplit) still gather the full column.
  std::vector<double> cps;
  std::vector<double> alpha;        ///< general_het_alpha output
  dlt::HetPartition partition;      ///< generalized Eq.-1 model
  /// Batched SoA candidate-evaluation kernels: the post-crossing walk's
  /// incremental alpha cursor and the DLT path's flat equivalent-model
  /// columns live here (reused across plan() calls, zero allocation in
  /// steady state).
  PlannerBatch batch;
  /// Counters surfaced through PartitionRule::planner_counters().
  PlannerCounters counters;
  // multi-round state (slot-aligned with the chosen prefix)
  std::vector<Time> round_free;
  std::vector<Time> sorted_free;
  std::vector<double> sorted_cps;
  std::vector<std::size_t> order;
  std::vector<double> slot_alpha;
  // backfill state
  std::vector<cluster::NodeId> window_nodes;
  std::vector<double> window_cps;
  /// Backfill instant-free pool: ids free at the current candidate time (and
  /// their speeds), in id order, grown incrementally across node counts; the
  /// zero-length-window seeds are prefixes of this pool, which is what lets
  /// the m-loop ride the shared alpha cursor (see plan_opr_mn_backfill).
  std::vector<cluster::NodeId> instant_free;
  std::vector<double> instant_cps;
};

/// EDF/FIFO-DLT: IIT-utilizing partition on the generalized equivalent
/// model; smallest availability-ordered prefix whose r_n + E_hat meets the
/// deadline.
PlanResult plan_dlt_iit(const PlanRequest& request, PlannerScratch& scratch);

/// OPR-MN: simultaneous allocation at r_n with the het-optimal partition
/// over actual speeds; smallest feasible prefix.
PlanResult plan_opr_mn(const PlanRequest& request, PlannerScratch& scratch);

/// OPR-AN: the whole cluster at r_N.
PlanResult plan_opr_an(const PlanRequest& request, PlannerScratch& scratch);

/// UserSplit: equal chunks over the user's node count, each node computing
/// at its actual speed (exact rolled-out completion per node).
PlanResult plan_user_split(const PlanRequest& request, PlannerScratch& scratch);

/// Multi-round: node count from the single-round het scan (so a feasible
/// single-round fallback exists), then `rounds` uniform installments each
/// het-partitioned against the slots' evolving availability; falls back to
/// the single-round plan when the installments happen to finish later.
PlanResult plan_multiround(const PlanRequest& request, std::size_t rounds,
                           PlannerScratch& scratch);

/// OPR-MN-BF: conservative backfilling with het durations. At each calendar
/// candidate time t, node sets are grown one node at a time (lowest ids
/// first among nodes free at t); the window length is the het no-IIT
/// execution time of the selected set (distribution in id order), refined by
/// a short fixed-point iteration because the duration depends on which
/// nodes fit it. A set is accepted once every member is free across the
/// computed window and the window meets the deadline.
PlanResult plan_opr_mn_backfill(const PlanRequest& request, PlannerScratch& scratch);

/// Exact rolled-out multi-installment timeline on heterogeneous slots
/// (shared by plan_multiround and the simulator's shared-link re-roll).
/// `available`/`cps` are slot-aligned; `completion[i]` is slot i's last
/// installment finish. When `slot_alpha` is non-null it receives each
/// slot's mean load fraction across installments (sums to 1).
struct HetMultiRoundRollout {
  std::vector<Time> completion;
  Time channel_busy_until = 0.0;

  Time task_completion() const;
};

void roll_multiround(const cluster::ClusterParams& params, double sigma,
                     const std::vector<Time>& available, const std::vector<double>& cps,
                     std::size_t rounds, Time channel_available, PlannerScratch& scratch,
                     HetMultiRoundRollout& out, std::vector<double>* slot_alpha = nullptr);

}  // namespace rtdls::sched::het
