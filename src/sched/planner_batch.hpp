// Batched structure-of-arrays planning kernels.
//
// Candidate evaluation dominates the schedulability test: the het planners
// inspect (n, candidate-time) prefixes one at a time and historically
// re-ran the full Eq. (4)-(5) recurrence - and, on the DLT path, rebuilt a
// whole HetPartition - for every one, O(N^2) per task in the worst case.
// This layer restructures that work into flat columns:
//
//  * Walk kernels (opr_walk_estimate / dlt_walk_estimate): share one
//    dlt::AlphaRecurrence cursor over the actual-speed column, so the het
//    resolver's post-crossing walk extends n -> n+1 in O(1) on the OPR-MN
//    path and O(1) for the E_ref stage of the DLT path. The DLT path's
//    second stage (the equivalent-model costs cps_tilde depend on both r_n
//    and E_ref, so they change wholesale at every n) runs as two
//    elementwise column passes - divide column, ratio column - that the
//    compiler vectorizes, followed by the order-sensitive O(n) scalar scan.
//    No partition struct, no per-candidate allocation.
//  * Batch kernels (opr_mn_estimates): evaluate a whole batch of candidate
//    prefixes in one forward pass (O(1) amortized per prefix).
//  * QueueScreen: the admission controller's suffix re-plan loop screens a
//    batch of queued tasks through precomputed (sigma*Cms, deadline)
//    columns before paying for a full plan() call; see the exactness
//    contract on PartitionRule::hard_rejects_at_front.
//
// Proof obligation: every kernel accumulates in the exact scan order of the
// scalar reference (general_het_alpha_into / build_het_partition_into), so
// schedules are bit-identical - enforced by differential property tests
// over graded sizes, with the admission cross-check armed. The RTDLS_SIMD
// build flag only widens the elementwise passes (see util/simd.hpp); CI
// runs the suite with the flag both on and off.
#pragma once

#include <cstddef>
#include <vector>

#include "dlt/het_model.hpp"
#include "util/annotations.hpp"
#include "dlt/params.hpp"
#include "workload/task.hpp"

namespace rtdls::sched::het {

using cluster::Time;

class PlannerBatch {
 public:
  // --- incremental walk interface -----------------------------------------
  // A walk starts with begin_walk and then asks for estimates at strictly
  // increasing prefix lengths n; the cursor carries the shared recurrence
  // forward. `free` / `cps` are the availability-ordered columns; entries
  // [0, n) must be populated before the call.

  void begin_walk(double cms, double sigma);

  /// OPR-MN estimate at prefix n: r_n + sigma*Cms + alpha_n*sigma*cps_n,
  /// alpha_n from the cursor. O(1) amortized per inspected prefix.
  RTDLS_HOT Time opr_walk_estimate(const std::vector<Time>& free, const std::vector<double>& cps,
                         std::size_t n);

  /// DLT-IIT estimate at prefix n: the generalized Eq.-1 equivalent model's
  /// r_n + E_hat, evaluated on flat columns. E_ref comes from the cursor in
  /// O(1); the cps_tilde stage is O(n) with vectorizable elementwise passes.
  RTDLS_HOT Time dlt_walk_estimate(const std::vector<Time>& free, const std::vector<double>& cps,
                         std::size_t n);

  /// Normalized alpha of the last opr_walk_estimate prefix
  /// (general_het_alpha_into's output, bit for bit).
  void materialize_walk_alpha(std::vector<double>& out) const { cursor_.materialize(out); }

  /// Normalized alpha of the last dlt_walk_estimate prefix
  /// (the accepted partition's fractions, bit for bit).
  void materialize_dlt_alpha(std::vector<double>& out) const;

  // --- backfill window kernels ---------------------------------------------
  // The OPR-MN-BF candidate-time x m sweep grows an id-ordered node pool at
  // each candidate time; its zero-length-window seeds are prefixes of that
  // pool, so consecutive m share the walk cursor. Re-selected (positive
  // duration) windows are arbitrary sets and use the one-shot kernel.

  /// Window duration of the m-prefix of the cursor's column (extends the
  /// cursor as the pool grows): sigma*Cms + alpha_m*sigma*cps_m.
  RTDLS_HOT Time window_duration_prefix(const std::vector<double>& cps, std::size_t m);

  /// One-shot window duration of an arbitrary m-node set; streams the
  /// recurrence, allocation-free.
  RTDLS_HOT static Time window_duration(double cms, double sigma, const std::vector<double>& cps,
                              std::size_t m);

  // --- batch interface ------------------------------------------------------

  /// Estimates for ALL prefixes n = 1..count in one forward pass (each entry
  /// bit-identical to the scalar per-prefix evaluation): out[n-1] =
  /// free[n-1] + sigma*Cms + alpha_n*sigma*cps[n-1]. O(1) per prefix.
  RTDLS_HOT static void opr_mn_estimates(double cms, double sigma, const std::vector<Time>& free,
                               const std::vector<double>& cps, std::size_t count,
                               std::vector<Time>& out);

 private:
  void sync_cursor(const std::vector<double>& cps, std::size_t n);

  dlt::AlphaRecurrence cursor_;  ///< recurrence over the actual-speed column
  double sigma_ = 0.0;
  double cms_ = 1.0;
  // DLT second-stage columns (reused across candidates and plans).
  std::vector<double> tilde_;     ///< cps_tilde_i, Eq. (1) generalized
  std::vector<double> ratio_;     ///< X_i = tilde_{i-1} / (cms + tilde_i)
  std::vector<double> products_;  ///< unnormalized prefix products over tilde
  double dlt_denom_ = 1.0;        ///< running denominator of the last DLT prefix
  std::size_t dlt_n_ = 0;         ///< length of the last DLT prefix
};

/// Structure-of-arrays screen over a batch of queued tasks awaiting a
/// suffix re-plan. One gather pass pulls each task's transmission floor
/// sigma_i*Cms and absolute deadline into flat columns; the admission loop
/// then rejects a doomed task straight off the columns - exactly the
/// (reason, position) the rule's own scan would return, per the
/// PartitionRule::hard_rejects_at_front contract - without paying for the
/// plan() call.
class QueueScreen {
 public:
  /// Gathers the screen columns for `count` tasks.
  void build(double cms, const workload::Task* const* tasks, std::size_t count);

  std::size_t size() const { return deadline_.size(); }

  /// The paper's two hard rejections for task `i` evaluated at availability
  /// row front `front` (= r_1 of the row the task would plan against).
  /// Bit-identical to het::hard_reject / dlt::minimum_nodes at r_1.
  RTDLS_HOT dlt::Infeasibility screen(std::size_t i, Time front) const {
    const Time slack = deadline_[i] - front;
    if (slack <= 0.0) return dlt::Infeasibility::kDeadlinePassed;
    if (tx_floor_[i] >= slack) return dlt::Infeasibility::kTransmissionTooLong;
    return dlt::Infeasibility::kNone;
  }

 private:
  std::vector<double> tx_floor_;  ///< sigma_i * Cms
  std::vector<Time> deadline_;    ///< absolute deadlines
};

}  // namespace rtdls::sched::het
