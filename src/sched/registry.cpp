#include "sched/registry.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace rtdls::sched {

namespace {

/// Splits "<policy>-<rule>" and parses the policy part.
bool parse_policy_prefix(const std::string& name, Policy& policy, std::string& rest) {
  if (util::starts_with(name, "EDF-")) {
    policy = Policy::kEdf;
    rest = name.substr(4);
    return true;
  }
  if (util::starts_with(name, "FIFO-")) {
    policy = Policy::kFifo;
    rest = name.substr(5);
    return true;
  }
  return false;
}

std::unique_ptr<PartitionRule> make_rule(const std::string& rule_name);

/// "<inner>-IO<percent>": output-aware decoration, e.g. "DLT-IO20" budgets a
/// result volume of 20% of the input into every deadline.
std::unique_ptr<PartitionRule> try_make_output_rule(const std::string& rule_name) {
  const std::size_t pos = rule_name.rfind("-IO");
  if (pos == std::string::npos || pos == 0) return nullptr;
  unsigned long long percent = 0;
  if (!util::parse_u64(rule_name.substr(pos + 3), percent) || percent > 10000) {
    return nullptr;
  }
  std::unique_ptr<PartitionRule> inner = make_rule(rule_name.substr(0, pos));
  if (inner == nullptr) return nullptr;
  return make_output_aware_rule(std::move(inner), static_cast<double>(percent) / 100.0);
}

std::unique_ptr<PartitionRule> make_rule(const std::string& rule_name) {
  if (auto output_rule = try_make_output_rule(rule_name)) return output_rule;
  if (rule_name == "DLT") return make_dlt_iit_rule();
  if (rule_name == "OPR-MN") return make_opr_mn_rule();
  if (rule_name == "OPR-AN") return make_opr_an_rule();
  if (rule_name == "OPR-MN-BF") return make_opr_mn_backfill_rule();
  // "-Opt" variants resolve the node count single-shot at the earliest
  // availability (NodeSearch::kOptimistic); see partition_rule.hpp.
  if (rule_name == "DLT-Opt") return make_dlt_iit_rule(NodeSearch::kOptimistic);
  if (rule_name == "OPR-MN-Opt") return make_opr_mn_rule(NodeSearch::kOptimistic);
  if (rule_name == "UserSplit") return make_user_split_rule();
  if (util::starts_with(rule_name, "MR")) {
    unsigned long long rounds = 0;
    if (util::parse_u64(rule_name.substr(2), rounds) && rounds >= 1 && rounds <= 64) {
      return make_multiround_rule(static_cast<std::size_t>(rounds));
    }
  }
  return nullptr;
}

}  // namespace

Algorithm make_algorithm(const std::string& name) {
  Policy policy = Policy::kEdf;
  std::string rule_name;
  if (!parse_policy_prefix(name, policy, rule_name)) {
    throw std::invalid_argument("make_algorithm: unknown policy in '" + name + "'");
  }
  std::unique_ptr<PartitionRule> rule = make_rule(rule_name);
  if (rule == nullptr) {
    throw std::invalid_argument("make_algorithm: unknown rule in '" + name + "'");
  }
  Algorithm algorithm;
  algorithm.name = name;
  algorithm.policy = policy;
  algorithm.rule = std::move(rule);
  return algorithm;
}

std::vector<std::string> paper_algorithm_names() {
  return {"EDF-DLT",      "FIFO-DLT",      "EDF-OPR-MN",    "FIFO-OPR-MN",
          "EDF-OPR-AN",   "FIFO-OPR-AN",   "EDF-UserSplit", "FIFO-UserSplit"};
}

std::vector<std::string> all_algorithm_names() {
  std::vector<std::string> names = paper_algorithm_names();
  names.push_back("EDF-MR2");
  names.push_back("EDF-MR4");
  names.push_back("FIFO-MR2");
  names.push_back("FIFO-MR4");
  names.push_back("EDF-OPR-MN-BF");
  names.push_back("FIFO-OPR-MN-BF");
  return names;
}

}  // namespace rtdls::sched
