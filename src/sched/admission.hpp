// The Figure-2 schedulability test: when a new task arrives, re-plan the new
// task plus every *waiting* (admitted but not yet started) task in policy
// order against the cluster's current availability. If every task in the
// temp list meets its deadline, the temp schedule is accepted and replaces
// the waiting tasks' plans; otherwise the new task is rejected and the
// previous (still valid) plans are kept.
//
// Two entry points implement the same test:
//  * test() is the stateless reference: it re-plans the full temp list on
//    every call, exactly as Figure 2 is written.
//  * test_incremental() exploits the fact that non-calendar plans are a
//    deterministic function of (task, cluster params, availability state):
//    while the cluster's availability version is unchanged and the waiting
//    set (kept in policy order by the caller) has only grown through
//    accepted arrivals, the prefix of the temp list before the new task's
//    insertion point has exactly the same inputs as the previous call, so
//    its cached plans are reused and only the suffix is re-planned. A
//    policy-order commit advances the cache in O(1) plans instead of
//    invalidating it. The outcomes are bit-identical to test() (asserted
//    when cross-check mode is on).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "sched/partition_rule.hpp"
#include "sched/policy.hpp"

namespace rtdls::sched {

/// One planned entry of an accepted temp schedule.
struct ScheduledTask {
  const workload::Task* task = nullptr;
  TaskPlan plan;
};

/// Result of a schedulability test.
struct AdmissionOutcome {
  bool accepted = false;
  dlt::Infeasibility reason = dlt::Infeasibility::kNone;  ///< why it failed
  cluster::TaskId blocking_task = cluster::kNoTask;  ///< task that missed in the temp list

  /// Number of leading waiting-queue entries whose plans are unchanged from
  /// what the caller already holds (incremental path only; 0 for test()).
  /// `schedule` holds the temp-list entries from this position onward.
  std::size_t reused_prefix = 0;

  std::vector<ScheduledTask> schedule;  ///< plans in policy order (accepted only)
};

/// Admission logic: combines an ordering policy (Decision #1) with a
/// partition rule (Decisions #2 and #3). test() is stateless; the
/// incremental session state only caches results derivable from the
/// caller's inputs and never changes outcomes.
class AdmissionController {
 public:
  AdmissionController(Policy policy, const PartitionRule* rule);

  Policy policy() const { return policy_; }
  const PartitionRule& rule() const { return *rule_; }

  /// Runs the schedulability test of Figure 2.
  ///
  /// `free_times`: release times of all N nodes floored at `now` (need not
  /// be sorted; a sorted copy is taken). `waiting`: admitted, uncommitted
  /// tasks. `new_task` may be null to validate the waiting queue alone.
  ///
  /// `calendar`: required when the rule uses_calendar() (backfilling); the
  /// controller plans each temp-schedule task against a private copy into
  /// which earlier tasks' reservations are inserted, so the accepted plans
  /// are mutually conflict-free.
  ///
  /// `node_ids`: owners of the free_times entries, required meaningful only
  /// when params.heterogeneous() (nodes stop being interchangeable once
  /// speeds differ). Empty means free_times[i] belongs to node i. The pair
  /// columns are co-floored and co-sorted into the strict (time, id) order
  /// the het rules plan against.
  AdmissionOutcome test(const workload::Task* new_task,
                        const std::vector<const workload::Task*>& waiting,
                        const cluster::ClusterParams& params,
                        std::vector<Time> free_times, Time now,
                        const cluster::NodeCalendar* calendar = nullptr,
                        std::vector<cluster::NodeId> node_ids = {}) const;

  /// Incremental Figure-2 test for non-calendar rules (throws
  /// std::logic_error when rule().uses_calendar()).
  ///
  /// Contract with the caller (the simulator):
  ///  * `waiting` is in policy order and, between calls, only changes
  ///    through this controller's outcomes (accepts) and on_commit();
  ///  * `cluster` is the availability source; its version() must be bumped
  ///    by every node mutation (Cluster does this).
  /// Violating the contract cannot produce wrong schedules - the cache
  /// revalidates against the waiting list and the availability version and
  /// falls back to a full re-plan - it only costs speed.
  AdmissionOutcome test_incremental(const workload::Task& new_task,
                                    const std::vector<const workload::Task*>& waiting,
                                    const cluster::ClusterParams& params,
                                    const cluster::Cluster& cluster, Time now);

  /// Informs the incremental session that `task` left the waiting queue by
  /// committing `plan`, with `cluster_version` the availability version
  /// right after its reservations were applied. A policy-order-front commit
  /// whose plan equals the session's cached front plan advances the cache
  /// (the remaining plans' inputs are unchanged because the committed
  /// reservations equal the cached planning state); any other commit
  /// invalidates it.
  void on_commit(const workload::Task* task, const TaskPlan& plan,
                 std::uint64_t cluster_version);

  /// Drops the incremental session state (e.g. at the start of a run).
  void invalidate();

  /// Debug mode: every test_incremental() also runs the full stateless
  /// test() and throws std::logic_error unless the outcomes (acceptance,
  /// reason, blocking task, and every plan, bitwise) are identical.
  void set_cross_check(bool on) { cross_check_ = on; }
  bool cross_check() const { return cross_check_; }

 private:
  void verify_against_full(const workload::Task& new_task,
                           const std::vector<const workload::Task*>& waiting,
                           const cluster::ClusterParams& params,
                           const cluster::Cluster& cluster, Time now,
                           const AdmissionOutcome& outcome) const;

  Policy policy_;
  const PartitionRule* rule_;
  bool cross_check_ = false;

  // --- incremental session state (see test_incremental) ---
  // Storage position head_ + i corresponds to live waiting position i, so
  // a policy-front commit advances in O(1) by bumping head_ (compacted
  // once the consumed prefix outweighs the live part). Invariant when
  // cache_valid_: the live view of order_ is the waiting queue in policy
  // order; states_ row head_ + i (stride = node count) is the availability
  // state before planning live entry i, row head_ being the floored sorted
  // snapshot the session currently stands on; plans_[head_ + i]
  // (i < planned_) is live entry i's plan against that state; rows exist
  // for live 0..planned_. synced_prefix_ counts the leading live entries
  // whose plans the caller is known to hold verbatim.
  void compact_head();

  bool cache_valid_ = false;
  std::uint64_t cache_version_ = 0;
  std::size_t node_count_ = 0;
  std::size_t head_ = 0;
  std::size_t planned_ = 0;
  std::size_t synced_prefix_ = 0;
  std::vector<const workload::Task*> order_;
  std::vector<TaskPlan> plans_;
  std::vector<Time> states_;
  /// Heterogeneous sessions only: id_states_ mirrors states_ row for row
  /// (id_states_[r*N + i] owns states_[r*N + i]), preserving the strict
  /// (time, id) order so the cached rows stay bit-identical to fresh
  /// cluster snapshots. Empty for homogeneous sessions - the homogeneous
  /// hot path pays nothing.
  bool het_session_ = false;
  std::vector<cluster::NodeId> id_states_;

  // Scratch reused across calls (no per-arrival allocation steady-state).
  std::vector<Time> work_state_;
  std::vector<cluster::NodeId> work_ids_;
  std::vector<TaskPlan> scratch_plans_;
  std::vector<Time> scratch_rows_;
  std::vector<cluster::NodeId> scratch_id_rows_;
  /// apply_plan's merge buffer; mutable so the const (stateless) test()
  /// reuses it too. Consistent with the single-thread affinity of the
  /// controller (like the rules' plan scratch, one instance per simulator).
  mutable std::vector<Time> merge_scratch_;
  /// Het apply_plan's (release, id) pair buffer, same mutability rationale.
  mutable std::vector<std::pair<Time, cluster::NodeId>> het_merge_scratch_;
};

}  // namespace rtdls::sched
