// The Figure-2 schedulability test: when a new task arrives, re-plan the new
// task plus every *waiting* (admitted but not yet started) task in policy
// order against the cluster's current availability. If every task in the
// temp list meets its deadline, the temp schedule is accepted and replaces
// the waiting tasks' plans; otherwise the new task is rejected and the
// previous (still valid) plans are kept.
#pragma once

#include <optional>
#include <vector>

#include "sched/partition_rule.hpp"
#include "sched/policy.hpp"

namespace rtdls::sched {

/// One planned entry of an accepted temp schedule.
struct ScheduledTask {
  const workload::Task* task = nullptr;
  TaskPlan plan;
};

/// Result of a schedulability test.
struct AdmissionOutcome {
  bool accepted = false;
  dlt::Infeasibility reason = dlt::Infeasibility::kNone;  ///< why it failed
  cluster::TaskId blocking_task = cluster::kNoTask;  ///< task that missed in the temp list
  std::vector<ScheduledTask> schedule;  ///< plans in policy order (accepted only)
};

/// Stateless admission logic: combines an ordering policy (Decision #1)
/// with a partition rule (Decisions #2 and #3).
class AdmissionController {
 public:
  AdmissionController(Policy policy, const PartitionRule* rule);

  Policy policy() const { return policy_; }
  const PartitionRule& rule() const { return *rule_; }

  /// Runs the schedulability test of Figure 2.
  ///
  /// `free_times`: release times of all N nodes floored at `now` (need not
  /// be sorted; a sorted copy is taken). `waiting`: admitted, uncommitted
  /// tasks. `new_task` may be null to validate the waiting queue alone.
  ///
  /// `calendar`: required when the rule uses_calendar() (backfilling); the
  /// controller plans each temp-schedule task against a private copy into
  /// which earlier tasks' reservations are inserted, so the accepted plans
  /// are mutually conflict-free.
  AdmissionOutcome test(const workload::Task* new_task,
                        const std::vector<const workload::Task*>& waiting,
                        const cluster::ClusterParams& params,
                        std::vector<Time> free_times, Time now,
                        const cluster::NodeCalendar* calendar = nullptr) const;

 private:
  Policy policy_;
  const PartitionRule* rule_;
};

}  // namespace rtdls::sched
