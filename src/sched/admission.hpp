// The Figure-2 schedulability test: when a new task arrives, re-plan the new
// task plus every *waiting* (admitted but not yet started) task in policy
// order against the cluster's current availability. If every task in the
// temp list meets its deadline, the temp schedule is accepted and replaces
// the waiting tasks' plans; otherwise the new task is rejected and the
// previous (still valid) plans are kept.
//
// Two entry points implement the same test:
//  * test() is the stateless reference: it re-plans the full temp list on
//    every call, exactly as Figure 2 is written.
//  * test_incremental() exploits the fact that non-calendar plans are a
//    deterministic function of (task, cluster params, availability state):
//    while the cluster's availability version is unchanged and the waiting
//    set (kept in policy order by the caller) has only grown through
//    accepted arrivals, the prefix of the temp list before the new task's
//    insertion point has exactly the same inputs as the previous call, so
//    its cached plans are reused and only the suffix is re-planned. A
//    policy-order commit advances the cache in O(1) plans instead of
//    invalidating it. The outcomes are bit-identical to test() (asserted
//    when cross-check mode is on).
//
// Session state representation: a plan touches only k << N availability
// entries, so the session stores one sparse cluster::AvailabilityDelta per
// planned task (O(k) bytes) instead of the dense N-wide row per task it used
// to copy (O(Q*N) bytes per arrival burst). Dense rows survive only as
//  * checkpoints every ~sqrt(N) planned positions (plus opportunistic ones
//    where suffix re-plans actually land), and
//  * the materialized frontier row after the last planned task (the common
//    append-at-the-end planning start).
// A suffix re-plan starting mid-queue rebuilds its dense starting row by
// copying the nearest checkpoint at or before the insertion point and
// replaying the bounded delta chain up to it - bit-identical to the row the
// dense representation held, because the replay runs the exact merge that
// produced the row originally. Policy-front commits still advance in O(1)
// (head offset); rejected/replaced suffixes roll back by truncating the
// delta stack. Peak memory per burst drops from O(Q*N) to
// O(Q*k + sqrt(N)*N), measured by session_memory()/peak_session_memory().
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "cluster/availability_delta.hpp"
#include "cluster/cluster.hpp"
#include "sched/partition_rule.hpp"
#include "sched/planner_batch.hpp"
#include "sched/policy.hpp"

namespace rtdls::sched {

/// One planned entry of an accepted temp schedule.
struct ScheduledTask {
  const workload::Task* task = nullptr;
  TaskPlan plan;
};

/// Result of a schedulability test.
struct AdmissionOutcome {
  bool accepted = false;
  dlt::Infeasibility reason = dlt::Infeasibility::kNone;  ///< why it failed
  cluster::TaskId blocking_task = cluster::kNoTask;  ///< task that missed in the temp list

  /// Number of leading waiting-queue entries whose plans are unchanged from
  /// what the caller already holds (incremental path only; 0 for test()).
  /// `schedule` holds the temp-list entries from this position onward.
  std::size_t reused_prefix = 0;

  std::vector<ScheduledTask> schedule;  ///< plans in policy order (accepted only)
};

/// Admission logic: combines an ordering policy (Decision #1) with a
/// partition rule (Decisions #2 and #3). test() is stateless; the
/// incremental session state only caches results derivable from the
/// caller's inputs and never changes outcomes.
class AdmissionController {
 public:
  AdmissionController(Policy policy, const PartitionRule* rule);

  Policy policy() const { return policy_; }
  const PartitionRule& rule() const { return *rule_; }

  /// Runs the schedulability test of Figure 2.
  ///
  /// `free_times`: release times of all N nodes floored at `now` (need not
  /// be sorted; a sorted copy is taken). `waiting`: admitted, uncommitted
  /// tasks. `new_task` may be null to validate the waiting queue alone.
  ///
  /// `calendar`: required when the rule uses_calendar() (backfilling); the
  /// controller plans each temp-schedule task against a private copy into
  /// which earlier tasks' reservations are inserted, so the accepted plans
  /// are mutually conflict-free.
  ///
  /// `node_ids`: owners of the free_times entries, required meaningful only
  /// when params.heterogeneous() (nodes stop being interchangeable once
  /// speeds differ). Empty means free_times[i] belongs to node i. The pair
  /// columns are co-floored and co-sorted into the strict (time, id) order
  /// the het rules plan against.
  AdmissionOutcome test(const workload::Task* new_task,
                        const std::vector<const workload::Task*>& waiting,
                        const cluster::ClusterParams& params,
                        std::vector<Time> free_times, Time now,
                        const cluster::NodeCalendar* calendar = nullptr,
                        std::vector<cluster::NodeId> node_ids = {}) const;

  /// Incremental Figure-2 test for non-calendar rules (throws
  /// std::logic_error when rule().uses_calendar()).
  ///
  /// Contract with the caller (the simulator):
  ///  * `waiting` is in policy order and, between calls, only changes
  ///    through this controller's outcomes (accepts) and on_commit();
  ///  * `cluster` is the availability source; its version() must be bumped
  ///    by every node mutation (Cluster does this).
  /// Violating the contract cannot produce wrong schedules - the cache
  /// revalidates against the waiting list and the availability version and
  /// falls back to a full re-plan - it only costs speed.
  AdmissionOutcome test_incremental(const workload::Task& new_task,
                                    const std::vector<const workload::Task*>& waiting,
                                    const cluster::ClusterParams& params,
                                    const cluster::Cluster& cluster, Time now);

  /// Informs the incremental session that `task` left the waiting queue by
  /// committing `plan`, with `cluster_version` the availability version
  /// right after its reservations were applied. A policy-order-front commit
  /// whose plan equals the session's cached front plan advances the cache
  /// (the remaining plans' inputs are unchanged because the committed
  /// reservations equal the cached planning state); any other commit
  /// invalidates it.
  void on_commit(const workload::Task* task, const TaskPlan& plan,
                 std::uint64_t cluster_version);

  /// Drops the incremental session state (e.g. at the start of a run).
  void invalidate();

  /// Debug mode: every test_incremental() also runs the full stateless
  /// test() and throws std::logic_error unless the outcomes (acceptance,
  /// reason, blocking task, and every plan, bitwise) are identical.
  void set_cross_check(bool on) { cross_check_ = on; }
  bool cross_check() const { return cross_check_; }

  /// Session availability-state footprint. `bytes` is what the delta stack,
  /// checkpoints, frontier row, and per-row front times actually hold
  /// (size-based, so it is deterministic); `dense_equivalent_bytes` is what
  /// the historical one-dense-row-per-task representation would hold for the
  /// same session (rows * N * entry width) - the denominator of the memory-
  /// reduction claims in tests and BM_AdmissionBurst.
  struct SessionMemory {
    std::size_t bytes = 0;
    std::size_t dense_equivalent_bytes = 0;
  };
  SessionMemory session_memory() const;

  /// High-water marks of session_memory() since construction or the last
  /// reset_session_stats() (invalidate() does NOT reset them: a burst's
  /// peak must survive the session rebuilds inside it).
  SessionMemory peak_session_memory() const { return peak_; }
  void reset_session_stats() { peak_ = SessionMemory{}; }

 private:
  void verify_against_full(const workload::Task& new_task,
                           const std::vector<const workload::Task*>& waiting,
                           const cluster::ClusterParams& params,
                           const cluster::Cluster& cluster, Time now,
                           const AdmissionOutcome& outcome) const;

  Policy policy_;
  const PartitionRule* rule_;
  bool cross_check_ = false;

  // --- incremental session state (see test_incremental) ---
  // Storage position head_ + i corresponds to live waiting position i, so a
  // policy-front commit advances in O(1) by bumping head_ (compacted once
  // the consumed prefix outweighs the live part). Invariant when
  // cache_valid_: the live view of order_ is the waiting queue in policy
  // order; "row r" (r = head_ + i) is the availability state before
  // planning live entry i, with row head_ the floored sorted snapshot the
  // session currently stands on; plans_[r] (i < planned_) is live entry
  // i's plan against row r, and delta r - the sparse edit taking row r to
  // row r + 1, i.e. the plan's k sorted releases (with id payloads for het
  // sessions) - lives at [delta_start(r), delta_end_[r]) of the flat
  // delta_times_/delta_ids_ columns (flat so the steady state allocates
  // nothing per planned task; see cluster::apply_delta's span form);
  // fronts_[r] is row r's first (minimum) entry, the O(1) "did `now`
  // overtake the snapshot" reuse check; rows exist for live 0..planned_.
  // Dense rows are materialized only in checkpoints_ (ascending positions,
  // always one at or before head_; storage recycled through
  // checkpoint_pool_) and top_times_/top_ids_, the row at position
  // head_ + planned_. synced_prefix_ counts the leading live entries whose
  // plans the caller is known to hold verbatim.
  struct Checkpoint {
    std::size_t pos = 0;
    std::vector<Time> times;
    std::vector<cluster::NodeId> ids;  ///< het sessions only
  };

  std::size_t delta_start(std::size_t r) const {
    return r == 0 ? 0 : delta_end_[r - 1];
  }
  Checkpoint take_checkpoint(std::size_t pos);
  void retire_checkpoint(Checkpoint&& checkpoint);
  void compact_head();
  /// Copies row `pos` (absolute) into work_state_/work_ids_: nearest
  /// checkpoint at or before `pos`, then the delta chain up to `pos`. When
  /// the replayed chain is long, the rebuilt row is inserted as an
  /// opportunistic checkpoint (repeated suffix re-plans around the same
  /// insertion point then replay nothing).
  void materialize_row(std::size_t pos);
  void note_session_peak();

  bool cache_valid_ = false;
  std::uint64_t cache_version_ = 0;
  std::size_t node_count_ = 0;
  std::size_t head_ = 0;
  std::size_t planned_ = 0;
  std::size_t synced_prefix_ = 0;
  std::size_t checkpoint_every_ = 1;  ///< ~sqrt(N) cadence
  std::vector<const workload::Task*> order_;
  std::vector<TaskPlan> plans_;
  std::vector<std::size_t> delta_end_;         ///< per position: end offset
  std::vector<Time> delta_times_;              ///< flat sorted-release runs
  std::vector<cluster::NodeId> delta_ids_;     ///< het: aligned id payloads
  std::vector<Time> fronts_;
  std::vector<Checkpoint> checkpoints_;
  std::vector<Checkpoint> checkpoint_pool_;    ///< retired rows, capacity kept
  /// Cursor cache: the row most recently rebuilt by materialize_row, kept
  /// dense. Policies insert consecutive arrivals into nearby queue
  /// positions (EDF deadlines trend upward with arrival time), so the next
  /// materialization usually replays the few deltas past the cursor rather
  /// than a whole checkpoint chain. Invalidation: an adoption that replaces
  /// rows at or below the cursor, session rebuilds, and compaction past it.
  bool cursor_valid_ = false;
  std::size_t cursor_pos_ = 0;
  std::vector<Time> cursor_times_;
  std::vector<cluster::NodeId> cursor_ids_;
  std::vector<Time> top_times_;
  bool het_session_ = false;
  std::vector<cluster::NodeId> top_ids_;
  SessionMemory peak_;

  // Scratch reused across calls (no per-arrival allocation steady-state).
  std::vector<Time> work_state_;
  std::vector<cluster::NodeId> work_ids_;
  std::vector<TaskPlan> scratch_plans_;
  std::vector<std::size_t> scratch_delta_end_;
  std::vector<Time> scratch_delta_times_;
  std::vector<cluster::NodeId> scratch_delta_ids_;
  std::vector<Time> scratch_fronts_;
  std::vector<Checkpoint> scratch_checkpoints_;
  /// Batched hard-rejection screen over the tasks a test_incremental call
  /// may plan (rules with hard_rejects_at_front() only): one SoA gather of
  /// (sigma*Cms, deadline) columns per call, then each planning step checks
  /// the columns before paying for rule_->plan(). Outcome-identical by the
  /// contract on PartitionRule::hard_rejects_at_front; the stateless test()
  /// stays unscreened as the cross-check reference.
  het::QueueScreen screen_;
  std::vector<const workload::Task*> screen_tasks_;
  /// apply_releases' merge buffer; mutable so the const (stateless) test()
  /// reuses it too. Consistent with the single-thread affinity of the
  /// controller (like the rules' plan scratch, one instance per simulator).
  mutable std::vector<Time> merge_scratch_;
  /// Het apply's (release, id) pair buffer, same mutability rationale.
  mutable std::vector<std::pair<Time, cluster::NodeId>> het_merge_scratch_;
};

}  // namespace rtdls::sched
