// Named scheduling algorithms: the paper's nomenclature
// <policy>-<partition rule>, e.g. "EDF-DLT", "FIFO-OPR-MN".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/partition_rule.hpp"
#include "sched/policy.hpp"

namespace rtdls::sched {

/// A fully configured algorithm: ordering policy + owned partition rule.
struct Algorithm {
  std::string name;
  Policy policy = Policy::kEdf;
  std::unique_ptr<PartitionRule> rule;
};

/// Instantiates an algorithm by its paper name. Supported:
///   EDF-DLT, FIFO-DLT            (this paper, Section 4.1.1)
///   EDF-OPR-MN, FIFO-OPR-MN      (prior work [22], no IIT use)
///   EDF-OPR-AN, FIFO-OPR-AN      (prior work [22], all-nodes)
///   EDF-UserSplit, FIFO-UserSplit (Section 4.1.2)
///   EDF-MR<k>, FIFO-MR<k>        (multi-round extension, k installments,
///                                 e.g. "EDF-MR4")
///   <any>-IO<p>                  (output-data extension: result volume =
///                                 p% of the input, e.g. "EDF-DLT-IO20";
///                                 pair with SimulatorConfig::output_ratio)
/// Throws std::invalid_argument for unknown names.
Algorithm make_algorithm(const std::string& name);

/// Names of the algorithms evaluated in the paper (Section 5).
std::vector<std::string> paper_algorithm_names();

/// All supported names, including extensions.
std::vector<std::string> all_algorithm_names();

}  // namespace rtdls::sched
