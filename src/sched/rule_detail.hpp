// Internal helpers shared by the concrete partition rules.
#pragma once

#include "sched/partition_rule.hpp"

#include <utility>

namespace rtdls::sched::detail {

/// Throws std::invalid_argument on malformed requests (null task, wrong
/// free_times size, invalid cluster params).
void validate_request(const PlanRequest& request);

/// Shared n_min-based node-count resolution for the DLT and OPR-MN rules
/// (both use the Section 4.1.1 B closed form). Returns (n, kNone) on
/// success or (0, reason) when no count can work.
std::pair<std::size_t, dlt::Infeasibility> resolve_node_count(
    NodeSearch search, const cluster::ClusterParams& params, double sigma,
    cluster::Time deadline, const std::vector<cluster::Time>& free_times);

}  // namespace rtdls::sched::detail
