// Multi-round extension rule (paper Section 6 future work): node count is
// chosen exactly like the single-round DLT rule (n_min_tilde guarantees a
// deadline-meeting single-round fallback exists), then the load is delivered
// in R uniform installments whose exact rolled-out timeline usually
// completes earlier - and never later than the single-round estimate needs
// to, because feasibility is re-checked against the exact completion and
// falls back to the single-round plan when R rounds happen to be slower.
#include <algorithm>
#include <vector>

#include "dlt/multiround.hpp"
#include "util/fp.hpp"
#include "dlt/nmin.hpp"
#include "sched/het_planner.hpp"
#include "sched/rule_detail.hpp"

namespace rtdls::sched {

namespace {

class MultiRoundRule final : public PartitionRule {
 public:
  explicit MultiRoundRule(std::size_t rounds)
      : rounds_(rounds == 0 ? 1 : rounds),
        fallback_(make_dlt_iit_rule()),
        name_("MR" + std::to_string(rounds == 0 ? 1 : rounds)) {}

  PlanResult plan(const PlanRequest& request) const override {
    detail::validate_request(request);
    if (request.params.heterogeneous()) {
      return het::plan_multiround(request, rounds_, het_scratch_);
    }
    const workload::Task& task = *request.task;
    const std::vector<Time>& free_times = *request.free_times;
    const Time deadline = task.abs_deadline();

    // Same n_min first-crossing as the single-round rules; the shared
    // resolver gallops on the sorted availability instead of scanning.
    const auto [assigned, reason] = detail::resolve_node_count(
        NodeSearch::kIterative, request.params, task.sigma(), deadline, free_times);
    if (reason != dlt::Infeasibility::kNone) return PlanResult::infeasible(reason);

    std::vector<Time> available(free_times.begin(),
                                free_times.begin() + static_cast<std::ptrdiff_t>(assigned));
    const dlt::MultiRoundSchedule schedule = dlt::build_multiround_schedule(
        request.params, task.sigma(), available, rounds_);
    const Time est = schedule.task_completion();
    if (fp::after(est, deadline)) {
      // R installments happened to be slower here; the single-round plan
      // is guaranteed feasible with this node count.
      return fallback_->plan(request);
    }

    PlanResult result;
    TaskPlan& plan = result.plan;
    plan.task = task.id;
    plan.nodes = assigned;
    plan.available = schedule.initial_available;
    plan.reserve_from = schedule.initial_available;
    // Exact per-node finishes. Rounds may permute node identity (each
    // installment re-sorts by availability), so pair the sorted release
    // multiset with the sorted availability: since every node finishes no
    // earlier than it became available, order statistics keep
    // node_release[i] >= available[i].
    plan.node_release = schedule.node_completion;
    std::sort(plan.node_release.begin(), plan.node_release.end());
    // Aggregate per-node fraction across installments (for reporting).
    plan.alpha.assign(assigned, 0.0);
    for (const dlt::RoundPlan& round : schedule.rounds) {
      for (std::size_t i = 0; i < assigned; ++i) {
        plan.alpha[i] += round.alpha[i] / static_cast<double>(schedule.rounds.size());
      }
    }
    plan.est_completion = est;
    plan.rounds = rounds_;
    return result;
  }

  std::string_view name() const override { return name_; }

  // Node count comes from the same resolver / het scan as the DLT rule, so
  // the first-position hard rejections are identical.
  bool hard_rejects_at_front() const override { return true; }

 private:
  std::size_t rounds_;
  std::unique_ptr<PartitionRule> fallback_;
  std::string name_;
  mutable het::PlannerScratch het_scratch_;
};

}  // namespace

std::unique_ptr<PartitionRule> make_multiround_rule(std::size_t rounds) {
  return std::make_unique<MultiRoundRule>(rounds);
}

}  // namespace rtdls::sched
