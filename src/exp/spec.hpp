// Experiment specifications: one "sweep" is one panel of a paper figure -
// a SystemLoad sweep comparing algorithms on a fixed cluster/workload
// configuration, averaged over several runs (the paper: 10 runs x 10M time
// units per point).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "stats/confidence.hpp"
#include "workload/generator.hpp"

namespace rtdls::exp {

using cluster::Time;

/// Execution scale knobs, adjustable via environment so the full figure
/// suite stays tractable on small machines:
///   RTDLS_FULL=1   -> paper scale (10 runs x 10,000,000 time units)
///   RTDLS_RUNS     -> override run count
///   RTDLS_SIMTIME  -> override horizon
///   RTDLS_JOBS     -> worker threads (default: hardware concurrency)
struct Scale {
  std::size_t runs = 5;
  Time sim_time = 2'000'000.0;
  std::size_t jobs = 0;  ///< 0: hardware concurrency

  /// Reads the scale from the environment (defaults above).
  static Scale from_env();
};

/// One load sweep: the x axis of every figure in the paper.
struct SweepSpec {
  std::string id;     ///< "fig03a", "fig08c", ...
  std::string title;  ///< printed header, mirrors the paper caption

  cluster::ClusterParams cluster;       ///< N, Cms, Cps
  double avg_sigma = 200.0;             ///< Avgsigma
  double dc_ratio = 2.0;                ///< DCRatio
  std::vector<double> loads;            ///< SystemLoad values (x axis)
  std::vector<std::string> algorithms;  ///< curves, by registry name

  std::size_t runs = 3;                 ///< simulations averaged per point
  Time sim_time = 1'000'000.0;          ///< TotalSimulationTime
  std::uint64_t seed = 20070227;        ///< base seed (paper date)
  double confidence = 0.95;

  sim::ReleasePolicy release_policy = sim::ReleasePolicy::kEstimate;
  bool shared_link = false;
  double output_ratio = 0.0;  ///< result volume fraction (pair with *-IO rules)

  /// Algorithm expected to have the (weakly) lowest mean reject ratio in
  /// this panel; empty = no expectation (used by the shape checks).
  std::string expected_winner;

  /// Standard load axis 0.1..1.0 used throughout the paper.
  static std::vector<double> paper_loads();

  /// Applies the scale knobs (runs, sim_time).
  void apply(const Scale& scale);
};

/// Results of one curve (algorithm) across the load axis.
struct CurveResult {
  std::string algorithm;
  std::vector<stats::ConfidenceInterval> reject_ratio;  ///< one per load
  std::vector<double> raw;  ///< run-level reject ratios, load-major
                            ///< (raw[load * runs + run]) for paired stats
};

/// Results of one sweep.
struct SweepResult {
  SweepSpec spec;
  std::vector<CurveResult> curves;
  double wall_seconds = 0.0;
};

}  // namespace rtdls::exp
