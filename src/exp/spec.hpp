// Experiment specifications: one "sweep" is one panel of a paper figure -
// a SystemLoad sweep comparing algorithms on a fixed cluster/workload
// configuration, averaged over several runs (the paper: 10 runs x 10M time
// units per point).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "stats/confidence.hpp"
#include "workload/generator.hpp"

namespace rtdls::exp {

using cluster::Time;

/// Execution scale knobs, adjustable via environment so the full figure
/// suite stays tractable on small machines:
///   RTDLS_FULL=1   -> paper scale (10 runs x 10,000,000 time units)
///   RTDLS_RUNS     -> override run count
///   RTDLS_SIMTIME  -> override horizon
///   RTDLS_JOBS     -> worker threads (default: hardware concurrency)
struct Scale {
  std::size_t runs = 5;
  Time sim_time = 2'000'000.0;
  std::size_t jobs = 0;  ///< 0: hardware concurrency

  /// Reads the scale from the environment (defaults above).
  static Scale from_env();
};

/// One load sweep: the x axis of every figure in the paper.
struct SweepSpec {
  std::string id;     ///< "fig03a", "fig08c", ...
  std::string title;  ///< printed header, mirrors the paper caption

  cluster::ClusterParams cluster;       ///< N, Cms, Cps
  double avg_sigma = 200.0;             ///< Avgsigma
  double dc_ratio = 2.0;                ///< DCRatio
  std::vector<double> loads;            ///< SystemLoad values (x axis)
  std::vector<std::string> algorithms;  ///< curves, by registry name

  /// Optional per-node speed-profile key ("lognormal:0.4,7",
  /// "two_tier:50,200,0.5", ... - see cluster/speed_profile.hpp). Empty
  /// means homogeneous. Kept as the key string (not the materialized
  /// profile) so specs stay serializable/diffable; materialized_cluster()
  /// resolves it against `cluster` when the runner builds simulators.
  /// Workload generation keeps calibrating against the scalar cps, so the
  /// load axis stays comparable across heterogeneity levels (generators
  /// preserving mean cps == cluster.cps make this exact in expectation).
  std::string het_profile;

  std::size_t runs = 3;                 ///< simulations averaged per point
  Time sim_time = 1'000'000.0;          ///< TotalSimulationTime
  std::uint64_t seed = 20070227;        ///< base seed (paper date)
  double confidence = 0.95;

  sim::ReleasePolicy release_policy = sim::ReleasePolicy::kEstimate;
  bool shared_link = false;
  double output_ratio = 0.0;  ///< result volume fraction (pair with *-IO rules)

  /// Abort the sweep on any Theorem-4 violation. The paper's dedicated-
  /// channel model guarantees none, so a violation in a reproduction sweep
  /// is a bug; the shared-link and output ablations intentionally break the
  /// bound and set this false so violations are *recorded* (in the
  /// kTheorem4Violations metric series) instead of aborting.
  bool halt_on_theorem4 = true;

  /// Algorithm expected to have the (weakly) lowest mean reject ratio in
  /// this panel; empty = no expectation (used by the shape checks).
  std::string expected_winner;

  /// Standard load axis 0.1..1.0 used throughout the paper.
  static std::vector<double> paper_loads();

  /// Applies the scale knobs (runs, sim_time).
  void apply(const Scale& scale);

  /// Cluster params with the het_profile key materialized (parsed against
  /// cluster.node_count / cluster.cps); `cluster` unchanged when the key is
  /// empty. Throws std::invalid_argument on a malformed key.
  cluster::ClusterParams materialized_cluster() const;
};

/// Metrics recorded for every (load, run, algorithm) sweep cell. The paper
/// reports reject ratios; the rest quantify *how* an algorithm wins (faster
/// responses, shorter waits, higher utilization) and what the ablations
/// break (deadline misses, Theorem-4 violations).
enum class SweepMetric : std::size_t {
  kRejectRatio = 0,     ///< rejections / arrivals (the headline metric)
  kMeanResponse,        ///< mean completion - arrival over accepted tasks
  kMeanWait,            ///< mean first node engagement - arrival
  kUtilization,         ///< busy node-time / (N x horizon)
  kDeadlineMisses,      ///< accepted tasks finishing past their deadline
  kTheorem4Violations,  ///< actual completions above the Figure-2 estimate
};
inline constexpr std::size_t kSweepMetricCount = 6;

/// Short machine-friendly metric names ("reject_ratio", "mean_response", ...).
std::string_view sweep_metric_name(SweepMetric metric);

/// One metric across the load axis: run-level samples plus aggregates fed
/// by streaming stats::RunningStats accumulators.
struct MetricSeries {
  std::vector<double> raw;  ///< run-level values, load-major
                            ///< (raw[load * runs + run]) for paired stats
  std::vector<stats::ConfidenceInterval> per_load;  ///< one CI per load
};

/// Mean of a series' per-load means (the load-axis average the shape
/// checks and the metric summary both report); 0 when empty.
double series_mean(const MetricSeries& series);

/// Results of one curve (algorithm) across the load axis: the full metric
/// table, one MetricSeries per SweepMetric.
struct CurveResult {
  std::string algorithm;
  std::array<MetricSeries, kSweepMetricCount> metrics;

  MetricSeries& series(SweepMetric metric) {
    return metrics[static_cast<std::size_t>(metric)];
  }
  const MetricSeries& series(SweepMetric metric) const {
    return metrics[static_cast<std::size_t>(metric)];
  }

  /// The paper's headline series: reject-ratio CIs, one per load.
  const std::vector<stats::ConfidenceInterval>& reject_ratio() const {
    return series(SweepMetric::kRejectRatio).per_load;
  }
};

/// Results of one sweep.
struct SweepResult {
  SweepSpec spec;
  std::vector<CurveResult> curves;
  double wall_seconds = 0.0;
};

}  // namespace rtdls::exp
