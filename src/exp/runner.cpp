#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "sched/registry.hpp"
#include "util/log.hpp"

namespace rtdls::exp {

workload::WorkloadParams cell_workload(const SweepSpec& spec, double load,
                                       std::size_t run) {
  workload::WorkloadParams params;
  params.cluster = spec.cluster;
  params.system_load = load;
  params.avg_sigma = spec.avg_sigma;
  params.dc_ratio = spec.dc_ratio;
  params.total_time = spec.sim_time;
  params.seed = spec.seed;
  params.stream = run;
  return params;
}

namespace {

/// One reusable simulation context: the algorithm instance (rules may keep
/// mutable scratch, so instances are never shared across threads) plus a
/// simulator whose run() resets state in place.
struct SimSlot {
  sched::Algorithm algorithm;
  sim::ClusterSimulator simulator;

  SimSlot(const sim::SimulatorConfig& config, sched::Algorithm alg)
      : algorithm(std::move(alg)), simulator(config, algorithm) {}
};

/// Per-algorithm free lists of SimSlots. Workers check a slot out per cell
/// and return it afterwards, so a sweep allocates at most
/// (algorithms x concurrent workers) simulators and every simulator serves
/// many back-to-back cells. Results cannot depend on which slot serves
/// which cell: run() fully resets per-run state.
class SlotPool {
 public:
  SlotPool(const sim::SimulatorConfig& config, const std::vector<std::string>& names)
      : config_(config), names_(names), free_(names.size()) {}

  std::unique_ptr<SimSlot> acquire(std::size_t algorithm) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto& stack = free_[algorithm];
      if (!stack.empty()) {
        std::unique_ptr<SimSlot> slot = std::move(stack.back());
        stack.pop_back();
        return slot;
      }
    }
    return std::make_unique<SimSlot>(config_, sched::make_algorithm(names_[algorithm]));
  }

  void release(std::size_t algorithm, std::unique_ptr<SimSlot> slot) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_[algorithm].push_back(std::move(slot));
  }

 private:
  sim::SimulatorConfig config_;
  const std::vector<std::string>& names_;
  std::mutex mutex_;
  std::vector<std::vector<std::unique_ptr<SimSlot>>> free_;
};

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, util::ThreadPool* pool) {
  if (spec.loads.empty()) throw std::invalid_argument("run_sweep: no loads");
  if (spec.algorithms.empty()) throw std::invalid_argument("run_sweep: no algorithms");
  if (spec.runs == 0) throw std::invalid_argument("run_sweep: runs must be >= 1");

  const auto wall_start = std::chrono::steady_clock::now();

  const std::size_t loads = spec.loads.size();
  const std::size_t runs = spec.runs;
  const std::size_t algs = spec.algorithms.size();

  SweepResult result;
  result.spec = spec;
  result.curves.resize(algs);
  for (std::size_t a = 0; a < algs; ++a) {
    result.curves[a].algorithm = spec.algorithms[a];
    for (MetricSeries& series : result.curves[a].metrics) {
      series.raw.assign(loads * runs, 0.0);
      series.per_load.resize(loads);
    }
  }

  sim::SimulatorConfig sim_config;
  sim_config.params = spec.cluster;
  sim_config.release_policy = spec.release_policy;
  sim_config.shared_link = spec.shared_link;
  sim_config.output_ratio = spec.output_ratio;

  // One workload trace per (load, run), shared by every algorithm (the
  // paper's paired comparison: same trace, different algorithms). Traces
  // are a pure function of (spec, load, run), so lazily generating each in
  // whichever cell needs it first cannot change results; each is freed
  // after its last cell, so peak trace memory tracks the in-flight cells,
  // not the whole sweep (at paper scale a full trace set is large).
  const std::size_t trace_count = loads * runs;
  std::vector<std::vector<workload::Task>> traces(trace_count);
  const auto trace_once = std::make_unique<std::once_flag[]>(trace_count);
  const auto cells_left = std::make_unique<std::atomic<std::size_t>[]>(trace_count);
  for (std::size_t t = 0; t < trace_count; ++t) {
    cells_left[t].store(algs, std::memory_order_relaxed);
  }
  auto trace_for = [&](std::size_t t) -> const std::vector<workload::Task>& {
    std::call_once(trace_once[t], [&] {
      traces[t] = workload::generate_workload(
          cell_workload(spec, spec.loads[t / runs], t % runs));
    });
    return traces[t];
  };

  // The full (load x run x algorithm) grid, one cell per task. Every cell
  // writes only its own raw[] slot, so the pooled and the serial execution
  // produce bit-identical results regardless of scheduling order.
  SlotPool slots(sim_config, spec.algorithms);
  auto run_cell = [&](std::size_t cell) {
    const std::size_t a = cell % algs;
    const std::size_t trace_index = cell / algs;
    const std::size_t sample = trace_index;  // load * runs + run

    std::unique_ptr<SimSlot> slot = slots.acquire(a);
    const sim::SimMetrics metrics = slot->simulator.run(trace_for(trace_index), spec.sim_time);
    slots.release(a, std::move(slot));
    if (cells_left[trace_index].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::vector<workload::Task>().swap(traces[trace_index]);
    }

    if (metrics.theorem4_violations != 0 && spec.halt_on_theorem4) {
      throw std::logic_error("run_sweep: Theorem 4 violated in " + spec.algorithms[a] +
                             " (set SweepSpec::halt_on_theorem4 = false to record instead)");
    }

    CurveResult& curve = result.curves[a];
    curve.series(SweepMetric::kRejectRatio).raw[sample] = metrics.reject_ratio();
    curve.series(SweepMetric::kMeanResponse).raw[sample] = metrics.response_time.mean();
    curve.series(SweepMetric::kMeanWait).raw[sample] = metrics.wait_time.mean();
    curve.series(SweepMetric::kUtilization).raw[sample] = metrics.utilization();
    curve.series(SweepMetric::kDeadlineMisses).raw[sample] =
        static_cast<double>(metrics.deadline_misses);
    curve.series(SweepMetric::kTheorem4Violations).raw[sample] =
        static_cast<double>(metrics.theorem4_violations);
  };

  const std::size_t cells = loads * runs * algs;
  if (pool != nullptr) {
    pool->parallel_for(cells, run_cell);
  } else {
    for (std::size_t cell = 0; cell < cells; ++cell) run_cell(cell);
  }

  // Aggregate every (algorithm, metric, load) over the runs in run order with a
  // streaming accumulator; order is fixed, so aggregation is deterministic.
  for (std::size_t a = 0; a < algs; ++a) {
    for (MetricSeries& series : result.curves[a].metrics) {
      for (std::size_t l = 0; l < loads; ++l) {
        stats::RunningStats acc;
        for (std::size_t r = 0; r < runs; ++r) acc.add(series.raw[l * runs + r]);
        series.per_load[l] = stats::mean_confidence_interval(acc, spec.confidence);
      }
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  RTDLS_LOG(kInfo) << "sweep " << spec.id << " done in " << result.wall_seconds << "s";
  return result;
}

std::vector<SweepResult> run_sweeps(const std::vector<SweepSpec>& specs,
                                    util::ThreadPool* pool) {
  std::vector<SweepResult> results;
  results.reserve(specs.size());
  for (const SweepSpec& spec : specs) {
    results.push_back(run_sweep(spec, pool));
  }
  return results;
}

}  // namespace rtdls::exp
