#include "exp/runner.hpp"

#include <chrono>

#include "exp/campaign.hpp"
#include "util/log.hpp"

namespace rtdls::exp {

workload::WorkloadParams cell_workload(const SweepSpec& spec, double load,
                                       std::size_t run) {
  workload::WorkloadParams params;
  params.cluster = spec.cluster;
  params.system_load = load;
  params.avg_sigma = spec.avg_sigma;
  params.dc_ratio = spec.dc_ratio;
  params.total_time = spec.sim_time;
  params.seed = spec.seed;
  params.stream = run;
  return params;
}

namespace {

/// Wraps each sweep in a single-panel figure so a sweep list maps 1:1 onto
/// campaign sweeps.
Campaign campaign_of(const std::vector<SweepSpec>& specs) {
  std::vector<FigureSpec> figures;
  figures.reserve(specs.size());
  for (const SweepSpec& spec : specs) {
    FigureSpec figure;
    figure.id = spec.id;
    figure.title = spec.title;
    figure.panels.push_back(spec);
    figures.push_back(std::move(figure));
  }
  return Campaign(std::move(figures));
}

std::vector<SweepResult> run_as_campaign(const std::vector<SweepSpec>& specs,
                                         util::ThreadPool* pool) {
  const auto wall_start = std::chrono::steady_clock::now();
  const Campaign campaign = campaign_of(specs);
  CampaignOptions options;
  options.pool = pool;
  AggregateSink sink(campaign);
  run_campaign(campaign, options, sink);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  std::vector<SweepResult> results = sink.take(wall);
  if (results.size() == 1) {
    RTDLS_LOG(kInfo) << "sweep " << results.front().spec.id << " done in " << wall << "s";
  } else {
    RTDLS_LOG(kInfo) << results.size() << " sweeps done in " << wall << "s";
  }
  return results;
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, util::ThreadPool* pool) {
  std::vector<SweepResult> results = run_as_campaign({spec}, pool);
  return std::move(results.front());
}

std::vector<SweepResult> run_sweeps(const std::vector<SweepSpec>& specs,
                                    util::ThreadPool* pool) {
  if (specs.empty()) return {};
  return run_as_campaign(specs, pool);
}

}  // namespace rtdls::exp
