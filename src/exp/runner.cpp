#include "exp/runner.hpp"

#include <chrono>
#include <stdexcept>

#include "sched/registry.hpp"
#include "util/log.hpp"

namespace rtdls::exp {

workload::WorkloadParams cell_workload(const SweepSpec& spec, double load,
                                       std::size_t run) {
  workload::WorkloadParams params;
  params.cluster = spec.cluster;
  params.system_load = load;
  params.avg_sigma = spec.avg_sigma;
  params.dc_ratio = spec.dc_ratio;
  params.total_time = spec.sim_time;
  params.seed = spec.seed;
  params.stream = run;
  return params;
}

SweepResult run_sweep(const SweepSpec& spec, util::ThreadPool* pool) {
  if (spec.loads.empty()) throw std::invalid_argument("run_sweep: no loads");
  if (spec.algorithms.empty()) throw std::invalid_argument("run_sweep: no algorithms");
  if (spec.runs == 0) throw std::invalid_argument("run_sweep: runs must be >= 1");

  const auto wall_start = std::chrono::steady_clock::now();

  SweepResult result;
  result.spec = spec;
  result.curves.resize(spec.algorithms.size());
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    result.curves[a].algorithm = spec.algorithms[a];
    result.curves[a].raw.assign(spec.loads.size() * spec.runs, 0.0);
    result.curves[a].reject_ratio.resize(spec.loads.size());
  }

  sim::SimulatorConfig sim_config;
  sim_config.params = spec.cluster;
  sim_config.release_policy = spec.release_policy;
  sim_config.shared_link = spec.shared_link;
  sim_config.output_ratio = spec.output_ratio;

  const std::size_t cells = spec.loads.size() * spec.runs;
  auto run_cell = [&](std::size_t cell) {
    const std::size_t load_index = cell / spec.runs;
    const std::size_t run_index = cell % spec.runs;
    const workload::WorkloadParams workload_params =
        cell_workload(spec, spec.loads[load_index], run_index);
    const std::vector<workload::Task> tasks = workload::generate_workload(workload_params);

    for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
      const sim::SimMetrics metrics =
          sim::simulate(sim_config, spec.algorithms[a], tasks, spec.sim_time);
      if (metrics.theorem4_violations != 0) {
        throw std::logic_error("run_sweep: Theorem 4 violated in " + spec.algorithms[a]);
      }
      result.curves[a].raw[cell] = metrics.reject_ratio();
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(cells, run_cell);
  } else {
    for (std::size_t cell = 0; cell < cells; ++cell) run_cell(cell);
  }

  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    CurveResult& curve = result.curves[a];
    for (std::size_t l = 0; l < spec.loads.size(); ++l) {
      std::vector<double> samples(curve.raw.begin() + static_cast<std::ptrdiff_t>(l * spec.runs),
                                  curve.raw.begin() + static_cast<std::ptrdiff_t>((l + 1) * spec.runs));
      curve.reject_ratio[l] = stats::mean_confidence_interval(samples, spec.confidence);
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  RTDLS_LOG(kInfo) << "sweep " << spec.id << " done in " << result.wall_seconds << "s";
  return result;
}

std::vector<SweepResult> run_sweeps(const std::vector<SweepSpec>& specs,
                                    util::ThreadPool* pool) {
  std::vector<SweepResult> results;
  results.reserve(specs.size());
  for (const SweepSpec& spec : specs) {
    results.push_back(run_sweep(spec, pool));
  }
  return results;
}

}  // namespace rtdls::exp
