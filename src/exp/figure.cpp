#include "exp/figure.hpp"

#include <cstdio>
#include <sstream>

#include "exp/report.hpp"
#include "util/fp.hpp"
#include "util/strings.hpp"

namespace rtdls::exp {

double curve_mean(const CurveResult& curve) {
  return series_mean(curve.series(SweepMetric::kRejectRatio));
}

namespace {

// Reduced-scale runs are noisy; the winner only needs to be no worse than
// the loser up to this absolute mean-reject-ratio slack.
constexpr double kShapeTolerance = 0.005;

ShapeCheck check_winner(const SweepResult& panel, const std::string& winner) {
  ShapeCheck check;
  check.description = panel.spec.id + ": " + winner + " no worse on average";

  const CurveResult* winner_curve = nullptr;
  for (const CurveResult& curve : panel.curves) {
    if (curve.algorithm == winner) winner_curve = &curve;
  }
  if (winner_curve == nullptr) {
    check.passed = false;
    check.detail = "winner algorithm not in sweep";
    return check;
  }
  const double winner_mean = curve_mean(*winner_curve);
  check.passed = true;
  std::ostringstream detail;
  detail << winner << "=" << util::format_double(winner_mean, 4);
  for (const CurveResult& curve : panel.curves) {
    if (&curve == winner_curve) continue;
    const double other = curve_mean(curve);
    detail << " vs " << curve.algorithm << "=" << util::format_double(other, 4);
    if (fp::after(winner_mean, other, kShapeTolerance)) check.passed = false;
  }
  check.detail = detail.str();
  return check;
}

}  // namespace

std::vector<ShapeCheck> evaluate_checks(const std::vector<SweepResult>& panels) {
  std::vector<ShapeCheck> checks;
  for (const SweepResult& panel : panels) {
    if (!panel.spec.expected_winner.empty()) {
      checks.push_back(check_winner(panel, panel.spec.expected_winner));
    }
  }
  return checks;
}

FigureResult run_figure(const FigureSpec& spec, util::ThreadPool* pool) {
  FigureResult result;
  result.spec = spec;
  result.panels = run_sweeps(spec.panels, pool);
  result.checks = evaluate_checks(result.panels);
  return result;
}

int report_figure(const FigureSpec& spec) {
  const Scale scale = Scale::from_env();
  util::ThreadPool pool(scale.jobs);

  std::printf("=== %s: %s ===\n", spec.id.c_str(), spec.title.c_str());
  const FigureResult result = run_figure(spec, &pool);

  for (const SweepResult& panel : result.panels) {
    std::fputs(render_sweep(panel).c_str(), stdout);
    const std::string csv = write_sweep_csv(results_dir(), panel);
    const std::string gp = write_sweep_gnuplot(results_dir(), panel);
    std::printf("csv: %s   gnuplot: %s\n\n", csv.c_str(), gp.c_str());
  }

  int failures = 0;
  for (const ShapeCheck& check : result.checks) {
    std::printf("[%s] %s  (%s)\n", check.passed ? "PASS" : "WARN",
                check.description.c_str(), check.detail.c_str());
    if (!check.passed) ++failures;
  }
  std::fflush(stdout);
  return failures;
}

}  // namespace rtdls::exp
