// Executes a SweepSpec: for every (load, run) cell, generate one workload
// trace and evaluate EVERY algorithm on that same trace (paired comparison,
// matching the paper's "same parameters, different random numbers" runs),
// then aggregate reject ratios into confidence intervals per load.
//
// Cells run in parallel on a shared ThreadPool; determinism comes from
// seeding each cell by its run index, never from execution order.
//
// Both entry points are thin wrappers over exp/campaign.hpp: run_sweep is a
// one-sweep campaign with an AggregateSink, run_sweeps a multi-sweep one
// (so cells of different sweeps interleave on the pool instead of
// barriering between sweeps). Every metric is bit-identical to the
// historical per-sweep runner; the only semantic change is wall_seconds,
// which for run_sweeps is the whole batch's wall time stamped on every
// result (interleaved sweeps have no meaningful per-sweep wall).
#pragma once

#include "exp/spec.hpp"
#include "util/thread_pool.hpp"

namespace rtdls::exp {

/// Runs one sweep. `pool` may be null (sequential execution).
SweepResult run_sweep(const SweepSpec& spec, util::ThreadPool* pool = nullptr);

/// Runs several sweeps sharing one pool.
std::vector<SweepResult> run_sweeps(const std::vector<SweepSpec>& specs,
                                    util::ThreadPool* pool = nullptr);

/// Builds the workload parameters of one sweep cell.
workload::WorkloadParams cell_workload(const SweepSpec& spec, double load,
                                       std::size_t run);

}  // namespace rtdls::exp
