// Executes a SweepSpec: for every (load, run) cell, generate one workload
// trace and evaluate EVERY algorithm on that same trace (paired comparison,
// matching the paper's "same parameters, different random numbers" runs),
// then aggregate reject ratios into confidence intervals per load.
//
// Cells run in parallel on a shared ThreadPool; determinism comes from
// seeding each cell by its run index, never from execution order.
#pragma once

#include "exp/spec.hpp"
#include "util/thread_pool.hpp"

namespace rtdls::exp {

/// Runs one sweep. `pool` may be null (sequential execution).
SweepResult run_sweep(const SweepSpec& spec, util::ThreadPool* pool = nullptr);

/// Runs several sweeps sharing one pool.
std::vector<SweepResult> run_sweeps(const std::vector<SweepSpec>& specs,
                                    util::ThreadPool* pool = nullptr);

/// Builds the workload parameters of one sweep cell.
workload::WorkloadParams cell_workload(const SweepSpec& spec, double load,
                                       std::size_t run);

}  // namespace rtdls::exp
