// Figures group sweeps (panels) and attach shape checks: the reproduction
// targets are the paper's *qualitative* claims (who wins, how the gap moves
// with each parameter), which the harness verifies automatically.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/spec.hpp"

namespace rtdls::exp {

/// One paper figure: several panels sharing a theme.
struct FigureSpec {
  std::string id;     ///< "fig03", "fig08", ...
  std::string title;  ///< paper caption
  std::vector<SweepSpec> panels;
};

/// Outcome of one shape check.
struct ShapeCheck {
  std::string description;
  bool passed = false;
  std::string detail;
};

/// A fully executed figure.
struct FigureResult {
  FigureSpec spec;
  std::vector<SweepResult> panels;
  std::vector<ShapeCheck> checks;
};

/// Evaluates the per-panel winner expectations against already-executed
/// panel results - shared by run_figure and the campaign CLI, so merged
/// shard results get the same PASS/WARN verdicts.
std::vector<ShapeCheck> evaluate_checks(const std::vector<SweepResult>& panels);

/// Runs all panels and evaluates the winner expectation per panel.
FigureResult run_figure(const FigureSpec& spec, util::ThreadPool* pool = nullptr);

/// Convenience driver for the bench binaries: runs the figure, prints every
/// panel (table + chart), writes CSVs under results_dir(), prints the shape
/// checks. Returns the number of failed checks (callers report but exit 0:
/// reduced-scale noise must not break `for b in bench/*; do $b; done`).
int report_figure(const FigureSpec& spec);

/// Mean reject ratio of a curve across the load axis.
double curve_mean(const CurveResult& curve);

}  // namespace rtdls::exp
