#include "exp/report.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/strings.hpp"

namespace rtdls::exp {

namespace {

std::string format_ci(const stats::ConfidenceInterval& ci) {
  std::ostringstream out;
  out << util::format_double(ci.mean, 4);
  if (ci.samples >= 2) out << " +-" << util::format_double(ci.half_width, 3);
  return out.str();
}

}  // namespace

std::string render_sweep_table(const SweepResult& result) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"load"};
  for (const CurveResult& curve : result.curves) header.push_back(curve.algorithm);
  const bool pairwise = result.curves.size() == 2;
  if (pairwise) header.push_back("delta(0-1)");
  rows.push_back(header);

  for (std::size_t l = 0; l < result.spec.loads.size(); ++l) {
    std::vector<std::string> row{util::format_double(result.spec.loads[l], 3)};
    for (const CurveResult& curve : result.curves) {
      row.push_back(format_ci(curve.reject_ratio()[l]));
    }
    if (pairwise) {
      const double delta =
          result.curves[0].reject_ratio()[l].mean - result.curves[1].reject_ratio()[l].mean;
      row.push_back(util::format_double(delta, 4));
    }
    rows.push_back(std::move(row));
  }
  return util::aligned_table(rows);
}

std::string render_metric_summary(const SweepResult& result) {
  // One row per algorithm: load-axis mean of every non-headline metric (the
  // headline reject ratios get the full table above).
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"algorithm"};
  for (std::size_t m = 1; m < kSweepMetricCount; ++m) {
    header.emplace_back(sweep_metric_name(static_cast<SweepMetric>(m)));
  }
  rows.push_back(std::move(header));
  for (const CurveResult& curve : result.curves) {
    std::vector<std::string> row{curve.algorithm};
    for (std::size_t m = 1; m < kSweepMetricCount; ++m) {
      row.push_back(util::format_double(
          series_mean(curve.series(static_cast<SweepMetric>(m))), 4));
    }
    rows.push_back(std::move(row));
  }
  return util::aligned_table(rows);
}

std::string render_sweep_chart(const SweepResult& result) {
  std::vector<util::Series> series;
  for (const CurveResult& curve : result.curves) {
    util::Series s;
    s.name = curve.algorithm;
    s.x = result.spec.loads;
    for (const auto& ci : curve.reject_ratio()) s.y.push_back(ci.mean);
    series.push_back(std::move(s));
  }
  util::PlotOptions options;
  options.x_label = "System Load";
  options.y_label = "Task Reject Ratio";
  return util::ascii_chart(series, options);
}

std::string render_sweep(const SweepResult& result) {
  std::ostringstream out;
  out << "== " << result.spec.id << ": " << result.spec.title << " ==\n";
  out << "N=" << result.spec.cluster.node_count << " Cms=" << result.spec.cluster.cms
      << " Cps=" << result.spec.cluster.cps << " Avgsigma=" << result.spec.avg_sigma
      << " DCRatio=" << result.spec.dc_ratio << " runs=" << result.spec.runs
      << " T=" << util::format_double(result.spec.sim_time, 6) << '\n';
  out << render_sweep_table(result) << '\n';
  out << render_metric_summary(result) << '\n';
  out << render_sweep_chart(result);
  out << "(wall " << util::format_double(result.wall_seconds, 3) << "s)\n";
  return out.str();
}

std::string write_sweep_csv(const std::string& dir, const SweepResult& result) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + result.spec.id + ".csv";
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_sweep_csv: cannot open " + path);

  util::CsvWriter writer(file);
  // Reject-ratio columns first (what the gnuplot scripts and any existing
  // reader index), then the rest of the metric table.
  std::vector<std::string> header{"load"};
  for (const CurveResult& curve : result.curves) {
    header.push_back(curve.algorithm + " mean");
    header.push_back(curve.algorithm + " ci95");
  }
  for (std::size_t m = 1; m < kSweepMetricCount; ++m) {
    const std::string name(sweep_metric_name(static_cast<SweepMetric>(m)));
    for (const CurveResult& curve : result.curves) {
      header.push_back(curve.algorithm + " " + name + " mean");
      header.push_back(curve.algorithm + " " + name + " ci95");
    }
  }
  writer.write_row(header);
  for (std::size_t l = 0; l < result.spec.loads.size(); ++l) {
    std::vector<double> row{result.spec.loads[l]};
    for (const CurveResult& curve : result.curves) {
      row.push_back(curve.reject_ratio()[l].mean);
      row.push_back(curve.reject_ratio()[l].half_width);
    }
    for (std::size_t m = 1; m < kSweepMetricCount; ++m) {
      for (const CurveResult& curve : result.curves) {
        const MetricSeries& series = curve.series(static_cast<SweepMetric>(m));
        row.push_back(series.per_load[l].mean);
        row.push_back(series.per_load[l].half_width);
      }
    }
    writer.write_numeric_row(row);
  }
  return path;
}

std::string write_sweep_gnuplot(const std::string& dir, const SweepResult& result) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + result.spec.id + ".gp";
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_sweep_gnuplot: cannot open " + path);

  file << "# Generated by rtdls: reproduces the paper's plot style for "
       << result.spec.id << "\n";
  file << "set terminal pngcairo size 800,600\n";
  file << "set output '" << result.spec.id << ".png'\n";
  file << "set title \"" << result.spec.title << "\\n"
       << "nodes=" << result.spec.cluster.node_count << ", Cms=" << result.spec.cluster.cms
       << ", Cps=" << result.spec.cluster.cps << ", Avgsigma=" << result.spec.avg_sigma
       << ", DCRatio=" << result.spec.dc_ratio << "\"\n";
  file << "set xlabel 'System Load'\n";
  file << "set ylabel 'Task Reject Ratio'\n";
  file << "set key top left\n";
  file << "set grid\n";
  file << "set datafile separator ','\n";
  file << "plot \\\n";
  for (std::size_t a = 0; a < result.curves.size(); ++a) {
    // CSV layout: load, alg0 mean, alg0 ci, alg1 mean, alg1 ci, ...
    const std::size_t mean_column = 2 + 2 * a;
    file << "  '" << result.spec.id << ".csv' skip 1 using 1:" << mean_column << ':'
         << mean_column + 1 << " with yerrorlines title '"
         << result.curves[a].algorithm << "'";
    file << (a + 1 < result.curves.size() ? ", \\\n" : "\n");
  }
  return path;
}

std::string results_dir() {
  return util::get_env("RTDLS_RESULTS").value_or("results");
}

}  // namespace rtdls::exp
