// Definitions of every figure in the paper's evaluation (Figures 3-16) plus
// the extension/ablation experiments, all parameterized by the execution
// Scale. Each bench binary pulls exactly one figure from here, so the
// experiment inventory lives in one reviewed place.
#pragma once

#include "exp/figure.hpp"

namespace rtdls::exp {

/// Baseline: N=16, Cms=1, Cps=100, Avgsigma=200, DCRatio=2, loads 0.1..1.0.
SweepSpec baseline_sweep(const Scale& scale, std::string id, std::string title);

// --- paper figures -------------------------------------------------------
FigureSpec fig03_baseline(const Scale& scale);          ///< EDF-DLT vs EDF-OPR-MN (+95% CI)
FigureSpec fig04_dcratio_edf(const Scale& scale);       ///< DCRatio in {3,10,20,100}
FigureSpec fig05_usersplit_edf(const Scale& scale);     ///< vs UserSplit, DCRatio {2,10}
FigureSpec fig06_avgsigma_edf(const Scale& scale);      ///< Avgsigma in {100,200,400,800}
FigureSpec fig07_cms_edf(const Scale& scale);           ///< Cms in {1,2,4,8}
FigureSpec fig08_cps_edf(const Scale& scale);           ///< Cps in {10,...,10000}
FigureSpec fig09_dcratio_fifo(const Scale& scale);
FigureSpec fig10_avgsigma_fifo(const Scale& scale);
FigureSpec fig11_cms_fifo(const Scale& scale);
FigureSpec fig12_cps_fifo(const Scale& scale);
FigureSpec fig13_usersplit_avgsigma_edf(const Scale& scale);
FigureSpec fig14_usersplit_cps_edf(const Scale& scale);  ///< + DCRatio {3,10} panels
FigureSpec fig15_usersplit_avgsigma_fifo(const Scale& scale);
FigureSpec fig16_usersplit_cps_fifo(const Scale& scale);

// --- extensions / ablations ----------------------------------------------
FigureSpec ablation_release_policy(const Scale& scale);  ///< estimate vs actual release
FigureSpec ablation_multiround(const Scale& scale);      ///< MR2/MR4 vs single round
FigureSpec ablation_opr_an(const Scale& scale);          ///< all-nodes reference
FigureSpec ablation_backfill(const Scale& scale);        ///< OPR-MN + conservative backfilling
FigureSpec ablation_output(const Scale& scale);          ///< output-data transfer (*-IO)
// (the shared-link ablation needs per-task deadline-miss accounting rather
// than reject-ratio curves; it lives directly in bench/ablation_shared_link)

// --- heterogeneous-cluster sweeps (cluster/speed_profile subsystem) --------
/// Reject ratio / utilization as per-node speed dispersion grows: lognormal
/// profiles with mean Cps fixed at the baseline and CV per panel, so every
/// panel sees the identically calibrated workload.
FigureSpec het_speed_cv(const Scale& scale);
/// Two-tier fast/slow mix: fast-node fraction per panel, tier costs scaled
/// to preserve the baseline mean Cps (fixed 4x slow/fast cost ratio).
FigureSpec het_two_tier_mix(const Scale& scale);

/// All paper figures, in order.
std::vector<FigureSpec> paper_figures(const Scale& scale);

/// Paper figures followed by every ablation above, in inventory order.
std::vector<FigureSpec> all_figures(const Scale& scale);

/// Ids of every figure in the inventory ("fig03".."fig16", "ablation_*"),
/// without constructing any spec. CLI help and lookup both use this list,
/// so it cannot drift from what find_figure accepts.
std::vector<std::string> figure_ids();

/// Builds the one figure with the given id; throws std::invalid_argument
/// for ids not in figure_ids().
FigureSpec find_figure(const std::string& id, const Scale& scale);

}  // namespace rtdls::exp
