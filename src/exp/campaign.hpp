// Campaigns: any set of figures flattened into one deterministic cell-level
// work queue (sweep x load x run x algorithm), executed on the shared
// ThreadPool with shard selection and streamed through ResultSinks.
//
// Cell identity is the backbone: every cell has a stable global index
// (sweep-major, then (load * runs + run) * algorithms + algorithm, matching
// the classic run_sweep cell order), results are pure functions of
// (spec, load, run, algorithm) with per-cell seeding identical to
// run_sweep's, and shards stripe cells by index (cell i runs in shard
// i % shard_count). A sharded run merged with merge_cell_files is therefore
// bit-identical to the unsharded run, raw samples and final CSVs included.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "exp/figure.hpp"
#include "util/thread_pool.hpp"

namespace rtdls::exp {

/// Position of one cell in a campaign's (sweep x load x run x algorithm)
/// grid. `index` is the stable global cell index used for shard striping
/// and for cell-file merging.
struct CellRef {
  std::size_t index = 0;
  std::size_t sweep = 0;      ///< flattened sweep position (figure order)
  std::size_t load = 0;       ///< index into spec.loads
  std::size_t run = 0;        ///< run index (the RNG stream)
  std::size_t algorithm = 0;  ///< index into spec.algorithms
};

/// Metrics of one completed cell, in SweepMetric order.
struct CellResult {
  CellRef ref;
  std::array<double, kSweepMetricCount> metrics{};
};

/// A validated experiment plan: figures flattened into an ordered sweep
/// list with precomputed cell offsets.
class Campaign {
 public:
  /// Validates every panel (non-empty loads/algorithms, runs >= 1); throws
  /// std::invalid_argument otherwise.
  explicit Campaign(std::vector<FigureSpec> figures);

  const std::vector<FigureSpec>& figures() const { return figures_; }

  /// Panels of all figures, flattened in figure order.
  const std::vector<SweepSpec>& sweeps() const { return sweeps_; }

  /// (figure, panel) position of flattened sweep `sweep`.
  std::pair<std::size_t, std::size_t> panel_of(std::size_t sweep) const {
    return panel_of_[sweep];
  }

  /// Total cells across all sweeps.
  std::size_t cell_count() const { return offsets_.back(); }

  /// First global cell index of a sweep.
  std::size_t sweep_offset(std::size_t sweep) const { return offsets_[sweep]; }

  /// Decodes a global cell index.
  CellRef cell(std::size_t index) const;

 private:
  std::vector<FigureSpec> figures_;
  std::vector<SweepSpec> sweeps_;
  std::vector<std::pair<std::size_t, std::size_t>> panel_of_;
  std::vector<std::size_t> offsets_;  ///< per-sweep cell offsets + total
};

/// Receives completed cells. consume() may be called concurrently from
/// worker threads; implementations synchronize internally. close() is
/// called once after the last cell of a run.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void consume(const Campaign& campaign, const CellResult& cell) = 0;
  virtual void close() {}
};

/// Stripe of the cell queue executed by one process: cells whose
/// index % count == index_.
struct ShardSelection {
  std::size_t index = 0;
  std::size_t count = 1;

  bool contains(std::size_t cell) const { return cell % count == index; }
};

/// Parses "i/m" (0-based shard i of m); throws std::invalid_argument.
ShardSelection parse_shard(const std::string& text);

/// One cell that kept failing after every retry. `attempts` counts every
/// execution (1 + retries); `error` is the last exception's what().
struct FailedCell {
  std::size_t index = 0;
  std::size_t attempts = 0;
  std::string error;
};

struct CampaignOptions {
  ShardSelection shard;               ///< default: the whole queue
  util::ThreadPool* pool = nullptr;   ///< null: sequential execution
  /// Explicit cell-index work list overriding the shard striping (resume
  /// mode runs exactly the missing cells). Not owned; must outlive the run.
  const std::vector<std::size_t>* cells = nullptr;
  /// Called after each completed cell with the number done so far and the
  /// total cells in this shard. Serialized (never concurrent).
  std::function<void(const CellRef&, std::size_t done, std::size_t total)> progress;
  /// Flaky-fleet tolerance: a cell whose simulation throws is re-run up to
  /// `retries` more times before giving up on it. Sink errors are never
  /// retried (a cell must not reach the sink twice).
  std::size_t retries = 0;
  /// When non-null, cells that still fail after the retries are appended
  /// here (ascending index) and the run continues; the caller resolves them
  /// (e.g. `campaign resume` on a healthier machine). When null, the first
  /// exhausted cell's exception propagates and aborts the run - the
  /// historical fail-fast behavior.
  std::vector<FailedCell>* failed = nullptr;
  /// Per-cell wall-clock budget in seconds; 0 disables. An attempt that
  /// exceeds it counts as a failed attempt and flows through the same
  /// retries/`failed` path as a thrown simulation. The runaway simulation
  /// itself cannot be interrupted - it keeps running on a helper thread
  /// (which pins its trace and simulator alive) until it finishes;
  /// join_timed_out_cells() collects such threads.
  double cell_timeout_sec = 0.0;
  /// Cooperative cancellation (the SIGINT/SIGTERM path): when the pointed-to
  /// flag becomes true, cells not yet started are skipped. Skipped cells
  /// were never run, so `campaign resume` completes the run; in-flight
  /// cells finish normally and reach the sink, and close() always runs, so
  /// a cancelled shard's cell file is valid and flushed.
  const std::atomic<bool>* cancel = nullptr;
  /// Non-empty: truncate-rewrite a tiny CSV heartbeat sidecar at this path
  /// after every completed cell (done/total/failed/last cell/elapsed), so a
  /// fleet operator can poll shard health with `cat`. Deliberately a
  /// SEPARATE file from the cell CSV: sharded and merged cell files must
  /// stay byte-identical, and a per-shard progress row would break that.
  std::string heartbeat_path;
};

/// The heartbeat sidecar writer behind CampaignOptions::heartbeat_path.
/// beat() is advisory: an unwritable path is ignored, never a run failure.
class HeartbeatFile {
 public:
  explicit HeartbeatFile(std::string path);
  void beat(std::size_t done, std::size_t total, std::size_t failed,
            std::size_t last_cell);

 private:
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

/// Executes the campaign's cell queue (or one shard of it) and streams
/// every completed cell into `sink`. Deterministic per cell regardless of
/// pool size or sharding.
void run_campaign(const Campaign& campaign, const CampaignOptions& options, ResultSink& sink);

/// Joins the helper threads left behind by cells that hit
/// CampaignOptions::cell_timeout_sec (their simulations keep running after
/// the cell was declared failed). Tests call this between runs so leak
/// checkers see every thread finish; threads still alive at process exit
/// are detached instead (never std::terminate).
void join_timed_out_cells();

/// In-memory aggregation into SweepResults, reproducing run_sweep
/// bit-for-bit: cells land in their raw[] slots, take() computes the
/// per-load confidence intervals in the same fixed order.
class AggregateSink : public ResultSink {
 public:
  explicit AggregateSink(const Campaign& campaign);
  void consume(const Campaign& campaign, const CellResult& cell) override;

  /// Aggregates and returns the per-sweep results (campaign sweep order),
  /// stamping `wall_seconds` on each. Call once, after run_campaign.
  std::vector<SweepResult> take(double wall_seconds = 0.0);

 private:
  std::vector<SweepResult> results_;
};

/// Streaming per-cell CSV sink for shard outputs: one row per cell,
/// appended (and flushed) as cells complete, doubles written bit-exactly.
/// Row order follows completion and is not deterministic; merging restores
/// canonical order by cell index.
class CellCsvSink : public ResultSink {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  /// `append` reopens an existing cell file and adds rows after what it
  /// already holds instead of truncating (resume mode; the caller is
  /// responsible for having validated the existing content, e.g. via
  /// missing_cells).
  explicit CellCsvSink(const std::string& path, bool append = false);
  void consume(const Campaign& campaign, const CellResult& cell) override;
  void close() override;

  /// The header row every cell file starts with.
  static std::vector<std::string> header();

 private:
  std::string path_;
  std::ofstream file_;
  std::mutex mutex_;
};

/// Fans one cell stream out to several sinks (e.g. aggregate and stream
/// cells in the same run).
class TeeSink : public ResultSink {
 public:
  explicit TeeSink(std::vector<ResultSink*> sinks) : sinks_(std::move(sinks)) {}
  void consume(const Campaign& campaign, const CellResult& cell) override {
    for (ResultSink* sink : sinks_) sink->consume(campaign, cell);
  }
  void close() override {
    for (ResultSink* sink : sinks_) sink->close();
  }

 private:
  std::vector<ResultSink*> sinks_;
};

/// Folds shard cell files back into per-sweep results. Every campaign cell
/// must appear exactly once across `paths`; missing, duplicate, or
/// mismatching cells (wrong sweep id / algorithm / load for their index)
/// throw std::runtime_error. The returned results are bit-identical to an
/// unsharded run (wall_seconds excepted, which is 0 for merged results).
///
/// `failed` (optional): cells the shards recorded as failed-after-retries
/// (read_failed_cells over the shards' sidecar reports). Coverage errors
/// then say which absent cells FAILED on a shard (with their last error)
/// and which were never run at all - the two need different operator
/// responses (rerun/debug vs finish the fleet).
std::vector<SweepResult> merge_cell_files(const Campaign& campaign,
                                          const std::vector<std::string>& paths,
                                          const std::vector<FailedCell>* failed = nullptr);

/// Writes/reads a failed-cells sidecar report (CSV: cell, attempts, error).
/// Shards with --retries write one next to their cell file; merge reads
/// them to tell failed cells from never-run cells.
void write_failed_cells(const std::string& path, const std::vector<FailedCell>& failed);
std::vector<FailedCell> read_failed_cells(const std::string& path);

/// Diffs existing cell files against the plan: the global indices of every
/// cell the files do NOT cover, ascending. Rows are validated exactly like
/// merge_cell_files (duplicates and cross-plan cells throw); only coverage
/// may be partial. `campaign resume` re-runs exactly this list.
std::vector<std::size_t> missing_cells(const Campaign& campaign,
                                       const std::vector<std::string>& paths);

}  // namespace rtdls::exp
