#include "exp/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>

#include "exp/runner.hpp"
#include "obs/metrics.hpp"
#include "sched/registry.hpp"
#include "util/annotations.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace rtdls::exp {

Campaign::Campaign(std::vector<FigureSpec> figures) : figures_(std::move(figures)) {
  offsets_.push_back(0);
  for (std::size_t f = 0; f < figures_.size(); ++f) {
    for (std::size_t p = 0; p < figures_[f].panels.size(); ++p) {
      const SweepSpec& spec = figures_[f].panels[p];
      if (spec.loads.empty()) {
        throw std::invalid_argument("campaign: sweep '" + spec.id + "': no loads");
      }
      if (spec.algorithms.empty()) {
        throw std::invalid_argument("campaign: sweep '" + spec.id + "': no algorithms");
      }
      if (spec.runs == 0) {
        throw std::invalid_argument("campaign: sweep '" + spec.id + "': runs must be >= 1");
      }
      sweeps_.push_back(spec);
      panel_of_.emplace_back(f, p);
      offsets_.push_back(offsets_.back() +
                         spec.loads.size() * spec.runs * spec.algorithms.size());
    }
  }
}

CellRef Campaign::cell(std::size_t index) const {
  // offsets_ is [0, end_of_sweep_0, ...]; the owning sweep is the last
  // offset <= index.
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), index);
  if (it == offsets_.begin() || index >= cell_count()) {
    throw std::out_of_range("Campaign::cell: index " + std::to_string(index) + " out of range");
  }
  CellRef ref;
  ref.index = index;
  ref.sweep = static_cast<std::size_t>(it - offsets_.begin()) - 1;
  const SweepSpec& spec = sweeps_[ref.sweep];
  const std::size_t local = index - offsets_[ref.sweep];
  const std::size_t algs = spec.algorithms.size();
  ref.algorithm = local % algs;
  const std::size_t trace = local / algs;  // load * runs + run
  ref.run = trace % spec.runs;
  ref.load = trace / spec.runs;
  return ref;
}

ShardSelection parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  unsigned long long index = 0;
  unsigned long long count = 0;
  if (slash == std::string::npos || !util::parse_u64(text.substr(0, slash), index) ||
      !util::parse_u64(text.substr(slash + 1), count)) {
    throw std::invalid_argument("parse_shard: expected i/m (e.g. 0/4), got '" + text + "'");
  }
  if (count == 0 || index >= count) {
    throw std::invalid_argument("parse_shard: shard " + text + " out of range (0-based)");
  }
  return ShardSelection{static_cast<std::size_t>(index), static_cast<std::size_t>(count)};
}

namespace {

/// One reusable simulation context: the algorithm instance (rules may keep
/// mutable scratch, so instances are never shared across threads) plus a
/// simulator whose run() resets state in place.
struct SimSlot {
  sched::Algorithm algorithm;
  sim::ClusterSimulator simulator;

  SimSlot(const sim::SimulatorConfig& config, sched::Algorithm alg)
      : algorithm(std::move(alg)), simulator(config, algorithm) {}
};

/// Per-algorithm free lists of SimSlots for one sweep. Workers check a slot
/// out per cell and return it afterwards, so a campaign allocates at most
/// (algorithms x concurrent workers) simulators per sweep and every
/// simulator serves many back-to-back cells. Results cannot depend on which
/// slot serves which cell: run() fully resets per-run state.
class SlotPool {
 public:
  SlotPool(const sim::SimulatorConfig& config, const std::vector<std::string>& names)
      : config_(config), names_(names), free_(names.size()) {}

  std::unique_ptr<SimSlot> acquire(std::size_t algorithm) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto& stack = free_[algorithm];
      if (!stack.empty()) {
        std::unique_ptr<SimSlot> slot = std::move(stack.back());
        stack.pop_back();
        return slot;
      }
    }
    return std::make_unique<SimSlot>(config_, sched::make_algorithm(names_[algorithm]));
  }

  void release(std::size_t algorithm, std::unique_ptr<SimSlot> slot) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_[algorithm].push_back(std::move(slot));
  }

 private:
  sim::SimulatorConfig config_;
  const std::vector<std::string>& names_;
  std::mutex mutex_;
  std::vector<std::vector<std::unique_ptr<SimSlot>>> free_;
};

/// Threads abandoned by timed-out cells. They cannot be interrupted (the
/// simulator has no cancellation points), so they run to completion holding
/// shared ownership of their trace and SimSlot. Tests join them between
/// runs; anything still alive at static destruction is detached - joining
/// there could block exit forever, and a joinable std::thread destructor
/// would std::terminate.
class StrayThreads {
 public:
  void add(std::thread thread) {
    std::lock_guard<std::mutex> lock(stray_mutex_);
    threads_.push_back(std::move(thread));
  }

  void join_all() {
    std::vector<std::thread> taken;
    {
      std::lock_guard<std::mutex> lock(stray_mutex_);
      taken.swap(threads_);
    }
    for (std::thread& thread : taken) {
      if (thread.joinable()) thread.join();
    }
  }

  ~StrayThreads() {
    for (std::thread& thread : threads_) {
      if (thread.joinable()) thread.detach();
    }
  }

 private:
  std::mutex stray_mutex_ RTDLS_LOCK_LEVEL(30);
  std::vector<std::thread> threads_;
};

StrayThreads& stray_threads() {
  static StrayThreads instance;
  return instance;
}

using TracePtr = std::shared_ptr<const std::vector<workload::Task>>;

/// Runs one cell attempt under a wall-clock budget. The helper thread takes
/// shared ownership of the slot and trace; on completion within the budget
/// the slot returns to the pool and the metrics (or the simulation's
/// exception) propagate. On timeout the thread is abandoned to the stray
/// registry - the slot is intentionally NOT returned (it is still running)
/// and a fresh one will be built on the pool's next miss.
sim::SimMetrics run_attempt_with_timeout(SlotPool& pool, std::size_t algorithm,
                                         std::unique_ptr<SimSlot> slot, TracePtr trace,
                                         double sim_time, double timeout_sec) {
  struct Shared {
    std::unique_ptr<SimSlot> slot;
    TracePtr trace;
    std::promise<sim::SimMetrics> promise;
  };
  auto shared = std::make_shared<Shared>();
  shared->slot = std::move(slot);
  shared->trace = std::move(trace);
  std::future<sim::SimMetrics> future = shared->promise.get_future();
  std::thread worker([shared, sim_time] {
    try {
      shared->promise.set_value(shared->slot->simulator.run(*shared->trace, sim_time));
    } catch (...) {
      shared->promise.set_exception(std::current_exception());
    }
  });
  if (future.wait_for(std::chrono::duration<double>(timeout_sec)) ==
      std::future_status::ready) {
    worker.join();
    // Release before get(): even when the simulation threw, run() resets all
    // per-run state on entry, so the slot is safe to reuse.
    pool.release(algorithm, std::move(shared->slot));
    return future.get();
  }
  stray_threads().add(std::move(worker));
  throw std::runtime_error("cell exceeded --cell-timeout-sec budget (" +
                           std::to_string(timeout_sec) + "s)");
}

/// Campaign-level telemetry in the process-global registry, alongside the
/// simulator/planner counters each cell's run contributes.
struct CampaignObs {
  obs::Counter cells;
  obs::Counter retried;
  obs::Counter failures;

  CampaignObs() {
    obs::Registry& reg = obs::Registry::global();
    cells = reg.counter("rtdls_campaign_cells_total");
    retried = reg.counter("rtdls_campaign_cell_retries_total");
    failures = reg.counter("rtdls_campaign_cell_failures_total");
  }
};

CampaignObs& campaign_obs() {
  static CampaignObs instance;
  return instance;
}

}  // namespace

HeartbeatFile::HeartbeatFile(std::string path)
    : path_(std::move(path)), start_(std::chrono::steady_clock::now()) {}

void HeartbeatFile::beat(std::size_t done, std::size_t total, std::size_t failed,
                         std::size_t last_cell) {
  std::ofstream file(path_, std::ios::out | std::ios::trunc);
  if (!file) return;  // advisory: a broken heartbeat must not kill the run
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  util::CsvWriter writer(file);
  writer.write_row({"done", "total", "failed", "last_cell", "elapsed_sec"});
  writer.write_row({std::to_string(done), std::to_string(total), std::to_string(failed),
                    std::to_string(last_cell), util::format_roundtrip(elapsed)});
  file.flush();
}

void join_timed_out_cells() { stray_threads().join_all(); }

void run_campaign(const Campaign& campaign, const CampaignOptions& options, ResultSink& sink) {
  const ShardSelection shard = options.shard;
  if (shard.count == 0) throw std::invalid_argument("run_campaign: shard count must be >= 1");
  if (shard.index >= shard.count) {
    throw std::invalid_argument("run_campaign: shard index out of range");
  }

  const std::vector<SweepSpec>& sweeps = campaign.sweeps();

  // This shard's stripe of the global cell queue - or, in resume mode, the
  // caller's explicit cell list.
  std::vector<std::size_t> work;
  const std::size_t total = campaign.cell_count();
  if (options.cells != nullptr) {
    work = *options.cells;
    for (std::size_t cell : work) {
      if (cell >= total) {
        throw std::invalid_argument("run_campaign: explicit cell " + std::to_string(cell) +
                                    " out of range");
      }
    }
  } else {
    work.reserve(total / shard.count + 1);
    for (std::size_t i = shard.index; i < total; i += shard.count) work.push_back(i);
  }

  // Per-sweep simulator configuration and reusable simulator slots.
  std::vector<sim::SimulatorConfig> configs(sweeps.size());
  std::vector<std::unique_ptr<SlotPool>> pools(sweeps.size());
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    // Materializes the sweep's het_profile key into a speed profile; the
    // workload params (cell_workload) keep the scalar cluster so load
    // calibration is profile-independent.
    configs[s].params = sweeps[s].materialized_cluster();
    configs[s].release_policy = sweeps[s].release_policy;
    configs[s].shared_link = sweeps[s].shared_link;
    configs[s].output_ratio = sweeps[s].output_ratio;
    pools[s] = std::make_unique<SlotPool>(configs[s], sweeps[s].algorithms);
  }

  // One workload trace per (sweep, load, run), shared by every algorithm of
  // that sweep present in this shard (the paper's paired comparison: same
  // trace, different algorithms). Traces are a pure function of
  // (spec, load, run), so lazily generating each in whichever cell needs it
  // first cannot change results; each is freed after its last shard cell,
  // so peak trace memory tracks the in-flight cells, not the whole
  // campaign (at paper scale a full trace set is large).
  std::vector<std::size_t> trace_offsets(sweeps.size() + 1, 0);
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    trace_offsets[s + 1] = trace_offsets[s] + sweeps[s].loads.size() * sweeps[s].runs;
  }
  const std::size_t trace_count = trace_offsets.back();
  // shared_ptr rather than plain vectors: a timed-out cell's runaway thread
  // keeps its trace alive through its own reference after the campaign has
  // dropped (or finished and freed) it.
  std::vector<TracePtr> traces(trace_count);
  const auto trace_once = std::make_unique<std::once_flag[]>(trace_count);
  const auto cells_left = std::make_unique<std::atomic<std::size_t>[]>(trace_count);
  for (std::size_t t = 0; t < trace_count; ++t) cells_left[t].store(0, std::memory_order_relaxed);
  auto trace_id = [&](const CellRef& ref) {
    return trace_offsets[ref.sweep] + ref.load * sweeps[ref.sweep].runs + ref.run;
  };
  for (std::size_t i : work) {
    cells_left[trace_id(campaign.cell(i))].fetch_add(1, std::memory_order_relaxed);
  }

  std::mutex progress_mutex;
  std::size_t done = 0;
  std::mutex failed_mutex;
  std::atomic<std::size_t> failed_count{0};
  std::unique_ptr<HeartbeatFile> heartbeat;
  if (!options.heartbeat_path.empty()) {
    heartbeat = std::make_unique<HeartbeatFile>(options.heartbeat_path);
  }

  auto run_cell = [&](std::size_t w) {
    // Cooperative cancellation: cells not yet started are skipped entirely,
    // leaving them "never run" for `campaign resume` to pick up.
    if (options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed)) {
      return;
    }
    const CellRef ref = campaign.cell(work[w]);
    const SweepSpec& spec = sweeps[ref.sweep];
    const std::size_t t = trace_id(ref);
    std::call_once(trace_once[t], [&] {
      traces[t] = std::make_shared<const std::vector<workload::Task>>(
          workload::generate_workload(cell_workload(spec, spec.loads[ref.load], ref.run)));
    });
    const TracePtr trace = traces[t];

    // The simulate-and-validate part retries (flaky fleet machines); the
    // sink never sees a cell twice, so sink errors stay fatal.
    CellResult cell;
    cell.ref = ref;
    bool computed = false;
    std::size_t attempts = 0;
    std::exception_ptr last_error;
    std::string last_what;
    std::size_t theorem4_violations = 0;
    while (!computed && attempts <= options.retries) {
      ++attempts;
      try {
        std::unique_ptr<SimSlot> slot = pools[ref.sweep]->acquire(ref.algorithm);
        sim::SimMetrics metrics;
        if (options.cell_timeout_sec > 0.0) {
          metrics = run_attempt_with_timeout(*pools[ref.sweep], ref.algorithm,
                                             std::move(slot), trace, spec.sim_time,
                                             options.cell_timeout_sec);
        } else {
          metrics = slot->simulator.run(*trace, spec.sim_time);
          pools[ref.sweep]->release(ref.algorithm, std::move(slot));
        }

        theorem4_violations = metrics.theorem4_violations;
        cell.metrics[static_cast<std::size_t>(SweepMetric::kRejectRatio)] =
            metrics.reject_ratio();
        cell.metrics[static_cast<std::size_t>(SweepMetric::kMeanResponse)] =
            metrics.response_time.mean();
        cell.metrics[static_cast<std::size_t>(SweepMetric::kMeanWait)] =
            metrics.wait_time.mean();
        cell.metrics[static_cast<std::size_t>(SweepMetric::kUtilization)] =
            metrics.utilization();
        cell.metrics[static_cast<std::size_t>(SweepMetric::kDeadlineMisses)] =
            static_cast<double>(metrics.deadline_misses);
        cell.metrics[static_cast<std::size_t>(SweepMetric::kTheorem4Violations)] =
            static_cast<double>(metrics.theorem4_violations);
        computed = true;
      } catch (const std::exception& e) {
        last_error = std::current_exception();
        last_what = e.what();
      }
    }
    if (cells_left[t].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      traces[t].reset();  // runaway threads hold their own reference
    }

    // Theorem-4 halts are deterministic model violations, not flaky-machine
    // failures: check AFTER the retry loop (the metrics are already
    // computed) so the simulation is never pointlessly re-run, then follow
    // the same record-vs-abort policy.
    if (computed && theorem4_violations != 0 && spec.halt_on_theorem4) {
      computed = false;
      last_what = "campaign: Theorem 4 violated in sweep '" + spec.id + "' algorithm " +
                  spec.algorithms[ref.algorithm] +
                  " (set SweepSpec::halt_on_theorem4 = false to record instead)";
      last_error = std::make_exception_ptr(std::logic_error(last_what));
    }

    if (attempts > 1) campaign_obs().retried.add(attempts - 1);
    if (!computed) {
      campaign_obs().failures.inc();
      failed_count.fetch_add(1, std::memory_order_relaxed);
      if (options.failed == nullptr) std::rethrow_exception(last_error);
      {
        std::lock_guard<std::mutex> lock(failed_mutex);
        options.failed->push_back(FailedCell{work[w], attempts, last_what});
      }
    } else {
      campaign_obs().cells.inc();
      sink.consume(campaign, cell);
    }

    if (options.progress || heartbeat != nullptr) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      ++done;
      if (options.progress) options.progress(ref, done, work.size());
      if (heartbeat != nullptr) {
        heartbeat->beat(done, work.size(), failed_count.load(std::memory_order_relaxed),
                        ref.index);
      }
    }
  };

  if (options.pool != nullptr) {
    options.pool->parallel_for(work.size(), run_cell);
  } else {
    for (std::size_t w = 0; w < work.size(); ++w) run_cell(w);
  }
  if (options.failed != nullptr) {
    // Completion order is pool-dependent; the report is canonical by index.
    std::sort(options.failed->begin(), options.failed->end(),
              [](const FailedCell& a, const FailedCell& b) { return a.index < b.index; });
  }
  sink.close();
}

AggregateSink::AggregateSink(const Campaign& campaign) {
  results_.reserve(campaign.sweeps().size());
  for (const SweepSpec& spec : campaign.sweeps()) {
    SweepResult result;
    result.spec = spec;
    result.curves.resize(spec.algorithms.size());
    for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
      result.curves[a].algorithm = spec.algorithms[a];
      for (MetricSeries& series : result.curves[a].metrics) {
        series.raw.assign(spec.loads.size() * spec.runs, 0.0);
        series.per_load.resize(spec.loads.size());
      }
    }
    results_.push_back(std::move(result));
  }
}

void AggregateSink::consume(const Campaign&, const CellResult& cell) {
  // Every cell owns exactly one raw[] slot per metric, so concurrent
  // consume() calls never touch the same memory and need no lock.
  SweepResult& result = results_[cell.ref.sweep];
  const std::size_t sample = cell.ref.load * result.spec.runs + cell.ref.run;
  CurveResult& curve = result.curves[cell.ref.algorithm];
  for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
    curve.metrics[m].raw[sample] = cell.metrics[m];
  }
}

std::vector<SweepResult> AggregateSink::take(double wall_seconds) {
  // Aggregate every (algorithm, metric, load) over the runs in run order
  // with a streaming accumulator; order is fixed, so aggregation is
  // deterministic regardless of cell completion order.
  for (SweepResult& result : results_) {
    const std::size_t loads = result.spec.loads.size();
    const std::size_t runs = result.spec.runs;
    for (CurveResult& curve : result.curves) {
      for (MetricSeries& series : curve.metrics) {
        for (std::size_t l = 0; l < loads; ++l) {
          stats::RunningStats acc;
          for (std::size_t r = 0; r < runs; ++r) acc.add(series.raw[l * runs + r]);
          series.per_load[l] = stats::mean_confidence_interval(acc, result.spec.confidence);
        }
      }
    }
    result.wall_seconds = wall_seconds;
  }
  return std::move(results_);
}

std::vector<std::string> CellCsvSink::header() {
  std::vector<std::string> header{"cell", "sweep_id", "sweep",     "load_index",
                                  "run",  "algorithm", "load"};
  for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
    header.emplace_back(sweep_metric_name(static_cast<SweepMetric>(m)));
  }
  return header;
}

CellCsvSink::CellCsvSink(const std::string& path, bool append)
    : path_(path),
      file_(path, append ? std::ios::out | std::ios::app : std::ios::out) {
  if (!file_) throw std::runtime_error("CellCsvSink: cannot open " + path);
  if (!append) {
    util::CsvWriter writer(file_);
    writer.write_row(header());
    file_.flush();
  }
}

void CellCsvSink::consume(const Campaign& campaign, const CellResult& cell) {
  const SweepSpec& spec = campaign.sweeps()[cell.ref.sweep];
  std::vector<std::string> row;
  row.reserve(7 + kSweepMetricCount);
  row.push_back(std::to_string(cell.ref.index));
  row.push_back(spec.id);
  row.push_back(std::to_string(cell.ref.sweep));
  row.push_back(std::to_string(cell.ref.load));
  row.push_back(std::to_string(cell.ref.run));
  row.push_back(spec.algorithms[cell.ref.algorithm]);
  row.push_back(util::format_roundtrip(spec.loads[cell.ref.load]));
  for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
    row.push_back(util::format_roundtrip(cell.metrics[m]));
  }
  // Append and flush per cell: a killed shard keeps everything it finished,
  // and `tail -f` shows live progress.
  std::lock_guard<std::mutex> lock(mutex_);
  util::CsvWriter writer(file_);
  writer.write_row(row);
  file_.flush();
}

void CellCsvSink::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!file_.is_open()) return;
  file_.close();
  if (!file_) throw std::runtime_error("CellCsvSink: error writing " + path_);
}

namespace {

[[noreturn]] void merge_fail(const std::string& path, std::size_t row, const std::string& what) {
  throw std::runtime_error("campaign cell file: " + path + " row " + std::to_string(row) +
                           ": " + what);
}

/// Parses and validates one campaign cell file against the plan, marking
/// covered cells in `seen` (duplicates and cross-plan cells throw) and
/// forwarding each row to `sink` when non-null. Shared by merge (full
/// coverage required afterwards) and resume (partial coverage expected).
void scan_cell_file(const Campaign& campaign, const std::string& path,
                    std::vector<char>& seen, ResultSink* sink) {
  const std::size_t total = campaign.cell_count();
  const std::vector<std::string> expected_header = CellCsvSink::header();
  const auto rows = util::parse_csv_file(path);
  if (rows.empty() || rows.front() != expected_header) {
    throw std::runtime_error("campaign cell file: " + path + " is not a campaign cell file");
  }
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.size() != expected_header.size()) merge_fail(path, r, "wrong field count");

    unsigned long long index = 0;
    if (!util::parse_u64(row[0], index) || index >= total) {
      merge_fail(path, r, "bad cell index '" + row[0] + "'");
    }
    const CellRef ref = campaign.cell(static_cast<std::size_t>(index));
    const SweepSpec& spec = campaign.sweeps()[ref.sweep];
    // Cross-check the human-readable columns against what this campaign
    // says cell `index` is: catches merging shards of a different plan.
    if (row[1] != spec.id || row[2] != std::to_string(ref.sweep) ||
        row[3] != std::to_string(ref.load) || row[4] != std::to_string(ref.run) ||
        row[5] != spec.algorithms[ref.algorithm]) {
      merge_fail(path, r, "cell " + row[0] + " does not belong to this campaign (sweep '" +
                              row[1] + "' algorithm " + row[5] + ")");
    }
    double load = 0.0;
    if (!util::parse_double(row[6], load) || load != spec.loads[ref.load]) {
      merge_fail(path, r, "load mismatch for cell " + row[0]);
    }
    if (seen[index] != 0) merge_fail(path, r, "duplicate cell " + row[0]);
    seen[index] = 1;

    if (sink != nullptr) {
      CellResult cell;
      cell.ref = ref;
      for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
        if (!util::parse_double(row[7 + m], cell.metrics[m])) {
          merge_fail(path, r, "bad metric value '" + row[7 + m] + "'");
        }
      }
      sink->consume(campaign, cell);
    }
  }
}

}  // namespace

std::vector<SweepResult> merge_cell_files(const Campaign& campaign,
                                          const std::vector<std::string>& paths,
                                          const std::vector<FailedCell>* failed) {
  AggregateSink sink(campaign);
  const std::size_t total = campaign.cell_count();
  std::vector<char> seen(total, 0);
  for (const std::string& path : paths) scan_cell_file(campaign, path, seen, &sink);

  // Absent cells split into two operator problems: cells a shard RAN and
  // gave up on (its failed-cells report names them - debug or rerun those),
  // and cells no shard ever ran (a shard file is missing or the fleet died
  // mid-queue - finish with `campaign resume`).
  // Sorted view of the failed reports (sidecars from several shards
  // concatenate, so the combined list is not globally ordered): one
  // binary search per absent cell instead of a linear scan.
  std::vector<const FailedCell*> failed_by_index;
  if (failed != nullptr) {
    failed_by_index.reserve(failed->size());
    for (const FailedCell& cell : *failed) failed_by_index.push_back(&cell);
    std::sort(failed_by_index.begin(), failed_by_index.end(),
              [](const FailedCell* a, const FailedCell* b) { return a->index < b->index; });
  }
  std::size_t failed_missing = 0;
  const FailedCell* first_failed = nullptr;
  std::size_t never_run = 0;
  std::size_t first_never = 0;
  for (std::size_t i = 0; i < total; ++i) {
    if (seen[i] != 0) continue;
    const FailedCell* report = nullptr;
    const auto it = std::lower_bound(
        failed_by_index.begin(), failed_by_index.end(), i,
        [](const FailedCell* cell, std::size_t index) { return cell->index < index; });
    if (it != failed_by_index.end() && (*it)->index == i) report = *it;
    if (report != nullptr) {
      if (failed_missing == 0) first_failed = report;
      ++failed_missing;
    } else {
      if (never_run == 0) first_never = i;
      ++never_run;
    }
  }
  if (failed_missing + never_run != 0) {
    std::string what = "merge_cell_files: " + std::to_string(failed_missing + never_run) +
                       " of " + std::to_string(total) + " cells missing";
    if (failed_missing != 0) {
      what += ": " + std::to_string(failed_missing) + " failed on their shard (first: cell " +
              std::to_string(first_failed->index) + " after " +
              std::to_string(first_failed->attempts) + " attempt(s): " +
              first_failed->error + ")";
    }
    if (never_run != 0) {
      if (failed_missing != 0) what += " and";
      what += ": " + std::to_string(never_run) + " never ran (first: cell " +
              std::to_string(first_never) +
              "); pass every shard's cell file, or fill the gaps with "
              "`rtdls_cli campaign resume`";
    } else {
      what += "; re-run the failed cells with `rtdls_cli campaign resume --retries`";
    }
    throw std::runtime_error(what);
  }
  return sink.take();
}

namespace {

const std::vector<std::string>& failed_cells_header() {
  static const std::vector<std::string> header{"cell", "attempts", "error"};
  return header;
}

}  // namespace

void write_failed_cells(const std::string& path, const std::vector<FailedCell>& failed) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_failed_cells: cannot open " + path);
  util::CsvWriter writer(file);
  writer.write_row(failed_cells_header());
  for (const FailedCell& cell : failed) {
    writer.write_row({std::to_string(cell.index), std::to_string(cell.attempts), cell.error});
  }
  file.flush();
  if (!file) throw std::runtime_error("write_failed_cells: error writing " + path);
}

std::vector<FailedCell> read_failed_cells(const std::string& path) {
  const auto rows = util::parse_csv_file(path);
  if (rows.empty() || rows.front() != failed_cells_header()) {
    throw std::runtime_error("read_failed_cells: " + path +
                             " is not a campaign failed-cells report");
  }
  std::vector<FailedCell> failed;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    unsigned long long index = 0;
    unsigned long long attempts = 0;
    if (row.size() != 3 || !util::parse_u64(row[0], index) ||
        !util::parse_u64(row[1], attempts)) {
      throw std::runtime_error("read_failed_cells: " + path + " row " + std::to_string(r) +
                               ": malformed");
    }
    failed.push_back(FailedCell{static_cast<std::size_t>(index),
                                static_cast<std::size_t>(attempts), row[2]});
  }
  return failed;
}

std::vector<std::size_t> missing_cells(const Campaign& campaign,
                                       const std::vector<std::string>& paths) {
  std::vector<char> seen(campaign.cell_count(), 0);
  for (const std::string& path : paths) scan_cell_file(campaign, path, seen, nullptr);
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] == 0) missing.push_back(i);
  }
  return missing;
}

}  // namespace rtdls::exp
