// Rendering and persistence of sweep results: aligned terminal tables, ASCII
// charts mirroring the paper's plots, and CSV files under results/.
#pragma once

#include <string>

#include "exp/spec.hpp"

namespace rtdls::exp {

/// Aligned table: one row per load, "mean +- ci" per algorithm, plus a
/// shape-check column (difference between the first two curves when the
/// sweep has exactly two, as every paper figure does).
std::string render_sweep_table(const SweepResult& result);

/// Aligned table of the non-headline metric table: one row per algorithm,
/// load-axis mean of each SweepMetric series.
std::string render_metric_summary(const SweepResult& result);

/// ASCII chart of all curves over the load axis.
std::string render_sweep_chart(const SweepResult& result);

/// Full report: header, table, chart.
std::string render_sweep(const SweepResult& result);

/// Writes "<dir>/<sweep id>.csv" with columns
/// load,<alg> mean,<alg> ci_half,... ; creates `dir` if needed.
/// Returns the written path.
std::string write_sweep_csv(const std::string& dir, const SweepResult& result);

/// Writes "<dir>/<sweep id>.gp": a self-contained gnuplot script that plots
/// the sweep's CSV with error bars in the paper's style (reject ratio over
/// system load, one series per algorithm). Run `gnuplot <id>.gp` next to
/// the CSV to produce "<id>.png". Returns the written path.
std::string write_sweep_gnuplot(const std::string& dir, const SweepResult& result);

/// Directory used by the bench binaries ("results" or $RTDLS_RESULTS).
std::string results_dir();

}  // namespace rtdls::exp
