#include "exp/spec_io.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace rtdls::exp {

namespace {

std::string format_loads(const std::vector<double>& loads) {
  std::vector<std::string> parts;
  parts.reserve(loads.size());
  for (double load : loads) parts.push_back(util::format_roundtrip(load));
  return util::join(parts, ", ");
}

void write_sweep(std::ostream& out, const SweepSpec& spec) {
  out << "[sweep]\n";
  out << "id = " << spec.id << '\n';
  out << "title = " << spec.title << '\n';
  out << "nodes = " << spec.cluster.node_count << '\n';
  out << "cms = " << util::format_roundtrip(spec.cluster.cms) << '\n';
  out << "cps = " << util::format_roundtrip(spec.cluster.cps) << '\n';
  // Written only when set, so homogeneous specs serialize byte-identically
  // to their pre-heterogeneity form.
  if (!spec.het_profile.empty()) out << "het_profile = " << spec.het_profile << '\n';
  out << "avg_sigma = " << util::format_roundtrip(spec.avg_sigma) << '\n';
  out << "dc_ratio = " << util::format_roundtrip(spec.dc_ratio) << '\n';
  out << "loads = " << format_loads(spec.loads) << '\n';
  out << "algorithms = " << util::join(spec.algorithms, ", ") << '\n';
  out << "runs = " << spec.runs << '\n';
  out << "sim_time = " << util::format_roundtrip(spec.sim_time) << '\n';
  out << "seed = " << spec.seed << '\n';
  out << "confidence = " << util::format_roundtrip(spec.confidence) << '\n';
  out << "release = "
      << (spec.release_policy == sim::ReleasePolicy::kActual ? "actual" : "estimate") << '\n';
  out << "shared_link = " << (spec.shared_link ? 1 : 0) << '\n';
  out << "output_ratio = " << util::format_roundtrip(spec.output_ratio) << '\n';
  out << "halt_on_theorem4 = " << (spec.halt_on_theorem4 ? 1 : 0) << '\n';
  out << "expected_winner = " << spec.expected_winner << '\n';
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("spec line " + std::to_string(line) + ": " + message);
}

double parse_double_or_fail(std::size_t line, const std::string& key, std::string_view value) {
  double out = 0.0;
  if (!util::parse_double(value, out)) fail(line, key + ": bad number '" + std::string(value) + "'");
  return out;
}

std::uint64_t parse_u64_or_fail(std::size_t line, const std::string& key, std::string_view value) {
  unsigned long long out = 0;
  if (!util::parse_u64(value, out)) {
    fail(line, key + ": bad integer '" + std::string(value) + "'");
  }
  return out;
}

bool parse_bool_or_fail(std::size_t line, const std::string& key, std::string_view value) {
  const std::string lower = util::to_lower(value);
  if (lower == "1" || lower == "true") return true;
  if (lower == "0" || lower == "false") return false;
  fail(line, key + ": bad boolean '" + std::string(value) + "' (use 0/1)");
}

/// Incremental campaign parse state: at most one open figure and one open
/// sweep at a time; sections close when the next section or EOF arrives.
struct CampaignParser {
  const FigureResolver& resolver;
  std::vector<FigureSpec> figures;

  FigureSpec figure;
  bool in_figure = false;   ///< a [figure] section is open
  bool figure_used = false; ///< the open figure was a `use = id` reference
  SweepSpec sweep;
  bool in_sweep = false;

  explicit CampaignParser(const FigureResolver& r) : resolver(r) {}

  void close_sweep(std::size_t line) {
    if (!in_sweep) return;
    if (in_figure && figure_used) fail(line, "a `use` figure takes no [sweep] panels");
    if (sweep.id.empty()) fail(line, "[sweep] section missing an id");
    if (in_figure) {
      figure.panels.push_back(std::move(sweep));
    } else {
      // Top-level sweep: its own single-panel figure.
      FigureSpec single;
      single.id = sweep.id;
      single.title = sweep.title;
      single.panels.push_back(std::move(sweep));
      figures.push_back(std::move(single));
    }
    sweep = SweepSpec{};
    in_sweep = false;
  }

  void close_figure(std::size_t line) {
    close_sweep(line);
    if (!in_figure) return;
    if (!figure_used) {
      if (figure.id.empty()) fail(line, "[figure] section missing an id");
      if (figure.panels.empty()) fail(line, "figure '" + figure.id + "' has no [sweep] panels");
      figures.push_back(std::move(figure));
    }
    figure = FigureSpec{};
    in_figure = false;
    figure_used = false;
  }

  void figure_key(std::size_t line, const std::string& key, const std::string& value) {
    if (figure_used) fail(line, "a `use` figure takes no other keys");
    if (key == "use") {
      if (!figure.id.empty() || !figure.title.empty() || !figure.panels.empty()) {
        fail(line, "`use` must be the only key of its [figure] section");
      }
      if (!resolver) fail(line, "`use = " + value + "` needs a figure registry resolver");
      figures.push_back(resolver(value));
      figure_used = true;
    } else if (key == "id") {
      figure.id = value;
    } else if (key == "title") {
      figure.title = value;
    } else {
      fail(line, "unknown figure key '" + key + "'");
    }
  }

  void sweep_key(std::size_t line, const std::string& key, const std::string& value) {
    if (key == "id") {
      sweep.id = value;
    } else if (key == "title") {
      sweep.title = value;
    } else if (key == "nodes") {
      sweep.cluster.node_count = static_cast<std::size_t>(parse_u64_or_fail(line, key, value));
    } else if (key == "cms") {
      sweep.cluster.cms = parse_double_or_fail(line, key, value);
    } else if (key == "cps") {
      sweep.cluster.cps = parse_double_or_fail(line, key, value);
    } else if (key == "het_profile") {
      sweep.het_profile = value;
    } else if (key == "avg_sigma") {
      sweep.avg_sigma = parse_double_or_fail(line, key, value);
    } else if (key == "dc_ratio") {
      sweep.dc_ratio = parse_double_or_fail(line, key, value);
    } else if (key == "loads") {
      sweep.loads.clear();
      for (const std::string& part : util::split(value, ',')) {
        sweep.loads.push_back(parse_double_or_fail(line, key, util::trim(part)));
      }
    } else if (key == "algorithms") {
      sweep.algorithms.clear();
      for (const std::string& part : util::split(value, ',')) {
        const std::string name(util::trim(part));
        if (name.empty()) fail(line, "algorithms: empty name");
        sweep.algorithms.push_back(name);
      }
    } else if (key == "runs") {
      sweep.runs = static_cast<std::size_t>(parse_u64_or_fail(line, key, value));
    } else if (key == "sim_time") {
      sweep.sim_time = parse_double_or_fail(line, key, value);
    } else if (key == "seed") {
      sweep.seed = parse_u64_or_fail(line, key, value);
    } else if (key == "confidence") {
      sweep.confidence = parse_double_or_fail(line, key, value);
    } else if (key == "release") {
      const std::string lower = util::to_lower(value);
      if (lower == "estimate") {
        sweep.release_policy = sim::ReleasePolicy::kEstimate;
      } else if (lower == "actual") {
        sweep.release_policy = sim::ReleasePolicy::kActual;
      } else {
        fail(line, "release: expected estimate|actual, got '" + value + "'");
      }
    } else if (key == "shared_link") {
      sweep.shared_link = parse_bool_or_fail(line, key, value);
    } else if (key == "output_ratio") {
      sweep.output_ratio = parse_double_or_fail(line, key, value);
    } else if (key == "halt_on_theorem4") {
      sweep.halt_on_theorem4 = parse_bool_or_fail(line, key, value);
    } else if (key == "expected_winner") {
      sweep.expected_winner = value;
    } else {
      fail(line, "unknown sweep key '" + key + "'");
    }
  }
};

}  // namespace

std::string serialize_sweep(const SweepSpec& spec) {
  std::ostringstream out;
  write_sweep(out, spec);
  return out.str();
}

std::string serialize_figure(const FigureSpec& spec) {
  std::ostringstream out;
  out << "[figure]\n";
  out << "id = " << spec.id << '\n';
  out << "title = " << spec.title << '\n';
  for (const SweepSpec& panel : spec.panels) {
    out << '\n';
    write_sweep(out, panel);
  }
  return out.str();
}

std::string serialize_campaign(const std::vector<FigureSpec>& figures) {
  std::ostringstream out;
  out << "# rtdls campaign spec (key = value; see exp/spec_io.hpp)\n";
  for (const FigureSpec& figure : figures) {
    out << '\n' << serialize_figure(figure);
  }
  return out.str();
}

std::vector<FigureSpec> parse_campaign(std::string_view text, const FigureResolver& resolver) {
  CampaignParser parser(resolver);
  std::size_t line_number = 0;
  for (const std::string& raw : util::split(text, '\n')) {
    ++line_number;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line == "[figure]") {
      parser.close_figure(line_number);
      parser.in_figure = true;
      continue;
    }
    if (line == "[sweep]") {
      parser.close_sweep(line_number);
      parser.in_sweep = true;
      continue;
    }
    if (line.front() == '[') fail(line_number, "unknown section " + std::string(line));
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(line_number, "expected `key = value`, got '" + std::string(line) + "'");
    }
    const std::string key(util::trim(line.substr(0, eq)));
    const std::string value(util::trim(line.substr(eq + 1)));
    if (parser.in_sweep) {
      parser.sweep_key(line_number, key, value);
    } else if (parser.in_figure) {
      parser.figure_key(line_number, key, value);
    } else {
      fail(line_number, "key '" + key + "' outside a [figure]/[sweep] section");
    }
  }
  parser.close_figure(line_number + 1);
  return parser.figures;
}

SweepBuilder::SweepBuilder(std::string id, std::string title) {
  spec_.id = std::move(id);
  spec_.title = std::move(title);
}

SweepBuilder& SweepBuilder::cluster(std::size_t nodes, double cms, double cps) {
  spec_.cluster.node_count = nodes;
  spec_.cluster.cms = cms;
  spec_.cluster.cps = cps;
  return *this;
}
SweepBuilder& SweepBuilder::het_profile(std::string key) {
  spec_.het_profile = std::move(key);
  return *this;
}
SweepBuilder& SweepBuilder::avg_sigma(double value) { spec_.avg_sigma = value; return *this; }
SweepBuilder& SweepBuilder::dc_ratio(double value) { spec_.dc_ratio = value; return *this; }
SweepBuilder& SweepBuilder::loads(std::vector<double> values) {
  spec_.loads = std::move(values);
  return *this;
}
SweepBuilder& SweepBuilder::algorithms(std::vector<std::string> names) {
  spec_.algorithms = std::move(names);
  return *this;
}
SweepBuilder& SweepBuilder::runs(std::size_t count) { spec_.runs = count; return *this; }
SweepBuilder& SweepBuilder::sim_time(Time horizon) { spec_.sim_time = horizon; return *this; }
SweepBuilder& SweepBuilder::seed(std::uint64_t value) { spec_.seed = value; return *this; }
SweepBuilder& SweepBuilder::confidence(double level) { spec_.confidence = level; return *this; }
SweepBuilder& SweepBuilder::release(sim::ReleasePolicy policy) {
  spec_.release_policy = policy;
  return *this;
}
SweepBuilder& SweepBuilder::shared_link(bool enabled) { spec_.shared_link = enabled; return *this; }
SweepBuilder& SweepBuilder::output_ratio(double delta) { spec_.output_ratio = delta; return *this; }
SweepBuilder& SweepBuilder::halt_on_theorem4(bool enabled) {
  spec_.halt_on_theorem4 = enabled;
  return *this;
}
SweepBuilder& SweepBuilder::expected_winner(std::string algorithm) {
  spec_.expected_winner = std::move(algorithm);
  return *this;
}
SweepBuilder& SweepBuilder::scale(const Scale& scale) {
  spec_.apply(scale);
  return *this;
}

SweepSpec SweepBuilder::build() const {
  if (spec_.id.empty()) throw std::invalid_argument("SweepBuilder: missing id");
  if (spec_.loads.empty()) throw std::invalid_argument("SweepBuilder: no loads");
  if (spec_.algorithms.empty()) throw std::invalid_argument("SweepBuilder: no algorithms");
  if (spec_.runs == 0) throw std::invalid_argument("SweepBuilder: runs must be >= 1");
  spec_.materialized_cluster();  // validates the het_profile key, if any
  return spec_;
}

FigureBuilder::FigureBuilder(std::string id, std::string title) {
  spec_.id = std::move(id);
  spec_.title = std::move(title);
}

FigureBuilder& FigureBuilder::panel(SweepSpec spec) {
  spec_.panels.push_back(std::move(spec));
  return *this;
}

FigureSpec FigureBuilder::build() const {
  if (spec_.id.empty()) throw std::invalid_argument("FigureBuilder: missing id");
  if (spec_.panels.empty()) throw std::invalid_argument("FigureBuilder: no panels");
  return spec_;
}

}  // namespace rtdls::exp
