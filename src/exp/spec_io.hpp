// Text serialization of experiment plans: SweepSpec / FigureSpec round-trip
// through a key=value spec-file format, so campaigns are data that can be
// versioned, diffed and shipped to shard machines instead of hard-coded C++.
//
// Format: '#' comments, blank lines ignored, `[figure]` / `[sweep]` section
// headers, `key = value` lines. A `[sweep]` section belongs to the most
// recent `[figure]`; sweeps before any figure each become their own
// single-panel figure. `use = <figure-id>` inside a `[figure]` section pulls
// a figure from the registry inventory via the caller-supplied resolver:
//
//   [figure]
//   use = fig03
//
//   [figure]
//   id = custom
//   title = my experiment
//   [sweep]
//   id = custom_a
//   loads = 0.3, 0.6, 0.9
//   algorithms = EDF-OPR-MN, EDF-DLT
//   ...
//
// Doubles are written with format_roundtrip, so parse(serialize(x)) is
// bit-exact and serialize(parse(serialize(x))) == serialize(x).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "exp/figure.hpp"

namespace rtdls::exp {

/// Serializes one sweep as a `[sweep]` section.
std::string serialize_sweep(const SweepSpec& spec);

/// Serializes one figure: a `[figure]` section plus its panels.
std::string serialize_figure(const FigureSpec& spec);

/// Serializes a whole campaign (any list of figures).
std::string serialize_campaign(const std::vector<FigureSpec>& figures);

/// Resolves `use = <id>` references against the figure inventory (typically
/// exp::find_figure bound to a Scale). May throw for unknown ids.
using FigureResolver = std::function<FigureSpec(const std::string& id)>;

/// Parses a campaign spec file. Unknown keys, malformed values, and
/// `use = ...` without a resolver all throw std::invalid_argument with the
/// offending line number, so typos fail loudly.
std::vector<FigureSpec> parse_campaign(std::string_view text,
                                       const FigureResolver& resolver = nullptr);

/// Fluent construction of one sweep; every setter returns *this so plans
/// read as a single declarative expression. build() validates.
class SweepBuilder {
 public:
  explicit SweepBuilder(std::string id, std::string title = "");

  SweepBuilder& cluster(std::size_t nodes, double cms, double cps);
  /// Per-node speed-profile key (see cluster/speed_profile.hpp); build()
  /// validates it parses against the cluster dimensions.
  SweepBuilder& het_profile(std::string key);
  SweepBuilder& avg_sigma(double value);
  SweepBuilder& dc_ratio(double value);
  SweepBuilder& loads(std::vector<double> values);
  SweepBuilder& algorithms(std::vector<std::string> names);
  SweepBuilder& runs(std::size_t count);
  SweepBuilder& sim_time(Time horizon);
  SweepBuilder& seed(std::uint64_t value);
  SweepBuilder& confidence(double level);
  SweepBuilder& release(sim::ReleasePolicy policy);
  SweepBuilder& shared_link(bool enabled);
  SweepBuilder& output_ratio(double delta);
  SweepBuilder& halt_on_theorem4(bool enabled);
  SweepBuilder& expected_winner(std::string algorithm);
  SweepBuilder& scale(const Scale& scale);

  /// Returns the spec; throws std::invalid_argument when loads/algorithms
  /// are empty or runs is zero.
  SweepSpec build() const;

 private:
  SweepSpec spec_;
};

/// Fluent construction of one figure from finished panels.
class FigureBuilder {
 public:
  FigureBuilder(std::string id, std::string title);
  FigureBuilder& panel(SweepSpec spec);
  FigureSpec build() const;

 private:
  FigureSpec spec_;
};

}  // namespace rtdls::exp
