#include "exp/spec.hpp"

#include <memory>

#include "cluster/speed_profile.hpp"
#include "util/env.hpp"

namespace rtdls::exp {

Scale Scale::from_env() {
  Scale scale;
  if (util::env_flag("RTDLS_FULL")) {
    scale.runs = 10;
    scale.sim_time = 10'000'000.0;
  }
  scale.runs = static_cast<std::size_t>(util::env_u64("RTDLS_RUNS", scale.runs));
  scale.sim_time = util::env_double("RTDLS_SIMTIME", scale.sim_time);
  scale.jobs = static_cast<std::size_t>(util::env_u64("RTDLS_JOBS", 0));
  if (scale.runs == 0) scale.runs = 1;
  if (scale.sim_time <= 0.0) scale.sim_time = 2'000'000.0;
  return scale;
}

std::string_view sweep_metric_name(SweepMetric metric) {
  switch (metric) {
    case SweepMetric::kRejectRatio: return "reject_ratio";
    case SweepMetric::kMeanResponse: return "mean_response";
    case SweepMetric::kMeanWait: return "mean_wait";
    case SweepMetric::kUtilization: return "utilization";
    case SweepMetric::kDeadlineMisses: return "deadline_misses";
    case SweepMetric::kTheorem4Violations: return "theorem4_violations";
  }
  return "unknown";
}

double series_mean(const MetricSeries& series) {
  if (series.per_load.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& ci : series.per_load) sum += ci.mean;
  return sum / static_cast<double>(series.per_load.size());
}

std::vector<double> SweepSpec::paper_loads() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

void SweepSpec::apply(const Scale& scale) {
  runs = scale.runs;
  sim_time = scale.sim_time;
}

cluster::ClusterParams SweepSpec::materialized_cluster() const {
  cluster::ClusterParams params = cluster;
  if (!het_profile.empty()) {
    params.speed_profile = std::make_shared<const cluster::SpeedProfile>(
        cluster::parse_speed_profile(het_profile, params.node_count, params.cps));
  }
  return params;
}

}  // namespace rtdls::exp
