#include "exp/registry.hpp"

#include <stdexcept>
#include <utility>

#include "util/strings.hpp"

namespace rtdls::exp {

namespace {

/// Paper algorithm pairs per policy.
const char* kEdfPair[] = {"EDF-OPR-MN", "EDF-DLT"};
const char* kFifoPair[] = {"FIFO-OPR-MN", "FIFO-DLT"};
const char* kEdfUserSplit[] = {"EDF-DLT", "EDF-UserSplit"};
const char* kFifoUserSplit[] = {"FIFO-DLT", "FIFO-UserSplit"};

SweepSpec with_curves(SweepSpec spec, const char* const curves[2], std::string winner) {
  spec.algorithms = {curves[0], curves[1]};
  spec.expected_winner = std::move(winner);
  return spec;
}

}  // namespace

SweepSpec baseline_sweep(const Scale& scale, std::string id, std::string title) {
  SweepSpec spec;
  spec.id = std::move(id);
  spec.title = std::move(title);
  spec.cluster.node_count = 16;
  spec.cluster.cms = 1.0;
  spec.cluster.cps = 100.0;
  spec.avg_sigma = 200.0;
  spec.dc_ratio = 2.0;
  spec.loads = SweepSpec::paper_loads();
  spec.apply(scale);
  return spec;
}

FigureSpec fig03_baseline(const Scale& scale) {
  FigureSpec figure;
  figure.id = "fig03";
  figure.title = "Benefits of Utilizing IITs (baseline; means carry 95% CIs, covering 3a+3b)";
  figure.panels.push_back(with_curves(
      baseline_sweep(scale, "fig03a", "nodes=16, Cms=1, Cps=100, Avgsigma=200, DCRatio=2"),
      kEdfPair, "EDF-DLT"));
  return figure;
}

namespace {

FigureSpec dcratio_figure(const Scale& scale, std::string id, std::string title,
                          const char* const pair[2], const std::string& winner) {
  FigureSpec figure;
  figure.id = std::move(id);
  figure.title = std::move(title);
  const double ratios[] = {3.0, 10.0, 20.0, 100.0};
  const char* const tags[] = {"a", "b", "c", "d"};
  for (int i = 0; i < 4; ++i) {
    SweepSpec spec = baseline_sweep(scale, figure.id + tags[i],
                                    "DCRatio = " + std::to_string(static_cast<int>(ratios[i])));
    spec.dc_ratio = ratios[i];
    figure.panels.push_back(with_curves(std::move(spec), pair, winner));
  }
  return figure;
}

FigureSpec avgsigma_figure(const Scale& scale, std::string id, std::string title,
                           const char* const pair[2], const std::string& winner) {
  FigureSpec figure;
  figure.id = std::move(id);
  figure.title = std::move(title);
  const double sigmas[] = {100.0, 200.0, 400.0, 800.0};
  const char* const tags[] = {"a", "b", "c", "d"};
  for (int i = 0; i < 4; ++i) {
    SweepSpec spec = baseline_sweep(scale, figure.id + tags[i],
                                    "Avgsigma = " + std::to_string(static_cast<int>(sigmas[i])));
    spec.avg_sigma = sigmas[i];
    figure.panels.push_back(with_curves(std::move(spec), pair, winner));
  }
  return figure;
}

FigureSpec cms_figure(const Scale& scale, std::string id, std::string title,
                      const char* const pair[2], const std::string& winner) {
  FigureSpec figure;
  figure.id = std::move(id);
  figure.title = std::move(title);
  const double values[] = {1.0, 2.0, 4.0, 8.0};
  const char* const tags[] = {"a", "b", "c", "d"};
  for (int i = 0; i < 4; ++i) {
    SweepSpec spec = baseline_sweep(scale, figure.id + tags[i],
                                    "Cms = " + std::to_string(static_cast<int>(values[i])));
    spec.cluster.cms = values[i];
    figure.panels.push_back(with_curves(std::move(spec), pair, winner));
  }
  return figure;
}

FigureSpec cps_figure(const Scale& scale, std::string id, std::string title,
                      const char* const pair[2], const std::string& winner) {
  FigureSpec figure;
  figure.id = std::move(id);
  figure.title = std::move(title);
  const double values[] = {10.0, 50.0, 500.0, 1000.0, 5000.0, 10000.0};
  const char* const tags[] = {"a", "b", "c", "d", "e", "f"};
  for (int i = 0; i < 6; ++i) {
    SweepSpec spec = baseline_sweep(scale, figure.id + tags[i],
                                    "Cps = " + std::to_string(static_cast<int>(values[i])));
    spec.cluster.cps = values[i];
    figure.panels.push_back(with_curves(std::move(spec), pair, winner));
  }
  return figure;
}

FigureSpec usersplit_cps_figure(const Scale& scale, std::string id, std::string title,
                                const char* const pair[2], const std::string& winner) {
  // Fig. 14/16: six Cps panels at DCRatio=2 plus DCRatio 3 and 10 panels.
  FigureSpec figure = cps_figure(scale, std::move(id), std::move(title), pair, winner);
  SweepSpec g = baseline_sweep(scale, figure.id + "g", "DCRatio = 3");
  g.dc_ratio = 3.0;
  figure.panels.push_back(with_curves(std::move(g), pair, winner));
  SweepSpec h = baseline_sweep(scale, figure.id + "h", "DCRatio = 10");
  h.dc_ratio = 10.0;
  // At DCRatio >= 10 the paper reports User-Split occasionally winning by a
  // negligible margin: no winner expectation.
  figure.panels.push_back(with_curves(std::move(h), pair, ""));
  return figure;
}

}  // namespace

FigureSpec fig04_dcratio_edf(const Scale& scale) {
  return dcratio_figure(scale, "fig04", "Benefits of Utilizing IITs: DCRatio Effects (EDF)",
                        kEdfPair, "EDF-DLT");
}

FigureSpec fig05_usersplit_edf(const Scale& scale) {
  FigureSpec figure;
  figure.id = "fig05";
  figure.title = "DLT-Based vs. User-Split Algorithms (EDF)";
  figure.panels.push_back(with_curves(
      baseline_sweep(scale, "fig05a", "baseline, DCRatio = 2"), kEdfUserSplit, "EDF-DLT"));
  SweepSpec b = baseline_sweep(scale, "fig05b", "DCRatio = 10");
  b.dc_ratio = 10.0;
  figure.panels.push_back(with_curves(std::move(b), kEdfUserSplit, ""));
  return figure;
}

FigureSpec fig06_avgsigma_edf(const Scale& scale) {
  return avgsigma_figure(scale, "fig06", "Benefits of Utilizing IITs: Avgsigma Effects (EDF)",
                         kEdfPair, "EDF-DLT");
}

FigureSpec fig07_cms_edf(const Scale& scale) {
  return cms_figure(scale, "fig07", "Benefits of Utilizing IITs: Cms Effects (EDF)", kEdfPair,
                    "EDF-DLT");
}

FigureSpec fig08_cps_edf(const Scale& scale) {
  return cps_figure(scale, "fig08", "Benefits of Utilizing IITs: Cps Effects (EDF)", kEdfPair,
                    "EDF-DLT");
}

FigureSpec fig09_dcratio_fifo(const Scale& scale) {
  return dcratio_figure(scale, "fig09", "Benefits of Utilizing IITs: DCRatio Effects (FIFO)",
                        kFifoPair, "FIFO-DLT");
}

FigureSpec fig10_avgsigma_fifo(const Scale& scale) {
  return avgsigma_figure(scale, "fig10", "Benefits of Utilizing IITs: Avgsigma Effects (FIFO)",
                         kFifoPair, "FIFO-DLT");
}

FigureSpec fig11_cms_fifo(const Scale& scale) {
  return cms_figure(scale, "fig11", "Benefits of Utilizing IITs: Cms Effects (FIFO)", kFifoPair,
                    "FIFO-DLT");
}

FigureSpec fig12_cps_fifo(const Scale& scale) {
  return cps_figure(scale, "fig12", "Benefits of Utilizing IITs: Cps Effects (FIFO)", kFifoPair,
                    "FIFO-DLT");
}

FigureSpec fig13_usersplit_avgsigma_edf(const Scale& scale) {
  return avgsigma_figure(scale, "fig13", "DLT-Based vs. User-Split: Avgsigma Effects (EDF)",
                         kEdfUserSplit, "EDF-DLT");
}

FigureSpec fig14_usersplit_cps_edf(const Scale& scale) {
  return usersplit_cps_figure(scale, "fig14", "DLT-Based vs. User-Split Algorithms (EDF)",
                              kEdfUserSplit, "EDF-DLT");
}

FigureSpec fig15_usersplit_avgsigma_fifo(const Scale& scale) {
  return avgsigma_figure(scale, "fig15", "DLT-Based vs. User-Split: Avgsigma Effects (FIFO)",
                         kFifoUserSplit, "FIFO-DLT");
}

FigureSpec fig16_usersplit_cps_fifo(const Scale& scale) {
  return usersplit_cps_figure(scale, "fig16", "DLT-Based vs. User-Split Algorithms (FIFO)",
                              kFifoUserSplit, "FIFO-DLT");
}

FigureSpec ablation_release_policy(const Scale& scale) {
  FigureSpec figure;
  figure.id = "ablation_release";
  figure.title = "Ablation: node release at estimated vs actual completion (EDF-DLT)";
  SweepSpec estimate = baseline_sweep(scale, "ablation_release_estimate",
                                      "release at estimated completion (paper accounting)");
  estimate.algorithms = {"EDF-OPR-MN", "EDF-DLT"};
  estimate.expected_winner = "EDF-DLT";
  figure.panels.push_back(std::move(estimate));

  SweepSpec actual = baseline_sweep(scale, "ablation_release_actual",
                                    "release at actual completion (Theorem-4 early release)");
  actual.algorithms = {"EDF-OPR-MN", "EDF-DLT"};
  actual.release_policy = sim::ReleasePolicy::kActual;
  actual.expected_winner = "EDF-DLT";
  figure.panels.push_back(std::move(actual));
  return figure;
}

FigureSpec ablation_multiround(const Scale& scale) {
  FigureSpec figure;
  figure.id = "ablation_multiround";
  figure.title = "Extension: multi-round (multi-installment) DLT scheduling (Section 6)";
  SweepSpec spec = baseline_sweep(scale, "ablation_multiround_edf",
                                  "EDF: single round vs 2 and 4 installments");
  spec.algorithms = {"EDF-DLT", "EDF-MR2", "EDF-MR4"};
  figure.panels.push_back(std::move(spec));

  SweepSpec tight = baseline_sweep(scale, "ablation_multiround_tight",
                                   "EDF, Cms=4: heavier channel, DCRatio=2");
  tight.cluster.cms = 4.0;
  tight.algorithms = {"EDF-DLT", "EDF-MR2", "EDF-MR4"};
  figure.panels.push_back(std::move(tight));
  return figure;
}

FigureSpec ablation_opr_an(const Scale& scale) {
  FigureSpec figure;
  figure.id = "ablation_opr_an";
  figure.title =
      "Reference: OPR-AN (every task monopolizes all N nodes) vs DLT. The paper drops "
      "AN for administrative reasons, not its reject ratio - no winner is asserted.";
  SweepSpec edf = baseline_sweep(scale, "ablation_opr_an_edf", "EDF variants");
  edf.algorithms = {"EDF-OPR-AN", "EDF-DLT"};
  figure.panels.push_back(std::move(edf));
  SweepSpec fifo = baseline_sweep(scale, "ablation_opr_an_fifo", "FIFO variants");
  fifo.algorithms = {"FIFO-OPR-AN", "FIFO-DLT"};
  figure.panels.push_back(std::move(fifo));
  return figure;
}

FigureSpec ablation_backfill(const Scale& scale) {
  FigureSpec figure;
  figure.id = "ablation_backfill";
  figure.title =
      "Comparator: conservative backfilling on OPR-MN vs the paper's IIT-utilizing DLT. "
      "The paper positions its approach as complementary to backfilling; this measures "
      "how much of the IIT waste backfilling alone recovers.";
  SweepSpec edf = baseline_sweep(scale, "ablation_backfill_edf", "EDF variants");
  edf.algorithms = {"EDF-OPR-MN", "EDF-OPR-MN-BF", "EDF-DLT"};
  edf.expected_winner = "EDF-DLT";
  figure.panels.push_back(std::move(edf));
  SweepSpec fifo = baseline_sweep(scale, "ablation_backfill_fifo", "FIFO variants");
  fifo.algorithms = {"FIFO-OPR-MN", "FIFO-OPR-MN-BF", "FIFO-DLT"};
  fifo.expected_winner = "FIFO-DLT";
  figure.panels.push_back(std::move(fifo));
  return figure;
}

FigureSpec ablation_output(const Scale& scale) {
  FigureSpec figure;
  figure.id = "ablation_output";
  figure.title =
      "Extension: output-data transfer (Section 3 'straightforward extension'). Result "
      "volume delta of the input is returned over the same channel; the *-IO rules "
      "budget it into every deadline.";
  const double deltas[] = {0.05, 0.2, 0.5};
  const char* const names[] = {"EDF-DLT-IO5", "EDF-DLT-IO20", "EDF-DLT-IO50"};
  const char* const baselines[] = {"EDF-OPR-MN-IO5", "EDF-OPR-MN-IO20", "EDF-OPR-MN-IO50"};
  const char* const tags[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) {
    SweepSpec spec = baseline_sweep(scale, std::string("ablation_output_") + tags[i],
                                    std::string("delta = ") + names[i] + " vs " + baselines[i]);
    spec.algorithms = {baselines[i], names[i]};
    spec.output_ratio = deltas[i];
    // The output extension deliberately stresses the Theorem-4 bound
    // (estimates that ignore result traffic undershoot); record violations
    // in the metric table instead of aborting the sweep.
    spec.halt_on_theorem4 = false;
    spec.expected_winner = names[i];
    figure.panels.push_back(std::move(spec));
  }
  return figure;
}

FigureSpec het_speed_cv(const Scale& scale) {
  FigureSpec figure;
  figure.id = "het_cv";
  figure.title =
      "Heterogeneous clusters: speed dispersion (lognormal per-node Cps, mean fixed at "
      "100). Reject-ratio and utilization columns read against the same load axis; "
      "DLT's IIT utilization must keep winning as the speed CV grows.";
  const double cvs[] = {0.2, 0.4, 0.8};
  const char* const tags[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) {
    SweepSpec spec = baseline_sweep(scale, figure.id + tags[i],
                                    "speed CV = " + util::format_roundtrip(cvs[i]));
    spec.het_profile = "lognormal:" + util::format_roundtrip(cvs[i]) + ",7";
    figure.panels.push_back(with_curves(std::move(spec), kEdfPair, "EDF-DLT"));
  }
  return figure;
}

FigureSpec het_two_tier_mix(const Scale& scale) {
  FigureSpec figure;
  figure.id = "het_mix";
  figure.title =
      "Heterogeneous clusters: two-tier fast/slow mix (4x cost ratio, tier costs scaled "
      "so mean Cps stays 100). The fast fraction moves per panel; which ids are fast is "
      "a seeded shuffle.";
  const double fractions[] = {0.25, 0.5, 0.75};
  const char* const tags[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) {
    SweepSpec spec = baseline_sweep(
        scale, figure.id + tags[i],
        "fast fraction = " + util::format_roundtrip(fractions[i]) + " (4x ratio)");
    // mean = f*fast + (1-f)*4*fast == cps  =>  fast = cps / (4 - 3f).
    const double fast = spec.cluster.cps / (4.0 - 3.0 * fractions[i]);
    spec.het_profile = "two_tier:" + util::format_roundtrip(fast) + "," +
                       util::format_roundtrip(4.0 * fast) + "," +
                       util::format_roundtrip(fractions[i]) + ",11";
    figure.panels.push_back(with_curves(std::move(spec), kEdfPair, "EDF-DLT"));
  }
  return figure;
}

namespace {

/// The figure inventory: one row per paper figure / ablation, in paper
/// order. figure_ids(), find_figure() and the bulk accessors all read this
/// table, so the id list cannot drift from the construction functions.
struct FigureEntry {
  const char* id;
  FigureSpec (*make)(const Scale&);
  bool paper;  ///< part of the paper's Figures 3-16 (vs ablation/extension)
};

constexpr FigureEntry kInventory[] = {
    {"fig03", &fig03_baseline, true},
    {"fig04", &fig04_dcratio_edf, true},
    {"fig05", &fig05_usersplit_edf, true},
    {"fig06", &fig06_avgsigma_edf, true},
    {"fig07", &fig07_cms_edf, true},
    {"fig08", &fig08_cps_edf, true},
    {"fig09", &fig09_dcratio_fifo, true},
    {"fig10", &fig10_avgsigma_fifo, true},
    {"fig11", &fig11_cms_fifo, true},
    {"fig12", &fig12_cps_fifo, true},
    {"fig13", &fig13_usersplit_avgsigma_edf, true},
    {"fig14", &fig14_usersplit_cps_edf, true},
    {"fig15", &fig15_usersplit_avgsigma_fifo, true},
    {"fig16", &fig16_usersplit_cps_fifo, true},
    {"ablation_release", &ablation_release_policy, false},
    {"ablation_multiround", &ablation_multiround, false},
    {"ablation_opr_an", &ablation_opr_an, false},
    {"ablation_backfill", &ablation_backfill, false},
    {"ablation_output", &ablation_output, false},
    {"het_cv", &het_speed_cv, false},
    {"het_mix", &het_two_tier_mix, false},
};

}  // namespace

std::vector<FigureSpec> paper_figures(const Scale& scale) {
  std::vector<FigureSpec> figures;
  for (const FigureEntry& entry : kInventory) {
    if (entry.paper) figures.push_back(entry.make(scale));
  }
  return figures;
}

std::vector<FigureSpec> all_figures(const Scale& scale) {
  std::vector<FigureSpec> figures;
  for (const FigureEntry& entry : kInventory) figures.push_back(entry.make(scale));
  return figures;
}

std::vector<std::string> figure_ids() {
  std::vector<std::string> ids;
  for (const FigureEntry& entry : kInventory) ids.emplace_back(entry.id);
  return ids;
}

FigureSpec find_figure(const std::string& id, const Scale& scale) {
  for (const FigureEntry& entry : kInventory) {
    if (id == entry.id) return entry.make(scale);
  }
  throw std::invalid_argument("find_figure: unknown figure id '" + id +
                              "' (see exp::figure_ids())");
}

}  // namespace rtdls::exp
