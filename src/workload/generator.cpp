#include "workload/generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "dlt/homogeneous.hpp"
#include "util/fp.hpp"
#include "dlt/user_split.hpp"
#include "workload/distributions.hpp"

namespace rtdls::workload {

namespace {
// A normal draw with stddev == mean is negative ~16% of the time; resample
// above this floor so loads stay physically meaningful.
constexpr double kMinSigmaFraction = 1e-6;
// Attempts at redrawing D_i before falling back to the clamp just above the
// minimum execution time (paper: "D_i is chosen to be larger than its
// minimum execution time E(sigma_i, N)").
constexpr int kDeadlineRedraws = 64;
}  // namespace

double WorkloadParams::mean_deadline() const {
  return dc_ratio * dlt::homogeneous_execution_time(cluster, avg_sigma, cluster.node_count);
}

double WorkloadParams::mean_interarrival() const {
  return dlt::homogeneous_execution_time(cluster, avg_sigma, cluster.node_count) / system_load;
}

bool WorkloadParams::valid() const {
  return cluster.valid() && system_load > 0.0 && avg_sigma > 0.0 && dc_ratio > 0.0 &&
         total_time > 0.0;
}

Task generate_task(const WorkloadParams& params, Xoshiro256StarStar& rng,
                   cluster::TaskId id, Time arrival) {
  Task task;
  task.id = id;
  task.spec.arrival = arrival;

  // sigma_i ~ N(Avgsigma, Avgsigma^2), truncated positive.
  task.spec.sigma = sample_truncated_normal(rng, params.avg_sigma, params.avg_sigma,
                                            kMinSigmaFraction * params.avg_sigma);

  // D_i ~ U[AvgD/2, 3AvgD/2], redrawn until D_i > E(sigma_i, N); for very
  // large sigma_i even the top of the range cannot exceed E(sigma_i, N), in
  // which case D_i is clamped just above the minimum execution time.
  const double min_cost =
      dlt::homogeneous_execution_time(params.cluster, task.spec.sigma,
                                      params.cluster.node_count);
  const double avg_d = params.mean_deadline();
  double deadline = 0.0;
  for (int attempt = 0; attempt < kDeadlineRedraws; ++attempt) {
    deadline = sample_uniform(rng, avg_d / 2.0, 1.5 * avg_d);
    if (deadline > min_cost) break;
    deadline = 0.0;
  }
  if (fp::exact_eq(deadline, 0.0)) deadline = fp::rel_above(min_cost);
  task.spec.rel_deadline = deadline;

  // User-Split request: n ~ U{N_min, ..., N}. N_min can exceed N for tight
  // deadlines (equal split is suboptimal); the "user" then asks for the
  // whole cluster and admission control decides.
  const auto n_min = dlt::user_split_min_nodes(params.cluster, task.spec.sigma,
                                               task.spec.rel_deadline);
  const std::size_t n_cap = params.cluster.node_count;
  const std::size_t lo = std::min(n_min.value_or(n_cap), n_cap);
  task.user_nodes = static_cast<std::size_t>(
      sample_uniform_int(rng, static_cast<std::uint64_t>(lo),
                         static_cast<std::uint64_t>(n_cap)));
  return task;
}

std::vector<Task> generate_workload(const WorkloadParams& params) {
  if (!params.valid()) throw std::invalid_argument("generate_workload: invalid params");
  Xoshiro256StarStar rng = Xoshiro256StarStar::for_stream(params.seed, params.stream);

  std::vector<Task> tasks;
  const double mean_gap = params.mean_interarrival();
  Time now = 0.0;
  cluster::TaskId next_id = 0;
  while (true) {
    now += sample_exponential(rng, mean_gap);
    if (now >= params.total_time) break;
    tasks.push_back(generate_task(params, rng, next_id++, now));
  }
  return tasks;
}

double empirical_load(const WorkloadParams& params, const std::vector<Task>& tasks) {
  double total_cost = 0.0;
  for (const Task& task : tasks) {
    total_cost += dlt::homogeneous_execution_time(params.cluster, task.sigma(),
                                                  params.cluster.node_count);
  }
  return total_cost / params.total_time;
}

}  // namespace rtdls::workload
