#include "workload/distributions.hpp"

#include <cmath>
#include <stdexcept>

namespace rtdls::workload {

double sample_exponential(Xoshiro256StarStar& rng, double mean) {
  if (!(mean > 0.0)) throw std::invalid_argument("sample_exponential: mean must be > 0");
  // Inversion: -mean * ln(U), with U in (0, 1]. next_double() returns [0,1);
  // use 1-U to avoid log(0).
  return -mean * std::log1p(-rng.next_double());
}

double sample_standard_normal(Xoshiro256StarStar& rng) {
  // Polar (Marsaglia) method.
  while (true) {
    const double u = 2.0 * rng.next_double() - 1.0;
    const double v = 2.0 * rng.next_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_normal(Xoshiro256StarStar& rng, double mean, double stddev) {
  if (!(stddev >= 0.0)) throw std::invalid_argument("sample_normal: stddev must be >= 0");
  return mean + stddev * sample_standard_normal(rng);
}

double sample_truncated_normal(Xoshiro256StarStar& rng, double mean, double stddev,
                               double lo, int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const double x = sample_normal(rng, mean, stddev);
    if (x >= lo) return x;
  }
  return lo;
}

double sample_uniform(Xoshiro256StarStar& rng, double lo, double hi) {
  if (!(hi >= lo)) throw std::invalid_argument("sample_uniform: hi must be >= lo");
  return lo + (hi - lo) * rng.next_double();
}

std::uint64_t sample_uniform_int(Xoshiro256StarStar& rng, std::uint64_t lo, std::uint64_t hi) {
  if (hi < lo) throw std::invalid_argument("sample_uniform_int: hi must be >= lo");
  const std::uint64_t range = hi - lo + 1;  // wraps to 0 for the full domain
  if (range == 0) return rng();             // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~static_cast<std::uint64_t>(0)) - ((~static_cast<std::uint64_t>(0)) % range) - 1;
  while (true) {
    const std::uint64_t draw = rng();
    if (draw <= limit) return lo + draw % range;
  }
}

}  // namespace rtdls::workload
