// Workload generation exactly as Section 5 specifies:
//
//  * interarrival times ~ Exponential(mean 1/lambda);
//  * data sizes sigma_i ~ Normal(Avgsigma, stddev = Avgsigma), truncated to
//    positive values;
//  * relative deadlines D_i ~ Uniform[AvgD/2, 3AvgD/2] with
//    AvgD = DCRatio * E(Avgsigma, N), redrawn so that D_i > E(sigma_i, N)
//    (every generated task is feasible on the whole idle cluster);
//  * the user's requested node count for User-Split, uniform in [N_min, N],
//    drawn once per task;
//  * SystemLoad = E(Avgsigma, N) * lambda parameterizes the arrival rate:
//    1/lambda = E(Avgsigma, N) / SystemLoad.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/types.hpp"
#include "workload/rng.hpp"
#include "workload/task.hpp"

namespace rtdls::workload {

/// Parameters of one workload: the paper's simulation tuple
/// (N, Cms, Cps, SystemLoad, Avgsigma, DCRatio) plus horizon and seeding.
struct WorkloadParams {
  cluster::ClusterParams cluster;  ///< N, Cms, Cps
  double system_load = 0.5;        ///< SystemLoad in (0, ...]
  double avg_sigma = 200.0;        ///< Avgsigma: mean data size
  double dc_ratio = 2.0;           ///< DCRatio: mean deadline / mean min cost
  Time total_time = 10'000'000.0;  ///< arrivals generated in [0, total_time)
  std::uint64_t seed = 42;         ///< base RNG seed
  std::uint64_t stream = 0;        ///< run index; distinct streams per run

  /// AvgD = DCRatio * E(Avgsigma, N).
  double mean_deadline() const;

  /// Mean interarrival time 1/lambda = E(Avgsigma, N) / SystemLoad.
  double mean_interarrival() const;

  bool valid() const;
};

/// Generates the full task set for one simulation run. Tasks are returned in
/// arrival order with ids 0, 1, 2, ...
std::vector<Task> generate_workload(const WorkloadParams& params);

/// Draws a single task at `arrival` using the given generator; exposed so
/// tests can probe the per-task sampling rules directly.
Task generate_task(const WorkloadParams& params, Xoshiro256StarStar& rng,
                   cluster::TaskId id, Time arrival);

/// Empirical load of a generated task set: sum of minimum execution times
/// E(sigma_i, N) divided by the horizon. Converges to `system_load` as the
/// horizon grows; used by tests and the harness sanity report.
double empirical_load(const WorkloadParams& params, const std::vector<Task>& tasks);

}  // namespace rtdls::workload
