// The aperiodic divisible task record produced by the workload generator and
// consumed by the scheduler and simulator.
#pragma once

#include <cstdint>

#include "dlt/params.hpp"

namespace rtdls::workload {

using cluster::TaskId;
using cluster::Time;

/// One task instance T_i = (A_i, sigma_i, D_i), plus per-task generator
/// outputs that must stay stable across repeated schedulability tests.
struct Task {
  TaskId id = 0;
  dlt::TaskSpec spec;         ///< (arrival, sigma, relative deadline)
  std::size_t user_nodes = 0; ///< n requested by the "user" for User-Split
                              ///< algorithms: a uniform draw from
                              ///< [N_min, N], fixed at generation time

  Time arrival() const { return spec.arrival; }
  double sigma() const { return spec.sigma; }
  Time rel_deadline() const { return spec.rel_deadline; }
  Time abs_deadline() const { return spec.absolute_deadline(); }
};

}  // namespace rtdls::workload
