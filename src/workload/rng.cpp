#include "workload/rng.hpp"

namespace rtdls::workload {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway for defensive completeness.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Xoshiro256StarStar Xoshiro256StarStar::for_stream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream index into the seed with splitmix64 (distinct seeds for
  // distinct (seed, stream) pairs), then long-jump `stream % 64` times to
  // guarantee non-overlap even if two mixed seeds collide.
  std::uint64_t sm = seed ^ (0xA0761D6478BD642FULL * (stream + 1));
  Xoshiro256StarStar rng(splitmix64_next(sm));
  for (std::uint64_t j = 0; j < (stream & 63U); ++j) rng.long_jump();
  return rng;
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256StarStar::long_jump() {
  static constexpr std::uint64_t kLongJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
      0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double Xoshiro256StarStar::next_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

}  // namespace rtdls::workload
