// The three distributions the paper's workload model uses, implemented from
// first principles on top of our deterministic RNG:
//  * exponential interarrival times (Poisson arrivals, mean 1/lambda),
//  * normally distributed data sizes (mean Avgsigma, stddev = mean),
//    truncated to positive values,
//  * uniform relative deadlines in [AvgD/2, 3AvgD/2].
#pragma once

#include <cstdint>

#include "workload/rng.hpp"

namespace rtdls::workload {

/// Exponential variate with the given mean (= 1/lambda). mean must be > 0.
double sample_exponential(Xoshiro256StarStar& rng, double mean);

/// Standard normal variate (polar Box-Muller; one value per call, the spare
/// is discarded to keep call sites stateless and streams reproducible).
double sample_standard_normal(Xoshiro256StarStar& rng);

/// Normal(mean, stddev) variate.
double sample_normal(Xoshiro256StarStar& rng, double mean, double stddev);

/// Normal(mean, stddev) truncated to [lo, +inf): rejection-samples until the
/// draw is >= lo (cap guarded; falls back to lo after `max_attempts`).
/// The paper's sigma_i ~ N(Avgsigma, Avgsigma^2) has ~16% mass below zero,
/// so truncation is required for data sizes to be meaningful.
double sample_truncated_normal(Xoshiro256StarStar& rng, double mean, double stddev,
                               double lo, int max_attempts = 256);

/// Uniform variate in [lo, hi).
double sample_uniform(Xoshiro256StarStar& rng, double lo, double hi);

/// Uniform integer in [lo, hi] (inclusive), via rejection for unbiasedness.
std::uint64_t sample_uniform_int(Xoshiro256StarStar& rng, std::uint64_t lo, std::uint64_t hi);

}  // namespace rtdls::workload
