#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace rtdls::workload {

namespace {
const char* const kHeader[] = {"id", "arrival", "sigma", "deadline", "user_nodes"};
constexpr size_t kColumns = 5;
}  // namespace

void save_trace(std::ostream& out, const std::vector<Task>& tasks) {
  util::CsvWriter writer(out);
  writer.write_row({kHeader[0], kHeader[1], kHeader[2], kHeader[3], kHeader[4]});
  for (const Task& task : tasks) {
    writer.write_numeric_row({static_cast<double>(task.id), task.arrival(), task.sigma(),
                              task.rel_deadline(), static_cast<double>(task.user_nodes)});
  }
}

void save_trace_file(const std::string& path, const std::vector<Task>& tasks) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace_file: cannot open " + path);
  save_trace(out, tasks);
  if (!out) throw std::runtime_error("save_trace_file: write failed for " + path);
}

namespace {

[[noreturn]] void row_fail(std::size_t row, const std::string& what) {
  throw std::runtime_error("load_trace: row " + std::to_string(row) + ": " + what);
}

void check_header(const std::vector<std::string>& row) {
  if (row.size() != kColumns) {
    throw std::runtime_error("load_trace: expected 5 header columns");
  }
  for (size_t c = 0; c < kColumns; ++c) {
    if (row[c] != kHeader[c]) {
      throw std::runtime_error("load_trace: unexpected header column '" + row[c] + "'");
    }
  }
}

/// True when `row` is the blank row a trailing newline parses into.
bool blank_row(const std::vector<std::string>& row) {
  return row.size() == 1 && row[0].empty();
}

/// Validates one data row and converts it to a Task; the single validator
/// behind both load_trace and TraceReader, so the streamed and materialized
/// paths accept byte-identical inputs and fail with identical row-numbered
/// messages. `last_arrival` carries the cross-row sortedness state (skipped
/// when the caller intends to sort afterwards).
Task parse_trace_row(const std::vector<std::string>& row, std::size_t row_number,
                     cluster::Time& last_arrival, bool enforce_sorted) {
  if (row.size() != kColumns) row_fail(row_number, "wrong column count");
  double fields[kColumns];
  for (size_t c = 0; c < kColumns; ++c) {
    if (!util::parse_double(row[c], fields[c]) || !std::isfinite(fields[c])) {
      // !(x <= 0) range checks let NaN through; reject non-finite here.
      row_fail(row_number, std::string(kHeader[c]) + ": bad value '" + row[c] + "'");
    }
  }
  // id and user_nodes feed integer casts: require exact non-negative
  // integers within double precision (a -1 id would otherwise cast to
  // the kNoTask sentinel and silently corrupt task identity).
  constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53
  for (size_t c : {std::size_t{0}, std::size_t{4}}) {
    if (fields[c] < 0.0 || fields[c] != std::floor(fields[c]) ||
        fields[c] >= kMaxExactInteger) {
      row_fail(row_number,
               std::string(kHeader[c]) + " must be a non-negative integer, got " + row[c]);
    }
  }
  if (fields[1] < 0.0) row_fail(row_number, "negative arrival " + row[1]);
  if (!(fields[2] > 0.0)) row_fail(row_number, "sigma must be > 0, got " + row[2]);
  if (!(fields[3] > 0.0)) row_fail(row_number, "deadline must be > 0, got " + row[3]);
  if (enforce_sorted && fields[1] < last_arrival) {
    row_fail(row_number, "arrival " + row[1] + " decreases (the simulator assumes a " +
                             "sorted trace; pass sort_arrivals to reorder instead)");
  }
  last_arrival = fields[1];
  Task task;
  task.id = static_cast<cluster::TaskId>(fields[0]);
  task.spec.arrival = fields[1];
  task.spec.sigma = fields[2];
  task.spec.rel_deadline = fields[3];
  task.user_nodes = static_cast<std::size_t>(fields[4]);
  return task;
}

}  // namespace

std::vector<Task> load_trace(std::istream& in, bool sort_arrivals) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto rows = util::parse_csv(buffer.str());
  if (rows.empty()) throw std::runtime_error("load_trace: empty trace");
  check_header(rows[0]);

  std::vector<Task> tasks;
  tasks.reserve(rows.size() - 1);
  cluster::Time last_arrival = 0.0;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (blank_row(rows[r])) continue;  // trailing blank line
    tasks.push_back(parse_trace_row(rows[r], r, last_arrival, !sort_arrivals));
  }
  if (sort_arrivals) {
    // Stable: simultaneous arrivals keep their file order.
    std::stable_sort(tasks.begin(), tasks.end(), [](const Task& a, const Task& b) {
      return a.arrival() < b.arrival();
    });
  }
  return tasks;
}

std::vector<Task> load_trace_file(const std::string& path, bool sort_arrivals) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_file: cannot open " + path);
  return load_trace(in, sort_arrivals);
}

TraceReader::TraceReader(std::istream& in, Options options) : in_(&in), options_(options) {
  if (options_.sort_arrivals) throw StreamedSortError();
  if (options_.chunk_tasks == 0) {
    throw std::invalid_argument("TraceReader: chunk_tasks must be > 0");
  }
  if (!std::getline(*in_, line_)) throw std::runtime_error("load_trace: empty trace");
  if (!line_.empty() && line_.back() == '\r') line_.pop_back();
  const auto header = util::parse_csv(line_);
  check_header(header.empty() ? std::vector<std::string>{} : header[0]);
}

TraceReader::TraceReader(const std::string& path, Options options)
    : file_(path), in_(&file_), options_(options) {
  if (!file_) throw std::runtime_error("load_trace_file: cannot open " + path);
  if (options_.sort_arrivals) throw StreamedSortError();
  if (options_.chunk_tasks == 0) {
    throw std::invalid_argument("TraceReader: chunk_tasks must be > 0");
  }
  if (!std::getline(*in_, line_)) throw std::runtime_error("load_trace: empty trace");
  if (!line_.empty() && line_.back() == '\r') line_.pop_back();
  const auto header = util::parse_csv(line_);
  check_header(header.empty() ? std::vector<std::string>{} : header[0]);
}

bool TraceReader::next_chunk(std::vector<Task>& out) {
  out.clear();
  while (out.size() < options_.chunk_tasks && std::getline(*in_, line_)) {
    ++row_;
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    if (line_.empty()) continue;  // blank line: consumes a row number, no task
    const auto rows = util::parse_csv(line_);
    if (rows.empty() || blank_row(rows[0])) continue;
    out.push_back(parse_trace_row(rows[0], row_, last_arrival_, /*enforce_sorted=*/true));
    ++tasks_read_;
  }
  return !out.empty();
}

}  // namespace rtdls::workload
