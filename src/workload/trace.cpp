#include "workload/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace rtdls::workload {

namespace {
const char* const kHeader[] = {"id", "arrival", "sigma", "deadline", "user_nodes"};
constexpr size_t kColumns = 5;
}  // namespace

void save_trace(std::ostream& out, const std::vector<Task>& tasks) {
  util::CsvWriter writer(out);
  writer.write_row({kHeader[0], kHeader[1], kHeader[2], kHeader[3], kHeader[4]});
  for (const Task& task : tasks) {
    writer.write_numeric_row({static_cast<double>(task.id), task.arrival(), task.sigma(),
                              task.rel_deadline(), static_cast<double>(task.user_nodes)});
  }
}

void save_trace_file(const std::string& path, const std::vector<Task>& tasks) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace_file: cannot open " + path);
  save_trace(out, tasks);
  if (!out) throw std::runtime_error("save_trace_file: write failed for " + path);
}

std::vector<Task> load_trace(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto rows = util::parse_csv(buffer.str());
  if (rows.empty()) throw std::runtime_error("load_trace: empty trace");
  if (rows[0].size() != kColumns) {
    throw std::runtime_error("load_trace: expected 5 header columns");
  }
  for (size_t c = 0; c < kColumns; ++c) {
    if (rows[0][c] != kHeader[c]) {
      throw std::runtime_error("load_trace: unexpected header column '" + rows[0][c] + "'");
    }
  }

  std::vector<Task> tasks;
  tasks.reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() == 1 && row[0].empty()) continue;  // trailing blank line
    if (row.size() != kColumns) {
      throw std::runtime_error("load_trace: row has wrong column count");
    }
    double fields[kColumns];
    for (size_t c = 0; c < kColumns; ++c) {
      if (!util::parse_double(row[c], fields[c])) {
        throw std::runtime_error("load_trace: non-numeric field '" + row[c] + "'");
      }
    }
    if (fields[1] < 0.0 || fields[2] <= 0.0 || fields[3] <= 0.0 || fields[4] < 0.0) {
      throw std::runtime_error("load_trace: out-of-range field values");
    }
    Task task;
    task.id = static_cast<cluster::TaskId>(fields[0]);
    task.spec.arrival = fields[1];
    task.spec.sigma = fields[2];
    task.spec.rel_deadline = fields[3];
    task.user_nodes = static_cast<std::size_t>(fields[4]);
    tasks.push_back(task);
  }
  return tasks;
}

std::vector<Task> load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_file: cannot open " + path);
  return load_trace(in);
}

}  // namespace rtdls::workload
