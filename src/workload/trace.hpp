// Task-trace persistence: save a generated workload to CSV and load it back,
// so experiments can be replayed bit-exactly (examples/trace_replay) and
// regression traces can be checked into a repository.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/task.hpp"

namespace rtdls::workload {

/// Writes tasks as CSV with a header row: id,arrival,sigma,deadline,user_nodes.
void save_trace(std::ostream& out, const std::vector<Task>& tasks);

/// Convenience file overloads. Throws std::runtime_error on I/O failure.
void save_trace_file(const std::string& path, const std::vector<Task>& tasks);

/// Parses a trace written by save_trace. Throws std::runtime_error with the
/// offending data-row number on malformed input: wrong header, non-numeric
/// or non-finite fields (NaN/inf rejected explicitly - NaN slips through
/// naive range comparisons), sigma/deadline <= 0, negative arrival, or
/// arrivals that are not non-decreasing (the simulator assumes a sorted
/// trace; `sort_arrivals` opts into sorting instead of rejecting, with ties
/// kept in file order).
std::vector<Task> load_trace(std::istream& in, bool sort_arrivals = false);
std::vector<Task> load_trace_file(const std::string& path, bool sort_arrivals = false);

}  // namespace rtdls::workload
