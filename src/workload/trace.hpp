// Task-trace persistence: save a generated workload to CSV and load it back,
// so experiments can be replayed bit-exactly (examples/trace_replay) and
// regression traces can be checked into a repository.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/task.hpp"

namespace rtdls::workload {

/// Writes tasks as CSV with a header row: id,arrival,sigma,deadline,user_nodes.
void save_trace(std::ostream& out, const std::vector<Task>& tasks);

/// Convenience file overloads. Throws std::runtime_error on I/O failure.
void save_trace_file(const std::string& path, const std::vector<Task>& tasks);

/// Parses a trace written by save_trace. Throws std::runtime_error on
/// malformed input (wrong header, non-numeric fields, negative values).
std::vector<Task> load_trace(std::istream& in);
std::vector<Task> load_trace_file(const std::string& path);

}  // namespace rtdls::workload
