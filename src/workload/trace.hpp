// Task-trace persistence: save a generated workload to CSV and load it back,
// so experiments can be replayed bit-exactly (examples/trace_replay) and
// regression traces can be checked into a repository.
//
// Two readers share one row validator:
//  * load_trace materializes the whole file - convenient for tests and
//    small replays, O(file) memory;
//  * TraceReader streams the same format in bounded-size chunks for the
//    million-task replay path (sim::StreamingTaskSource), O(chunk) memory,
//    with identical per-row validation and absolute row numbers in errors.
#pragma once

#include <fstream>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/task.hpp"

namespace rtdls::workload {

/// Writes tasks as CSV with a header row: id,arrival,sigma,deadline,user_nodes.
void save_trace(std::ostream& out, const std::vector<Task>& tasks);

/// Convenience file overloads. Throws std::runtime_error on I/O failure.
void save_trace_file(const std::string& path, const std::vector<Task>& tasks);

/// Parses a trace written by save_trace. Throws std::runtime_error with the
/// offending data-row number on malformed input: wrong header, non-numeric
/// or non-finite fields (NaN/inf rejected explicitly - NaN slips through
/// naive range comparisons), sigma/deadline <= 0, negative arrival, or
/// arrivals that are not non-decreasing (the simulator assumes a sorted
/// trace; `sort_arrivals` opts into sorting instead of rejecting, with ties
/// kept in file order).
std::vector<Task> load_trace(std::istream& in, bool sort_arrivals = false);
std::vector<Task> load_trace_file(const std::string& path, bool sort_arrivals = false);

/// Thrown when a streamed reader is asked to sort arrivals: sorting needs
/// the full trace in memory, which is exactly what streaming avoids. Either
/// drop the sort request or pre-sort the file through the in-memory path
/// (load_trace + save_trace, or `rtdls_cli simulate --sort-arrivals`
/// without --stream).
class StreamedSortError : public std::invalid_argument {
 public:
  StreamedSortError()
      : std::invalid_argument(
            "sort-arrivals requires the full trace in memory and cannot be "
            "combined with streamed ingestion; pre-sort the trace instead") {}
};

/// Bounded-memory chunked reader over the save_trace CSV format.
///
/// The header is validated at construction; next_chunk() then delivers up
/// to Options::chunk_tasks validated tasks at a time, reusing the caller's
/// vector capacity, so peak memory is O(chunk) regardless of trace length.
/// Row validation is byte-identical to load_trace (same parser, same
/// checks) and error messages carry the same absolute 1-based data-row
/// number even when the offending row sits chunks deep in the file.
/// Arrivals must be non-decreasing across the whole stream - a streamed
/// reader cannot sort, so Options::sort_arrivals throws StreamedSortError
/// at construction (see the class comment above).
class TraceReader {
 public:
  struct Options {
    /// Rows materialized per next_chunk call (the replay pipeline's peak
    /// in-flight task storage, together with still-referenced old chunks).
    std::size_t chunk_tasks = 65536;
    /// Unsupported on streamed input; true throws StreamedSortError.
    bool sort_arrivals = false;
  };

  /// Reads from a borrowed stream (must outlive the reader).
  TraceReader(std::istream& in, Options options);
  explicit TraceReader(std::istream& in) : TraceReader(in, Options{}) {}

  /// Opens and owns a file stream. Throws std::runtime_error if the file
  /// cannot be opened.
  TraceReader(const std::string& path, Options options);
  explicit TraceReader(const std::string& path) : TraceReader(path, Options{}) {}

  /// Fills `out` (cleared first, capacity reused) with the next chunk.
  /// Returns false - with `out` empty - once the trace is exhausted.
  bool next_chunk(std::vector<Task>& out);

  /// Data rows delivered so far (blank lines excluded).
  std::size_t tasks_read() const { return tasks_read_; }

 private:
  std::ifstream file_;  ///< engaged by the path constructor
  std::istream* in_;
  Options options_;
  std::size_t row_ = 0;         ///< physical data-row counter (1-based in errors)
  std::size_t tasks_read_ = 0;
  cluster::Time last_arrival_ = 0.0;
  std::string line_;            ///< getline scratch, reused across rows
};

}  // namespace rtdls::workload
