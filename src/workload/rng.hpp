// Deterministic, splittable pseudo-random number generation.
//
// The paper's evaluation averages ten simulation runs per point where each
// run uses "different random numbers" but the same parameters, and compares
// algorithms on the same workloads. That requires:
//  * reproducibility across platforms (so we implement xoshiro256** + the
//    splitmix64 seeder ourselves instead of relying on unspecified
//    std::random distribution internals), and
//  * cheap independent streams (one per run index) so parallel runs don't
//    share state.
#pragma once

#include <cstdint>

namespace rtdls::workload {

/// splitmix64: seed expander recommended by the xoshiro authors.
/// Advances `state` and returns the next 64-bit output.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** 1.0 (Blackman & Vigna) - fast, 256-bit state, passes BigCrush.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running splitmix64 on `seed`.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent stream for (seed, stream). Used so run `i` of a
  /// sweep gets its own deterministic generator regardless of execution
  /// order or thread assignment.
  static Xoshiro256StarStar for_stream(std::uint64_t seed, std::uint64_t stream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next 64 random bits.
  result_type operator()();

  /// The long-jump function: advances the state by 2^192 steps, equivalent
  /// to that many operator() calls. Provides non-overlapping substreams.
  void long_jump();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

 private:
  std::uint64_t s_[4];
};

}  // namespace rtdls::workload
