#include "workload/task.hpp"

// Header-only type; this translation unit anchors the target.
