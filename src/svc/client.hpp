// Blocking rtdlsd client over the Unix-domain socket protocol.
//
// One Client owns one connection; requests are issued one at a time (the
// protocol itself allows pipelining, but every current caller - the CLI
// subcommands and the storm bench's per-thread clients - is call/response).
// Server-side failures arrive as ErrorReply frames and surface as
// ServiceError with the machine-readable ErrorCode; transport failures
// (connect/send/recv, response deadline) surface as ServiceError{kIo} or
// {kTimeout}.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "svc/protocol.hpp"

namespace rtdls::svc {

class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

class Client {
 public:
  /// Connects immediately; throws ServiceError{kIo} when the daemon is not
  /// listening. `timeout_ms` bounds each wait for a reply.
  explicit Client(const std::string& socket_path, int timeout_ms = 5000);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  AdmitReply admit(const AdmitRequest& request);
  CommitReply commit(std::uint32_t shard, cluster::TaskId task);
  CancelReply cancel(std::uint32_t shard, cluster::TaskId task);
  StatusReply status();
  /// v1.1: Prometheus text scrape of the daemon's metrics registries.
  MetricsReply metrics();
  SnapshotReply snapshot(const std::string& path);
  /// Fire a shutdown request and wait for the acknowledgment.
  void shutdown();
  DebugSleepReply debug_sleep(std::uint32_t shard, std::uint32_t millis);

 private:
  /// Sends `request` framed as `type` and waits for `reply_type` with the
  /// matching request id; an ErrorReply throws ServiceError.
  template <typename Reply, typename Request>
  Reply call(MsgType type, MsgType reply_type, const Request& request);
  Frame round_trip(MsgType type, const std::vector<std::uint8_t>& payload);

  int fd_ = -1;
  int timeout_ms_ = 5000;
  std::uint64_t next_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace rtdls::svc
