#include "svc/protocol.hpp"

namespace rtdls::svc {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad-frame";
    case ErrorCode::kBadPayload: return "bad-payload";
    case ErrorCode::kUnknownType: return "unknown-type";
    case ErrorCode::kUnknownShard: return "unknown-shard";
    case ErrorCode::kUnknownTask: return "unknown-task";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(MsgType type, std::uint64_t request_id,
                                       const std::vector<std::uint8_t>& payload,
                                       std::uint16_t version) {
  if (payload.size() > kMaxPayload) throw util::WireError("frame: payload exceeds kMaxPayload");
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  util::WireWriter header(frame);
  header.u32(kFrameMagic);
  header.u16(version);
  header.u16(static_cast<std::uint16_t>(type));
  header.u64(request_id);
  header.u32(static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  // Drop consumed prefix before growing; keeps the buffer bounded by one
  // frame plus whatever the peer has sent ahead.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (!error_.empty()) return Status::kError;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return Status::kNeedMore;
  util::WireReader header(buffer_.data() + consumed_, kFrameHeaderSize);
  const std::uint32_t magic = header.u32();
  if (magic != kFrameMagic) {
    error_ = "frame: bad magic";
    return Status::kError;
  }
  const std::uint16_t version = header.u16();
  if (version != kProtocolVersionV10 && version != kProtocolVersion) {
    error_ = "frame: unsupported protocol version " + std::to_string(version);
    return Status::kError;
  }
  const std::uint16_t raw_type = header.u16();
  const std::uint64_t request_id = header.u64();
  const std::uint32_t payload_size = header.u32();
  if (payload_size > kMaxPayload) {
    // Rejected before buffering: the declared length never drives an
    // allocation, so a hostile length prefix cannot balloon memory.
    error_ = "frame: payload size " + std::to_string(payload_size) + " exceeds cap";
    return Status::kError;
  }
  if (available < kFrameHeaderSize + payload_size) return Status::kNeedMore;
  // An unknown type is preserved raw and handled at dispatch (kUnknownType
  // error reply) - the frame itself parsed, so the stream survives.
  out.type = static_cast<MsgType>(raw_type);
  out.request_id = request_id;
  out.version = version;
  const std::uint8_t* payload = buffer_.data() + consumed_ + kFrameHeaderSize;
  out.payload.assign(payload, payload + payload_size);
  consumed_ += kFrameHeaderSize + payload_size;
  return Status::kFrame;
}

// --- TaskRecord -------------------------------------------------------------

workload::Task TaskRecord::to_task() const {
  workload::Task task;
  task.id = id;
  task.spec.arrival = arrival;
  task.spec.sigma = sigma;
  task.spec.rel_deadline = rel_deadline;
  task.user_nodes = static_cast<std::size_t>(user_nodes);
  return task;
}

TaskRecord TaskRecord::from_task(const workload::Task& task) {
  TaskRecord rec;
  rec.id = task.id;
  rec.arrival = task.arrival();
  rec.sigma = task.sigma();
  rec.rel_deadline = task.rel_deadline();
  rec.user_nodes = task.user_nodes;
  return rec;
}

void TaskRecord::encode(util::WireWriter& out) const {
  out.u64(id);
  out.f64(arrival);
  out.f64(sigma);
  out.f64(rel_deadline);
  out.u64(user_nodes);
}

TaskRecord TaskRecord::decode(util::WireReader& in) {
  TaskRecord rec;
  rec.id = in.u64();
  rec.arrival = in.f64();
  rec.sigma = in.f64();
  rec.rel_deadline = in.f64();
  rec.user_nodes = in.u64();
  return rec;
}

// --- Admit ------------------------------------------------------------------

void AdmitRequest::encode(util::WireWriter& out) const {
  out.u32(shard);
  out.u32(deadline_ms);
  task.encode(out);
}

AdmitRequest AdmitRequest::decode(util::WireReader& in) {
  AdmitRequest req;
  req.shard = in.u32();
  req.deadline_ms = in.u32();
  req.task = TaskRecord::decode(in);
  in.expect_done();
  return req;
}

void AdmitReply::encode(util::WireWriter& out) const {
  out.u8(accepted ? 1 : 0);
  out.u8(reason);
  out.u64(blocking_task);
  out.u64(decision_seq);
  out.f64(est_completion);
  out.u64(nodes);
  out.u64(waiting);
}

AdmitReply AdmitReply::decode(util::WireReader& in) {
  AdmitReply reply;
  reply.accepted = in.u8() != 0;
  reply.reason = in.u8();
  reply.blocking_task = in.u64();
  reply.decision_seq = in.u64();
  reply.est_completion = in.f64();
  reply.nodes = in.u64();
  reply.waiting = in.u64();
  in.expect_done();
  return reply;
}

// --- Commit -----------------------------------------------------------------

void CommitRequest::encode(util::WireWriter& out) const {
  out.u32(shard);
  out.u64(task);
}

CommitRequest CommitRequest::decode(util::WireReader& in) {
  CommitRequest req;
  req.shard = in.u32();
  req.task = in.u64();
  in.expect_done();
  return req;
}

void CommitReply::encode(util::WireWriter& out) const {
  out.u8(committed ? 1 : 0);
  out.f64(committed_at);
  out.u64(also_committed);
}

CommitReply CommitReply::decode(util::WireReader& in) {
  CommitReply reply;
  reply.committed = in.u8() != 0;
  reply.committed_at = in.f64();
  reply.also_committed = in.u64();
  in.expect_done();
  return reply;
}

// --- Cancel -----------------------------------------------------------------

void CancelRequest::encode(util::WireWriter& out) const {
  out.u32(shard);
  out.u64(task);
}

CancelRequest CancelRequest::decode(util::WireReader& in) {
  CancelRequest req;
  req.shard = in.u32();
  req.task = in.u64();
  in.expect_done();
  return req;
}

void CancelReply::encode(util::WireWriter& out) const { out.u8(cancelled ? 1 : 0); }

CancelReply CancelReply::decode(util::WireReader& in) {
  CancelReply reply;
  reply.cancelled = in.u8() != 0;
  in.expect_done();
  return reply;
}

// --- Status -----------------------------------------------------------------

void StatusRequest::encode(util::WireWriter&) const {}

StatusRequest StatusRequest::decode(util::WireReader& in) {
  in.expect_done();
  return StatusRequest{};
}

void ShardStatus::encode(util::WireWriter& out) const {
  out.u32(shard);
  out.f64(now);
  out.u64(waiting);
  out.u64(admits);
  out.u64(accepted);
  out.u64(rejected);
  out.u64(committed);
  out.u64(cancelled);
  out.u64(session_bytes);
  out.u64(session_dense_bytes);
  out.u64(peak_session_bytes);
}

ShardStatus ShardStatus::decode(util::WireReader& in) {
  ShardStatus s;
  s.shard = in.u32();
  s.now = in.f64();
  s.waiting = in.u64();
  s.admits = in.u64();
  s.accepted = in.u64();
  s.rejected = in.u64();
  s.committed = in.u64();
  s.cancelled = in.u64();
  s.session_bytes = in.u64();
  s.session_dense_bytes = in.u64();
  s.peak_session_bytes = in.u64();
  return s;
}

void ShardLatency::encode(util::WireWriter& out) const {
  out.u64(count);
  out.f64(p50_us);
  out.f64(p90_us);
  out.f64(p99_us);
  out.f64(max_us);
}

ShardLatency ShardLatency::decode(util::WireReader& in) {
  ShardLatency l;
  l.count = in.u64();
  l.p50_us = in.f64();
  l.p90_us = in.f64();
  l.p99_us = in.f64();
  l.max_us = in.f64();
  return l;
}

void StatusReply::encode(util::WireWriter& out) const {
  out.string(build);
  out.string(algorithm);
  out.u64(node_count);
  out.u64(workers);
  out.u64(counters.connections);
  out.u64(counters.requests);
  out.u64(counters.admits);
  out.u64(counters.commits);
  out.u64(counters.cancels);
  out.u64(counters.status_queries);
  out.u64(counters.snapshots);
  out.u64(counters.errors);
  out.u64(counters.timeouts);
  out.u64(counters.restores);
  out.u32(static_cast<std::uint32_t>(shards.size()));
  for (const ShardStatus& s : shards) s.encode(out);
  if (extended) {
    // v1.1 suffix: everything above is byte-identical to a v1.0 reply, so
    // the extension is invisible to a client that stops at the shard array.
    out.u64(uptime_ms);
    out.u64(queue_depth);
    out.u32(static_cast<std::uint32_t>(shard_latency.size()));
    for (const ShardLatency& l : shard_latency) l.encode(out);
  }
}

StatusReply StatusReply::decode(util::WireReader& in) {
  StatusReply reply;
  reply.build = in.string();
  reply.algorithm = in.string();
  reply.node_count = in.u64();
  reply.workers = in.u64();
  reply.counters.connections = in.u64();
  reply.counters.requests = in.u64();
  reply.counters.admits = in.u64();
  reply.counters.commits = in.u64();
  reply.counters.cancels = in.u64();
  reply.counters.status_queries = in.u64();
  reply.counters.snapshots = in.u64();
  reply.counters.errors = in.u64();
  reply.counters.timeouts = in.u64();
  reply.counters.restores = in.u64();
  const std::uint32_t count = in.u32();
  // Each ShardStatus occupies a fixed 84 bytes; a count that implies more
  // bytes than remain is malformed, caught before reserving.
  if (static_cast<std::size_t>(count) * 84 > in.remaining()) {
    throw util::WireError("StatusReply: shard count exceeds payload");
  }
  reply.shards.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) reply.shards.push_back(ShardStatus::decode(in));
  if (in.remaining() > 0) {
    // v1.1 extension present.
    reply.extended = true;
    reply.uptime_ms = in.u64();
    reply.queue_depth = in.u64();
    const std::uint32_t lat_count = in.u32();
    // Each ShardLatency is a fixed 40 bytes; bound-check before reserving.
    if (static_cast<std::size_t>(lat_count) * 40 > in.remaining()) {
      throw util::WireError("StatusReply: latency count exceeds payload");
    }
    reply.shard_latency.reserve(lat_count);
    for (std::uint32_t i = 0; i < lat_count; ++i) {
      reply.shard_latency.push_back(ShardLatency::decode(in));
    }
  }
  in.expect_done();
  return reply;
}

// --- Metrics ----------------------------------------------------------------

void MetricsRequest::encode(util::WireWriter&) const {}

MetricsRequest MetricsRequest::decode(util::WireReader& in) {
  in.expect_done();
  return MetricsRequest{};
}

void MetricsReply::encode(util::WireWriter& out) const { out.string(text); }

MetricsReply MetricsReply::decode(util::WireReader& in) {
  MetricsReply reply;
  reply.text = in.string();
  in.expect_done();
  return reply;
}

// --- Snapshot ---------------------------------------------------------------

void SnapshotRequest::encode(util::WireWriter& out) const { out.string(path); }

SnapshotRequest SnapshotRequest::decode(util::WireReader& in) {
  SnapshotRequest req;
  req.path = in.string();
  in.expect_done();
  return req;
}

void SnapshotReply::encode(util::WireWriter& out) const {
  out.u64(shards);
  out.u64(bytes);
}

SnapshotReply SnapshotReply::decode(util::WireReader& in) {
  SnapshotReply reply;
  reply.shards = in.u64();
  reply.bytes = in.u64();
  in.expect_done();
  return reply;
}

// --- Shutdown / DebugSleep / Error ------------------------------------------

void ShutdownRequest::encode(util::WireWriter&) const {}

ShutdownRequest ShutdownRequest::decode(util::WireReader& in) {
  in.expect_done();
  return ShutdownRequest{};
}

void ShutdownReply::encode(util::WireWriter&) const {}

ShutdownReply ShutdownReply::decode(util::WireReader& in) {
  in.expect_done();
  return ShutdownReply{};
}

void DebugSleepRequest::encode(util::WireWriter& out) const {
  out.u32(shard);
  out.u32(millis);
}

DebugSleepRequest DebugSleepRequest::decode(util::WireReader& in) {
  DebugSleepRequest req;
  req.shard = in.u32();
  req.millis = in.u32();
  in.expect_done();
  return req;
}

void DebugSleepReply::encode(util::WireWriter& out) const { out.u32(slept_ms); }

DebugSleepReply DebugSleepReply::decode(util::WireReader& in) {
  DebugSleepReply reply;
  reply.slept_ms = in.u32();
  in.expect_done();
  return reply;
}

void ErrorReply::encode(util::WireWriter& out) const {
  out.u16(static_cast<std::uint16_t>(code));
  out.string(message);
}

ErrorReply ErrorReply::decode(util::WireReader& in) {
  ErrorReply reply;
  reply.code = static_cast<ErrorCode>(in.u16());
  reply.message = in.string();
  in.expect_done();
  return reply;
}

}  // namespace rtdls::svc
