#include "svc/shard.hpp"

#include <algorithm>
#include <limits>

#include "sched/plan_io.hpp"

namespace rtdls::svc {

namespace {

template <typename Reply>
std::vector<std::uint8_t> encode_reply(const Reply& reply) {
  util::WireWriter writer;
  reply.encode(writer);
  return writer.take();
}

}  // namespace

AdmissionShard::AdmissionShard(const std::string& algorithm_name, const ShardConfig& config)
    : config_(config),
      algorithm_(sched::make_algorithm(algorithm_name)),
      controller_(algorithm_.policy, algorithm_.rule.get()),
      cluster_(config.params) {
  if (algorithm_.rule->uses_calendar()) {
    calendar_ = std::make_unique<cluster::NodeCalendar>(config.params.node_count);
  }
}

std::size_t AdmissionShard::advance_to(cluster::Time t) {
  std::size_t committed = 0;
  for (;;) {
    // Earliest due commit, ties broken by queue position - the order the
    // simulator's event heap would pop them in.
    std::size_t best = waiting_.size();
    cluster::Time best_at = std::numeric_limits<cluster::Time>::infinity();
    for (std::size_t i = 0; i < waiting_.size(); ++i) {
      if (waiting_[i].commit_at <= t && waiting_[i].commit_at < best_at) {
        best = i;
        best_at = waiting_[i].commit_at;
      }
    }
    if (best == waiting_.size()) break;
    commit_entry(best);
    ++committed;
  }
  if (t > now_) now_ = t;
  return committed;
}

void AdmissionShard::commit_entry(std::size_t index) {
  WaitingEntry entry = std::move(waiting_[index]);
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(index));
  const cluster::Time at = entry.commit_at;
  if (at > now_) now_ = at;

  const sched::TaskPlan& plan = entry.plan;
  if (calendar_) {
    for (std::size_t i = 0; i < plan.nodes; ++i) {
      calendar_->reserve(plan.node_ids[i], plan.reserve_from[i], plan.node_release[i]);
    }
  } else if (!plan.node_ids.empty()) {
    // Heterogeneous plan: the partition was computed for exactly these
    // nodes' speeds; commit them directly.
    for (std::size_t i = 0; i < plan.nodes; ++i) {
      cluster_.commit(plan.node_ids[i], entry.task->id, plan.available[i],
                      plan.reserve_from[i], plan.node_release[i]);
    }
  } else {
    // Map the plan's sorted slots onto the n earliest-free concrete nodes.
    cluster_.earliest_free_nodes_into(at, plan.nodes, ids_scratch_);
    for (std::size_t i = 0; i < plan.nodes; ++i) {
      cluster_.commit(ids_scratch_[i], entry.task->id, plan.available[i],
                      plan.reserve_from[i], plan.node_release[i]);
    }
  }

  if (!calendar_) {
    // Estimate-release commit: the committed reservations equal the plan's
    // releases, so the warm session can advance instead of rebuilding.
    controller_.on_commit(entry.task, entry.plan, cluster_.version());
  } else {
    controller_.invalidate();
  }
  ++committed_;
  // The session never dereferences consumed-prefix task pointers, so the
  // committed task's storage can go now.
  tasks_.erase(entry.task->id);
}

void AdmissionShard::adopt_schedule(std::size_t reused_prefix,
                                    std::vector<sched::ScheduledTask>& schedule) {
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(reused_prefix),
                 waiting_.end());
  waiting_.reserve(reused_prefix + schedule.size());
  for (sched::ScheduledTask& scheduled : schedule) {
    WaitingEntry entry;
    entry.task = scheduled.task;
    entry.plan = std::move(scheduled.plan);
    entry.commit_at = std::max(entry.plan.commit_time(), now_);
    waiting_.push_back(std::move(entry));
  }
}

AdmitReply AdmissionShard::admit(const TaskRecord& record) {
  ++admits_;
  if (tasks_.count(record.id) != 0) {
    throw ShardError(ErrorCode::kUnknownTask,
                     "task " + std::to_string(record.id) + " is already waiting");
  }
  advance_to(std::max(record.arrival, now_));

  auto owned = std::make_unique<workload::Task>(record.to_task());
  const workload::Task& task = *owned;
  tasks_.emplace(record.id, std::move(owned));

  waiting_view_.clear();
  for (const WaitingEntry& entry : waiting_) waiting_view_.push_back(entry.task);

  sched::AdmissionOutcome outcome;
  if (calendar_) {
    // Calendar mode: "release time" = end of the node's last committed
    // reservation (the BF rule itself plans against the gaps).
    free_scratch_.clear();
    free_scratch_.reserve(calendar_->size());
    for (cluster::NodeId id = 0; id < calendar_->size(); ++id) {
      const auto& busy = calendar_->busy(id);
      free_scratch_.push_back(std::max(now_, busy.empty() ? now_ : busy.back().end));
    }
    outcome = controller_.test(&task, waiting_view_, config_.params, free_scratch_, now_,
                               calendar_.get());
  } else if (config_.incremental) {
    outcome = controller_.test_incremental(task, waiting_view_, config_.params, cluster_, now_);
  } else if (config_.params.heterogeneous()) {
    cluster_.availability_with_ids_into(now_, free_scratch_, free_ids_scratch_);
    outcome = controller_.test(&task, waiting_view_, config_.params, free_scratch_, now_,
                               nullptr, free_ids_scratch_);
  } else {
    cluster_.availability_into(now_, free_scratch_);
    outcome = controller_.test(&task, waiting_view_, config_.params, free_scratch_, now_);
  }

  AdmitReply reply;
  reply.accepted = outcome.accepted;
  reply.decision_seq = seq_++;
  if (outcome.accepted) {
    ++accepted_;
    adopt_schedule(outcome.reused_prefix, outcome.schedule);
    for (const WaitingEntry& entry : waiting_) {
      if (entry.task->id == record.id) {
        reply.est_completion = entry.plan.est_completion;
        reply.nodes = entry.plan.nodes;
        break;
      }
    }
  } else {
    ++rejected_;
    reply.reason = static_cast<std::uint8_t>(outcome.reason);
    reply.blocking_task = outcome.blocking_task;
    tasks_.erase(record.id);
  }
  reply.waiting = waiting_.size();

  if (config_.record_ops) {
    OpRecord op;
    op.kind = OpRecord::Kind::kAdmit;
    op.record = record;
    op.reply = encode_reply(reply);
    ops_.push_back(std::move(op));
  }
  return reply;
}

CommitReply AdmissionShard::commit(cluster::TaskId id) {
  const auto it = std::find_if(waiting_.begin(), waiting_.end(),
                               [&](const WaitingEntry& w) { return w.task->id == id; });
  if (it == waiting_.end()) {
    throw ShardError(ErrorCode::kUnknownTask,
                     "task " + std::to_string(id) + " is not waiting");
  }
  const cluster::Time target = std::max(now_, it->commit_at);
  CommitReply reply;
  reply.committed = true;
  reply.committed_at = it->commit_at;
  // Committing this plan first commits everything due no later (commit-time
  // order) - a plan cannot start while an earlier-committing one is still
  // pending, or the availability it was planned against would be wrong.
  const std::size_t total = advance_to(target);
  reply.also_committed = total - 1;

  if (config_.record_ops) {
    OpRecord op;
    op.kind = OpRecord::Kind::kCommit;
    op.task = id;
    op.reply = encode_reply(reply);
    ops_.push_back(std::move(op));
  }
  return reply;
}

CancelReply AdmissionShard::cancel(cluster::TaskId id) {
  const auto it = std::find_if(waiting_.begin(), waiting_.end(),
                               [&](const WaitingEntry& w) { return w.task->id == id; });
  if (it == waiting_.end()) {
    throw ShardError(ErrorCode::kUnknownTask,
                     "task " + std::to_string(id) + " is not waiting");
  }
  // Load only shrinks, so every remaining plan stays feasible (the Figure-2
  // invariant); but the waiting set changed outside the session contract, so
  // the warm cache drops.
  waiting_.erase(it);
  controller_.invalidate();
  tasks_.erase(id);
  ++cancelled_;

  CancelReply reply;
  reply.cancelled = true;
  if (config_.record_ops) {
    OpRecord op;
    op.kind = OpRecord::Kind::kCancel;
    op.task = id;
    op.reply = encode_reply(reply);
    ops_.push_back(std::move(op));
  }
  return reply;
}

void AdmissionShard::fill_status(ShardStatus& out) const {
  out.now = now_;
  out.waiting = waiting_.size();
  out.admits = admits_;
  out.accepted = accepted_;
  out.rejected = rejected_;
  out.committed = committed_;
  out.cancelled = cancelled_;
  const auto memory = controller_.session_memory();
  out.session_bytes = memory.bytes;
  out.session_dense_bytes = memory.dense_equivalent_bytes;
  out.peak_session_bytes = controller_.peak_session_memory().bytes;
}

void AdmissionShard::snapshot_to(util::WireWriter& out) const {
  out.f64(now_);
  out.u64(seq_);
  out.u64(admits_);
  out.u64(accepted_);
  out.u64(rejected_);
  out.u64(committed_);
  out.u64(cancelled_);

  out.u32(static_cast<std::uint32_t>(cluster_.size()));
  for (cluster::NodeId id = 0; id < cluster_.size(); ++id) {
    const cluster::Node& node = cluster_.node(id);
    out.f64(node.free_at());
    out.f64(node.busy_time());
    out.f64(node.idle_gap_time());
    out.u64(node.commitments());
  }

  out.u8(calendar_ ? 1 : 0);
  if (calendar_) {
    for (cluster::NodeId id = 0; id < calendar_->size(); ++id) {
      const auto& busy = calendar_->busy(id);
      out.u32(static_cast<std::uint32_t>(busy.size()));
      for (const cluster::Interval& interval : busy) {
        out.f64(interval.start);
        out.f64(interval.end);
      }
    }
  }

  out.u32(static_cast<std::uint32_t>(waiting_.size()));
  for (const WaitingEntry& entry : waiting_) {
    sched::write_task(out, *entry.task);
    sched::write_plan(out, entry.plan);
    out.f64(entry.commit_at);
  }
}

void AdmissionShard::restore_from(util::WireReader& in) {
  now_ = in.f64();
  seq_ = in.u64();
  admits_ = in.u64();
  accepted_ = in.u64();
  rejected_ = in.u64();
  committed_ = in.u64();
  cancelled_ = in.u64();

  const std::uint32_t nodes = in.u32();
  if (nodes != cluster_.size()) {
    throw std::runtime_error("shard restore: snapshot has " + std::to_string(nodes) +
                             " nodes, shard has " + std::to_string(cluster_.size()));
  }
  for (cluster::NodeId id = 0; id < nodes; ++id) {
    const cluster::Time free_at = in.f64();
    const cluster::Time busy_time = in.f64();
    const cluster::Time idle_gap = in.f64();
    const std::uint64_t commitments = in.u64();
    cluster_.restore_node(id, free_at, busy_time, idle_gap,
                          static_cast<std::size_t>(commitments));
  }

  const bool has_calendar = in.u8() != 0;
  if (has_calendar != static_cast<bool>(calendar_)) {
    throw std::runtime_error("shard restore: calendar presence mismatch");
  }
  if (calendar_) {
    calendar_->clear();
    for (cluster::NodeId id = 0; id < calendar_->size(); ++id) {
      const std::uint32_t count = in.u32();
      for (std::uint32_t i = 0; i < count; ++i) {
        const cluster::Time start = in.f64();
        const cluster::Time end = in.f64();
        calendar_->reserve(id, start, end);  // throws on overlap: corrupt snapshot
      }
    }
  }

  tasks_.clear();
  waiting_.clear();
  const std::uint32_t count = in.u32();
  waiting_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto task = std::make_unique<workload::Task>(sched::read_task(in));
    WaitingEntry entry;
    entry.plan = sched::read_plan(in);
    entry.commit_at = in.f64();
    if (entry.plan.task != task->id) {
      throw std::runtime_error("shard restore: plan/task id mismatch");
    }
    entry.task = task.get();
    if (!tasks_.emplace(task->id, std::move(task)).second) {
      throw std::runtime_error("shard restore: duplicate waiting task id");
    }
    waiting_.push_back(std::move(entry));
  }
  // The warm session rebuilds on the first admit - bit-identical outcomes by
  // the admission contract (the cache only ever derives from these inputs).
  controller_.invalidate();
  controller_.reset_session_stats();
}

}  // namespace rtdls::svc
