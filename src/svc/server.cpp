#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "cluster/availability_index.hpp"
#include "obs/trace.hpp"
#include "svc/snapshot.hpp"
#include "util/build_info.hpp"

namespace rtdls::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// Request-latency histograms cover the whole per-request budget range:
/// microseconds up to the multi-second deadline ceiling.
constexpr obs::HistogramOptions kLatencyHistogram{1.0, 4, 128};

std::string shard_latency_name(std::size_t shard) {
  return "rtdls_shard" + std::to_string(shard) + "_request_latency_us";
}

/// Records one request's end-to-end wall time (decode through reply write)
/// into the daemon-wide histogram, and the per-shard one once the request
/// has resolved to a shard. Handles are value copies; the default-constructed
/// `shard` member no-ops until assigned.
struct RequestTimer {
  obs::Histogram global;
  obs::Histogram shard;
  Clock::time_point start = Clock::now();

  ~RequestTimer() {
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - start).count();
    global.record(us);
    shard.record(us);
  }
};

/// Deadline-bounded acquisition via try_lock polling. try_lock_until is the
/// natural call, but libstdc++ lowers it to pthread_mutex_clocklock, which
/// the libtsan shipped with GCC 12 does not intercept - every acquisition
/// then reports as "unlock of an unlocked mutex" under
/// RTDLS_SANITIZE=thread. Polling keeps the wall-clock deadline semantics on
/// interceptable primitives, identically in every build mode; the
/// uncontended path is still a single try_lock, and contended waiters poll
/// at 50us.
bool poll_lock_until(std::timed_mutex& mutex, Clock::time_point deadline) {
  for (;;) {
    if (mutex.try_lock()) return true;
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

/// Shard lock with a wall-clock acquisition deadline: the first half of the
/// per-request budget (the handler is the second half).
class DeadlineLock {
 public:
  DeadlineLock(std::timed_mutex& mutex, Clock::time_point deadline) : mutex_(mutex) {
    locked_ = poll_lock_until(mutex_, deadline);
  }
  ~DeadlineLock() {
    if (locked_) mutex_.unlock();
  }
  DeadlineLock(const DeadlineLock&) = delete;
  DeadlineLock& operator=(const DeadlineLock&) = delete;
  bool locked() const { return locked_; }

 private:
  std::timed_mutex& mutex_;
  bool locked_ = false;
};

}  // namespace

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {
  if (config_.socket_path.empty()) {
    throw std::invalid_argument("Daemon: socket_path is required");
  }
  if (!config_.restore_path.empty()) {
    // The snapshot is authoritative for everything that shapes decisions:
    // a restore under different params could not be bit-identical.
    Snapshot snapshot = read_snapshot(config_.restore_path);
    config_.algorithm = snapshot.meta.algorithm;
    config_.params = snapshot.meta.params;
    config_.incremental = snapshot.meta.incremental;
    config_.shards = snapshot.shard_blobs.size();
    ShardConfig shard_config{config_.params, config_.incremental, config_.record_ops};
    shards_.reserve(config_.shards);
    for (const auto& blob : snapshot.shard_blobs) {
      auto slot = std::make_unique<ShardSlot>(config_.algorithm, shard_config);
      util::WireReader reader(blob);
      slot->shard.restore_from(reader);
      reader.expect_done();
      shards_.push_back(std::move(slot));
    }
    counters_.restores.store(shards_.size(), std::memory_order_relaxed);
  } else {
    if (config_.shards == 0) throw std::invalid_argument("Daemon: need at least one shard");
    ShardConfig shard_config{config_.params, config_.incremental, config_.record_ops};
    shards_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
      shards_.push_back(std::make_unique<ShardSlot>(config_.algorithm, shard_config));
    }
  }
  if (config_.workers == 0) throw std::invalid_argument("Daemon: need at least one worker");
  start_time_ = Clock::now();
  queue_depth_ = obs_.gauge("rtdls_daemon_queue_depth");
  request_latency_ = obs_.histogram("rtdls_daemon_request_latency_us", kLatencyHistogram);
  shard_latency_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard_latency_.push_back(obs_.histogram(shard_latency_name(i), kLatencyHistogram));
  }
}

std::uint64_t Daemon::uptime_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start_time_)
          .count());
}

Daemon::~Daemon() {
  try {
    stop();
  } catch (...) {
    // Destructor cleanup must not throw; a failed final snapshot is the
    // only throwing path and the explicit stop() caller gets that error.
  }
}

void Daemon::start() {
  if (started_) throw std::logic_error("Daemon::start: already started");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("Daemon: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::invalid_argument("Daemon: socket path too long: " + config_.socket_path);
  }
  std::strncpy(addr.sun_path, config_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("Daemon: cannot bind/listen on " + config_.socket_path);
  }
  started_ = true;
  accept_thread_ = std::thread(&Daemon::accept_loop, this);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back(&Daemon::worker_loop, this);
  }
}

void Daemon::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
}

void Daemon::stop() {
  if (stopped_) return;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (int fd : pending_fds_) ::close(fd);
    pending_fds_.clear();
    queue_depth_.set(0);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  stopped_ = true;
  if (started_ && !config_.snapshot_path.empty()) {
    // All threads are joined, so the generous deadline only guards against
    // a caller still holding a shard lock through shard()/shard_mutex().
    snapshot_to(config_.snapshot_path, Clock::now() + std::chrono::seconds(30));
  }
}

std::size_t Daemon::snapshot_to(const std::string& path, Clock::time_point deadline) {
  // All shard locks held together: the captured states form one consistent
  // point in time (a commit between per-shard captures would not).
  std::vector<std::unique_lock<std::timed_mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& slot : shards_) {
    if (!poll_lock_until(slot->shard_mutex, deadline)) {
      throw ShardError(ErrorCode::kTimeout, "snapshot: shard locks not acquired in time");
    }
    locks.emplace_back(slot->shard_mutex, std::adopt_lock);
  }
  std::vector<std::vector<std::uint8_t>> blobs;
  blobs.reserve(shards_.size());
  for (auto& slot : shards_) {
    util::WireWriter writer;
    slot->shard.snapshot_to(writer);
    blobs.push_back(writer.take());
  }
  SnapshotMeta meta{config_.algorithm, config_.params, config_.incremental};
  return write_snapshot(path, meta, blobs);
}

sim::ServiceCounters Daemon::counters() const {
  sim::ServiceCounters out;
  out.connections = counters_.connections.load(std::memory_order_relaxed);
  out.requests = counters_.requests.load(std::memory_order_relaxed);
  out.admits = counters_.admits.load(std::memory_order_relaxed);
  out.commits = counters_.commits.load(std::memory_order_relaxed);
  out.cancels = counters_.cancels.load(std::memory_order_relaxed);
  out.status_queries = counters_.status_queries.load(std::memory_order_relaxed);
  out.snapshots = counters_.snapshots.load(std::memory_order_relaxed);
  out.errors = counters_.errors.load(std::memory_order_relaxed);
  out.timeouts = counters_.timeouts.load(std::memory_order_relaxed);
  out.restores = counters_.restores.load(std::memory_order_relaxed);
  return out;
}

void Daemon::bump(std::atomic<std::size_t> AtomicCounters::* field, std::size_t by) {
  (counters_.*field).fetch_add(by, std::memory_order_relaxed);
}

void Daemon::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd entry{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&entry, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_fds_.push_back(fd);
      queue_depth_.set(static_cast<std::int64_t>(pending_fds_.size()));
    }
    queue_cv_.notify_one();
  }
}

void Daemon::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) || !pending_fds_.empty();
      });
      if (pending_fds_.empty()) return;  // stop requested, nothing queued
      fd = pending_fds_.front();
      pending_fds_.erase(pending_fds_.begin());
      queue_depth_.set(static_cast<std::int64_t>(pending_fds_.size()));
    }
    serve_connection(fd);
  }
}

void Daemon::serve_connection(int fd) {
  bump(&AtomicCounters::connections);
  FrameDecoder decoder;
  std::vector<std::uint8_t> buffer(64 * 1024);
  bool open = true;
  while (open && !stop_.load(std::memory_order_relaxed)) {
    pollfd entry{fd, POLLIN, 0};
    const int ready = ::poll(&entry, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // idle; re-check the stop flag
    const ssize_t received = ::recv(fd, buffer.data(), buffer.size(), 0);
    if (received <= 0) break;  // peer closed, or error
    decoder.feed(buffer.data(), static_cast<std::size_t>(received));
    Frame frame;
    while (open) {
      const FrameDecoder::Status status = decoder.next(frame);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        bump(&AtomicCounters::errors);
        // The frame header never parsed, so the peer's revision is unknown;
        // v1.0 frames are decodable by clients of either revision.
        send_error(fd, 0, kProtocolVersionV10, ErrorCode::kBadFrame, decoder.error());
        open = false;
        break;
      }
      bump(&AtomicCounters::requests);
      open = handle_frame(fd, frame);
    }
  }
  ::close(fd);
}

bool Daemon::handle_frame(int fd, const Frame& frame) {
  const std::uint64_t id = frame.request_id;
  const std::uint16_t ver = frame.version;
  if (stop_.load(std::memory_order_relaxed)) {
    bump(&AtomicCounters::errors);
    send_error(fd, id, ver, ErrorCode::kShuttingDown, "daemon is stopping");
    return false;
  }
  RequestTimer timer{request_latency_, {}};
  RTDLS_TRACE_SCOPE("svc.request", "svc");
  try {
    util::WireReader in(frame.payload);
    switch (frame.type) {
      case MsgType::kAdmitRequest: {
        RTDLS_TRACE_SCOPE("svc.admit", "svc");
        const AdmitRequest request = AdmitRequest::decode(in);
        bump(&AtomicCounters::admits);
        if (request.shard >= shards_.size()) {
          throw ShardError(ErrorCode::kUnknownShard,
                           "shard " + std::to_string(request.shard) + " out of range");
        }
        timer.shard = shard_latency_[request.shard];
        DeadlineLock lock(shards_[request.shard]->shard_mutex, deadline_for(request.deadline_ms));
        if (!lock.locked()) {
          throw ShardError(ErrorCode::kTimeout, "admit: shard busy past request deadline");
        }
        RTDLS_TRACE_INSTANT("svc.shard_locked", "svc");
        const AdmitReply reply = shards_[request.shard]->shard.admit(request.task);
        return send_all(fd, encode_message(MsgType::kAdmitReply, id, reply, ver));
      }
      case MsgType::kCommitRequest: {
        RTDLS_TRACE_SCOPE("svc.commit", "svc");
        const CommitRequest request = CommitRequest::decode(in);
        bump(&AtomicCounters::commits);
        if (request.shard >= shards_.size()) {
          throw ShardError(ErrorCode::kUnknownShard,
                           "shard " + std::to_string(request.shard) + " out of range");
        }
        timer.shard = shard_latency_[request.shard];
        DeadlineLock lock(shards_[request.shard]->shard_mutex, deadline_for(0));
        if (!lock.locked()) {
          throw ShardError(ErrorCode::kTimeout, "commit: shard busy past request deadline");
        }
        RTDLS_TRACE_INSTANT("svc.shard_locked", "svc");
        const CommitReply reply = shards_[request.shard]->shard.commit(request.task);
        return send_all(fd, encode_message(MsgType::kCommitReply, id, reply, ver));
      }
      case MsgType::kCancelRequest: {
        RTDLS_TRACE_SCOPE("svc.cancel", "svc");
        const CancelRequest request = CancelRequest::decode(in);
        bump(&AtomicCounters::cancels);
        if (request.shard >= shards_.size()) {
          throw ShardError(ErrorCode::kUnknownShard,
                           "shard " + std::to_string(request.shard) + " out of range");
        }
        timer.shard = shard_latency_[request.shard];
        DeadlineLock lock(shards_[request.shard]->shard_mutex, deadline_for(0));
        if (!lock.locked()) {
          throw ShardError(ErrorCode::kTimeout, "cancel: shard busy past request deadline");
        }
        RTDLS_TRACE_INSTANT("svc.shard_locked", "svc");
        const CancelReply reply = shards_[request.shard]->shard.cancel(request.task);
        return send_all(fd, encode_message(MsgType::kCancelReply, id, reply, ver));
      }
      case MsgType::kStatusRequest: {
        RTDLS_TRACE_SCOPE("svc.status", "svc");
        StatusRequest::decode(in);
        bump(&AtomicCounters::status_queries);
        StatusReply reply;
        // The availability-index backend rides along in the free-form build
        // string (a pure perf knob does not warrant a protocol revision).
        reply.build = util::build_description() + " index=" +
                      cluster::index_backend_name(cluster::resolve_index_backend(
                          config_.params.index_backend, config_.params.node_count));
        reply.algorithm = config_.algorithm;
        reply.node_count = config_.params.node_count;
        reply.workers = config_.workers;
        reply.counters = counters();
        reply.extended = ver != kProtocolVersionV10;
        if (reply.extended) {
          reply.uptime_ms = uptime_ms();
          {
            // Level-10 queue mutex, taken before any level-20 shard lock.
            std::lock_guard<std::mutex> lock(queue_mutex_);
            reply.queue_depth = pending_fds_.size();
          }
          reply.shard_latency.reserve(shards_.size());
          for (std::size_t i = 0; i < shards_.size(); ++i) {
            const obs::HistogramSample sample = obs_.histogram_sample(shard_latency_name(i));
            ShardLatency latency;
            latency.count = sample.count;
            latency.p50_us = sample.quantile(0.5);
            latency.p90_us = sample.quantile(0.9);
            latency.p99_us = sample.quantile(0.99);
            latency.max_us = sample.max;
            reply.shard_latency.push_back(latency);
          }
        }
        const Clock::time_point deadline = deadline_for(0);
        reply.shards.reserve(shards_.size());
        for (std::size_t i = 0; i < shards_.size(); ++i) {
          DeadlineLock lock(shards_[i]->shard_mutex, deadline);
          if (!lock.locked()) {
            throw ShardError(ErrorCode::kTimeout, "status: shard busy past request deadline");
          }
          ShardStatus status;
          status.shard = static_cast<std::uint32_t>(i);
          shards_[i]->shard.fill_status(status);
          reply.shards.push_back(status);
        }
        return send_all(fd, encode_message(MsgType::kStatusReply, id, reply, ver));
      }
      case MsgType::kMetricsRequest: {
        RTDLS_TRACE_SCOPE("svc.metrics", "svc");
        MetricsRequest::decode(in);
        bump(&AtomicCounters::status_queries);
        MetricsReply reply;
        // Service counters are rendered straight from the worker-shared
        // atomics (no second bookkeeping), then the daemon-local registry
        // (latencies, queue depth), then the process-global one
        // (simulator/planner/admission counters).
        obs::Snapshot service;
        const auto load = [](const std::atomic<std::size_t>& c) {
          return static_cast<std::uint64_t>(c.load(std::memory_order_relaxed));
        };
        service.counters = {
            {"rtdls_daemon_connections_total", load(counters_.connections)},
            {"rtdls_daemon_requests_total", load(counters_.requests)},
            {"rtdls_daemon_admits_total", load(counters_.admits)},
            {"rtdls_daemon_commits_total", load(counters_.commits)},
            {"rtdls_daemon_cancels_total", load(counters_.cancels)},
            {"rtdls_daemon_status_queries_total", load(counters_.status_queries)},
            {"rtdls_daemon_snapshots_total", load(counters_.snapshots)},
            {"rtdls_daemon_errors_total", load(counters_.errors)},
            {"rtdls_daemon_timeouts_total", load(counters_.timeouts)},
            {"rtdls_daemon_restores_total", load(counters_.restores)},
        };
        reply.text = obs::prometheus_text(service) + obs_.prometheus_text() +
                     obs::Registry::global().prometheus_text();
        return send_all(fd, encode_message(MsgType::kMetricsReply, id, reply, ver));
      }
      case MsgType::kSnapshotRequest: {
        RTDLS_TRACE_SCOPE("svc.snapshot", "svc");
        const SnapshotRequest request = SnapshotRequest::decode(in);
        bump(&AtomicCounters::snapshots);
        const std::string path =
            request.path.empty() ? config_.snapshot_path : request.path;
        if (path.empty()) {
          throw ShardError(ErrorCode::kBadPayload,
                           "snapshot: no path in request and no configured default");
        }
        std::size_t bytes = 0;
        try {
          bytes = snapshot_to(path, deadline_for(0));
        } catch (const std::runtime_error& error) {
          if (dynamic_cast<const ShardError*>(&error) != nullptr) throw;
          throw ShardError(ErrorCode::kIo, error.what());
        }
        SnapshotReply reply;
        reply.shards = shards_.size();
        reply.bytes = bytes;
        return send_all(fd, encode_message(MsgType::kSnapshotReply, id, reply, ver));
      }
      case MsgType::kShutdownRequest: {
        ShutdownRequest::decode(in);
        send_all(fd, encode_message(MsgType::kShutdownReply, id, ShutdownReply{}, ver));
        request_stop();
        return false;
      }
      case MsgType::kDebugSleepRequest: {
        const DebugSleepRequest request = DebugSleepRequest::decode(in);
        if (request.shard >= shards_.size()) {
          throw ShardError(ErrorCode::kUnknownShard,
                           "shard " + std::to_string(request.shard) + " out of range");
        }
        const Clock::time_point deadline = deadline_for(0);
        DeadlineLock lock(shards_[request.shard]->shard_mutex, deadline);
        if (!lock.locked()) {
          throw ShardError(ErrorCode::kTimeout, "debug-sleep: shard busy past request deadline");
        }
        // The "hung handler": hold the shard lock, but keep checking the
        // request deadline so the worker frees itself with kTimeout instead
        // of sleeping forever - the behavior the timeout tests assert.
        const Clock::time_point wake =
            Clock::now() + std::chrono::milliseconds(request.millis);
        while (Clock::now() < wake) {
          if (Clock::now() >= deadline) {
            throw ShardError(ErrorCode::kTimeout, "debug-sleep exceeded request deadline");
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        DebugSleepReply reply;
        reply.slept_ms = request.millis;
        return send_all(fd, encode_message(MsgType::kDebugSleepReply, id, reply, ver));
      }
      default:
        throw ShardError(ErrorCode::kUnknownType,
                         "unknown message type " +
                             std::to_string(static_cast<std::uint16_t>(frame.type)));
    }
  } catch (const ShardError& error) {
    bump(&AtomicCounters::errors);
    if (error.code() == ErrorCode::kTimeout) bump(&AtomicCounters::timeouts);
    send_error(fd, id, ver, error.code(), error.what());
    return true;
  } catch (const util::WireError& error) {
    bump(&AtomicCounters::errors);
    send_error(fd, id, ver, ErrorCode::kBadPayload, error.what());
    return true;
  } catch (const std::exception& error) {
    bump(&AtomicCounters::errors);
    send_error(fd, id, ver, ErrorCode::kInternal, error.what());
    return true;
  }
}

void Daemon::send_error(int fd, std::uint64_t request_id, std::uint16_t version,
                        ErrorCode code, const std::string& message) {
  ErrorReply reply;
  reply.code = code;
  reply.message = message;
  send_all(fd, encode_message(MsgType::kErrorReply, request_id, reply, version));
}

bool Daemon::send_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Clock::time_point Daemon::deadline_for(std::uint32_t override_ms) const {
  const std::uint32_t budget = override_ms != 0 ? override_ms : config_.default_deadline_ms;
  return Clock::now() + std::chrono::milliseconds(budget);
}

}  // namespace rtdls::svc
