#include "svc/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace rtdls::svc {

Client::Client(const std::string& socket_path, int timeout_ms) : timeout_ms_(timeout_ms) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw ServiceError(ErrorCode::kIo, "client: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd_);
    fd_ = -1;
    throw ServiceError(ErrorCode::kIo, "client: socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw ServiceError(ErrorCode::kIo, "client: cannot connect to " + socket_path);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::round_trip(MsgType type, const std::vector<std::uint8_t>& payload) {
  const std::uint64_t id = next_id_++;
  const std::vector<std::uint8_t> frame_bytes = encode_frame(type, id, payload);
  std::size_t sent = 0;
  while (sent < frame_bytes.size()) {
    const ssize_t n =
        ::send(fd_, frame_bytes.data() + sent, frame_bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ServiceError(ErrorCode::kIo, "client: send failed");
    }
    sent += static_cast<std::size_t>(n);
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms_);
  std::uint8_t buffer[4096];
  Frame frame;
  for (;;) {
    const FrameDecoder::Status status = decoder_.next(frame);
    if (status == FrameDecoder::Status::kError) {
      throw ServiceError(ErrorCode::kBadFrame, "client: " + decoder_.error());
    }
    if (status == FrameDecoder::Status::kFrame) {
      // Replies echo the request id; with call/response usage anything else
      // is a protocol violation, not a frame to skip.
      if (frame.request_id != id) {
        throw ServiceError(ErrorCode::kBadFrame, "client: reply id mismatch");
      }
      if (frame.type == MsgType::kErrorReply) {
        util::WireReader in(frame.payload);
        const ErrorReply error = ErrorReply::decode(in);
        throw ServiceError(error.code,
                           std::string(error_code_name(error.code)) + ": " + error.message);
      }
      return frame;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      throw ServiceError(ErrorCode::kTimeout, "client: no reply within timeout");
    }
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count() + 1);
    pollfd entry{fd_, POLLIN, 0};
    const int ready = ::poll(&entry, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw ServiceError(ErrorCode::kIo, "client: poll failed");
    }
    if (ready == 0) {
      throw ServiceError(ErrorCode::kTimeout, "client: no reply within timeout");
    }
    const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (received <= 0) {
      throw ServiceError(ErrorCode::kIo, "client: connection closed by daemon");
    }
    decoder_.feed(buffer, static_cast<std::size_t>(received));
  }
}

template <typename Reply, typename Request>
Reply Client::call(MsgType type, MsgType reply_type, const Request& request) {
  util::WireWriter writer;
  request.encode(writer);
  const Frame frame = round_trip(type, writer.take());
  if (frame.type != reply_type) {
    throw ServiceError(ErrorCode::kBadFrame, "client: unexpected reply type");
  }
  util::WireReader in(frame.payload);
  return Reply::decode(in);
}

AdmitReply Client::admit(const AdmitRequest& request) {
  return call<AdmitReply>(MsgType::kAdmitRequest, MsgType::kAdmitReply, request);
}

CommitReply Client::commit(std::uint32_t shard, cluster::TaskId task) {
  CommitRequest request;
  request.shard = shard;
  request.task = task;
  return call<CommitReply>(MsgType::kCommitRequest, MsgType::kCommitReply, request);
}

CancelReply Client::cancel(std::uint32_t shard, cluster::TaskId task) {
  CancelRequest request;
  request.shard = shard;
  request.task = task;
  return call<CancelReply>(MsgType::kCancelRequest, MsgType::kCancelReply, request);
}

StatusReply Client::status() {
  return call<StatusReply>(MsgType::kStatusRequest, MsgType::kStatusReply, StatusRequest{});
}

MetricsReply Client::metrics() {
  return call<MetricsReply>(MsgType::kMetricsRequest, MsgType::kMetricsReply, MetricsRequest{});
}

SnapshotReply Client::snapshot(const std::string& path) {
  SnapshotRequest request;
  request.path = path;
  return call<SnapshotReply>(MsgType::kSnapshotRequest, MsgType::kSnapshotReply, request);
}

void Client::shutdown() {
  call<ShutdownReply>(MsgType::kShutdownRequest, MsgType::kShutdownReply, ShutdownRequest{});
}

DebugSleepReply Client::debug_sleep(std::uint32_t shard, std::uint32_t millis) {
  DebugSleepRequest request;
  request.shard = shard;
  request.millis = millis;
  return call<DebugSleepReply>(MsgType::kDebugSleepRequest, MsgType::kDebugSleepReply, request);
}

}  // namespace rtdls::svc
