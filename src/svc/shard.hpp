// One admission shard: a warm, single-threaded admission-control session
// over its own cluster.
//
// The daemon partitions work by cluster - each shard owns an independent
// Cluster, a warm AdmissionController session, and a waiting queue, and is
// serialized by one mutex in the server layer (the shard itself is
// deliberately single-threaded: the controller and partition rules carry
// per-instance scratch). Shards never touch each other, so k shards give k-way
// request concurrency without any cross-shard coordination.
//
// Time model: the shard's clock `now()` only moves forward, driven by the
// requests themselves - an admit at effective arrival max(record.arrival,
// now) first advances the clock there, auto-committing every waiting plan
// whose commit instant has passed (in commit-time order, ties by queue
// position), exactly as the simulator's event loop would. That makes a
// shard's behavior a pure function of its request sequence, which is what
// the op log records and the concurrent-vs-serial differential test and the
// snapshot bit-identity test both replay.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/calendar.hpp"
#include "cluster/cluster.hpp"
#include "sched/admission.hpp"
#include "sched/registry.hpp"
#include "svc/protocol.hpp"

namespace rtdls::svc {

/// A shard-level request failure the server maps onto an ErrorReply.
class ShardError : public std::runtime_error {
 public:
  ShardError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

struct ShardConfig {
  cluster::ClusterParams params;
  /// Warm-session admission for non-calendar rules (bit-identical to the
  /// stateless test by contract); calendar rules always use test().
  bool incremental = true;
  /// Record every operation and its encoded reply (the differential tests'
  /// evidence). Off by default: a long-lived daemon must not grow without
  /// bound.
  bool record_ops = false;
};

/// One logged operation: what came in, what went out (encoded reply
/// payload). Replaying the ops of a shard in logged order on a fresh shard
/// reproduces the reply bytes exactly.
struct OpRecord {
  enum class Kind : std::uint8_t { kAdmit, kCommit, kCancel };
  Kind kind = Kind::kAdmit;
  TaskRecord record;                     ///< admit: the task as received
  cluster::TaskId task = cluster::kNoTask;  ///< commit/cancel target
  std::vector<std::uint8_t> reply;       ///< encoded typed reply payload
};

class AdmissionShard {
 public:
  AdmissionShard(const std::string& algorithm_name, const ShardConfig& config);

  const std::string& algorithm_name() const { return algorithm_.name; }
  cluster::Time now() const { return now_; }
  std::size_t waiting() const { return waiting_.size(); }

  /// Runs the Figure-2 admission test for `record` at effective arrival
  /// max(record.arrival, now()), advancing the clock (and auto-committing
  /// due plans) first. Throws ShardError{kUnknownTask} on a duplicate id.
  AdmitReply admit(const TaskRecord& record);

  /// Explicitly commits waiting task `id` at max(now, its commit instant);
  /// any other plan whose commit instant is not later gets committed on the
  /// way (in commit-time order), counted in `also_committed`. Throws
  /// ShardError{kUnknownTask} when `id` is not waiting.
  CommitReply commit(cluster::TaskId id);

  /// Removes waiting task `id` without committing resources (its admitted
  /// siblings keep their plans - the Figure-2 invariant is that existing
  /// plans stay feasible when load only shrinks). Throws
  /// ShardError{kUnknownTask} when `id` is not waiting.
  CancelReply cancel(cluster::TaskId id);

  void fill_status(ShardStatus& out) const;

  /// Serializes the shard's semantic state (clock, counters, waiting tasks
  /// + plans, per-node cluster accounting, calendar reservations). See
  /// sched/plan_io.hpp for why this is sufficient for bit-identical restore.
  void snapshot_to(util::WireWriter& out) const;

  /// Inverse of snapshot_to, onto a freshly constructed shard with the same
  /// algorithm and params. Throws util::WireError / std::runtime_error on
  /// malformed or inconsistent input.
  void restore_from(util::WireReader& in);

  /// The op log (empty unless ShardConfig::record_ops).
  const std::vector<OpRecord>& ops() const { return ops_; }

 private:
  struct WaitingEntry {
    const workload::Task* task = nullptr;  ///< owned by tasks_
    sched::TaskPlan plan;
    cluster::Time commit_at = 0.0;  ///< max(plan.commit_time(), adoption now)
  };

  /// Commits every waiting plan due at or before `t` (commit-time order,
  /// ties by queue position), then floors the clock at `t`. Returns how many
  /// entries were committed.
  std::size_t advance_to(cluster::Time t);
  void commit_entry(std::size_t index);
  void adopt_schedule(std::size_t reused_prefix,
                      std::vector<sched::ScheduledTask>& schedule);

  ShardConfig config_;
  sched::Algorithm algorithm_;
  sched::AdmissionController controller_;
  cluster::Cluster cluster_;
  std::unique_ptr<cluster::NodeCalendar> calendar_;  ///< calendar rules only

  cluster::Time now_ = 0.0;
  std::uint64_t seq_ = 0;  ///< operation sequence, stamped into AdmitReply
  std::unordered_map<cluster::TaskId, std::unique_ptr<workload::Task>> tasks_;
  std::vector<WaitingEntry> waiting_;

  std::uint64_t admits_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t cancelled_ = 0;

  std::vector<OpRecord> ops_;

  // Scratch reused across requests.
  std::vector<const workload::Task*> waiting_view_;
  std::vector<cluster::Time> free_scratch_;
  std::vector<cluster::NodeId> free_ids_scratch_;
  std::vector<cluster::NodeId> ids_scratch_;
};

}  // namespace rtdls::svc
