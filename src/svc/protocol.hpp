// The `rtdlsd` wire protocol: length-framed binary messages over a
// Unix-domain stream socket.
//
// Frame layout (all little-endian, see util/wire.hpp):
//
//   u32 magic        'RTDL' (0x4C445452)
//   u16 version      kProtocolVersion; a mismatched peer gets kBadFrame and
//                    the connection is closed (no cross-version guessing)
//   u16 type         MsgType
//   u64 request_id   echoed verbatim in the reply, so a client can pipeline
//   u32 payload_size <= kMaxPayload; larger is rejected BEFORE buffering
//   payload_size bytes of payload (per-type layout below)
//
// Every request type has a reply type; any failure - malformed frame,
// undecodable payload, unknown shard, deadline hit - produces an ErrorReply
// frame (type kErrorReply) carrying a machine-readable ErrorCode, never a
// silent drop, a crash, or a hang. A frame-level error (bad magic/version/
// oversized length) is unrecoverable mid-stream - after the error reply the
// server closes the connection, since resynchronization inside a corrupted
// byte stream is guesswork.
//
// The FrameDecoder is incremental: feed whatever bytes arrived, pull
// complete frames out. The protocol fuzz tests drive it (and the payload
// decoders) with truncated/oversized/garbage inputs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/plan_io.hpp"
#include "sim/metrics.hpp"
#include "util/wire.hpp"
#include "workload/task.hpp"

namespace rtdls::svc {

inline constexpr std::uint32_t kFrameMagic = 0x4C445452;  // 'RTDL'
/// Wire revisions. 1 = v1.0 (the original protocol), 2 = v1.1 (adds the
/// metrics request and the extended status-reply section). The decoder
/// accepts both and records which one each frame carried; the server
/// encodes every reply at the requester's revision, so a v1.0 client keeps
/// receiving byte-identical v1.0 replies.
inline constexpr std::uint16_t kProtocolVersionV10 = 1;
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::size_t kFrameHeaderSize = 4 + 2 + 2 + 8 + 4;
/// Payload ceiling: far above any real message (the largest is a StatusReply
/// over every shard), far below anything that could balloon server memory.
inline constexpr std::uint32_t kMaxPayload = 1u << 24;  // 16 MiB

enum class MsgType : std::uint16_t {
  kAdmitRequest = 1,
  kCommitRequest = 2,
  kCancelRequest = 3,
  kStatusRequest = 4,
  kSnapshotRequest = 5,
  kShutdownRequest = 6,
  /// Test/operations hook: hold the target shard's lock for a given wall
  /// time, simulating a hung request. Exercises the per-request deadline
  /// path end to end (the sleeper times out; contenders on the same shard
  /// time out on the lock; other shards are unaffected).
  kDebugSleepRequest = 7,
  /// v1.1: Prometheus-style text scrape of the daemon's obs registry.
  kMetricsRequest = 8,

  kAdmitReply = 101,
  kCommitReply = 102,
  kCancelReply = 103,
  kStatusReply = 104,
  kSnapshotReply = 105,
  kShutdownReply = 106,
  kDebugSleepReply = 107,
  kMetricsReply = 108,
  kErrorReply = 255,
};

enum class ErrorCode : std::uint16_t {
  kBadFrame = 1,      ///< magic/version/length violation (connection closes)
  kBadPayload = 2,    ///< frame ok, payload undecodable for its type
  kUnknownType = 3,   ///< not a request type this daemon knows
  kUnknownShard = 4,  ///< shard index out of range
  kUnknownTask = 5,   ///< commit/cancel target not in the waiting queue
  kTimeout = 6,       ///< per-request wall-clock deadline hit
  kShuttingDown = 7,  ///< daemon is draining; retry against a new instance
  kIo = 8,            ///< server-side I/O failure (e.g. snapshot write)
  kInternal = 9,      ///< unexpected exception (bug; message has details)
};

const char* error_code_name(ErrorCode code);

/// A decoded frame: header fields plus raw payload bytes.
struct Frame {
  MsgType type = MsgType::kErrorReply;
  std::uint64_t request_id = 0;
  /// Wire revision the frame carried (the server replies at this revision).
  std::uint16_t version = kProtocolVersion;
  std::vector<std::uint8_t> payload;
};

/// Encodes a complete frame (header + payload) at the given wire revision.
std::vector<std::uint8_t> encode_frame(MsgType type, std::uint64_t request_id,
                                       const std::vector<std::uint8_t>& payload,
                                       std::uint16_t version = kProtocolVersion);

/// Incremental frame extraction from a byte stream.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     ///< one complete frame extracted
    kNeedMore,  ///< prefix is valid so far; feed more bytes
    kError,     ///< stream corrupt (error() says why); abandon the stream
  };

  /// Appends received bytes to the internal buffer.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Tries to extract the next complete frame.
  Status next(Frame& out);

  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (tests).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::string error_;
};

// --- message payloads -------------------------------------------------------
// Each struct encodes/decodes its own payload; decode throws util::WireError
// on malformed bytes (the server turns that into a kBadPayload error reply).

/// A task offered for admission, as its client-visible record.
struct TaskRecord {
  cluster::TaskId id = 0;
  cluster::Time arrival = 0.0;
  double sigma = 0.0;
  cluster::Time rel_deadline = 0.0;
  std::uint64_t user_nodes = 0;

  workload::Task to_task() const;
  static TaskRecord from_task(const workload::Task& task);

  void encode(util::WireWriter& out) const;
  static TaskRecord decode(util::WireReader& in);
};

struct AdmitRequest {
  std::uint32_t shard = 0;
  /// Per-request deadline override in ms; 0 means the daemon default.
  std::uint32_t deadline_ms = 0;
  TaskRecord task;

  void encode(util::WireWriter& out) const;
  static AdmitRequest decode(util::WireReader& in);
};

struct AdmitReply {
  bool accepted = false;
  std::uint8_t reason = 0;  ///< dlt::Infeasibility when rejected
  cluster::TaskId blocking_task = cluster::kNoTask;
  std::uint64_t decision_seq = 0;  ///< shard-global operation sequence number
  double est_completion = 0.0;     ///< accepted only
  std::uint64_t nodes = 0;         ///< accepted only
  std::uint64_t waiting = 0;       ///< waiting-queue length after the decision

  void encode(util::WireWriter& out) const;
  static AdmitReply decode(util::WireReader& in);
};

struct CommitRequest {
  std::uint32_t shard = 0;
  cluster::TaskId task = cluster::kNoTask;

  void encode(util::WireWriter& out) const;
  static CommitRequest decode(util::WireReader& in);
};

struct CommitReply {
  bool committed = false;
  cluster::Time committed_at = 0.0;
  /// Earlier-due waiting tasks committed alongside (clock advance).
  std::uint64_t also_committed = 0;

  void encode(util::WireWriter& out) const;
  static CommitReply decode(util::WireReader& in);
};

struct CancelRequest {
  std::uint32_t shard = 0;
  cluster::TaskId task = cluster::kNoTask;

  void encode(util::WireWriter& out) const;
  static CancelRequest decode(util::WireReader& in);
};

struct CancelReply {
  bool cancelled = false;

  void encode(util::WireWriter& out) const;
  static CancelReply decode(util::WireReader& in);
};

struct StatusRequest {
  void encode(util::WireWriter& out) const;
  static StatusRequest decode(util::WireReader& in);
};

/// Per-shard slice of a StatusReply.
struct ShardStatus {
  std::uint32_t shard = 0;
  cluster::Time now = 0.0;
  std::uint64_t waiting = 0;
  std::uint64_t admits = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t committed = 0;
  std::uint64_t cancelled = 0;
  /// PR 5 session-memory accounting: what the warm sparse session holds and
  /// what the dense one-row-per-task representation would hold.
  std::uint64_t session_bytes = 0;
  std::uint64_t session_dense_bytes = 0;
  std::uint64_t peak_session_bytes = 0;

  void encode(util::WireWriter& out) const;
  static ShardStatus decode(util::WireReader& in);
};

/// v1.1 per-shard request-latency summary (microseconds), extracted from
/// the daemon's obs histogram for that shard.
struct ShardLatency {
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;

  void encode(util::WireWriter& out) const;
  static ShardLatency decode(util::WireReader& in);
};

struct StatusReply {
  std::string build;      ///< util::build_description(): flags attribution
  std::string algorithm;  ///< the admission algorithm every shard runs
  std::uint64_t node_count = 0;
  std::uint64_t workers = 0;
  sim::ServiceCounters counters;
  std::vector<ShardStatus> shards;

  /// v1.1 extension, appended after the shard array so a v1.0 layout is a
  /// strict prefix. `extended` selects whether encode() writes it; decode()
  /// sets it from whether the bytes were present.
  bool extended = false;
  std::uint64_t uptime_ms = 0;
  std::uint64_t queue_depth = 0;            ///< connections awaiting a worker
  std::vector<ShardLatency> shard_latency;  ///< parallel to `shards`

  void encode(util::WireWriter& out) const;
  static StatusReply decode(util::WireReader& in);
};

/// v1.1: scrape the daemon's metrics registries.
struct MetricsRequest {
  void encode(util::WireWriter& out) const;
  static MetricsRequest decode(util::WireReader& in);
};

struct MetricsReply {
  std::string text;  ///< Prometheus text exposition

  void encode(util::WireWriter& out) const;
  static MetricsReply decode(util::WireReader& in);
};

struct SnapshotRequest {
  std::string path;  ///< server-side file path to write

  void encode(util::WireWriter& out) const;
  static SnapshotRequest decode(util::WireReader& in);
};

struct SnapshotReply {
  std::uint64_t shards = 0;
  std::uint64_t bytes = 0;

  void encode(util::WireWriter& out) const;
  static SnapshotReply decode(util::WireReader& in);
};

struct ShutdownRequest {
  void encode(util::WireWriter& out) const;
  static ShutdownRequest decode(util::WireReader& in);
};

struct ShutdownReply {
  void encode(util::WireWriter& out) const;
  static ShutdownReply decode(util::WireReader& in);
};

struct DebugSleepRequest {
  std::uint32_t shard = 0;
  std::uint32_t millis = 0;

  void encode(util::WireWriter& out) const;
  static DebugSleepRequest decode(util::WireReader& in);
};

struct DebugSleepReply {
  std::uint32_t slept_ms = 0;

  void encode(util::WireWriter& out) const;
  static DebugSleepReply decode(util::WireReader& in);
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  void encode(util::WireWriter& out) const;
  static ErrorReply decode(util::WireReader& in);
};

/// Convenience: encode a payload-bearing message straight into a frame.
template <typename Message>
std::vector<std::uint8_t> encode_message(MsgType type, std::uint64_t request_id,
                                         const Message& message,
                                         std::uint16_t version = kProtocolVersion) {
  util::WireWriter writer;
  message.encode(writer);
  return encode_frame(type, request_id, writer.take(), version);
}

}  // namespace rtdls::svc
