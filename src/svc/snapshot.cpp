#include "svc/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "cluster/speed_profile.hpp"
#include "util/wire.hpp"

namespace rtdls::svc {

namespace {

constexpr char kMagic[8] = {'R', 'T', 'D', 'L', 'S', 'N', 'P', '1'};
constexpr std::uint16_t kContainerVersion = 1;

}  // namespace

std::size_t write_snapshot(const std::string& path, const SnapshotMeta& meta,
                           const std::vector<std::vector<std::uint8_t>>& shard_blobs) {
  std::vector<std::uint8_t> body;
  // Element-wise on purpose: the range insert of a char[] into an empty
  // byte vector trips GCC 12's -Wstringop-overflow through the inlined
  // memmove (false positive), and this path is cold.
  body.reserve(sizeof(kMagic));
  for (const char c : kMagic) body.push_back(static_cast<std::uint8_t>(c));
  util::WireWriter out(body);
  out.u16(kContainerVersion);
  out.string(meta.algorithm);
  out.u64(meta.params.node_count);
  out.f64(meta.params.cms);
  out.f64(meta.params.cps);
  const bool has_profile = meta.params.speed_profile != nullptr;
  out.u8(has_profile ? 1 : 0);
  if (has_profile) out.f64_array(meta.params.speed_profile->values());
  out.u8(meta.incremental ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(shard_blobs.size()));
  for (const auto& blob : shard_blobs) {
    if (blob.size() > UINT32_MAX) throw std::runtime_error("snapshot: shard blob too large");
    // u32 length prefix + raw bytes: the layout string()/read side expects.
    out.u32(static_cast<std::uint32_t>(blob.size()));
    out.bytes(blob.data(), blob.size());
  }
  out.u64(util::fnv1a64(body.data(), body.size()));

  // Write-then-rename so a crash mid-write never leaves a half snapshot at
  // the restore path (the checksum catches torn writes that survive rename).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("snapshot: cannot open " + tmp + " for writing");
    file.write(reinterpret_cast<const char*>(body.data()),
               static_cast<std::streamsize>(body.size()));
    if (!file) throw std::runtime_error("snapshot: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("snapshot: rename " + tmp + " -> " + path + " failed");
  }
  return body.size();
}

Snapshot read_snapshot(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw std::runtime_error("snapshot: cannot open " + path);
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::uint8_t> body(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(body.data()), size);
  if (!file) throw std::runtime_error("snapshot: read failed for " + path);

  if (body.size() < sizeof(kMagic) + 8 ||
      !std::equal(kMagic, kMagic + sizeof(kMagic), body.begin())) {
    throw std::runtime_error("snapshot: " + path + " is not a snapshot file");
  }
  const std::size_t payload = body.size() - 8;  // trailer excluded
  util::WireReader trailer(body.data() + payload, 8);
  if (trailer.u64() != util::fnv1a64(body.data(), payload)) {
    throw std::runtime_error("snapshot: checksum mismatch in " + path +
                             " (truncated or corrupted)");
  }

  util::WireReader in(body.data() + sizeof(kMagic), payload - sizeof(kMagic));
  const std::uint16_t version = in.u16();
  if (version != kContainerVersion) {
    throw std::runtime_error("snapshot: unsupported container version " +
                             std::to_string(version));
  }
  Snapshot snapshot;
  snapshot.meta.algorithm = in.string();
  snapshot.meta.params.node_count = static_cast<std::size_t>(in.u64());
  snapshot.meta.params.cms = in.f64();
  snapshot.meta.params.cps = in.f64();
  if (in.u8() != 0) {
    snapshot.meta.params.speed_profile =
        std::make_shared<cluster::SpeedProfile>(in.f64_array());
  }
  snapshot.meta.incremental = in.u8() != 0;
  const std::uint32_t shard_count = in.u32();
  // Each blob costs at least its 4-byte length prefix; a count implying
  // more bytes than remain is malformed, caught before reserving.
  if (static_cast<std::size_t>(shard_count) * 4 > in.remaining()) {
    throw util::WireError("snapshot: shard count exceeds payload");
  }
  snapshot.shard_blobs.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    // bytes() and string() share the u32-prefixed layout; string() already
    // validates the prefix against the remaining payload.
    const std::string blob = in.string();
    snapshot.shard_blobs.emplace_back(blob.begin(), blob.end());
  }
  in.expect_done();
  return snapshot;
}

}  // namespace rtdls::svc
