// Daemon snapshot files: crash-recovery state for every shard in one
// integrity-checked container.
//
// Layout (little-endian, util/wire):
//   8 bytes   magic "RTDLSNP1"
//   u16       container version (1)
//   string    algorithm name
//   u64       node_count, f64 cms, f64 cps     (cluster params)
//   u8        has speed profile; if set, f64_array of per-node cps
//   u8        incremental admission flag
//   u32       shard count
//   bytes     per shard: u32-length-prefixed blob (AdmissionShard format)
//   u64       FNV-1a 64 over everything above (truncation/corruption check)
//
// A restored daemon rebuilt from (meta, blobs) makes bit-identical admit
// decisions to the uninterrupted one - see sched/plan_io.hpp for why
// serializing the semantic state alone suffices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/types.hpp"

namespace rtdls::svc {

struct SnapshotMeta {
  std::string algorithm;
  cluster::ClusterParams params;
  bool incremental = true;
};

struct Snapshot {
  SnapshotMeta meta;
  std::vector<std::vector<std::uint8_t>> shard_blobs;
};

/// Writes the snapshot to `path` (atomically: temp file + rename). Returns
/// the file size in bytes. Throws std::runtime_error on I/O failure.
std::size_t write_snapshot(const std::string& path, const SnapshotMeta& meta,
                           const std::vector<std::vector<std::uint8_t>>& shard_blobs);

/// Reads and verifies a snapshot file. Throws std::runtime_error on I/O
/// failure, bad magic/version, or checksum mismatch; util::WireError on
/// malformed content.
Snapshot read_snapshot(const std::string& path);

}  // namespace rtdls::svc
