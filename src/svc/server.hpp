// The rtdlsd daemon: admission control as a long-running service.
//
// Architecture: one accept thread + a fixed worker pool over a Unix-domain
// stream socket. A worker owns a connection for its lifetime and serves its
// frames in order (per-connection ordering is part of the protocol); request
// concurrency comes from multiple connections over multiple workers, and
// state concurrency from sharding - each AdmissionShard is guarded by its
// own std::timed_mutex, so requests against different shards never contend.
//
// Per-request deadlines: every request carries a wall-clock budget (the
// daemon default, or AdmitRequest::deadline_ms). The budget covers both the
// shard-lock acquisition (deadline-bounded try_lock polling) and the handler
// itself, so one
// hung request - simulated by kDebugSleepRequest - times out with a kTimeout
// error reply instead of wedging a worker forever, and contenders queued on
// the same shard fail fast instead of piling up. Other shards are untouched.
//
// Crash recovery: DaemonConfig::restore_path rebuilds every shard from a
// snapshot file (svc/snapshot.hpp); the restored daemon's future admit
// decisions are bit-identical to the uninterrupted one. stop() writes a
// final snapshot when snapshot_path is set, making SIGTERM lossless.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/metrics.hpp"
#include "util/annotations.hpp"
#include "svc/shard.hpp"

namespace rtdls::svc {

struct DaemonConfig {
  std::string socket_path;
  std::string algorithm = "EDF-DLT";
  cluster::ClusterParams params;
  std::size_t shards = 4;
  std::size_t workers = 4;
  bool incremental = true;
  bool record_ops = false;  ///< per-shard op logs (tests; unbounded memory)
  /// Default per-request wall-clock budget.
  std::uint32_t default_deadline_ms = 2000;
  /// Written by stop() (and by explicit snapshot requests with an empty
  /// path); empty disables the final snapshot.
  std::string snapshot_path;
  /// Non-empty: restore every shard from this snapshot file at start; its
  /// metadata overrides algorithm/params/incremental/shards.
  std::string restore_path;
};

class Daemon {
 public:
  /// Builds the shards (restoring from DaemonConfig::restore_path if set).
  /// Throws on invalid config or unusable snapshot. The socket is not
  /// touched until start().
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and launches the accept thread and worker pool.
  void start();

  /// Asynchronous stop signal; safe from any thread, including a worker
  /// serving the shutdown request and a signal-handler-polling loop.
  void request_stop();

  /// True once a stop has been requested (shutdown request or signal path).
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  /// Joins everything, closes the socket, and writes the final snapshot (if
  /// configured). Idempotent; called by the destructor.
  void stop();

  /// Point-in-time snapshot of every shard to `path`, all shard locks held
  /// together so the captured states are mutually consistent. Returns the
  /// file size. Throws ShardError{kTimeout} when the locks cannot be had by
  /// `deadline`, std::runtime_error on I/O failure.
  std::size_t snapshot_to(const std::string& path,
                          std::chrono::steady_clock::time_point deadline);

  const DaemonConfig& config() const { return config_; }
  sim::ServiceCounters counters() const;
  std::size_t shard_count() const { return shards_.size(); }

  /// The daemon's private metrics registry (request latencies per shard,
  /// queue depth). Scraped by the kMetricsRequest op together with the
  /// process-global registry; exposed for tests and the storm harness.
  obs::Registry& metrics_registry() { return obs_; }

  /// Milliseconds since the daemon was constructed (monotonic clock).
  std::uint64_t uptime_ms() const;

  /// Direct shard access for in-process callers (tests, the storm bench's
  /// serial replay). The caller must hold shard_mutex(i).
  AdmissionShard& shard(std::size_t i) { return shards_[i]->shard; }
  std::timed_mutex& shard_mutex(std::size_t i) { return shards_[i]->shard_mutex; }

 private:
  struct ShardSlot {
    std::timed_mutex shard_mutex RTDLS_LOCK_LEVEL(20);
    AdmissionShard shard;
    ShardSlot(const std::string& algorithm, const ShardConfig& config)
        : shard(algorithm, config) {}
  };

  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  /// Dispatches one frame; returns false when the connection must close
  /// (frame-level protocol violation or shutdown).
  bool handle_frame(int fd, const Frame& frame);
  /// Error replies echo the requester's wire revision like any other reply.
  void send_error(int fd, std::uint64_t request_id, std::uint16_t version,
                  ErrorCode code, const std::string& message);
  bool send_all(int fd, const std::vector<std::uint8_t>& bytes);
  std::chrono::steady_clock::time_point deadline_for(std::uint32_t override_ms) const;

  /// Worker-shared mirror of sim::ServiceCounters, one relaxed atomic per
  /// field. The counters are independent monotonic event tallies with no
  /// cross-field invariant, so relaxed increments suffice; counters()
  /// materializes a plain snapshot for replies and logs. (Previously a
  /// plain struct under counters_mutex_ - a lock per bump on the request
  /// path, and the lock order was undeclared.)
  struct AtomicCounters {
    std::atomic<std::size_t> connections{0};
    std::atomic<std::size_t> requests{0};
    std::atomic<std::size_t> admits{0};
    std::atomic<std::size_t> commits{0};
    std::atomic<std::size_t> cancels{0};
    std::atomic<std::size_t> status_queries{0};
    std::atomic<std::size_t> snapshots{0};
    std::atomic<std::size_t> errors{0};
    std::atomic<std::size_t> timeouts{0};
    std::atomic<std::size_t> restores{0};
  };

  void bump(std::atomic<std::size_t> AtomicCounters::* field, std::size_t by = 1);

  DaemonConfig config_;
  std::vector<std::unique_ptr<ShardSlot>> shards_;

  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_ RTDLS_LOCK_LEVEL(10);
  std::condition_variable queue_cv_;
  std::vector<int> pending_fds_;

  AtomicCounters counters_;

  /// Per-daemon registry (NOT the process-global one): a test that runs
  /// several daemons must not see their latencies blended together.
  obs::Registry obs_;
  obs::Gauge queue_depth_;            ///< pending_fds_.size(), maintained at push/pop
  obs::Histogram request_latency_;    ///< all requests, end to end, microseconds
  std::vector<obs::Histogram> shard_latency_;  ///< indexed by shard
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace rtdls::svc
