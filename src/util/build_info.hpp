// Build attribution: which flags this binary was compiled with.
//
// Storm-harness numbers (BENCH_daemon.json) and daemon `status` replies are
// only comparable when the build behind them is known - a sanitizer build is
// 5-20x slower, RTDLS_SIMD changes the planner kernels' codegen - so every
// report carries this one-line description.
#pragma once

#include <string>

namespace rtdls::util {

/// One-line build description, e.g.
/// "rtdls (gcc 12.2.0, Release, simd=off, asan=off, trace=on)".
std::string build_description();

/// True when the planner kernels were built with RTDLS_SIMD.
bool build_simd();

/// True when AddressSanitizer is compiled in (RTDLS_SANITIZE).
bool build_asan();

/// True when the trace recorder is compiled in (RTDLS_TRACE).
bool build_trace();

}  // namespace rtdls::util
