// Environment-variable helpers used by the benchmark/experiment harness to
// scale runs (RTDLS_FULL, RTDLS_RUNS, RTDLS_SIMTIME, RTDLS_JOBS, ...).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace rtdls::util {

/// Returns the raw value of an environment variable, if set and non-empty.
std::optional<std::string> get_env(std::string_view name);

/// Returns the variable parsed as double, or `fallback` if unset/unparsable.
double env_double(std::string_view name, double fallback);

/// Returns the variable parsed as a non-negative integer, or `fallback`.
unsigned long long env_u64(std::string_view name, unsigned long long fallback);

/// Returns true for values "1", "true", "yes", "on" (case-insensitive).
bool env_flag(std::string_view name, bool fallback = false);

}  // namespace rtdls::util
