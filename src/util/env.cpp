#include "util/env.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace rtdls::util {

std::optional<std::string> get_env(std::string_view name) {
  const std::string key(name);
  if (const char* value = std::getenv(key.c_str()); value != nullptr && value[0] != '\0') {
    return std::string(value);
  }
  return std::nullopt;
}

double env_double(std::string_view name, double fallback) {
  const auto raw = get_env(name);
  if (!raw) return fallback;
  double value = fallback;
  return parse_double(*raw, value) ? value : fallback;
}

unsigned long long env_u64(std::string_view name, unsigned long long fallback) {
  const auto raw = get_env(name);
  if (!raw) return fallback;
  unsigned long long value = fallback;
  return parse_u64(*raw, value) ? value : fallback;
}

bool env_flag(std::string_view name, bool fallback) {
  const auto raw = get_env(name);
  if (!raw) return fallback;
  const std::string lowered = to_lower(*raw);
  return lowered == "1" || lowered == "true" || lowered == "yes" || lowered == "on";
}

}  // namespace rtdls::util
