// Minimal leveled logger for the rtdls library.
//
// The simulator and experiment runner are hot loops, so logging is designed
// to be cheap when disabled: level checks are a single relaxed atomic load
// and message formatting only happens when the message will be emitted.
#pragma once

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <string_view>

namespace rtdls::util {

/// Severity levels, ordered from most to least verbose.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the canonical lowercase name of a level ("trace", "info", ...).
std::string_view log_level_name(LogLevel level);

/// Parses a level name (case-insensitive); returns kInfo on unknown input.
LogLevel parse_log_level(std::string_view name);

/// Global logger configuration and sink. Thread-safe.
class Logger {
 public:
  /// Process-wide logger instance.
  static Logger& instance();

  /// Current minimum level that will be emitted.
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Sets the minimum emitted level.
  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }

  /// True if a message at `level` would be emitted.
  bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Emits one formatted line to stderr (serialized across threads), with a
  /// monotonic `+seconds.millis` timestamp relative to the logger's epoch.
  void write(LogLevel level, std::string_view message);

  /// Initializes the level from the RTDLS_LOG environment variable.
  void init_from_env();

  /// Seconds elapsed since the logger's (steady-clock) epoch.
  double elapsed_seconds() const;

 private:
  Logger();
  std::atomic<LogLevel> level_;
  std::chrono::steady_clock::time_point epoch_;
};

namespace detail {

/// Stream-style log statement builder; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace rtdls::util

/// Usage: RTDLS_LOG(kInfo) << "accepted task " << id;
#define RTDLS_LOG(level_suffix)                                                   \
  if (!::rtdls::util::Logger::instance().enabled(::rtdls::util::LogLevel::level_suffix)) { \
  } else                                                                          \
    ::rtdls::util::detail::LogLine(::rtdls::util::LogLevel::level_suffix)
