// Tiny declarative command-line parser used by the example applications.
//
// Supports `--name value`, `--name=value` and boolean `--flag` options plus
// positional arguments. Unknown options are reported as errors so typos in
// experiment sweeps fail loudly rather than silently using defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rtdls::util {

/// Declarative description of one command-line option.
struct CliOption {
  std::string name;         ///< long name without the leading "--"
  std::string help;         ///< one-line description for usage output
  std::string default_value;  ///< rendered in usage; empty means required-less
  bool is_flag = false;     ///< true: presence sets value "1"
};

/// Result of parsing argv against a set of CliOptions.
class CliParser {
 public:
  /// Registers an option. Call before parse().
  void add_option(CliOption option);

  /// Parses argv; returns false and records an error message on failure.
  bool parse(int argc, const char* const* argv);

  /// Value of an option (default if not given on the command line).
  std::optional<std::string> get(const std::string& name) const;

  /// Numeric accessors with fallbacks.
  double get_double(const std::string& name, double fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  /// Full-width unsigned accessor: 64-bit values (RNG seeds) survive the
  /// round trip that get_int's signed cast would truncate.
  std::uint64_t get_uint64(const std::string& name, std::uint64_t fallback) const;
  bool get_flag(const std::string& name) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Error from the last parse() call, empty on success.
  const std::string& error() const { return error_; }

  /// Renders a usage/help string.
  std::string usage(const std::string& program) const;

 private:
  std::vector<CliOption> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace rtdls::util
