#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace rtdls::util {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(pool_mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(size_t count, const std::function<void(size_t)>& body) {
  if (count == 0) return;
  // Dynamic scheduling: a shared atomic cursor balances uneven task costs
  // (high-load simulations take longer than low-load ones).
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  auto first_error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  const size_t lanes = std::min(count, size());
  auto lane_body = [cursor, first_error, error_mutex, count, &body] {
    while (true) {
      const size_t i = cursor->fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (*first_error) return;  // abandon remaining work after a failure
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (!*first_error) *first_error = std::current_exception();
        return;
      }
    }
  };

  // The calling thread participates as one lane so a 1-thread pool still
  // makes progress even if the caller holds the only available core.
  for (size_t lane = 1; lane < lanes; ++lane) {
    submit(lane_body);
  }
  lane_body();
  wait_idle();

  if (*first_error) std::rethrow_exception(*first_error);
}

}  // namespace rtdls::util
