// CSV writer/reader used for persisting experiment series and traces.
//
// The format is deliberately simple: comma-separated, fields containing a
// comma/quote/newline are double-quoted with doubled inner quotes. This is
// enough for gnuplot, pandas and spreadsheet import of our results.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rtdls::util {

/// Streams rows of a CSV document into an std::ostream.
class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row; every field is escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles formatted with full precision.
  void write_numeric_row(const std::vector<double>& values);

  /// Number of rows written so far.
  size_t rows_written() const { return rows_; }

  /// Escapes a single CSV field (public for testing).
  static std::string escape(const std::string& field);

 private:
  std::ostream* out_;
  size_t rows_ = 0;
};

/// Parses CSV text into rows of fields. Handles quoted fields with embedded
/// commas/quotes/newlines. Intended for reading back files we wrote.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Reads and parses a CSV file; throws std::runtime_error if it cannot be
/// opened. Used by the campaign shard-merge tooling.
std::vector<std::vector<std::string>> parse_csv_file(const std::string& path);

}  // namespace rtdls::util
