// Fixed-size worker pool used by the experiment runner to execute the
// (load, run, algorithm) simulation grid in parallel.
//
// Design notes (HPC-parallel idioms):
//  * Work items are type-erased std::move_only_function-like tasks; we use
//    std::function with shared state because our tasks are copyable closures.
//  * Shutdown is cooperative: the destructor drains the queue, joins workers.
//  * `parallel_for` provides a blocking fan-out/fan-in over an index range
//    with exception propagation (first exception rethrown on the caller).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace rtdls::util {

/// A simple fixed-size thread pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void wait_idle();

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Runs body(i) for i in [0, count) across the pool and blocks until all
  /// complete. If any invocation throws, the first exception is rethrown
  /// here after every index has been attempted or abandoned.
  void parallel_for(size_t count, const std::function<void(size_t)>& body);

 private:
  void worker_loop();

  std::mutex pool_mutex_ RTDLS_LOCK_LEVEL(40);
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace rtdls::util
