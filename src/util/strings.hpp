// Small string helpers shared across rtdls modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rtdls::util {

/// Returns `s` with ASCII letters lowercased.
std::string to_lower(std::string_view s);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Formats a double with `precision` significant decimal digits, trimming
/// trailing zeros ("0.25", "1", "0.121").
std::string format_double(double value, int precision = 6);

/// Formats a double so that parse_double round-trips it bit-exactly
/// ("%.17g"); used wherever results are persisted and re-read (CSV cells,
/// campaign spec files).
std::string format_roundtrip(double value);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a double; returns false (leaving `out` untouched) on failure.
bool parse_double(std::string_view s, double& out);

/// Parses a non-negative integer; returns false on failure.
bool parse_u64(std::string_view s, unsigned long long& out);

}  // namespace rtdls::util
