#include "util/cli.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace rtdls::util {

void CliParser::add_option(CliOption option) {
  options_.push_back(std::move(option));
}

bool CliParser::parse(int argc, const char* const* argv) {
  values_.clear();
  positional_.clear();
  error_.clear();

  auto find_option = [this](const std::string& name) -> const CliOption* {
    const auto it = std::find_if(options_.begin(), options_.end(),
                                 [&](const CliOption& o) { return o.name == name; });
    return it == options_.end() ? nullptr : &*it;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    const CliOption* option = find_option(name);
    if (option == nullptr) {
      error_ = "unknown option --" + name;
      return false;
    }
    if (option->is_flag) {
      if (inline_value) {
        error_ = "flag --" + name + " does not take a value";
        return false;
      }
      // Fill-construct instead of assigning the literal: GCC 12 inlines the
      // literal assign into a char_traits memcpy it then misdiagnoses under
      // -Wrestrict (false positive).
      values_[name] = std::string(1, '1');
      continue;
    }
    if (inline_value) {
      values_[name] = *inline_value;
      continue;
    }
    if (i + 1 >= argc) {
      error_ = "option --" + name + " requires a value";
      return false;
    }
    values_[name] = argv[++i];
  }
  return true;
}

std::optional<std::string> CliParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  const auto option = std::find_if(options_.begin(), options_.end(),
                                   [&](const CliOption& o) { return o.name == name; });
  if (option != options_.end() && !option->default_value.empty()) {
    return option->default_value;
  }
  return std::nullopt;
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const auto raw = get(name);
  if (!raw) return fallback;
  double value = fallback;
  return parse_double(*raw, value) ? value : fallback;
}

long long CliParser::get_int(const std::string& name, long long fallback) const {
  const auto raw = get(name);
  if (!raw) return fallback;
  unsigned long long value = 0;
  if (!parse_u64(*raw, value)) return fallback;
  return static_cast<long long>(value);
}

std::uint64_t CliParser::get_uint64(const std::string& name, std::uint64_t fallback) const {
  const auto raw = get(name);
  if (!raw) return fallback;
  unsigned long long value = 0;
  return parse_u64(*raw, value) ? static_cast<std::uint64_t>(value) : fallback;
}

bool CliParser::get_flag(const std::string& name) const {
  const auto raw = get(name);
  return raw.has_value() && *raw == "1";
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [options]\n";
  for (const CliOption& option : options_) {
    out << "  --" << option.name;
    if (!option.is_flag) out << " <value>";
    out << "  " << option.help;
    if (!option.default_value.empty()) out << " (default: " << option.default_value << ")";
    out << '\n';
  }
  return out.str();
}

}  // namespace rtdls::util
