// Source annotations consumed by the rtdls-verify static-analysis pass
// (tools/verify): zero-cost markers that turn project conventions into
// mechanically checkable contracts.
//
//  * RTDLS_HOT marks a planner/index kernel as allocation-free: the
//    `rtdls-hot-path-alloc` check rejects any allocation construct (new,
//    make_unique/make_shared, malloc, local owning-container or string
//    declarations, and growth calls on such locals) inside the annotated
//    function and inside functions it reaches. Growth calls on *member*
//    scratch (resize/reserve/push_back on fields) stay legal - that is the
//    PR 5/6 amortized scratch-reuse contract, where capacity is retained
//    across calls and steady-state invocations allocate nothing.
//
//  * RTDLS_LOCK_LEVEL(n) declares a mutex member's position in the global
//    lock order (see the table in README "Static analysis & sanitizers").
//    Guards must acquire strictly increasing levels; the
//    `rtdls-lock-discipline` check flags naked lock()/unlock() on
//    leveled members and any function body that acquires a lower level
//    while a higher one is still held.
//
// Under clang the markers also emit `annotate` attributes so the
// rtdls-tidy plugin (tools/verify/plugin) sees them in the AST; under gcc
// RTDLS_HOT degrades to the hot attribute and RTDLS_LOCK_LEVEL to nothing.
#pragma once

#if defined(__clang__)
#define RTDLS_HOT [[clang::annotate("rtdls_hot"), gnu::hot]]
#define RTDLS_LOCK_LEVEL(n) __attribute__((annotate("rtdls_lock_level_" #n)))
#else
#define RTDLS_HOT [[gnu::hot]]
#define RTDLS_LOCK_LEVEL(n)
#endif
