// Anchored floating-point comparators: the only place in the tree where
// epsilon tolerances may appear.
//
// Every correctness argument in this reproduction - bit-identical
// incremental sessions, lane-exact SIMD kernels, byte-identical
// snapshot/restore - depends on float comparisons being *anchored*: a
// tolerance is applied once, against a named constant, in a fixed
// expression shape, so two call sites asking the same question get the
// same answer bit for bit. The PR 3 calendar-dedupe bug was exactly the
// alternative: |a-b| <= eps handed to std::unique is not transitive, and
// which duplicates survive then depends on the traversal order.
//
// `rtdls-no-raw-float-compare` (tools/verify) mechanically enforces the
// contract: raw epsilon literals in comparison expressions, ==/!= against
// float literals, and epsilon-named constants in comparisons are all
// rejected outside this header. Call sites go through the helpers below.
//
// Bit-identity contract: each helper documents its exact expression shape.
// Migrating a call site is only legal when the replacement evaluates the
// *same* expression (same operand order, same rounding) as the raw form it
// replaces; the cross-check-armed property tests assert schedules did not
// move.
#pragma once

#include <cmath>

namespace rtdls::fp {

/// Absolute slack on simulated-time comparisons (deadline checks,
/// availability ordering, calendar interval arithmetic). The paper-scale
/// magnitudes (times ~1e0..1e6) keep 1e-9 far above representation noise
/// and far below any real schedule gap.
inline constexpr double kTimeTolerance = 1e-9;

/// Relative slack for "accept n-1 nodes" style nudges (dlt/nmin) and the
/// alpha upper-bound check: quantities normalized to ~1.0 where one or two
/// ulps of accumulated error are expected, nothing more.
inline constexpr double kRelSlack = 1e-12;

/// Coarser tolerance used by the simulator's event coalescing: events
/// within this window are treated as simultaneous for wakeup batching
/// (never for schedule decisions, which use kTimeTolerance).
inline constexpr double kEventTolerance = 1e-6;

/// Convergence threshold for the continued-fraction evaluation in
/// stats/student_t (Lentz's algorithm): iterate until the per-step factor
/// is within this of 1.0.
inline constexpr double kConvergenceEps = 3.0e-14;

/// a is beyond b by more than tol. Exactly `a > b + tol`: the canonical
/// deadline-miss test `est > deadline + kTimeTolerance`.
constexpr bool after(double a, double b, double tol = kTimeTolerance) {
  return a > b + tol;
}

/// a falls short of b by more than tol. Exactly `a + tol < b`: the
/// canonical "reservation starts before the node is free" test.
constexpr bool before(double a, double b, double tol = kTimeTolerance) {
  return a + tol < b;
}

/// a is at-or-after b, tolerating tol of undershoot. Exactly `a >= b - tol`.
constexpr bool at_or_after(double a, double b, double tol = kTimeTolerance) {
  return a >= b - tol;
}

/// a is at-or-before b, tolerating tol of overshoot. Exactly `a <= b + tol`.
constexpr bool at_or_before(double a, double b, double tol = kTimeTolerance) {
  return a <= b + tol;
}

/// |a - b| <= tol. NOT transitive: only legal when one side is a fixed
/// anchor (a named constant, or the surviving representative of a dedupe
/// run as in NodeCalendar::candidate_times), never as an equivalence
/// relation over a chain of values.
inline bool near(double a, double b, double tol = kTimeTolerance) {
  return std::fabs(a - b) <= tol;
}

/// |a - b| < tol, strict. Companion of near() for convergence loops whose
/// historical shape used `<` (stats/student_t); the same anchoring rules
/// apply, and migrations must not relax `<` to `<=`.
inline bool near_strict(double a, double b, double tol) {
  return std::fabs(a - b) < tol;
}

/// a <= b within kRelSlack relative. Exactly `a <= b * (1.0 + kRelSlack)`:
/// the n_min "accept n-1" nudge.
constexpr bool le_rel(double a, double b) { return a <= b * (1.0 + kRelSlack); }

/// Deliberate bit-exact equality, typically against a sentinel (0.0 load,
/// unset deadline). Spelling it through this helper records that exactness
/// is intended, which the static check cannot infer from a raw `==`.
constexpr bool exact_eq(double a, double b) { return a == b; }

/// Deliberate bit-exact inequality; see exact_eq.
constexpr bool exact_ne(double a, double b) { return a != b; }

/// x bumped up by a relative rel: exactly `x * (1.0 + rel)`. Used when
/// synthesizing a just-feasible deadline from a minimum cost.
constexpr double rel_above(double x, double rel = kTimeTolerance) {
  return x * (1.0 + rel);
}

}  // namespace rtdls::fp
