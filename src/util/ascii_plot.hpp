// Terminal rendering of reject-ratio curves: the benchmark binaries print
// each figure as an aligned numeric table plus a coarse ASCII chart so the
// paper's plots can be eyeballed without leaving the terminal.
#pragma once

#include <string>
#include <vector>

namespace rtdls::util {

/// One named series of (x, y) points, e.g. "EDF-DLT" over system load.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Rendering options for ascii_chart().
struct PlotOptions {
  int width = 68;    ///< plot area columns
  int height = 16;   ///< plot area rows
  std::string x_label = "x";
  std::string y_label = "y";
  bool y_from_zero = true;  ///< anchor the y axis at 0 (reject ratios)
};

/// Renders the series into a multi-line ASCII chart. Each series uses its own
/// marker character ('*', '+', 'o', 'x', ...); a legend line is appended.
std::string ascii_chart(const std::vector<Series>& series, const PlotOptions& options);

/// Renders an aligned table: header row then one row per entry; columns are
/// padded to the widest cell.
std::string aligned_table(const std::vector<std::vector<std::string>>& rows);

}  // namespace rtdls::util
