// Bounds-checked binary (de)serialization for the service protocol and the
// snapshot files.
//
// Everything is little-endian with fixed widths, doubles travel as their
// IEEE-754 bit patterns (bit_cast through u64), and strings/arrays are
// u32-length-prefixed. That makes every encoded value an exact round trip -
// the property the snapshot/restore bit-identity guarantee and the framed
// socket protocol both build on - and keeps the format platform-independent
// without a serialization dependency.
//
// WireReader never trusts the input: every read is bounds-checked against
// the remaining bytes and throws WireError instead of walking off the
// buffer, and length prefixes are validated against the remaining payload
// BEFORE any allocation, so a hostile 4 GiB length prefix costs an
// exception, not an allocation. The protocol fuzz tests drive random and
// truncated byte strings straight through these readers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rtdls::util {

/// Malformed or truncated wire data (bad length prefix, read past the end).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian values to a byte buffer.
class WireWriter {
 public:
  WireWriter() = default;
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  ///< exact: the IEEE-754 bit pattern via u64

  /// u32 length prefix + raw bytes.
  void string(const std::string& v);
  /// Raw bytes, NO length prefix (appending an already-framed payload);
  /// callers wanting the string() layout write the u32 prefix themselves.
  void bytes(const std::uint8_t* data, std::size_t size);

  /// u32 count prefix + elementwise f64/u64.
  void f64_array(const std::vector<double>& v);
  void u64_array(const std::vector<std::uint64_t>& v);

  const std::vector<std::uint8_t>& buffer() const { return *out_; }
  std::vector<std::uint8_t>& buffer() { return *out_; }
  std::vector<std::uint8_t> take() { return std::move(owned_); }

 private:
  std::vector<std::uint8_t> owned_;
  std::vector<std::uint8_t>* out_ = &owned_;
};

/// Cursor over a byte span; every accessor throws WireError on overrun.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& data)
      : data_(data.data()), size_(data.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();

  std::string string();
  std::vector<double> f64_array();
  std::vector<std::uint64_t> u64_array();

  std::size_t remaining() const { return size_ - offset_; }
  bool done() const { return offset_ == size_; }

  /// Asserts the payload was consumed exactly (trailing garbage is as
  /// malformed as truncation for fixed message layouts).
  void expect_done() const;

 private:
  const std::uint8_t* need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

/// FNV-1a 64-bit over a byte range: the snapshot files' integrity check
/// (detects truncation/corruption; not cryptographic).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

}  // namespace rtdls::util
