#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace rtdls::util {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

std::string format_roundtrip(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ >= 11.
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  double value = 0.0;
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc() || result.ptr != end) return false;
  out = value;
  return true;
}

bool parse_u64(std::string_view s, unsigned long long& out) {
  s = trim(s);
  if (s.empty()) return false;
  unsigned long long value = 0;
  const auto result = std::from_chars(s.data(), s.data() + s.size(), value);
  if (result.ec != std::errc() || result.ptr != s.data() + s.size()) return false;
  out = value;
  return true;
}

}  // namespace rtdls::util
