// Vectorization hints for the batched planning kernels.
//
// The kernels in sched/planner_batch.cpp are written as flat
// structure-of-arrays loops whose vectorizable parts are purely elementwise
// (independent lanes, no cross-iteration reduction), so widening them to
// SIMD cannot change a single bit of the result: IEEE divide/multiply/add
// are exact per lane regardless of vector width, and the serial prefix
// scans that ARE order-sensitive stay scalar. The RTDLS_SIMD cmake option
// turns on wide codegen (-march=x86-64-v3) with FP contraction pinned off
// (-ffp-contract=off) - fused multiply-adds round once instead of twice and
// WOULD diverge from the scalar reference - and defines RTDLS_SIMD_ENABLED,
// which arms the ivdep hint below. The differential property tests run
// under both settings in CI and assert bit-identical schedules.
#pragma once

#if defined(RTDLS_SIMD_ENABLED) && defined(__GNUC__) && !defined(__clang__)
#define RTDLS_IVDEP _Pragma("GCC ivdep")
#elif defined(RTDLS_SIMD_ENABLED) && defined(__clang__)
#define RTDLS_IVDEP _Pragma("clang loop vectorize(enable)")
#else
#define RTDLS_IVDEP
#endif
