#include "util/wire.hpp"

#include <bit>
#include <cstring>

namespace rtdls::util {

namespace {

void append_le(std::vector<std::uint8_t>& out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

void WireWriter::u8(std::uint8_t v) { append_le(*out_, v, 1); }
void WireWriter::u16(std::uint16_t v) { append_le(*out_, v, 2); }
void WireWriter::u32(std::uint32_t v) { append_le(*out_, v, 4); }
void WireWriter::u64(std::uint64_t v) { append_le(*out_, v, 8); }
void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::string(const std::string& v) {
  if (v.size() > UINT32_MAX) throw WireError("WireWriter: string too long");
  u32(static_cast<std::uint32_t>(v.size()));
  out_->insert(out_->end(), v.begin(), v.end());
}

void WireWriter::bytes(const std::uint8_t* data, std::size_t size) {
  out_->insert(out_->end(), data, data + size);
}

void WireWriter::f64_array(const std::vector<double>& v) {
  if (v.size() > UINT32_MAX) throw WireError("WireWriter: array too long");
  u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) f64(x);
}

void WireWriter::u64_array(const std::vector<std::uint64_t>& v) {
  if (v.size() > UINT32_MAX) throw WireError("WireWriter: array too long");
  u32(static_cast<std::uint32_t>(v.size()));
  for (std::uint64_t x : v) u64(x);
}

const std::uint8_t* WireReader::need(std::size_t n) {
  if (size_ - offset_ < n) {
    throw WireError("wire: truncated (need " + std::to_string(n) + " bytes, have " +
                    std::to_string(size_ - offset_) + ")");
  }
  const std::uint8_t* at = data_ + offset_;
  offset_ += n;
  return at;
}

std::uint8_t WireReader::u8() { return *need(1); }

std::uint16_t WireReader::u16() {
  const std::uint8_t* p = need(2);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t WireReader::u32() {
  const std::uint8_t* p = need(4);
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t WireReader::u64() {
  const std::uint8_t* p = need(8);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::string() {
  const std::uint32_t n = u32();
  // Validate the prefix against what is actually left before allocating:
  // a hostile length costs an exception, never an allocation.
  if (n > remaining()) throw WireError("wire: string length exceeds payload");
  const std::uint8_t* p = need(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::vector<double> WireReader::f64_array() {
  const std::uint32_t n = u32();
  if (static_cast<std::uint64_t>(n) * 8 > remaining()) {
    throw WireError("wire: array length exceeds payload");
  }
  std::vector<double> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

std::vector<std::uint64_t> WireReader::u64_array() {
  const std::uint32_t n = u32();
  if (static_cast<std::uint64_t>(n) * 8 > remaining()) {
    throw WireError("wire: array length exceeds payload");
  }
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(u64());
  return v;
}

void WireReader::expect_done() const {
  if (offset_ != size_) {
    throw WireError("wire: " + std::to_string(size_ - offset_) + " trailing bytes");
  }
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace rtdls::util
