#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace rtdls::util {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) (*out_) << ',';
    (*out_) << escape(fields[i]);
  }
  (*out_) << '\n';
  ++rows_;
}

void CsvWriter::write_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    // Bit-exact double round-trips (trace replay relies on reloaded
    // workloads being identical to the generated ones).
    fields.push_back(format_roundtrip(v));
  }
  write_row(fields);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(row);
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    // Unterminated quote: treat remainder as the field's content.
    in_quotes = false;
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

std::vector<std::vector<std::string>> parse_csv_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("parse_csv_file: cannot open " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return parse_csv(text.str());
}

}  // namespace rtdls::util
