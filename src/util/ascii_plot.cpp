#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace rtdls::util {

namespace {

constexpr char kMarkers[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
  double span() const { return hi - lo; }
};

}  // namespace

std::string ascii_chart(const std::vector<Series>& series, const PlotOptions& options) {
  Range xr;
  Range yr;
  for (const Series& s : series) {
    for (double v : s.x) {
      if (std::isfinite(v)) xr.include(v);
    }
    for (double v : s.y) {
      if (std::isfinite(v)) yr.include(v);
    }
  }
  if (!xr.valid() || !yr.valid()) return "(no data)\n";
  if (options.y_from_zero) yr.include(0.0);
  if (xr.span() <= 0.0) xr.hi = xr.lo + 1.0;
  if (yr.span() <= 0.0) yr.hi = yr.lo + 1.0;

  const int w = std::max(options.width, 8);
  const int h = std::max(options.height, 4);
  std::vector<std::string> grid(static_cast<size_t>(h), std::string(static_cast<size_t>(w), ' '));

  for (size_t si = 0; si < series.size(); ++si) {
    const char marker = kMarkers[si % sizeof(kMarkers)];
    const Series& s = series[si];
    const size_t points = std::min(s.x.size(), s.y.size());
    for (size_t i = 0; i < points; ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      const double fx = (s.x[i] - xr.lo) / xr.span();
      const double fy = (s.y[i] - yr.lo) / yr.span();
      int col = static_cast<int>(std::lround(fx * (w - 1)));
      int row = (h - 1) - static_cast<int>(std::lround(fy * (h - 1)));
      col = std::clamp(col, 0, w - 1);
      row = std::clamp(row, 0, h - 1);
      grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = marker;
    }
  }

  std::ostringstream out;
  char label[64];
  for (int row = 0; row < h; ++row) {
    const double y_value = yr.hi - (yr.span() * row) / (h - 1);
    std::snprintf(label, sizeof(label), "%8.4f |", y_value);
    out << label << grid[static_cast<size_t>(row)] << '\n';
  }
  out << std::string(9, ' ') << '+' << std::string(static_cast<size_t>(w), '-') << '\n';
  std::snprintf(label, sizeof(label), "%8.3f", xr.lo);
  std::string x_axis(9, ' ');
  x_axis += label;
  x_axis += std::string(static_cast<size_t>(std::max(0, w - 16)), ' ');
  std::snprintf(label, sizeof(label), "%8.3f", xr.hi);
  x_axis += label;
  out << x_axis << "  (" << options.x_label << ")\n";

  out << "  legend:";
  for (size_t si = 0; si < series.size(); ++si) {
    out << "  " << kMarkers[si % sizeof(kMarkers)] << " = " << series[si].name;
  }
  out << "   y: " << options.y_label << '\n';
  return out.str();
}

std::string aligned_table(const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace rtdls::util
