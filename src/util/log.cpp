#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/strings.hpp"

namespace rtdls::util {

namespace {
std::mutex g_sink_mutex;
}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

LogLevel parse_log_level(std::string_view name) {
  const std::string lowered = to_lower(name);
  if (lowered == "trace") return LogLevel::kTrace;
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off" || lowered == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger::Logger() : level_(LogLevel::kWarn), epoch_(std::chrono::steady_clock::now()) {
  init_from_env();
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

double Logger::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void Logger::write(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  // Monotonic elapsed time, not wall clock: lines from one process compare
  // and diff cleanly, and the stamp can never run backwards.
  std::fprintf(stderr, "[rtdls:%.*s +%.3f] %.*s\n",
               static_cast<int>(log_level_name(level).size()), log_level_name(level).data(),
               elapsed_seconds(),
               static_cast<int>(message.size()), message.data());
}

void Logger::init_from_env() {
  if (const char* env = std::getenv("RTDLS_LOG"); env != nullptr) {
    set_level(parse_log_level(env));
  }
}

}  // namespace rtdls::util
