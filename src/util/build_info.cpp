#include "util/build_info.hpp"

#include "obs/trace.hpp"

namespace rtdls::util {

bool build_simd() {
#ifdef RTDLS_SIMD_ENABLED
  return true;
#else
  return false;
#endif
}

bool build_asan() {
#if defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

bool build_trace() {
#if RTDLS_TRACE_ENABLED
  return true;
#else
  return false;
#endif
}

std::string build_description() {
  std::string compiler;
#if defined(__clang__)
  compiler = "clang " + std::to_string(__clang_major__) + "." +
             std::to_string(__clang_minor__) + "." + std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  compiler = "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) + "." +
             std::to_string(__GNUC_PATCHLEVEL__);
#else
  compiler = "unknown compiler";
#endif
#ifdef NDEBUG
  const char* mode = "Release";
#else
  const char* mode = "Debug";
#endif
  return "rtdls (" + compiler + ", " + mode + std::string(", simd=") +
         (build_simd() ? "on" : "off") + ", asan=" + (build_asan() ? "on" : "off") +
         ", trace=" + (build_trace() ? "on" : "off") + ")";
}

}  // namespace rtdls::util
