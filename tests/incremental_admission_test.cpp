// Property tests for the incremental admission session (sched/admission):
// on randomized workloads the incremental simulator must produce schedules
// BIT-IDENTICAL to the full Figure-2 re-plan, for both policies, with and
// without calendar (backfilling) rules, and the parallel sweep runner must
// be byte-identical to the serial one.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "sim/schedule_log.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace rtdls {
namespace {

workload::WorkloadParams random_params(std::uint64_t seed, double load, double dc_ratio) {
  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = load;
  params.dc_ratio = dc_ratio;
  params.total_time = 120000.0;
  params.seed = seed;
  return params;
}

/// Runs `algorithm` over `tasks` twice - incremental session (with the
/// controller's own full-test cross-check armed) and full stateless test -
/// and asserts every committed reservation and every counter agrees.
void expect_identical_schedules(const std::string& algorithm,
                                const workload::WorkloadParams& params,
                                sim::ReleasePolicy release_policy) {
  const auto tasks = workload::generate_workload(params);

  sim::ScheduleLog incremental_log;
  sim::SimulatorConfig incremental_config;
  incremental_config.params = params.cluster;
  incremental_config.release_policy = release_policy;
  incremental_config.incremental_admission = true;
  incremental_config.cross_check_admission = true;  // throws on any divergence
  incremental_config.schedule_log = &incremental_log;

  sim::ScheduleLog full_log;
  sim::SimulatorConfig full_config = incremental_config;
  full_config.incremental_admission = false;
  full_config.cross_check_admission = false;
  full_config.schedule_log = &full_log;

  const sim::SimMetrics inc = sim::simulate(incremental_config, algorithm, tasks,
                                            params.total_time);
  const sim::SimMetrics full = sim::simulate(full_config, algorithm, tasks,
                                             params.total_time);

  ASSERT_EQ(inc.arrivals, full.arrivals);
  ASSERT_EQ(inc.accepted, full.accepted) << algorithm;
  ASSERT_EQ(inc.rejected, full.rejected) << algorithm;
  ASSERT_EQ(inc.reject_reasons, full.reject_reasons);
  ASSERT_EQ(inc.theorem4_violations, full.theorem4_violations);
  ASSERT_EQ(inc.deadline_misses, full.deadline_misses);
  // Bitwise equality on the streamed statistics: identical schedules feed
  // identical observation sequences.
  EXPECT_EQ(inc.response_time.mean(), full.response_time.mean());
  EXPECT_EQ(inc.wait_time.mean(), full.wait_time.mean());
  EXPECT_EQ(inc.deadline_slack.mean(), full.deadline_slack.mean());
  EXPECT_EQ(inc.busy_time, full.busy_time);
  EXPECT_EQ(inc.idle_gap_time, full.idle_gap_time);

  // Every committed per-node reservation, in commit order, bit for bit.
  ASSERT_EQ(incremental_log.size(), full_log.size()) << algorithm;
  for (std::size_t i = 0; i < incremental_log.size(); ++i) {
    const sim::ScheduleEntry& a = incremental_log.entries()[i];
    const sim::ScheduleEntry& b = full_log.entries()[i];
    ASSERT_EQ(a.task, b.task) << algorithm << " entry " << i;
    ASSERT_EQ(a.node, b.node) << algorithm << " entry " << i;
    ASSERT_EQ(a.usable_from, b.usable_from) << algorithm << " entry " << i;
    ASSERT_EQ(a.start, b.start) << algorithm << " entry " << i;
    ASSERT_EQ(a.end, b.end) << algorithm << " entry " << i;
    ASSERT_EQ(a.alpha, b.alpha) << algorithm << " entry " << i;
  }
}

TEST(IncrementalAdmission, MatchesFullReplanAcrossRandomWorkloads) {
  // 2 policies x 2 rules x randomized (seed, load, DCRatio) cells. Loose
  // deadlines (high DCRatio) build the deep waiting queues that exercise
  // insertion mid-queue, policy-front commits, and rejected rebuilds.
  const char* algorithms[] = {"EDF-DLT", "FIFO-DLT", "EDF-OPR-MN", "FIFO-OPR-MN"};
  const std::uint64_t seeds[] = {1, 7, 20070227};
  const double loads[] = {0.4, 0.9, 1.2};
  const double dc_ratios[] = {2.0, 25.0};
  for (const char* algorithm : algorithms) {
    for (std::uint64_t seed : seeds) {
      for (double load : loads) {
        for (double dc : dc_ratios) {
          expect_identical_schedules(algorithm, random_params(seed, load, dc),
                                     sim::ReleasePolicy::kEstimate);
        }
      }
    }
  }
}

TEST(IncrementalAdmission, MatchesFullReplanUnderEarlyRelease) {
  // kActual releases mutate availability outside the admission session's
  // model; the session must detect it (version bump) and rebuild, never
  // diverge.
  for (const char* algorithm : {"EDF-DLT", "FIFO-DLT"}) {
    expect_identical_schedules(algorithm, random_params(3, 1.0, 20.0),
                               sim::ReleasePolicy::kActual);
  }
}

TEST(IncrementalAdmission, CalendarRulesTakeTheFullTestPath) {
  // Backfilling rules cannot use the incremental session (plans depend on
  // the whole reservation calendar); the simulator must route them through
  // the full test and still produce identical schedules with the
  // incremental flag on or off.
  expect_identical_schedules("EDF-OPR-MN-BF", random_params(5, 0.8, 10.0),
                             sim::ReleasePolicy::kEstimate);
  expect_identical_schedules("FIFO-OPR-MN-BF", random_params(9, 0.8, 10.0),
                             sim::ReleasePolicy::kEstimate);
}

TEST(IncrementalAdmission, SimulatorInstanceIsReusableAcrossRuns) {
  // run() must reset all per-run state in place: the same instance run
  // twice on the same trace gives bitwise-identical results, and a run on
  // a different trace in between must not leak state.
  const auto params_a = random_params(2, 1.0, 20.0);
  const auto params_b = random_params(4, 0.5, 2.0);
  const auto tasks_a = workload::generate_workload(params_a);
  const auto tasks_b = workload::generate_workload(params_b);

  sim::SimulatorConfig config;
  config.params = params_a.cluster;
  const sched::Algorithm algorithm = sched::make_algorithm("EDF-DLT");
  sim::ClusterSimulator simulator(config, algorithm);

  const sim::SimMetrics first = simulator.run(tasks_a, params_a.total_time);
  simulator.run(tasks_b, params_b.total_time);
  const sim::SimMetrics again = simulator.run(tasks_a, params_a.total_time);

  EXPECT_EQ(first.accepted, again.accepted);
  EXPECT_EQ(first.rejected, again.rejected);
  EXPECT_EQ(first.busy_time, again.busy_time);
  EXPECT_EQ(first.response_time.mean(), again.response_time.mean());
  EXPECT_EQ(first.queue_length.max(), again.queue_length.max());
}

TEST(SweepDeterminism, PooledAndSerialSweepsAreByteIdentical) {
  exp::SweepSpec spec;
  spec.id = "determinism";
  spec.title = "pooled vs serial";
  spec.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  spec.loads = {0.4, 0.8, 1.0};
  spec.algorithms = {"EDF-OPR-MN", "EDF-DLT", "FIFO-DLT"};
  spec.runs = 3;
  spec.sim_time = 80000.0;

  const exp::SweepResult serial = exp::run_sweep(spec, nullptr);
  util::ThreadPool pool(4);
  const exp::SweepResult pooled = exp::run_sweep(spec, &pool);

  ASSERT_EQ(serial.curves.size(), pooled.curves.size());
  for (std::size_t a = 0; a < serial.curves.size(); ++a) {
    EXPECT_EQ(serial.curves[a].algorithm, pooled.curves[a].algorithm);
    for (std::size_t m = 0; m < exp::kSweepMetricCount; ++m) {
      const exp::MetricSeries& s = serial.curves[a].metrics[m];
      const exp::MetricSeries& p = pooled.curves[a].metrics[m];
      ASSERT_EQ(s.raw.size(), p.raw.size());
      for (std::size_t i = 0; i < s.raw.size(); ++i) {
        EXPECT_EQ(s.raw[i], p.raw[i])  // bitwise, not almost-equal
            << serial.curves[a].algorithm << " metric " << m << " sample " << i;
      }
      ASSERT_EQ(s.per_load.size(), p.per_load.size());
      for (std::size_t l = 0; l < s.per_load.size(); ++l) {
        EXPECT_EQ(s.per_load[l].mean, p.per_load[l].mean);
        EXPECT_EQ(s.per_load[l].half_width, p.per_load[l].half_width);
        EXPECT_EQ(s.per_load[l].samples, p.per_load[l].samples);
      }
    }
  }
}

}  // namespace
}  // namespace rtdls
