// Tests for the extension features: output-data transfer (*-IO rules and
// the result-collection rollout), the general heterogeneous partition, and
// the backfilling comparator (OPR-MN-BF).
#include <gtest/gtest.h>

#include <cmath>

#include "dlt/het_model.hpp"
#include "dlt/homogeneous.hpp"
#include "dlt/nmin.hpp"
#include "dlt/output_model.hpp"
#include "sched/admission.hpp"
#include "sched/registry.hpp"
#include "sim/exec_model.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"
#include "workload/distributions.hpp"
#include "workload/generator.hpp"

namespace rtdls {
namespace {

cluster::ClusterParams paper_params() {
  return {.node_count = 16, .cms = 1.0, .cps = 100.0};
}

workload::Task make_task(cluster::TaskId id, double arrival, double sigma, double deadline,
                         std::size_t user_nodes = 8) {
  workload::Task task;
  task.id = id;
  task.spec = {arrival, sigma, deadline};
  task.user_nodes = user_nodes;
  return task;
}

// --- general heterogeneous partition -----------------------------------------

TEST(GeneralHet, UniformCostsMatchHomogeneous) {
  const std::vector<double> cps(8, 100.0);
  const auto alpha = dlt::general_het_alpha(1.0, cps);
  const auto reference = dlt::homogeneous_partition(paper_params(), 8);
  ASSERT_EQ(alpha.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(alpha[i], reference[i], 1e-12);
  EXPECT_NEAR(dlt::general_het_execution_time(1.0, cps, 200.0),
              dlt::homogeneous_execution_time(paper_params(), 200.0, 8), 1e-8);
}

TEST(GeneralHet, FasterNodesGetMoreLoad) {
  // Genuinely heterogeneous cluster: node costs 50, 100, 200 (fast first).
  const std::vector<double> cps{50.0, 100.0, 200.0};
  const auto alpha = dlt::general_het_alpha(1.0, cps);
  EXPECT_GT(alpha[0], alpha[1]);
  EXPECT_GT(alpha[1], alpha[2]);
  double sum = 0.0;
  for (double a : alpha) sum += a;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(GeneralHet, EqualModelFinishTimesForArbitraryCosts) {
  const std::vector<double> cps{37.0, 81.0, 144.0, 500.0};
  const double cms = 2.5;
  const double sigma = 123.0;
  const auto alpha = dlt::general_het_alpha(cms, cps);
  double prefix = 0.0;
  double reference = -1.0;
  for (std::size_t i = 0; i < cps.size(); ++i) {
    prefix += alpha[i] * sigma * cms;
    const double finish = prefix + alpha[i] * sigma * cps[i];
    if (i == 0) {
      reference = finish;
    } else {
      EXPECT_NEAR(finish, reference, reference * 1e-9);
    }
  }
  EXPECT_NEAR(reference, dlt::general_het_execution_time(cms, cps, sigma),
              reference * 1e-9);
}

TEST(GeneralHet, InvalidInputsThrow) {
  EXPECT_THROW(dlt::general_het_alpha(0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(dlt::general_het_alpha(1.0, {}), std::invalid_argument);
  EXPECT_THROW(dlt::general_het_alpha(1.0, {1.0, -1.0}), std::invalid_argument);
}

// --- output model ---------------------------------------------------------------

TEST(OutputModel, ChannelTimeAndBudget) {
  EXPECT_DOUBLE_EQ(dlt::output_channel_time(paper_params(), 200.0, 0.2), 40.0);
  EXPECT_DOUBLE_EQ(dlt::output_channel_time(paper_params(), 200.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(dlt::output_completion_bound(paper_params(), 200.0, 0.2, 1000.0),
                   1040.0);
  EXPECT_DOUBLE_EQ(dlt::input_phase_deadline(paper_params(), 200.0, 0.2, 3000.0), 2960.0);
  EXPECT_THROW(dlt::output_channel_time(paper_params(), 200.0, -0.1),
               std::invalid_argument);
}

TEST(OutputModel, RolloutRespectsBoundUnderFuzz) {
  // Property: the exact result-collection rollout never exceeds the bound
  // input_completion + delta*sigma*Cms used for admission.
  workload::Xoshiro256StarStar rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    const double sigma = workload::sample_uniform(rng, 10.0, 800.0);
    const double delta = workload::sample_uniform(rng, 0.0, 1.5);
    const std::size_t n =
        static_cast<std::size_t>(workload::sample_uniform_int(rng, 1, 16));
    std::vector<cluster::Time> available;
    for (std::size_t i = 0; i < n; ++i) {
      available.push_back(workload::sample_uniform(rng, 0.0, 4000.0));
    }
    const dlt::HetPartition part =
        dlt::build_het_partition(paper_params(), sigma, available);

    sched::TaskPlan plan;
    plan.task = 1;
    plan.nodes = n;
    plan.available = part.available;
    plan.reserve_from = part.available;
    plan.alpha = part.alpha;
    plan.est_completion = part.estimated_completion();
    plan.node_release.assign(n, plan.est_completion);

    const sim::ResultTimeline timeline =
        sim::roll_out_with_results(paper_params(), sigma, delta, plan);
    const cluster::Time bound = dlt::output_completion_bound(
        paper_params(), sigma, delta, part.estimated_completion());
    ASSERT_LE(timeline.task_completion, bound * (1.0 + 1e-9)) << "trial " << trial;
    // Results leave only after their node computed.
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_GE(timeline.result_tx_start[i] + 1e-9, timeline.input.completion[i]);
    }
  }
}

TEST(OutputModel, ZeroDeltaDegeneratesToInputTimeline) {
  const std::vector<cluster::Time> available{0.0, 100.0};
  const dlt::HetPartition part = dlt::build_het_partition(paper_params(), 200.0, available);
  sched::TaskPlan plan;
  plan.task = 1;
  plan.nodes = 2;
  plan.available = part.available;
  plan.reserve_from = part.available;
  plan.alpha = part.alpha;
  plan.est_completion = part.estimated_completion();
  plan.node_release.assign(2, plan.est_completion);
  const sim::ResultTimeline timeline =
      sim::roll_out_with_results(paper_params(), 200.0, 0.0, plan);
  EXPECT_DOUBLE_EQ(timeline.task_completion, timeline.input.task_completion());
}

// --- *-IO rules -------------------------------------------------------------------

TEST(OutputRule, BudgetsResultPhaseIntoDeadline) {
  const sched::Algorithm io = sched::make_algorithm("EDF-DLT-IO20");
  const sched::Algorithm plain = sched::make_algorithm("EDF-DLT");
  const workload::Task task = make_task(1, 0.0, 200.0, 3000.0);
  std::vector<cluster::Time> free_times(16, 0.0);
  sched::PlanRequest request;
  request.task = &task;
  request.params = paper_params();
  request.free_times = &free_times;

  const sched::PlanResult with_io = io.rule->plan(request);
  const sched::PlanResult without = plain.rule->plan(request);
  ASSERT_TRUE(with_io.feasible());
  ASSERT_TRUE(without.feasible());
  // The input phase planned against the tighter deadline needs at least as
  // many nodes; the result channel time rides on top of that input plan
  // (the total can undercut the plain estimate - more nodes, faster input).
  EXPECT_LE(with_io.plan.est_completion, task.abs_deadline() + 1e-9);
  EXPECT_GE(with_io.plan.nodes, without.plan.nodes);
  workload::Task tighter = task;
  tighter.spec.rel_deadline -= dlt::output_channel_time(paper_params(), 200.0, 0.2);
  sched::PlanRequest tight_request = request;
  tight_request.task = &tighter;
  const sched::PlanResult input_only = plain.rule->plan(tight_request);
  ASSERT_TRUE(input_only.feasible());
  EXPECT_NEAR(with_io.plan.est_completion,
              input_only.plan.est_completion +
                  dlt::output_channel_time(paper_params(), 200.0, 0.2),
              1e-9);
}

TEST(OutputRule, RejectsWhenResultsAloneBlowDeadline) {
  // delta*sigma*Cms = 0.5 * 600 * 1 = 300 >= D = 250.
  const sched::Algorithm io = sched::make_algorithm("EDF-DLT-IO50");
  const workload::Task task = make_task(1, 0.0, 600.0, 250.0);
  std::vector<cluster::Time> free_times(16, 0.0);
  sched::PlanRequest request;
  request.task = &task;
  request.params = paper_params();
  request.free_times = &free_times;
  const sched::PlanResult result = io.rule->plan(request);
  EXPECT_FALSE(result.feasible());
}

TEST(OutputRule, EndToEndNoMissesWhenConfigMatches) {
  workload::WorkloadParams params;
  params.cluster = paper_params();
  params.system_load = 0.7;
  params.total_time = 300000.0;
  params.seed = 33;
  const auto tasks = workload::generate_workload(params);

  sim::SimulatorConfig config;
  config.params = params.cluster;
  config.output_ratio = 0.2;
  const sim::SimMetrics metrics =
      sim::simulate(config, "EDF-DLT-IO20", tasks, params.total_time);
  EXPECT_EQ(metrics.theorem4_violations, 0u);
  EXPECT_EQ(metrics.deadline_misses, 0u);
  EXPECT_GT(metrics.accepted, 0u);
}

TEST(OutputRule, MismatchedConfigIsDetected) {
  // Plain DLT admission (no result budget) + output traffic in execution:
  // the validator must catch estimate violations - this guards users
  // against misconfiguring delta.
  util::Logger::instance().set_level(util::LogLevel::kOff);  // intentional violations
  workload::WorkloadParams params;
  params.cluster = paper_params();
  params.system_load = 0.9;
  params.total_time = 300000.0;
  params.seed = 34;
  const auto tasks = workload::generate_workload(params);

  sim::SimulatorConfig config;
  config.params = params.cluster;
  config.output_ratio = 0.5;
  const sim::SimMetrics metrics = sim::simulate(config, "EDF-DLT", tasks, params.total_time);
  EXPECT_GT(metrics.theorem4_violations + metrics.deadline_misses, 0u);
}

TEST(OutputRule, RegistryParsesAndRejectsNames) {
  EXPECT_NO_THROW(sched::make_algorithm("EDF-DLT-IO20"));
  EXPECT_NO_THROW(sched::make_algorithm("FIFO-OPR-MN-IO5"));
  EXPECT_NO_THROW(sched::make_algorithm("EDF-UserSplit-IO100"));
  EXPECT_THROW(sched::make_algorithm("EDF-DLT-IOxx"), std::invalid_argument);
  EXPECT_THROW(sched::make_algorithm("EDF-IO20"), std::invalid_argument);
}

// --- backfilling comparator ----------------------------------------------------

TEST(BackfillRule, RequiresCalendar) {
  const sched::Algorithm bf = sched::make_algorithm("EDF-OPR-MN-BF");
  EXPECT_TRUE(bf.rule->uses_calendar());
  const workload::Task task = make_task(1, 0.0, 200.0, 3000.0);
  std::vector<cluster::Time> free_times(16, 0.0);
  sched::PlanRequest request;
  request.task = &task;
  request.params = paper_params();
  request.free_times = &free_times;
  EXPECT_THROW(bf.rule->plan(request), std::invalid_argument);
}

TEST(BackfillRule, IdleClusterMatchesOprMn) {
  const sched::Algorithm bf = sched::make_algorithm("EDF-OPR-MN-BF");
  const sched::Algorithm mn = sched::make_algorithm("EDF-OPR-MN");
  const workload::Task task = make_task(1, 0.0, 200.0, 3000.0);
  std::vector<cluster::Time> free_times(16, 0.0);
  cluster::NodeCalendar calendar(16);
  sched::PlanRequest request;
  request.task = &task;
  request.params = paper_params();
  request.free_times = &free_times;
  request.calendar = &calendar;
  const sched::PlanResult a = bf.rule->plan(request);
  const sched::PlanResult b = mn.rule->plan(request);
  ASSERT_TRUE(a.feasible());
  ASSERT_TRUE(b.feasible());
  EXPECT_EQ(a.plan.nodes, b.plan.nodes);
  EXPECT_NEAR(a.plan.est_completion, b.plan.est_completion, 1e-9);
  EXPECT_EQ(a.plan.node_ids.size(), a.plan.nodes);
}

TEST(BackfillRule, FillsAGapInFrontOfAReservation) {
  // All 16 nodes reserved [5000, 6000); a short task fits in front at t=0,
  // which the release-time OPR-MN view (free at 6000) cannot see.
  cluster::NodeCalendar calendar(16);
  for (cluster::NodeId id = 0; id < 16; ++id) calendar.reserve(id, 5000.0, 6000.0);
  std::vector<cluster::Time> release_view(16, 6000.0);

  const workload::Task task = make_task(1, 0.0, 30.0, 3000.0);
  sched::PlanRequest request;
  request.task = &task;
  request.params = paper_params();
  request.free_times = &release_view;
  request.calendar = &calendar;

  const sched::Algorithm bf = sched::make_algorithm("EDF-OPR-MN-BF");
  const sched::PlanResult backfilled = bf.rule->plan(request);
  ASSERT_TRUE(backfilled.feasible());
  EXPECT_DOUBLE_EQ(backfilled.plan.available.front(), 0.0);
  EXPECT_LE(backfilled.plan.est_completion, 3000.0);

  const sched::Algorithm mn = sched::make_algorithm("EDF-OPR-MN");
  EXPECT_FALSE(mn.rule->plan(request).feasible());  // release view: too late
}

TEST(BackfillRule, NudgedNminOvershootRetriesInsteadOfRejecting) {
  // Regression: minimum_nodes' "accept n-1 within 1e-12 relative slack"
  // nudge can return an n whose E(sigma, n) overshoots the slack by more
  // than the rule's 1e-9 absolute tolerance at large time magnitudes. The
  // backfill rule used to hard-stop the whole candidate scan there and
  // reject the task; it must instead retry with one extra node.
  const cluster::ClusterParams params = paper_params();
  const double deadline = 2.0e6;  // large slack so the overshoot dwarfs 1e-9
  const double beta = params.beta();

  // The nudge fires when log(gamma)/log(beta) lands just above an integer
  // k; sweep sigma through the fp window around each gamma = beta^k
  // crossing until minimum_nodes returns an n that the rule's own
  // completion check would have rejected.
  double trigger_sigma = 0.0;
  dlt::NminResult trigger_need;
  for (int k = 3; k <= 8 && trigger_sigma == 0.0; ++k) {
    const double center = deadline * (1.0 - std::pow(beta, k));
    for (double sigma = center - 2e-3; sigma <= center + 2e-3; sigma += 5e-7) {
      const dlt::NminResult need = dlt::minimum_nodes(params, sigma, deadline, 0.0);
      if (!need.feasible() || need.nodes > params.node_count) continue;
      const double duration =
          dlt::homogeneous_execution_time(params, sigma, need.nodes);
      if (duration > deadline + 1e-9) {
        trigger_sigma = sigma;
        trigger_need = need;
        break;
      }
    }
  }
  if (trigger_sigma == 0.0) {
    // Whether the sweep hits the last-ulp window depends on the platform's
    // libm rounding; on this repo's reference toolchain (glibc/x86-64) it
    // reliably does. Skip rather than fail elsewhere.
    GTEST_SKIP() << "no nudge-trigger parameters found on this libm";
  }

  // On an empty calendar the only candidate time is t=0, so pre-fix the
  // rule rejected this task outright.
  cluster::NodeCalendar calendar(params.node_count);
  std::vector<cluster::Time> free_times(params.node_count, 0.0);
  const workload::Task task = make_task(1, 0.0, trigger_sigma, deadline);
  sched::PlanRequest request;
  request.task = &task;
  request.params = params;
  request.free_times = &free_times;
  request.calendar = &calendar;

  const sched::Algorithm bf = sched::make_algorithm("EDF-OPR-MN-BF");
  const sched::PlanResult result = bf.rule->plan(request);
  ASSERT_TRUE(result.feasible()) << "nudge overshoot still rejects the task";
  EXPECT_EQ(result.plan.nodes, trigger_need.nodes + 1);
  EXPECT_LE(result.plan.est_completion, deadline + 1e-9);
}

TEST(BackfillRule, AdmissionKeepsPlansConflictFree) {
  const sched::Algorithm bf = sched::make_algorithm("FIFO-OPR-MN-BF");
  sched::AdmissionController controller(bf.policy, bf.rule.get());
  cluster::NodeCalendar calendar(16);
  std::vector<cluster::Time> free_times(16, 0.0);

  const workload::Task a = make_task(1, 0.0, 200.0, 2000.0);
  const workload::Task b = make_task(2, 0.0, 200.0, 30000.0);
  const workload::Task c = make_task(3, 0.0, 100.0, 30000.0);
  const sched::AdmissionOutcome outcome =
      controller.test(&c, {&a, &b}, paper_params(), free_times, 0.0, &calendar);
  ASSERT_TRUE(outcome.accepted);
  // Replaying every plan into a fresh calendar must not conflict.
  cluster::NodeCalendar replay(16);
  for (const sched::ScheduledTask& scheduled : outcome.schedule) {
    for (std::size_t i = 0; i < scheduled.plan.nodes; ++i) {
      EXPECT_NO_THROW(replay.reserve(scheduled.plan.node_ids[i],
                                     scheduled.plan.reserve_from[i],
                                     scheduled.plan.node_release[i]));
    }
  }
}

TEST(BackfillRule, EndToEndNeverWorseThanOprMn) {
  workload::WorkloadParams params;
  params.cluster = paper_params();
  params.total_time = 400000.0;
  params.seed = 35;
  for (double load : {0.4, 0.9}) {
    params.system_load = load;
    const auto tasks = workload::generate_workload(params);
    sim::SimulatorConfig config;
    config.params = params.cluster;
    const double bf = sim::simulate(config, "EDF-OPR-MN-BF", tasks, params.total_time)
                          .reject_ratio();
    const double mn =
        sim::simulate(config, "EDF-OPR-MN", tasks, params.total_time).reject_ratio();
    EXPECT_LE(bf, mn + 0.01) << "load " << load;
  }
}

TEST(BackfillRule, SimulatorInvariantsHoldInCalendarMode) {
  workload::WorkloadParams params;
  params.cluster = paper_params();
  params.system_load = 0.8;
  params.total_time = 400000.0;
  params.seed = 36;
  const auto tasks = workload::generate_workload(params);
  sim::SimulatorConfig config;
  config.params = params.cluster;
  const sim::SimMetrics metrics =
      sim::simulate(config, "EDF-OPR-MN-BF", tasks, params.total_time);
  EXPECT_EQ(metrics.theorem4_violations, 0u);
  EXPECT_EQ(metrics.deadline_misses, 0u);
  EXPECT_EQ(metrics.accepted + metrics.rejected, metrics.arrivals);
  if (metrics.accepted > 0) {
    EXPECT_GE(metrics.deadline_slack.min(), -1e-6);
  }
  EXPECT_GT(metrics.busy_time, 0.0);
}

}  // namespace
}  // namespace rtdls
