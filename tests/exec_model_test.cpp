// Tests for the actual-execution rollout (sim/exec_model), the piece that
// turns Theorem 4 into a runtime-checked invariant.
#include <gtest/gtest.h>

#include "dlt/het_model.hpp"
#include "dlt/homogeneous.hpp"
#include "dlt/user_split.hpp"
#include "sched/partition_rule.hpp"
#include "sim/exec_model.hpp"
#include "workload/distributions.hpp"
#include "workload/rng.hpp"

namespace rtdls::sim {
namespace {

cluster::ClusterParams paper_params() {
  return {.node_count = 16, .cms = 1.0, .cps = 100.0};
}

sched::TaskPlan dlt_plan(double sigma, std::vector<cluster::Time> available) {
  const dlt::HetPartition part =
      dlt::build_het_partition(paper_params(), sigma, std::move(available));
  sched::TaskPlan plan;
  plan.task = 1;
  plan.nodes = part.nodes();
  plan.available = part.available;
  plan.reserve_from = part.available;
  plan.node_release.assign(part.nodes(), part.estimated_completion());
  plan.alpha = part.alpha;
  plan.est_completion = part.estimated_completion();
  return plan;
}

TEST(ExecModel, SequentialChannelNeverOverlaps) {
  const sched::TaskPlan plan = dlt_plan(200.0, {0.0, 100.0, 500.0, 1200.0});
  const ActualTimeline timeline = roll_out(paper_params(), 200.0, plan);
  for (std::size_t i = 1; i < plan.nodes; ++i) {
    EXPECT_GE(timeline.tx_start[i] + 1e-12, timeline.tx_end[i - 1]);
  }
}

TEST(ExecModel, RespectsNodeAvailability) {
  const sched::TaskPlan plan = dlt_plan(200.0, {0.0, 400.0, 800.0});
  const ActualTimeline timeline = roll_out(paper_params(), 200.0, plan);
  for (std::size_t i = 0; i < plan.nodes; ++i) {
    EXPECT_GE(timeline.tx_start[i], plan.reserve_from[i]);
    EXPECT_NEAR(timeline.tx_end[i] - timeline.tx_start[i],
                plan.alpha[i] * 200.0 * 1.0, 1e-9);
    EXPECT_NEAR(timeline.completion[i] - timeline.tx_end[i],
                plan.alpha[i] * 200.0 * 100.0, 1e-9);
  }
}

TEST(ExecModel, Theorem4ActualNeverExceedsEstimate) {
  workload::Xoshiro256StarStar rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const double sigma = workload::sample_uniform(rng, 10.0, 1000.0);
    const std::size_t n =
        static_cast<std::size_t>(workload::sample_uniform_int(rng, 1, 16));
    std::vector<cluster::Time> available;
    for (std::size_t i = 0; i < n; ++i) {
      available.push_back(workload::sample_uniform(rng, 0.0, 5000.0));
    }
    const sched::TaskPlan plan = dlt_plan(sigma, available);
    const ActualTimeline timeline = roll_out(paper_params(), sigma, plan);
    ASSERT_LE(timeline.task_completion(), plan.est_completion * (1.0 + 1e-12))
        << "Theorem 4 violated at trial " << trial;
    // ... and each node also respects its per-node bound.
    const dlt::HetPartition part =
        dlt::build_het_partition(paper_params(), sigma, plan.available);
    const auto bounds = dlt::theorem4_completion_bounds(paper_params(), sigma, part);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_LE(timeline.completion[i], bounds[i] * (1.0 + 1e-12));
    }
  }
}

TEST(ExecModel, OprPlanFinishesExactlyAtEstimate) {
  // All nodes start at r_n with the optimal homogeneous partition: every
  // node's actual completion equals the estimate (zero skew).
  const std::size_t n = 8;
  const cluster::Time rn = 700.0;
  const double sigma = 200.0;
  sched::TaskPlan plan;
  plan.task = 2;
  plan.nodes = n;
  plan.available.assign(n, rn);
  plan.reserve_from.assign(n, rn);
  plan.alpha = dlt::homogeneous_partition(paper_params(), n);
  plan.est_completion = rn + dlt::homogeneous_execution_time(paper_params(), sigma, n);
  plan.node_release.assign(n, plan.est_completion);

  const ActualTimeline timeline = roll_out(paper_params(), sigma, plan);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(timeline.completion[i], plan.est_completion, 1e-6);
  }
}

TEST(ExecModel, UserSplitMatchesEq15Schedule) {
  const double sigma = 200.0;
  const std::vector<cluster::Time> available{0.0, 300.0, 310.0, 900.0};
  const dlt::UserSplitSchedule expected =
      dlt::build_user_split_schedule(paper_params(), sigma, available);

  sched::TaskPlan plan;
  plan.task = 3;
  plan.nodes = 4;
  plan.available = expected.available;
  plan.reserve_from = expected.available;
  plan.node_release = expected.completion;
  plan.alpha.assign(4, 0.25);
  plan.est_completion = expected.task_completion();

  const ActualTimeline timeline = roll_out(paper_params(), sigma, plan);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(timeline.tx_start[i], expected.start[i], 1e-9);
    EXPECT_NEAR(timeline.completion[i], expected.completion[i], 1e-9);
  }
}

TEST(ExecModel, SharedChannelDelaysTransmissions) {
  const sched::TaskPlan plan = dlt_plan(200.0, {0.0, 0.0, 0.0});
  const ActualTimeline dedicated = roll_out(paper_params(), 200.0, plan, 0.0);
  const ActualTimeline contended = roll_out(paper_params(), 200.0, plan, 500.0);
  EXPECT_GE(contended.tx_start[0], 500.0);
  EXPECT_GT(contended.task_completion(), dedicated.task_completion());
}

TEST(ExecModel, InvalidInputsThrow) {
  sched::TaskPlan empty;
  EXPECT_THROW(roll_out(paper_params(), 100.0, empty), std::invalid_argument);
  const sched::TaskPlan plan = dlt_plan(200.0, {0.0});
  EXPECT_THROW(roll_out(paper_params(), 0.0, plan), std::invalid_argument);
}

}  // namespace
}  // namespace rtdls::sim
