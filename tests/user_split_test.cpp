// Tests for User-Split partitioning (Section 4.1.2).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dlt/homogeneous.hpp"
#include "dlt/user_split.hpp"

namespace rtdls::dlt {
namespace {

ClusterParams paper_params() { return {.node_count = 16, .cms = 1.0, .cps = 100.0}; }

TEST(UserSplitMinNodes, ClosedForm) {
  // N_min = ceil(sigma*Cps / (D - sigma*Cms)); sigma=200, D=3000:
  // 20000 / 2800 = 7.14 -> 8.
  const auto n = user_split_min_nodes(paper_params(), 200.0, 3000.0);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 8u);
}

TEST(UserSplitMinNodes, InfeasibleWhenDeadlineBelowTransmission) {
  EXPECT_FALSE(user_split_min_nodes(paper_params(), 200.0, 200.0).has_value());
  EXPECT_FALSE(user_split_min_nodes(paper_params(), 200.0, 150.0).has_value());
}

TEST(UserSplitMinNodes, AtLeastOne) {
  // Very loose deadline -> raw value < 1, clamped to 1.
  const auto n = user_split_min_nodes(paper_params(), 1.0, 1e9);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 1u);
}

TEST(UserSplitMinNodes, NeverBelowDltRequirement) {
  // Equal split is suboptimal, so its N_min is >= the DLT n_min whenever
  // both are defined (compare against the exact homogeneous requirement).
  for (double deadline : {500.0, 1000.0, 3000.0, 10000.0}) {
    const auto n = user_split_min_nodes(paper_params(), 200.0, deadline);
    if (!n.has_value()) continue;
    // Verify the defining inequality and its tightness.
    EXPECT_LE(200.0 * 1.0 + 200.0 * 100.0 / static_cast<double>(*n),
              deadline * (1.0 + 1e-12));
    if (*n > 1) {
      EXPECT_GT(200.0 * 1.0 + 200.0 * 100.0 / static_cast<double>(*n - 1),
                deadline * (1.0 - 1e-12));
    }
  }
}

TEST(UserSplitMinNodes, InvalidInputsThrow) {
  EXPECT_THROW(user_split_min_nodes(paper_params(), 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(user_split_min_nodes(ClusterParams{.node_count = 1, .cms = 0.0, .cps = 1.0},
                                    1.0, 10.0),
               std::invalid_argument);
}

TEST(UserSplitSchedule, AllNodesFreeClosedForm) {
  // All nodes available at t0: C = t0 + sigma*Cms + sigma*Cps/n (Eq. 15
  // with s_n = t0 + (n-1)*sigma*Cms/n).
  const std::size_t n = 8;
  const UserSplitSchedule schedule =
      build_user_split_schedule(paper_params(), 200.0, std::vector<cluster::Time>(n, 50.0));
  EXPECT_NEAR(schedule.task_completion(), 50.0 + 200.0 + 200.0 * 100.0 / 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(schedule.chunk, 25.0);
  // Starts are spaced by exactly one chunk transmission.
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_NEAR(schedule.start[i] - schedule.start[i - 1], 25.0, 1e-12);
  }
}

TEST(UserSplitSchedule, StartRecurrenceHonorsBothConstraints) {
  // Node 2 frees late: its start is its own availability, not the channel.
  const UserSplitSchedule schedule =
      build_user_split_schedule(paper_params(), 100.0, {0.0, 500.0, 510.0});
  const double tx = 100.0 / 3.0 * 1.0;
  EXPECT_DOUBLE_EQ(schedule.start[0], 0.0);
  EXPECT_DOUBLE_EQ(schedule.start[1], 500.0);            // r_2 dominates
  EXPECT_NEAR(schedule.start[2], 500.0 + tx, 1e-12);     // channel dominates
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(schedule.completion[i], schedule.start[i] + tx + 100.0 / 3.0 * 100.0,
                1e-9);
  }
}

TEST(UserSplitSchedule, CompletionsNondecreasing) {
  const UserSplitSchedule schedule =
      build_user_split_schedule(paper_params(), 200.0, {0.0, 10.0, 700.0, 1500.0});
  for (std::size_t i = 1; i < schedule.completion.size(); ++i) {
    EXPECT_GE(schedule.completion[i], schedule.completion[i - 1]);
  }
  EXPECT_DOUBLE_EQ(schedule.task_completion(), schedule.completion.back());
}

TEST(UserSplitSchedule, SingleNode) {
  const UserSplitSchedule schedule = build_user_split_schedule(paper_params(), 200.0, {5.0});
  EXPECT_NEAR(schedule.task_completion(), 5.0 + 200.0 * 101.0, 1e-9);
}

TEST(UserSplitSchedule, SortsAvailability) {
  const UserSplitSchedule schedule =
      build_user_split_schedule(paper_params(), 100.0, {900.0, 0.0});
  EXPECT_DOUBLE_EQ(schedule.available[0], 0.0);
  EXPECT_DOUBLE_EQ(schedule.available[1], 900.0);
}

TEST(UserSplitSchedule, WorseThanDltPartitionWithAllNodesFree) {
  // DLT optimality: the equal split never beats the geometric one when all
  // nodes are simultaneously available.
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    const UserSplitSchedule schedule =
        build_user_split_schedule(paper_params(), 200.0, std::vector<cluster::Time>(n, 0.0));
    EXPECT_GE(schedule.task_completion(),
              homogeneous_execution_time(paper_params(), 200.0, n) - 1e-9)
        << "n=" << n;
  }
}

TEST(UserSplitSchedule, InvalidInputsThrow) {
  EXPECT_THROW(build_user_split_schedule(paper_params(), 0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(build_user_split_schedule(paper_params(), 1.0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace rtdls::dlt
