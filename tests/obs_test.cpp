// Unit tests for src/obs: the metrics registry (counters, gauges, log-scale
// histograms, thread-sharded write path) and the trace-event recorder.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rtdls::obs {
namespace {

// --- counters and gauges ---------------------------------------------------

TEST(ObsCounter, AddAndScrape) {
  Registry registry;
  Counter c = registry.counter("test_counter");
  c.add(3);
  c.inc();
  EXPECT_EQ(registry.counter_value("test_counter"), 4u);
  EXPECT_EQ(registry.counter_value("never_registered"), 0u);
}

TEST(ObsCounter, ReRegistrationSharesTheMetric) {
  Registry registry;
  Counter a = registry.counter("shared");
  Counter b = registry.counter("shared");
  a.add(2);
  b.add(5);
  EXPECT_EQ(registry.counter_value("shared"), 7u);
}

TEST(ObsCounter, DefaultConstructedHandleNoOps) {
  Counter c;
  c.add(10);  // must not crash
  Gauge g;
  g.set(5);
  g.add(1);
  EXPECT_EQ(g.value(), 0);
  Histogram h;
  h.record(1.0);
}

TEST(ObsGauge, SetAddValue) {
  Registry registry;
  Gauge g = registry.gauge("depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "depth");
  EXPECT_EQ(snap.gauges[0].value, 7);
}

// --- histograms ------------------------------------------------------------

TEST(ObsHistogram, ExactStatsRideAlong) {
  Registry registry;
  Histogram h = registry.histogram("lat");
  h.record(10.0);
  h.record(100.0);
  h.record(1000.0);
  const HistogramSample s = registry.histogram_sample("lat");
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 1110.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_DOUBLE_EQ(s.mean(), 370.0);
}

TEST(ObsHistogram, EmptySampleIsZero) {
  Registry registry;
  registry.histogram("empty");
  const HistogramSample s = registry.histogram_sample("empty");
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(ObsHistogram, QuantileAccuracyWithinBucketWidth) {
  Registry registry;
  // 8 buckets/octave -> growth 2^(1/8) ~ 1.09, so estimates must land
  // within ~10% of the true order statistic.
  Histogram h = registry.histogram("uniform");
  for (int i = 1; i <= 10000; ++i) h.record(static_cast<double>(i));
  const HistogramSample s = registry.histogram_sample("uniform");
  EXPECT_NEAR(s.quantile(0.50), 5000.0, 550.0);
  EXPECT_NEAR(s.quantile(0.90), 9000.0, 950.0);
  EXPECT_NEAR(s.quantile(0.99), 9900.0, 1050.0);
  // The extremes are exact (clamped to min/max).
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10000.0);
}

TEST(ObsHistogram, ValuesBelowLowestClampIntoBucketZero) {
  Registry registry;
  Histogram h = registry.histogram("clamp", HistogramOptions{10.0, 4, 32});
  h.record(0.001);
  h.record(-5.0);  // negative "latencies" are noise: clamped to 0, still counted
  const HistogramSample s = registry.histogram_sample("clamp");
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  ASSERT_FALSE(s.buckets.empty());
  EXPECT_EQ(s.buckets[0], 2u);
}

TEST(ObsHistogram, ValuesAboveRangeClampIntoLastBucket) {
  Registry registry;
  Histogram h = registry.histogram("top", HistogramOptions{1.0, 4, 8});
  h.record(1.0e18);
  const HistogramSample s = registry.histogram_sample("top");
  ASSERT_EQ(s.buckets.size(), 8u);
  EXPECT_EQ(s.buckets.back(), 1u);
  EXPECT_DOUBLE_EQ(s.max, 1.0e18);
}

// --- thread sharding -------------------------------------------------------

TEST(ObsRegistry, ConcurrentWritersAndScraperAgreeOnTotals) {
  Registry registry;
  Counter counter = registry.counter("hits");
  Histogram histogram = registry.histogram("work_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;

  std::atomic<bool> stop_scraping{false};
  // Scraper runs concurrently with the writers: totals it sees must be
  // monotone and never torn; the exact final total is checked after join.
  std::thread scraper([&] {
    std::uint64_t last = 0;
    while (!stop_scraping.load()) {
      const std::uint64_t now = registry.counter_value("hits");
      EXPECT_GE(now, last);
      last = now;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.record(static_cast<double>(t * kPerThread + i + 1));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop_scraping.store(true);
  scraper.join();

  EXPECT_EQ(registry.counter_value("hits"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HistogramSample s = registry.histogram_sample("work_us");
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(kThreads) * kPerThread);
}

TEST(ObsRegistry, ExitedThreadsFoldIntoTheScrape) {
  Registry registry;
  Counter counter = registry.counter("folded");
  for (int round = 0; round < 4; ++round) {
    std::thread worker([&] { counter.add(25); });
    worker.join();
  }
  EXPECT_EQ(registry.counter_value("folded"), 100u);
}

TEST(ObsRegistry, LateRegistrationRegrowsLiveShards) {
  Registry registry;
  Counter early = registry.counter("early");
  std::atomic<int> phase{0};
  std::thread worker([&] {
    early.inc();  // sizes this thread's shard for one counter
    phase.store(1);
    while (phase.load() < 2) std::this_thread::yield();
    // "late" was registered after the shard above was sized; the next
    // write must regrow the shard rather than write out of bounds.
    Counter late = registry.counter("late");
    late.add(7);
    early.inc();
  });
  while (phase.load() < 1) std::this_thread::yield();
  registry.counter("late");
  phase.store(2);
  worker.join();
  EXPECT_EQ(registry.counter_value("early"), 2u);
  EXPECT_EQ(registry.counter_value("late"), 7u);
}

TEST(ObsRegistry, GlobalIsASingleton) {
  Registry& a = Registry::global();
  Registry& b = Registry::global();
  EXPECT_EQ(&a, &b);
}

// --- prometheus text -------------------------------------------------------

TEST(ObsPrometheus, TextContainsAllFamilies) {
  Registry registry;
  registry.counter("reqs_total").add(5);
  registry.gauge("queue_depth").set(3);
  Histogram h = registry.histogram("latency_us");
  h.record(10.0);
  h.record(20.0);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_us summary"), std::string::npos);
  EXPECT_NE(text.find("latency_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("latency_us_sum 30"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  // Every line is either a comment or `name[{labels}] value`.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

#if RTDLS_TRACE_ENABLED

// --- trace recorder --------------------------------------------------------

// Minimal recursive-descent JSON well-formedness checker: enough to assert
// the emitted trace parses, without a JSON library dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(ObsTrace, EmitsWellFormedTraceEventJson) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.clear();
  recorder.start();
  {
    RTDLS_TRACE_SCOPE("test.outer", "test");
    { RTDLS_TRACE_SCOPE("test.inner", "test"); }
    RTDLS_TRACE_INSTANT("test.mark", "test");
  }
  recorder.stop();
  EXPECT_EQ(recorder.event_count(), 3u);

  std::ostringstream out;
  const std::size_t written = recorder.write_json(out);
  EXPECT_EQ(written, 3u);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  recorder.clear();
}

TEST(ObsTrace, DisarmedMacrosRecordNothing) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.clear();
  ASSERT_FALSE(recorder.armed());
  {
    RTDLS_TRACE_SCOPE("test.ignored", "test");
    RTDLS_TRACE_INSTANT("test.ignored", "test");
  }
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(ObsTrace, RingWrapCountsDrops) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.clear();
  // Ring capacity binds when a thread's buffer is created, so record from a
  // fresh thread: its ring is guaranteed to be 16 events regardless of what
  // earlier tests did to this thread's buffer.
  recorder.start(/*ring_capacity=*/16);
  std::thread worker([] {
    for (int i = 0; i < 100; ++i) RTDLS_TRACE_INSTANT("test.spin", "test");
  });
  worker.join();
  recorder.stop();
  EXPECT_EQ(recorder.event_count(), 16u);
  EXPECT_EQ(recorder.dropped(), 84u);

  // The wrapped ring still writes valid JSON.
  std::ostringstream out;
  recorder.write_json(out);
  EXPECT_TRUE(JsonChecker(out.str()).valid());
  recorder.clear();
  recorder.start(65536);  // restore the default ring size for later threads
  recorder.stop();
  recorder.clear();
}

TEST(ObsTrace, SpansFromMultipleThreadsCarryTheirTid) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.clear();
  recorder.start();
  std::thread worker([] { RTDLS_TRACE_SCOPE("test.worker", "test"); });
  worker.join();
  { RTDLS_TRACE_SCOPE("test.main", "test"); }
  recorder.stop();
  EXPECT_EQ(recorder.event_count(), 2u);

  std::ostringstream out;
  recorder.write_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Two distinct tids: find the two "tid": values and compare.
  const std::size_t first = json.find("\"tid\":");
  const std::size_t second = json.find("\"tid\":", first + 1);
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  const std::string tid1 = json.substr(first + 6, json.find_first_of(",}", first) - first - 6);
  const std::string tid2 =
      json.substr(second + 6, json.find_first_of(",}", second) - second - 6);
  EXPECT_NE(tid1, tid2);
  recorder.clear();
}

#endif  // RTDLS_TRACE_ENABLED

}  // namespace
}  // namespace rtdls::obs
