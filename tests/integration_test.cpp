// Integration tests: the paper's qualitative claims as executable checks,
// run at reduced scale so the suite stays fast.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace rtdls {
namespace {

double mean_reject(const std::string& algorithm, double load, double dc_ratio,
                   double cms = 1.0, double cps = 100.0, double avg_sigma = 200.0,
                   int runs = 2, double sim_time = 400000.0) {
  double total = 0.0;
  for (int run = 0; run < runs; ++run) {
    workload::WorkloadParams params;
    params.cluster = {.node_count = 16, .cms = cms, .cps = cps};
    params.system_load = load;
    params.avg_sigma = avg_sigma;
    params.dc_ratio = dc_ratio;
    params.total_time = sim_time;
    params.seed = 20070227;
    params.stream = static_cast<std::uint64_t>(run);
    const auto tasks = workload::generate_workload(params);
    sim::SimulatorConfig config;
    config.params = params.cluster;
    total += sim::simulate(config, algorithm, tasks, sim_time).reject_ratio();
  }
  return total / runs;
}

// --- Paper claim 1 (Fig. 3, 6-12): DLT never worse than OPR-MN ------------

TEST(PaperClaims, DltBeatsOprMnAtBaseline) {
  for (double load : {0.4, 0.8}) {
    const double opr = mean_reject("EDF-OPR-MN", load, 2.0);
    const double dlt = mean_reject("EDF-DLT", load, 2.0);
    EXPECT_LE(dlt, opr + 0.005) << "load=" << load;
  }
}

TEST(PaperClaims, DltBeatsOprMnUnderFifo) {
  const double opr = mean_reject("FIFO-OPR-MN", 0.8, 2.0);
  const double dlt = mean_reject("FIFO-DLT", 0.8, 2.0);
  EXPECT_LE(dlt, opr + 0.005);
  EXPECT_GT(opr - dlt, 0.0);  // strictly better at high load
}

TEST(PaperClaims, DltRobustToCmsSweep) {
  for (double cms : {2.0, 8.0}) {
    const double opr = mean_reject("EDF-OPR-MN", 0.8, 2.0, cms);
    const double dlt = mean_reject("EDF-DLT", 0.8, 2.0, cms);
    EXPECT_LE(dlt, opr + 0.005) << "cms=" << cms;
  }
}

TEST(PaperClaims, DltRobustToCpsSweep) {
  for (double cps : {10.0, 1000.0}) {
    const double opr = mean_reject("EDF-OPR-MN", 0.8, 2.0, 1.0, cps);
    const double dlt = mean_reject("EDF-DLT", 0.8, 2.0, 1.0, cps);
    EXPECT_LE(dlt, opr + 0.005) << "cps=" << cps;
  }
}

TEST(PaperClaims, DltRobustToAvgSigmaSweep) {
  for (double sigma : {100.0, 800.0}) {
    const double opr = mean_reject("EDF-OPR-MN", 0.8, 2.0, 1.0, 100.0, sigma);
    const double dlt = mean_reject("EDF-DLT", 0.8, 2.0, 1.0, 100.0, sigma);
    EXPECT_LE(dlt, opr + 0.005) << "sigma=" << sigma;
  }
}

// --- Paper claim 2 (Fig. 4): the gap shrinks as DCRatio grows ---------------

TEST(PaperClaims, DcRatioConvergence) {
  const double gap_tight =
      mean_reject("EDF-OPR-MN", 0.8, 2.0) - mean_reject("EDF-DLT", 0.8, 2.0);
  const double gap_loose =
      mean_reject("EDF-OPR-MN", 0.8, 100.0) - mean_reject("EDF-DLT", 0.8, 100.0);
  EXPECT_GT(gap_tight, 0.0);
  EXPECT_LT(gap_loose, gap_tight);
  EXPECT_NEAR(gap_loose, 0.0, 0.01);  // "perform almost the same" at 100
}

TEST(PaperClaims, LooseDeadlinesLowerRejectRatios) {
  EXPECT_GT(mean_reject("EDF-DLT", 0.8, 2.0), mean_reject("EDF-DLT", 0.8, 10.0));
  EXPECT_GT(mean_reject("EDF-DLT", 0.8, 10.0), mean_reject("EDF-DLT", 0.8, 100.0));
}

// --- Paper claim 3 (Fig. 5, 13-16): DLT vs User-Split ------------------------

TEST(PaperClaims, DltBeatsUserSplitAtTightDeadlines) {
  for (double load : {0.4, 0.8}) {
    const double user = mean_reject("EDF-UserSplit", load, 2.0);
    const double dlt = mean_reject("EDF-DLT", load, 2.0);
    EXPECT_LT(dlt, user) << "load=" << load;
  }
}

TEST(PaperClaims, UserSplitCompetitiveAtLooseDeadlines) {
  // Fig. 5b: at DCRatio=10 the curves cross; User-Split may win by a small
  // margin at high load. Assert only that no blowout occurs either way.
  const double user = mean_reject("EDF-UserSplit", 1.0, 10.0);
  const double dlt = mean_reject("EDF-DLT", 1.0, 10.0);
  EXPECT_NEAR(user, dlt, 0.08);
}

// --- mechanism checks ---------------------------------------------------------

TEST(Mechanism, DltCompressionPositiveOnlyForDlt) {
  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = 0.8;
  params.total_time = 400000.0;
  params.seed = 5;
  const auto tasks = workload::generate_workload(params);
  sim::SimulatorConfig config;
  config.params = params.cluster;
  const sim::SimMetrics dlt = sim::simulate(config, "EDF-DLT", tasks, params.total_time);
  const sim::SimMetrics opr = sim::simulate(config, "EDF-OPR-MN", tasks, params.total_time);
  EXPECT_GT(dlt.iit_compression.max(), 0.0);
  EXPECT_NEAR(opr.iit_compression.max(), 0.0, 1e-9);
  EXPECT_GE(dlt.iit_compression.min(), -1e-9);  // Eq. 9: never negative
}

TEST(Mechanism, OprAnMonopolizesTheCluster) {
  // OPR-AN can even post lower reject ratios (every task runs at maximum
  // speed) - the paper dismisses it for monopolizing the cluster, not for
  // its ratio. Verify the monopolization: every accepted task occupies all
  // N nodes, unlike DLT's minimum-node assignment.
  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = 0.6;
  params.total_time = 400000.0;
  params.seed = 20070227;
  const auto tasks = workload::generate_workload(params);
  sim::SimulatorConfig config;
  config.params = params.cluster;
  const sim::SimMetrics an = sim::simulate(config, "EDF-OPR-AN", tasks, params.total_time);
  const sim::SimMetrics dlt = sim::simulate(config, "EDF-DLT", tasks, params.total_time);
  EXPECT_DOUBLE_EQ(an.nodes_per_task.mean(), 16.0);
  EXPECT_LT(dlt.nodes_per_task.mean(), 16.0);
}

TEST(Mechanism, MultiRoundNeverMuchWorseThanSingleRound) {
  const double mr = mean_reject("EDF-MR4", 0.8, 2.0);
  const double single = mean_reject("EDF-DLT", 0.8, 2.0);
  EXPECT_LE(mr, single + 0.02);
}

// --- harness-level paired comparison -----------------------------------------

TEST(Harness, PairedSweepConfirmsWinnerPointwise) {
  exp::SweepSpec spec;
  spec.id = "integration_pairwise";
  spec.title = "pointwise dominance";
  spec.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  spec.loads = {0.3, 0.6, 0.9};
  spec.algorithms = {"EDF-OPR-MN", "EDF-DLT"};
  spec.runs = 2;
  spec.sim_time = 400000.0;
  const exp::SweepResult result = exp::run_sweep(spec);
  for (std::size_t l = 0; l < spec.loads.size(); ++l) {
    EXPECT_LE(result.curves[1].reject_ratio()[l].mean,
              result.curves[0].reject_ratio()[l].mean + 0.01)
        << "load " << spec.loads[l];
  }
}

}  // namespace
}  // namespace rtdls
