// Tests for the streaming replay pipeline (PR 10): chunked TraceReader
// equivalence with load_trace (same tasks, same row-numbered errors - even
// chunks deep into the file), the StreamedSortError contract, the
// StreamingTaskSource chunk-lifetime accounting, run_stream's bit-identity
// with run() plus its on-the-fly sortedness enforcement, and the EventQueue
// reserve/recycle satellite.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/schedule_log.hpp"
#include "sim/simulator.hpp"
#include "sim/task_source.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace rtdls {
namespace {

using cluster::Time;
using workload::Task;
using workload::TraceReader;

std::vector<Task> generated_tasks(std::uint64_t seed, std::size_t nodes, double load,
                                  double total_time) {
  workload::WorkloadParams params;
  params.cluster = {.node_count = nodes, .cms = 1.0, .cps = 100.0};
  params.system_load = load;
  params.avg_sigma = 50.0;  // short tasks: dense arrivals, many chunks
  params.dc_ratio = 10.0;
  params.total_time = total_time;
  params.seed = seed;
  return workload::generate_workload(params);
}

std::string trace_csv(const std::vector<Task>& tasks) {
  std::ostringstream out;
  workload::save_trace(out, tasks);
  return out.str();
}

/// Drains a reader into one vector through `chunk_tasks`-sized chunks.
std::vector<Task> drain(TraceReader& reader, std::vector<std::size_t>* chunk_sizes = nullptr) {
  std::vector<Task> all;
  std::vector<Task> chunk;
  while (reader.next_chunk(chunk)) {
    if (chunk_sizes) chunk_sizes->push_back(chunk.size());
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  EXPECT_TRUE(chunk.empty());  // exhaustion leaves the buffer empty
  return all;
}

void expect_same_tasks(const std::vector<Task>& a, const std::vector<Task>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "task " << i;
    EXPECT_EQ(a[i].arrival(), b[i].arrival()) << "task " << i;
    EXPECT_EQ(a[i].sigma(), b[i].sigma()) << "task " << i;
    EXPECT_EQ(a[i].rel_deadline(), b[i].rel_deadline()) << "task " << i;
    EXPECT_EQ(a[i].user_nodes, b[i].user_nodes) << "task " << i;
  }
}

TEST(TraceReader, ChunkedReadMatchesLoadTrace) {
  const auto tasks = generated_tasks(7, 16, 0.8, 60000.0);
  ASSERT_GT(tasks.size(), 20u);  // several chunks at chunk_tasks=7
  const std::string csv = trace_csv(tasks);

  std::istringstream materialized(csv);
  const auto loaded = workload::load_trace(materialized);

  std::istringstream streamed(csv);
  TraceReader reader(streamed, {.chunk_tasks = 7});
  std::vector<std::size_t> chunk_sizes;
  const auto chunked = drain(reader, &chunk_sizes);

  expect_same_tasks(loaded, chunked);
  expect_same_tasks(loaded, tasks);
  EXPECT_EQ(reader.tasks_read(), tasks.size());
  // Every chunk but the last is full.
  for (std::size_t i = 0; i + 1 < chunk_sizes.size(); ++i) {
    EXPECT_EQ(chunk_sizes[i], 7u) << "chunk " << i;
  }
}

TEST(TraceReader, RowNumbersSurviveChunkBoundaries) {
  // A malformed row several chunks deep must be reported with its absolute
  // 1-based data-row number, exactly as load_trace would.
  std::ostringstream out;
  out << "id,arrival,sigma,deadline,user_nodes\n";
  for (int r = 1; r <= 9; ++r) {
    if (r == 8) {
      out << "7,80.0,-1.0,50.0,4\n";  // sigma <= 0 at data row 8
    } else {
      out << r - 1 << "," << 10.0 * r << ".0,100.0,50.0,4\n";
    }
  }
  const std::string csv = out.str();

  const auto expect_row8 = [](const auto& read_all) {
    try {
      read_all();
      FAIL() << "expected a row-numbered parse error";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("row 8"), std::string::npos)
          << error.what();
      EXPECT_NE(std::string(error.what()).find("sigma"), std::string::npos)
          << error.what();
    }
  };
  expect_row8([&] {
    std::istringstream in(csv);
    workload::load_trace(in);
  });
  expect_row8([&] {
    std::istringstream in(csv);
    TraceReader reader(in, {.chunk_tasks = 3});  // row 8 sits in the third chunk
    std::vector<Task> chunk;
    while (reader.next_chunk(chunk)) {
    }
  });
}

TEST(TraceReader, EnforcesSortedArrivalsAcrossChunks) {
  // The decrease straddles a chunk boundary: the reader carries the last
  // arrival across next_chunk calls.
  std::ostringstream out;
  out << "id,arrival,sigma,deadline,user_nodes\n"
      << "0,10.0,100.0,50.0,4\n"
      << "1,20.0,100.0,50.0,4\n"
      << "2,15.0,100.0,50.0,4\n";  // decreases at data row 3
  std::istringstream in(out.str());
  TraceReader reader(in, {.chunk_tasks = 2});
  std::vector<Task> chunk;
  ASSERT_TRUE(reader.next_chunk(chunk));
  try {
    reader.next_chunk(chunk);
    FAIL() << "expected the decreasing arrival to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("row 3"), std::string::npos) << error.what();
    EXPECT_NE(std::string(error.what()).find("decreases"), std::string::npos)
        << error.what();
  }
}

TEST(TraceReader, SortArrivalsOnStreamedInputThrowsTyped) {
  std::istringstream in("id,arrival,sigma,deadline,user_nodes\n0,1.0,2.0,3.0,4\n");
  EXPECT_THROW(TraceReader(in, {.chunk_tasks = 16, .sort_arrivals = true}),
               workload::StreamedSortError);
  // StreamedSortError is an invalid_argument (callers may catch the base).
  std::istringstream again("id,arrival,sigma,deadline,user_nodes\n");
  EXPECT_THROW(TraceReader(again, {.chunk_tasks = 16, .sort_arrivals = true}),
               std::invalid_argument);
}

TEST(TraceReader, RejectsZeroChunkAndEmptyOrBadHeader) {
  std::istringstream in("id,arrival,sigma,deadline,user_nodes\n");
  EXPECT_THROW(TraceReader(in, {.chunk_tasks = 0}), std::invalid_argument);
  std::istringstream empty("");
  EXPECT_THROW(TraceReader reader(empty), std::runtime_error);
  std::istringstream bad("id,arrival,sigma,deadline\n");
  EXPECT_THROW(TraceReader reader(bad), std::runtime_error);
  EXPECT_THROW(TraceReader("/nonexistent/trace.csv", TraceReader::Options{}),
               std::runtime_error);
}

TEST(TraceReader, BlankLinesAndCrlfTolerated) {
  // Same tolerance as load_trace: trailing blank lines skip, CRLF strips,
  // and the blank line still consumes a row number.
  std::istringstream in(
      "id,arrival,sigma,deadline,user_nodes\r\n"
      "0,1.0,100.0,50.0,4\r\n"
      "\r\n"
      "1,2.0,100.0,50.0,4\r\n");
  TraceReader reader(in, {.chunk_tasks = 10});
  std::vector<Task> chunk;
  ASSERT_TRUE(reader.next_chunk(chunk));
  ASSERT_EQ(chunk.size(), 2u);
  EXPECT_EQ(chunk[0].id, 0u);
  EXPECT_EQ(chunk[1].id, 1u);
  EXPECT_EQ(reader.tasks_read(), 2u);
  EXPECT_FALSE(reader.next_chunk(chunk));
}

// --- StreamingTaskSource + run_stream ---------------------------------------

TEST(StreamingReplay, RunStreamMatchesRunBitForBit) {
  // The full pipeline - save_trace CSV -> TraceReader (tiny chunks) ->
  // StreamingTaskSource -> run_stream - must produce the same metrics and
  // the same committed reservations as run() over the materialized trace,
  // for both backends.
  const auto tasks = generated_tasks(13, 32, 1.0, 40000.0);
  ASSERT_GT(tasks.size(), 100u);
  const std::string csv = trace_csv(tasks);

  for (const cluster::IndexBackend backend :
       {cluster::IndexBackend::kFlat, cluster::IndexBackend::kBucket}) {
    for (const char* algorithm : {"EDF-DLT", "FIFO-MR2"}) {
      sim::SimulatorConfig config;
      config.params = {.node_count = 32, .cms = 1.0, .cps = 100.0};
      config.params.index_backend = backend;
      config.incremental_admission = true;

      sim::ScheduleLog vector_log;
      config.schedule_log = &vector_log;
      const sim::SimMetrics expected = sim::simulate(config, algorithm, tasks, 40000.0);

      std::istringstream in(csv);
      workload::TraceReader reader(in, {.chunk_tasks = 16});
      sim::StreamingTaskSource source(reader);
      sim::ScheduleLog stream_log;
      config.schedule_log = &stream_log;
      const sched::Algorithm algo = sched::make_algorithm(algorithm);
      sim::ClusterSimulator simulator(config, algo);
      const sim::SimMetrics streamed = simulator.run_stream(source, 40000.0);

      ASSERT_EQ(streamed.accepted, expected.accepted) << algorithm;
      ASSERT_EQ(streamed.rejected, expected.rejected) << algorithm;
      ASSERT_EQ(streamed.deadline_misses, expected.deadline_misses) << algorithm;
      EXPECT_EQ(streamed.response_time.mean(), expected.response_time.mean()) << algorithm;
      EXPECT_EQ(streamed.busy_time, expected.busy_time) << algorithm;
      EXPECT_EQ(streamed.idle_gap_time, expected.idle_gap_time) << algorithm;
      ASSERT_EQ(stream_log.size(), vector_log.size()) << algorithm;
      for (std::size_t i = 0; i < stream_log.size(); ++i) {
        const sim::ScheduleEntry& a = stream_log.entries()[i];
        const sim::ScheduleEntry& b = vector_log.entries()[i];
        ASSERT_EQ(a.task, b.task) << algorithm << " entry " << i;
        ASSERT_EQ(a.node, b.node) << algorithm << " entry " << i;
        ASSERT_EQ(a.start, b.start) << algorithm << " entry " << i;
        ASSERT_EQ(a.end, b.end) << algorithm << " entry " << i;
        ASSERT_EQ(a.alpha, b.alpha) << algorithm << " entry " << i;
      }

      // Bounded-memory claim: with 16-task chunks the source never held
      // anything close to the whole trace resident.
      EXPECT_LT(source.peak_resident_tasks(), tasks.size() / 2)
          << algorithm << ": chunks did not retire";
      EXPECT_GE(source.peak_resident_tasks(), 16u);
    }
  }
}

TEST(StreamingReplay, MidStreamArrivalDecreaseThrows) {
  // run_stream validates sortedness on the fly (a streamed trace cannot be
  // pre-checked); an out-of-order source fails at the offending arrival.
  std::vector<Task> tasks(2);
  tasks[0].id = 0;
  tasks[0].spec.arrival = 100.0;
  tasks[0].spec.sigma = 50.0;
  tasks[0].spec.rel_deadline = 500.0;
  tasks[1].id = 1;
  tasks[1].spec.arrival = 40.0;  // decreases
  tasks[1].spec.sigma = 50.0;
  tasks[1].spec.rel_deadline = 500.0;

  sim::SimulatorConfig config;
  config.params = {.node_count = 4, .cms = 1.0, .cps = 100.0};
  const sched::Algorithm algo = sched::make_algorithm("EDF-DLT");
  sim::ClusterSimulator simulator(config, algo);
  sim::VectorTaskSource source(tasks);
  EXPECT_THROW(simulator.run_stream(source, 1000.0), std::invalid_argument);
  // run() still rejects the same trace up front.
  EXPECT_THROW(simulator.run(tasks, 1000.0), std::invalid_argument);
}

TEST(StreamingReplay, SourceGuardsRetireWithoutAdmit) {
  std::istringstream in("id,arrival,sigma,deadline,user_nodes\n0,1.0,2.0,3.0,4\n");
  workload::TraceReader reader(in, TraceReader::Options{});
  sim::StreamingTaskSource source(reader);
  const workload::Task* task = source.peek();
  ASSERT_NE(task, nullptr);
  EXPECT_THROW(source.on_task_retired(task), std::logic_error);
  source.on_task_admitted(task);
  source.on_task_retired(task);  // balanced now
  source.pop();
  EXPECT_EQ(source.peek(), nullptr);
  EXPECT_THROW(source.pop(), std::logic_error);  // nothing peeked past the end
}

// --- EventQueue reserve/recycle satellite -----------------------------------

TEST(EventQueue, ReserveAndClearKeepCapacity) {
  sim::EventQueue<int> queue;
  queue.reserve(256);
  const std::size_t reserved = queue.capacity();
  ASSERT_GE(reserved, 256u);
  for (int i = 0; i < 200; ++i) {
    queue.push(static_cast<Time>(200 - i), sim::EventPriority::kCommit, i);
  }
  EXPECT_EQ(queue.capacity(), reserved);  // no mid-run growth
  // Drain half, refill (the chunked-replay rhythm): still no growth.
  for (int i = 0; i < 100; ++i) queue.pop();
  for (int i = 0; i < 50; ++i) {
    queue.push(static_cast<Time>(i), sim::EventPriority::kCommit, i);
  }
  EXPECT_EQ(queue.capacity(), reserved);
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.capacity(), reserved);  // clear() recycles the storage
  // Ordering is unaffected by reserve: events drain by (time, prio, seq).
  queue.push(2.0, sim::EventPriority::kArrival, 1);
  queue.push(2.0, sim::EventPriority::kCommit, 2);
  queue.push(1.0, sim::EventPriority::kReport, 3);
  EXPECT_EQ(queue.pop().payload, 3);
  EXPECT_EQ(queue.pop().payload, 2);
  EXPECT_EQ(queue.pop().payload, 1);
}

}  // namespace
}  // namespace rtdls
