// Cross-algorithm randomized property sweep: every registered algorithm run
// over randomized workloads must uphold the framework's safety invariants.
// Parameterized over (algorithm x load) so each combination is its own test
// case with an attributable failure.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace rtdls {
namespace {

class EveryAlgorithm
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(EveryAlgorithm, SafetyInvariantsUnderRandomWorkloads) {
  const auto& [name, load] = GetParam();
  for (std::uint64_t seed : {101ull, 202ull}) {
    workload::WorkloadParams params;
    params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
    params.system_load = load;
    params.total_time = 200000.0;
    params.seed = seed;
    const auto tasks = workload::generate_workload(params);

    sim::SimulatorConfig config;
    config.params = params.cluster;
    const sim::SimMetrics metrics = sim::simulate(config, name, tasks, params.total_time);

    // 1. Bookkeeping closes.
    ASSERT_EQ(metrics.accepted + metrics.rejected, metrics.arrivals) << seed;
    // 2. No accepted task may miss its deadline (estimates or actuals).
    if (metrics.accepted > 0) {
      ASSERT_GE(metrics.deadline_slack.min(), -1e-6) << seed;
    }
    ASSERT_EQ(metrics.deadline_misses, 0u) << seed;
    // 3. Estimates upper-bound actual completions (Theorem 4 and its
    //    per-rule analogues).
    ASSERT_EQ(metrics.theorem4_violations, 0u) << seed;
    // 4. Physical accounting: utilization in (0, ~1], non-negative IIT.
    if (metrics.accepted > 0) {
      ASSERT_GT(metrics.utilization(), 0.0) << seed;
      ASSERT_LT(metrics.utilization(), 1.1) << seed;
    }
    ASSERT_GE(metrics.iit_fraction(), -1e-12) << seed;
    // 5. Node counts within the cluster.
    if (metrics.accepted > 0) {
      ASSERT_GE(metrics.nodes_per_task.min(), 1.0) << seed;
      ASSERT_LE(metrics.nodes_per_task.max(), 16.0) << seed;
    }
  }
}

std::vector<std::string> algorithms_under_test() {
  std::vector<std::string> names = sched::all_algorithm_names();
  names.push_back("EDF-DLT-Opt");
  names.push_back("EDF-OPR-MN-Opt");
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryAlgorithm,
    ::testing::Combine(::testing::ValuesIn(algorithms_under_test()),
                       ::testing::Values(0.2, 0.6, 1.0)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, double>>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_load" +
                         std::to_string(static_cast<int>(std::get<1>(param_info.param) * 10));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Output-aware variants need a matching simulator delta; sweep those too.
class OutputAlgorithm
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(OutputAlgorithm, SafetyInvariantsWithResultTraffic) {
  const auto& [name, delta] = GetParam();
  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = 0.8;
  params.total_time = 200000.0;
  params.seed = 303;
  const auto tasks = workload::generate_workload(params);

  sim::SimulatorConfig config;
  config.params = params.cluster;
  config.output_ratio = delta;
  const sim::SimMetrics metrics = sim::simulate(config, name, tasks, params.total_time);
  ASSERT_EQ(metrics.theorem4_violations, 0u);
  ASSERT_EQ(metrics.deadline_misses, 0u);
  ASSERT_EQ(metrics.accepted + metrics.rejected, metrics.arrivals);
}

INSTANTIATE_TEST_SUITE_P(
    IoRules, OutputAlgorithm,
    ::testing::Values(std::make_tuple(std::string("EDF-DLT-IO5"), 0.05),
                      std::make_tuple(std::string("EDF-DLT-IO20"), 0.2),
                      std::make_tuple(std::string("FIFO-DLT-IO20"), 0.2),
                      std::make_tuple(std::string("EDF-OPR-MN-IO20"), 0.2),
                      std::make_tuple(std::string("EDF-UserSplit-IO20"), 0.2),
                      std::make_tuple(std::string("EDF-DLT-IO50"), 0.5)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, double>>& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rtdls
