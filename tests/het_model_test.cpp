// Tests for the heterogeneous-model construction and partition (the paper's
// first contribution) - including executable versions of Assertion 1,
// Lemma 2, Assertion 3 / Eq. (9), and Theorem 4.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>

#include "dlt/het_model.hpp"
#include "dlt/homogeneous.hpp"
#include "workload/distributions.hpp"
#include "workload/rng.hpp"

namespace rtdls::dlt {
namespace {

ClusterParams paper_params() { return {.node_count = 16, .cms = 1.0, .cps = 100.0}; }

TEST(HetModel, EqualAvailabilityReducesToHomogeneous) {
  // No stagger -> Cps_i == Cps, alpha geometric, E_hat == E.
  const std::vector<cluster::Time> available(8, 1000.0);
  const HetPartition part = build_het_partition(paper_params(), 200.0, available);
  const auto homogeneous = homogeneous_partition(paper_params(), 8);
  ASSERT_EQ(part.alpha.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(part.cps_i[i], 100.0, 1e-9);
    EXPECT_NEAR(part.alpha[i], homogeneous[i], 1e-9);
  }
  EXPECT_NEAR(part.execution_time, part.homogeneous_time, 1e-6);
  EXPECT_NEAR(part.estimated_completion(), 1000.0 + part.homogeneous_time, 1e-6);
}

TEST(HetModel, SingleNode) {
  const HetPartition part = build_het_partition(paper_params(), 200.0, {42.0});
  ASSERT_EQ(part.nodes(), 1u);
  EXPECT_DOUBLE_EQ(part.alpha[0], 1.0);
  EXPECT_NEAR(part.execution_time, 200.0 * 101.0, 1e-9);
  EXPECT_NEAR(part.estimated_completion(), 42.0 + 200.0 * 101.0, 1e-9);
}

TEST(HetModel, SortsUnorderedAvailability) {
  const HetPartition part =
      build_het_partition(paper_params(), 200.0, {500.0, 0.0, 250.0});
  EXPECT_TRUE(std::is_sorted(part.available.begin(), part.available.end()));
  EXPECT_DOUBLE_EQ(part.available.front(), 0.0);
  EXPECT_DOUBLE_EQ(part.available.back(), 500.0);
}

TEST(HetModel, Eq1ModelSpeedOrdering) {
  // The earlier a node frees, the smaller (faster) its model Cps_i; the last
  // node keeps the true Cps.
  const HetPartition part =
      build_het_partition(paper_params(), 200.0, {0.0, 400.0, 800.0, 1200.0});
  for (std::size_t i = 1; i < part.nodes(); ++i) {
    EXPECT_LE(part.cps_i[i - 1], part.cps_i[i] + 1e-12);
    EXPECT_LE(part.cps_i[i], 100.0 + 1e-12);
  }
  EXPECT_NEAR(part.cps_i.back(), 100.0, 1e-12);
  // Eq. (1) spot check for node 1: Cps_1 = E/(E + r_n - r_1) * Cps.
  const double e = part.homogeneous_time;
  EXPECT_NEAR(part.cps_i[0], e / (e + 1200.0) * 100.0, 1e-9);
}

TEST(HetModel, Assertion1AlphaBelowAlpha1) {
  const HetPartition part =
      build_het_partition(paper_params(), 200.0, {0.0, 300.0, 600.0, 900.0, 1200.0});
  for (std::size_t i = 1; i < part.nodes(); ++i) {
    EXPECT_LT(part.alpha[i], part.alpha[0]) << "Assertion 1 violated at i=" << i;
  }
}

TEST(HetModel, Lemma2AlphaBound) {
  // alpha_i < (Cps_1 / Cps_i) * alpha_1.
  const HetPartition part =
      build_het_partition(paper_params(), 200.0, {0.0, 500.0, 1000.0, 1500.0});
  for (std::size_t i = 1; i < part.nodes(); ++i) {
    EXPECT_LT(part.alpha[i], part.cps_i[0] / part.cps_i[i] * part.alpha[0] + 1e-12)
        << "Lemma 2 violated at i=" << i;
  }
}

TEST(HetModel, Eq9ExecutionNoLongerThanHomogeneous) {
  const HetPartition part =
      build_het_partition(paper_params(), 200.0, {0.0, 300.0, 900.0, 2000.0});
  EXPECT_LE(part.execution_time, part.homogeneous_time + 1e-9);
  // With real stagger the inequality is strict.
  EXPECT_LT(part.execution_time, part.homogeneous_time);
}

TEST(HetModel, StaggerMonotonicallyHelps) {
  // More stagger (earlier early-nodes) -> shorter E_hat.
  double previous = 1e300;
  for (double gap : {0.0, 200.0, 400.0, 800.0, 1600.0}) {
    const std::vector<cluster::Time> available = {1600.0 - gap, 1600.0 - gap / 2, 1600.0};
    const HetPartition part = build_het_partition(paper_params(), 200.0, available);
    EXPECT_LE(part.execution_time, previous + 1e-9) << "gap=" << gap;
    previous = part.execution_time;
  }
}

TEST(HetModel, Eq3EqualModelFinishTimes) {
  // In the heterogeneous model every node finishes at the same instant:
  // sum_{j<=i} alpha_j Cms + alpha_i Cps_i is constant (Eq. 3).
  const HetPartition part =
      build_het_partition(paper_params(), 200.0, {0.0, 250.0, 600.0, 1400.0});
  const double sigma = 200.0;
  double prefix = 0.0;
  double reference = -1.0;
  for (std::size_t i = 0; i < part.nodes(); ++i) {
    prefix += part.alpha[i] * sigma * 1.0;
    const double finish = prefix + part.alpha[i] * sigma * part.cps_i[i];
    if (i == 0) {
      reference = finish;
    } else {
      EXPECT_NEAR(finish, reference, reference * 1e-9) << "node " << i;
    }
  }
  EXPECT_NEAR(reference, part.execution_time, part.execution_time * 1e-9);
}

TEST(HetModel, Theorem4BoundsNeverExceedEstimate) {
  const HetPartition part =
      build_het_partition(paper_params(), 200.0, {0.0, 100.0, 700.0, 1900.0, 2500.0});
  const auto bounds = theorem4_completion_bounds(paper_params(), 200.0, part);
  ASSERT_EQ(bounds.size(), part.nodes());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_LE(bounds[i], part.estimated_completion() + 1e-6) << "node " << i;
  }
}

TEST(HetModel, InvalidInputsThrow) {
  EXPECT_THROW(build_het_partition(paper_params(), 0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(build_het_partition(paper_params(), 1.0, {}), std::invalid_argument);
  EXPECT_THROW(build_het_partition(ClusterParams{.node_count = 1, .cms = -1.0, .cps = 1.0},
                                   1.0, {0.0}),
               std::invalid_argument);
}

// Randomized property sweep: Assertion 1, Lemma 2, Eq. 9, Theorem 4 and the
// partition-sum invariant over random staggering patterns drawn across the
// paper's parameter grid.
class HetModelFuzz : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(HetModelFuzz, AllPaperInvariantsHold) {
  const auto [cms, cps, n_int] = GetParam();
  const std::size_t n = static_cast<std::size_t>(n_int);
  const ClusterParams params{.node_count = 64, .cms = cms, .cps = cps};

  workload::Xoshiro256StarStar rng(
      static_cast<std::uint64_t>(cms * 1000 + cps + n));
  for (int trial = 0; trial < 50; ++trial) {
    const double sigma = workload::sample_uniform(rng, 1.0, 2000.0);
    const double e_scale = homogeneous_execution_time(params, sigma, n);
    std::vector<cluster::Time> available;
    for (std::size_t i = 0; i < n; ++i) {
      available.push_back(workload::sample_uniform(rng, 0.0, 3.0 * e_scale));
    }
    const HetPartition part = build_het_partition(params, sigma, available);

    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_GT(part.alpha[i], 0.0);
      sum += part.alpha[i];
      if (i > 0) {
        ASSERT_LT(part.alpha[i], part.alpha[0]) << "Assertion 1";
        ASSERT_LT(part.alpha[i], part.cps_i[0] / part.cps_i[i] * part.alpha[0] + 1e-9)
            << "Lemma 2";
      }
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
    ASSERT_LE(part.execution_time, part.homogeneous_time * (1.0 + 1e-9)) << "Eq. 9";

    const auto bounds = theorem4_completion_bounds(params, sigma, part);
    for (cluster::Time bound : bounds) {
      ASSERT_LE(bound, part.estimated_completion() * (1.0 + 1e-9)) << "Theorem 4";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, HetModelFuzz,
    ::testing::Combine(::testing::Values(1.0, 4.0, 8.0),
                       ::testing::Values(10.0, 100.0, 1000.0, 10000.0),
                       ::testing::Values(2, 3, 8, 16)));

}  // namespace
}  // namespace rtdls::dlt
