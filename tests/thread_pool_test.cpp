// Unit tests for the experiment runner's thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace rtdls::util {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ParallelForSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<size_t> sum{0};
  pool.parallel_for(100, [&sum](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForUsableRepeatedly) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    pool.parallel_for(20, [&counter](size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 20);
  }
}

TEST(ThreadPool, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  pool.parallel_for(200, [&](size_t) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  // With 4 workers + the caller lane over 200 tasks, more than one thread
  // should participate (not a hard guarantee, but overwhelmingly likely).
  EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace rtdls::util
