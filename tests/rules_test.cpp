// Tests for the concrete partition rules (Decisions #2/#3 of the Figure-2
// framework): DLT-IIT, OPR-MN, OPR-AN, UserSplit, MultiRound.
#include <gtest/gtest.h>

#include "dlt/homogeneous.hpp"
#include "dlt/nmin.hpp"
#include "sched/partition_rule.hpp"

namespace rtdls::sched {
namespace {

cluster::ClusterParams paper_params() {
  return {.node_count = 16, .cms = 1.0, .cps = 100.0};
}

workload::Task make_task(double arrival, double sigma, double deadline,
                         std::size_t user_nodes = 0) {
  static cluster::TaskId next_id = 100;
  workload::Task task;
  task.id = next_id++;
  task.spec = {arrival, sigma, deadline};
  task.user_nodes = user_nodes;
  return task;
}

PlanResult plan_with(const PartitionRule& rule, const workload::Task& task,
                     std::vector<cluster::Time> free_times, double now = 0.0) {
  PlanRequest request;
  request.task = &task;
  request.params = paper_params();
  request.free_times = &free_times;
  request.now = now;
  return rule.plan(request);
}

std::vector<cluster::Time> idle_cluster() { return std::vector<cluster::Time>(16, 0.0); }

// --- DLT rule -----------------------------------------------------------------

TEST(DltRule, AssignsNminOnIdleCluster) {
  const auto rule = make_dlt_iit_rule();
  const workload::Task task = make_task(0.0, 200.0, 3000.0);
  const PlanResult result = plan_with(*rule, task, idle_cluster());
  ASSERT_TRUE(result.feasible());
  const dlt::NminResult expected = dlt::minimum_nodes(paper_params(), 200.0, 3000.0, 0.0);
  EXPECT_EQ(result.plan.nodes, expected.nodes);
  EXPECT_TRUE(result.plan.consistent());
  EXPECT_LE(result.plan.est_completion, 3000.0 + 1e-9);
}

TEST(DltRule, ReservesNodesFromTheirOwnAvailability) {
  const auto rule = make_dlt_iit_rule();
  const workload::Task task = make_task(0.0, 200.0, 6000.0);
  std::vector<cluster::Time> free_times = idle_cluster();
  free_times[0] = 500.0;  // one node busy until 500 (will sort first anyway)
  for (std::size_t i = 0; i < 8; ++i) free_times[i] = 100.0 * static_cast<double>(i);
  std::sort(free_times.begin(), free_times.end());
  const PlanResult result = plan_with(*rule, task, free_times);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.plan.reserve_from, result.plan.available);  // IITs utilized
}

TEST(DltRule, EstimateNeverExceedsOprEstimate) {
  // Eq. 9: E_hat <= E means the DLT estimate is no worse than OPR-MN's for
  // the same staggered availability.
  const auto dlt_rule = make_dlt_iit_rule();
  const auto opr_rule = make_opr_mn_rule();
  const workload::Task task = make_task(0.0, 200.0, 5000.0);
  std::vector<cluster::Time> free_times = idle_cluster();
  for (std::size_t i = 0; i < 16; ++i) free_times[i] = 150.0 * static_cast<double>(i);
  const PlanResult dlt = plan_with(*dlt_rule, task, free_times);
  const PlanResult opr = plan_with(*opr_rule, task, free_times);
  ASSERT_TRUE(dlt.feasible());
  ASSERT_TRUE(opr.feasible());
  EXPECT_EQ(dlt.plan.nodes, opr.plan.nodes);
  EXPECT_LE(dlt.plan.est_completion, opr.plan.est_completion + 1e-9);
}

TEST(DltRule, ClampedFallbackAcceptsWhereOprRejects) {
  // Construct a marginal task: feasible on the whole cluster only thanks to
  // the IIT-utilizing E_hat, not under the no-IIT E. 8 nodes idle, 8 nodes
  // free at 1000; deadline between rn + E_hat(16) and rn + E(16).
  std::vector<cluster::Time> free_times(16, 0.0);
  for (std::size_t i = 8; i < 16; ++i) free_times[i] = 1000.0;
  const double sigma = 200.0;
  const double e16 = dlt::homogeneous_execution_time(paper_params(), sigma, 16);

  const auto dlt_rule = make_dlt_iit_rule();
  const auto opr_rule = make_opr_mn_rule();
  // Probe the DLT estimate first to pick a deadline strictly between.
  const workload::Task probe = make_task(0.0, sigma, 1e9);
  const PlanResult wide = plan_with(*dlt_rule, probe, free_times);
  ASSERT_TRUE(wide.feasible());

  // DLT on all 16 of those nodes: estimate via the het model.
  std::vector<cluster::Time> all16 = free_times;
  const workload::Task marginal =
      make_task(0.0, sigma, 1000.0 + e16 * 0.97);  // < rn + E, > rn + E_hat?
  const PlanResult dlt = plan_with(*dlt_rule, marginal, all16);
  const PlanResult opr = plan_with(*opr_rule, marginal, all16);
  EXPECT_FALSE(opr.feasible());
  ASSERT_TRUE(dlt.feasible()) << "E_hat headroom should admit the marginal task";
  EXPECT_EQ(dlt.plan.nodes, 16u);
  EXPECT_LE(dlt.plan.est_completion, marginal.abs_deadline() + 1e-9);
}

TEST(DltRule, HardInfeasibilityReasons) {
  const auto rule = make_dlt_iit_rule();
  const workload::Task passed = make_task(0.0, 200.0, 10.0);
  std::vector<cluster::Time> busy(16, 50.0);
  EXPECT_EQ(plan_with(*rule, passed, busy).reason, dlt::Infeasibility::kDeadlinePassed);

  const workload::Task tx_bound = make_task(0.0, 200.0, 150.0);  // < sigma*Cms
  EXPECT_EQ(plan_with(*rule, tx_bound, idle_cluster()).reason,
            dlt::Infeasibility::kTransmissionTooLong);
}

TEST(DltRule, OptimisticVariantRejectsViaCompletionCheck) {
  // 1 node idle, 15 very busy; optimistic n from free[0]=0 is small, but
  // those n nodes only gather late -> completion check rejects.
  std::vector<cluster::Time> free_times(16, 20000.0);
  free_times[0] = 0.0;
  const workload::Task task = make_task(0.0, 200.0, 3000.0);
  const auto optimistic = make_dlt_iit_rule(NodeSearch::kOptimistic);
  const PlanResult result = plan_with(*optimistic, task, free_times);
  EXPECT_FALSE(result.feasible());
  // The iterative variant also fails here (only 1 node is usable in time),
  // but via the n search.
  const auto iterative = make_dlt_iit_rule();
  EXPECT_FALSE(plan_with(*iterative, task, free_times).feasible());
}

TEST(DltRule, MalformedRequestThrows) {
  const auto rule = make_dlt_iit_rule();
  PlanRequest request;
  EXPECT_THROW(rule->plan(request), std::invalid_argument);
  const workload::Task task = make_task(0.0, 200.0, 3000.0);
  request.task = &task;
  std::vector<cluster::Time> wrong_size(3, 0.0);
  request.params = paper_params();
  request.free_times = &wrong_size;
  EXPECT_THROW(rule->plan(request), std::invalid_argument);
}

// --- OPR rules -----------------------------------------------------------------

TEST(OprMnRule, SimultaneousAllocationWastesIits) {
  const auto rule = make_opr_mn_rule();
  const workload::Task task = make_task(0.0, 200.0, 6000.0);
  std::vector<cluster::Time> free_times = idle_cluster();
  for (std::size_t i = 0; i < 16; ++i) free_times[i] = 100.0 * static_cast<double>(i);
  const PlanResult result = plan_with(*rule, task, free_times);
  ASSERT_TRUE(result.feasible());
  const cluster::Time rn = result.plan.available.back();
  for (cluster::Time reserve : result.plan.reserve_from) {
    EXPECT_DOUBLE_EQ(reserve, rn);  // everyone waits for the last node
  }
  const double e = dlt::homogeneous_execution_time(paper_params(), 200.0,
                                                   result.plan.nodes);
  EXPECT_NEAR(result.plan.est_completion, rn + e, 1e-9);
}

TEST(OprMnRule, IdleClusterMatchesDltPlan) {
  // Without stagger the two rules coincide (same n, same estimate).
  const auto opr = make_opr_mn_rule();
  const auto dlt = make_dlt_iit_rule();
  const workload::Task task = make_task(0.0, 200.0, 3000.0);
  const PlanResult a = plan_with(*opr, task, idle_cluster());
  const PlanResult b = plan_with(*dlt, task, idle_cluster());
  ASSERT_TRUE(a.feasible());
  ASSERT_TRUE(b.feasible());
  EXPECT_EQ(a.plan.nodes, b.plan.nodes);
  EXPECT_NEAR(a.plan.est_completion, b.plan.est_completion, 1e-6);
}

TEST(OprAnRule, AlwaysUsesWholeCluster) {
  const auto rule = make_opr_an_rule();
  const workload::Task task = make_task(0.0, 200.0, 3000.0);
  const PlanResult result = plan_with(*rule, task, idle_cluster());
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.plan.nodes, 16u);
  EXPECT_NEAR(result.plan.est_completion,
              dlt::homogeneous_execution_time(paper_params(), 200.0, 16), 1e-9);
}

TEST(OprAnRule, RejectsWhenClusterGathersTooLate) {
  const auto rule = make_opr_an_rule();
  const workload::Task task = make_task(0.0, 200.0, 3000.0);
  std::vector<cluster::Time> free_times = idle_cluster();
  free_times[15] = 2500.0;  // one laggard delays the whole task
  const PlanResult result = plan_with(*rule, task, free_times);
  EXPECT_FALSE(result.feasible());
}

// --- UserSplit rule ---------------------------------------------------------------

TEST(UserSplitRule, UsesRequestedNodeCount) {
  const auto rule = make_user_split_rule();
  const workload::Task task = make_task(0.0, 200.0, 4000.0, /*user_nodes=*/10);
  const PlanResult result = plan_with(*rule, task, idle_cluster());
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.plan.nodes, 10u);
  for (double a : result.plan.alpha) EXPECT_DOUBLE_EQ(a, 0.1);
  // Per-node releases are the per-node completions (staggered by chunk tx).
  EXPECT_LT(result.plan.node_release.front(), result.plan.node_release.back());
}

TEST(UserSplitRule, ZeroRequestMeansWholeCluster) {
  const auto rule = make_user_split_rule();
  const workload::Task task = make_task(0.0, 200.0, 4000.0, 0);
  const PlanResult result = plan_with(*rule, task, idle_cluster());
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.plan.nodes, 16u);
}

TEST(UserSplitRule, RejectsWhenEqualSplitMissesDeadline) {
  const auto rule = make_user_split_rule();
  // sigma=200 on 2 nodes: C = 200 + 20000/2 = 10200 > 4000.
  const workload::Task task = make_task(0.0, 200.0, 4000.0, 2);
  const PlanResult result = plan_with(*rule, task, idle_cluster());
  EXPECT_FALSE(result.feasible());
  EXPECT_EQ(result.reason, dlt::Infeasibility::kNeedsMoreNodes);
}

TEST(UserSplitRule, EstimateMatchesEq15) {
  const auto rule = make_user_split_rule();
  const workload::Task task = make_task(0.0, 200.0, 4000.0, 8);
  const PlanResult result = plan_with(*rule, task, idle_cluster());
  ASSERT_TRUE(result.feasible());
  EXPECT_NEAR(result.plan.est_completion, 200.0 + 20000.0 / 8.0, 1e-9);
}

// --- MultiRound rule --------------------------------------------------------------

TEST(MultiRoundRule, FeasibleAndNoWorseThanSingleRoundEstimate) {
  const auto mr = make_multiround_rule(4);
  const auto single = make_dlt_iit_rule();
  const workload::Task task = make_task(0.0, 200.0, 5000.0);
  std::vector<cluster::Time> free_times = idle_cluster();
  for (std::size_t i = 8; i < 16; ++i) free_times[i] = 800.0;
  const PlanResult a = plan_with(*mr, task, free_times);
  const PlanResult b = plan_with(*single, task, free_times);
  ASSERT_TRUE(a.feasible());
  ASSERT_TRUE(b.feasible());
  EXPECT_LE(a.plan.est_completion, task.abs_deadline() + 1e-9);
  EXPECT_TRUE(a.plan.consistent());
  EXPECT_EQ(a.plan.rounds == 4 || a.plan.rounds == 1, true);
}

TEST(MultiRoundRule, RejectsImpossibleTask) {
  const auto mr = make_multiround_rule(2);
  const workload::Task task = make_task(0.0, 200.0, 150.0);
  EXPECT_FALSE(plan_with(*mr, task, idle_cluster()).feasible());
}

// --- cross-rule parameterized sweep -------------------------------------------------

struct RuleCase {
  const char* label;
  std::unique_ptr<PartitionRule> (*factory)();
};

std::unique_ptr<PartitionRule> make_dlt_default() { return make_dlt_iit_rule(); }
std::unique_ptr<PartitionRule> make_opr_default() { return make_opr_mn_rule(); }
std::unique_ptr<PartitionRule> make_mr2() { return make_multiround_rule(2); }

class EveryRule : public ::testing::TestWithParam<RuleCase> {};

TEST_P(EveryRule, FeasiblePlansAreConsistentAndMeetDeadline) {
  const auto rule = GetParam().factory();
  for (double sigma : {20.0, 200.0, 600.0}) {
    for (double deadline : {500.0, 3000.0, 30000.0}) {
      for (double busy_until : {0.0, 400.0, 2000.0}) {
        std::vector<cluster::Time> free_times(16, 0.0);
        for (std::size_t i = 10; i < 16; ++i) free_times[i] = busy_until;
        workload::Task task = make_task(0.0, sigma, deadline, /*user_nodes=*/12);
        const PlanResult result = plan_with(*rule, task, free_times);
        if (!result.feasible()) continue;
        EXPECT_TRUE(result.plan.consistent())
            << GetParam().label << " sigma=" << sigma << " D=" << deadline;
        EXPECT_LE(result.plan.est_completion, task.abs_deadline() + 1e-6);
        EXPECT_GE(result.plan.nodes, 1u);
        EXPECT_LE(result.plan.nodes, 16u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRules, EveryRule,
                         ::testing::Values(RuleCase{"DLT", &make_dlt_default},
                                           RuleCase{"OPR-MN", &make_opr_default},
                                           RuleCase{"OPR-AN", &make_opr_an_rule},
                                           RuleCase{"UserSplit", &make_user_split_rule},
                                           RuleCase{"MR2", &make_mr2}),
                         [](const ::testing::TestParamInfo<RuleCase>& param_info) {
                           std::string name = param_info.param.label;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rtdls::sched
