// Wire-protocol tests: codec round trips for every message type, and fuzz
// over the frame decoder and payload decoders with truncated, oversized,
// and garbage byte strings. The invariant under fuzz is "error reported,
// never a crash, a hang, or an out-of-bounds read".
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "svc/protocol.hpp"
#include "util/wire.hpp"

namespace rtdls::svc {
namespace {

/// Deterministic 64-bit PRNG (splitmix64) - fuzz inputs must reproduce.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint8_t byte() { return static_cast<std::uint8_t>(next() & 0xff); }
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }

 private:
  std::uint64_t state_;
};

/// encode -> decode -> encode must reproduce the bytes exactly; double
/// fields travel as IEEE-754 bit patterns, so this is full bit-identity.
template <typename Message>
void expect_payload_round_trip(const Message& message) {
  util::WireWriter writer;
  message.encode(writer);
  const std::vector<std::uint8_t> bytes = writer.take();

  util::WireReader reader(bytes);
  const Message decoded = Message::decode(reader);
  EXPECT_TRUE(reader.done());

  util::WireWriter again;
  decoded.encode(again);
  EXPECT_EQ(bytes, again.take());
}

TaskRecord sample_task() {
  TaskRecord task;
  task.id = 42;
  task.arrival = 123.456789;
  task.sigma = 200.25;
  task.rel_deadline = 5000.125;
  task.user_nodes = 3;
  return task;
}

TEST(SvcProtocol, EveryMessageRoundTrips) {
  AdmitRequest admit;
  admit.shard = 2;
  admit.deadline_ms = 750;
  admit.task = sample_task();
  expect_payload_round_trip(admit);

  AdmitReply admit_reply;
  admit_reply.accepted = true;
  admit_reply.reason = 2;
  admit_reply.blocking_task = 7;
  admit_reply.decision_seq = 99;
  admit_reply.est_completion = 4120.875;
  admit_reply.nodes = 5;
  admit_reply.waiting = 11;
  expect_payload_round_trip(admit_reply);

  CommitRequest commit;
  commit.shard = 1;
  commit.task = 42;
  expect_payload_round_trip(commit);

  CommitReply commit_reply;
  commit_reply.committed = true;
  commit_reply.committed_at = 321.0625;
  commit_reply.also_committed = 2;
  expect_payload_round_trip(commit_reply);

  CancelRequest cancel;
  cancel.shard = 3;
  cancel.task = 17;
  expect_payload_round_trip(cancel);

  CancelReply cancel_reply;
  cancel_reply.cancelled = true;
  expect_payload_round_trip(cancel_reply);

  expect_payload_round_trip(StatusRequest{});

  StatusReply status;
  status.build = "rtdls (test build)";
  status.algorithm = "EDF-DLT";
  status.node_count = 16;
  status.workers = 4;
  status.counters.connections = 3;
  status.counters.requests = 10;
  status.counters.admits = 6;
  status.counters.errors = 1;
  ShardStatus shard;
  shard.shard = 0;
  shard.now = 1000.5;
  shard.waiting = 2;
  shard.admits = 6;
  shard.accepted = 5;
  shard.rejected = 1;
  shard.committed = 3;
  shard.cancelled = 0;
  shard.session_bytes = 320;
  shard.session_dense_bytes = 256;
  shard.peak_session_bytes = 376;
  status.shards.push_back(shard);
  shard.shard = 1;
  status.shards.push_back(shard);
  expect_payload_round_trip(status);

  SnapshotRequest snapshot;
  snapshot.path = "/tmp/snap.bin";
  expect_payload_round_trip(snapshot);

  SnapshotReply snapshot_reply;
  snapshot_reply.shards = 4;
  snapshot_reply.bytes = 1213;
  expect_payload_round_trip(snapshot_reply);

  expect_payload_round_trip(ShutdownRequest{});
  expect_payload_round_trip(ShutdownReply{});

  DebugSleepRequest sleep_request;
  sleep_request.shard = 1;
  sleep_request.millis = 250;
  expect_payload_round_trip(sleep_request);

  DebugSleepReply sleep_reply;
  sleep_reply.slept_ms = 250;
  expect_payload_round_trip(sleep_reply);

  ErrorReply error;
  error.code = ErrorCode::kTimeout;
  error.message = "per-request deadline hit";
  expect_payload_round_trip(error);
}

TEST(SvcProtocol, FrameRoundTripWholeAndByteByByte) {
  AdmitRequest admit;
  admit.shard = 1;
  admit.task = sample_task();
  const std::vector<std::uint8_t> bytes =
      encode_message(MsgType::kAdmitRequest, /*request_id=*/77, admit);

  // Whole buffer at once.
  {
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    ASSERT_EQ(FrameDecoder::Status::kFrame, decoder.next(frame));
    EXPECT_EQ(MsgType::kAdmitRequest, frame.type);
    EXPECT_EQ(77u, frame.request_id);
    EXPECT_EQ(0u, decoder.buffered());
    util::WireReader reader(frame.payload);
    const AdmitRequest decoded = AdmitRequest::decode(reader);
    EXPECT_EQ(admit.task.id, decoded.task.id);
    EXPECT_EQ(admit.task.arrival, decoded.task.arrival);
  }

  // One byte at a time: kNeedMore until the last byte lands.
  {
    FrameDecoder decoder;
    Frame frame;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
      decoder.feed(&bytes[i], 1);
      ASSERT_EQ(FrameDecoder::Status::kNeedMore, decoder.next(frame)) << "byte " << i;
    }
    decoder.feed(&bytes.back(), 1);
    ASSERT_EQ(FrameDecoder::Status::kFrame, decoder.next(frame));
    EXPECT_EQ(77u, frame.request_id);
  }
}

TEST(SvcProtocol, BackToBackFramesInOneFeed) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    CommitRequest commit;
    commit.shard = static_cast<std::uint32_t>(id);
    commit.task = id * 10;
    const std::vector<std::uint8_t> frame_bytes =
        encode_message(MsgType::kCommitRequest, id, commit);
    stream.insert(stream.end(), frame_bytes.begin(), frame_bytes.end());
  }
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  for (std::uint64_t id = 1; id <= 5; ++id) {
    Frame frame;
    ASSERT_EQ(FrameDecoder::Status::kFrame, decoder.next(frame));
    EXPECT_EQ(id, frame.request_id);
  }
  Frame frame;
  EXPECT_EQ(FrameDecoder::Status::kNeedMore, decoder.next(frame));
}

TEST(SvcProtocol, BadMagicAndBadVersionAreErrors) {
  const std::vector<std::uint8_t> good =
      encode_message(MsgType::kStatusRequest, 1, StatusRequest{});

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xff;
  FrameDecoder decoder;
  decoder.feed(bad_magic.data(), bad_magic.size());
  Frame frame;
  EXPECT_EQ(FrameDecoder::Status::kError, decoder.next(frame));
  EXPECT_FALSE(decoder.error().empty());

  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] ^= 0xff;  // u16 version lives right after the u32 magic
  FrameDecoder decoder2;
  decoder2.feed(bad_version.data(), bad_version.size());
  EXPECT_EQ(FrameDecoder::Status::kError, decoder2.next(frame));
}

TEST(SvcProtocol, OversizedPayloadRejectedBeforeBuffering) {
  // Hand-build a header claiming a payload over the cap; the decoder must
  // error out from the header alone instead of waiting for 4 GiB.
  util::WireWriter writer;
  writer.u32(kFrameMagic);
  writer.u16(kProtocolVersion);
  writer.u16(static_cast<std::uint16_t>(MsgType::kAdmitRequest));
  writer.u64(1);
  writer.u32(kMaxPayload + 1);
  const std::vector<std::uint8_t> header = writer.take();

  FrameDecoder decoder;
  decoder.feed(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(FrameDecoder::Status::kError, decoder.next(frame));
}

TEST(SvcProtocol, UnknownTypeStillParsesAsAFrame) {
  // Unknown message types are a dispatch-level error (the daemon replies
  // kUnknownType and keeps the connection); the framing itself survives.
  util::WireWriter writer;
  writer.u32(kFrameMagic);
  writer.u16(kProtocolVersion);
  writer.u16(0x7777);
  writer.u64(9);
  writer.u32(0);
  const std::vector<std::uint8_t> bytes = writer.take();

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(FrameDecoder::Status::kFrame, decoder.next(frame));
  EXPECT_EQ(static_cast<std::uint16_t>(0x7777), static_cast<std::uint16_t>(frame.type));
  EXPECT_EQ(9u, frame.request_id);
}

TEST(SvcProtocol, GarbageStreamFuzzNeverCrashes) {
  Rng rng(20260809);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t size = rng.below(96);
    std::vector<std::uint8_t> bytes(size);
    for (std::uint8_t& b : bytes) b = rng.byte();

    FrameDecoder decoder;
    // Feed in random-sized chunks; drain frames as they appear. The only
    // legal outcomes are frames, "need more", or a reported error.
    std::size_t offset = 0;
    bool dead = false;
    while (offset < bytes.size() && !dead) {
      const std::size_t chunk = std::min(bytes.size() - offset, 1 + rng.below(17));
      decoder.feed(bytes.data() + offset, chunk);
      offset += chunk;
      for (;;) {
        Frame frame;
        const FrameDecoder::Status status = decoder.next(frame);
        if (status == FrameDecoder::Status::kFrame) continue;
        if (status == FrameDecoder::Status::kError) {
          EXPECT_FALSE(decoder.error().empty());
          dead = true;
        }
        break;
      }
    }
  }
}

TEST(SvcProtocol, TruncatedAndMutatedRealFramesFuzz) {
  AdmitRequest admit;
  admit.shard = 1;
  admit.deadline_ms = 100;
  admit.task = sample_task();
  const std::vector<std::uint8_t> good = encode_message(MsgType::kAdmitRequest, 5, admit);

  // Every truncation is kNeedMore (a valid prefix), never a crash.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(good.data(), cut);
    Frame frame;
    EXPECT_EQ(FrameDecoder::Status::kNeedMore, decoder.next(frame)) << "cut " << cut;
  }

  // Single-byte mutations: any outcome but a crash/hang is acceptable;
  // if a frame comes out, its payload decode must throw or parse cleanly.
  Rng rng(7);
  for (int round = 0; round < 500; ++round) {
    std::vector<std::uint8_t> bytes = good;
    bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    const FrameDecoder::Status status = decoder.next(frame);
    if (status != FrameDecoder::Status::kFrame) continue;
    try {
      util::WireReader reader(frame.payload);
      (void)AdmitRequest::decode(reader);
    } catch (const util::WireError&) {
      // Malformed payloads must surface as WireError - the server turns
      // this into a kBadPayload error reply.
    }
  }
}

TEST(SvcProtocol, PayloadDecodersRejectTruncationAndTrailingBytes) {
  AdmitRequest admit;
  admit.shard = 0;
  admit.task = sample_task();
  util::WireWriter writer;
  admit.encode(writer);
  const std::vector<std::uint8_t> payload = writer.take();

  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    util::WireReader reader(payload.data(), cut);
    EXPECT_THROW((void)AdmitRequest::decode(reader), util::WireError) << "cut " << cut;
  }

  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  util::WireReader reader(padded);
  EXPECT_THROW((void)AdmitRequest::decode(reader), util::WireError);
}

TEST(SvcProtocol, StatusReplyExtendedSectionRoundTrips) {
  StatusReply status;
  status.build = "rtdls (test build)";
  status.algorithm = "EDF-DLT";
  status.node_count = 8;
  status.workers = 2;
  status.shards.resize(2);
  status.shards[0].shard = 0;
  status.shards[1].shard = 1;
  status.extended = true;
  status.uptime_ms = 123456;
  status.queue_depth = 3;
  ShardLatency latency;
  latency.count = 500;
  latency.p50_us = 12.5;
  latency.p90_us = 80.25;
  latency.p99_us = 410.0;
  latency.max_us = 1999.875;
  status.shard_latency.push_back(latency);
  latency.count = 730;
  status.shard_latency.push_back(latency);
  expect_payload_round_trip(status);

  // And decode() really sees the fields, not just matching bytes.
  util::WireWriter writer;
  status.encode(writer);
  const std::vector<std::uint8_t> bytes = writer.take();
  util::WireReader reader(bytes);
  const StatusReply decoded = StatusReply::decode(reader);
  EXPECT_TRUE(decoded.extended);
  EXPECT_EQ(decoded.uptime_ms, 123456u);
  EXPECT_EQ(decoded.queue_depth, 3u);
  ASSERT_EQ(decoded.shard_latency.size(), 2u);
  EXPECT_EQ(decoded.shard_latency[0].count, 500u);
  EXPECT_DOUBLE_EQ(decoded.shard_latency[0].p90_us, 80.25);
  EXPECT_EQ(decoded.shard_latency[1].count, 730u);
}

TEST(SvcProtocol, UnextendedStatusReplyIsTheV10Layout) {
  // extended=false must encode the exact v1.0 byte layout (no trailing
  // section), and decoding it must leave the v1.1 fields at their defaults -
  // this is what a v1.0 client sees and what a v1.1 client reads from a
  // v1.0 daemon.
  StatusReply status;
  status.build = "b";
  status.shards.resize(1);
  status.uptime_ms = 999;  // must NOT be encoded while extended=false
  util::WireWriter writer;
  status.encode(writer);
  const std::vector<std::uint8_t> bytes = writer.take();

  util::WireReader reader(bytes);
  const StatusReply decoded = StatusReply::decode(reader);
  EXPECT_FALSE(decoded.extended);
  EXPECT_EQ(decoded.uptime_ms, 0u);
  EXPECT_EQ(decoded.queue_depth, 0u);
  EXPECT_TRUE(decoded.shard_latency.empty());
}

TEST(SvcProtocol, MetricsMessagesRoundTrip) {
  expect_payload_round_trip(MetricsRequest{});
  MetricsReply reply;
  reply.text = "# TYPE rtdls_daemon_request_latency_us summary\n";
  expect_payload_round_trip(reply);
}

TEST(SvcProtocol, DecoderAcceptsBothProtocolRevisions) {
  // v1.0 frame: accepted, and the frame records which revision it carried
  // (the server encodes its reply at the same revision).
  {
    const std::vector<std::uint8_t> bytes = encode_message(
        MsgType::kStatusRequest, 11, StatusRequest{}, kProtocolVersionV10);
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    ASSERT_EQ(FrameDecoder::Status::kFrame, decoder.next(frame));
    EXPECT_EQ(kProtocolVersionV10, frame.version);
  }
  // v1.1 frame (the default).
  {
    const std::vector<std::uint8_t> bytes =
        encode_message(MsgType::kStatusRequest, 12, StatusRequest{});
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    ASSERT_EQ(FrameDecoder::Status::kFrame, decoder.next(frame));
    EXPECT_EQ(kProtocolVersion, frame.version);
  }
  // A future revision this build does not know: error, not a guess.
  {
    const std::vector<std::uint8_t> bytes =
        encode_message(MsgType::kStatusRequest, 13, StatusRequest{},
                       static_cast<std::uint16_t>(kProtocolVersion + 1));
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(FrameDecoder::Status::kError, decoder.next(frame));
  }
}

TEST(SvcProtocol, StatusReplyLatencyCountValidatedBeforeReserve) {
  // Same defense as the shard count: an extended reply whose latency count
  // implies more bytes than remain must throw from the length check.
  StatusReply status;
  status.extended = true;
  util::WireWriter writer;
  status.encode(writer);
  std::vector<std::uint8_t> payload = writer.take();
  // The trailing u32 is the (empty) shard_latency count; claim 2^30.
  payload[payload.size() - 4] = 0x00;
  payload[payload.size() - 3] = 0x00;
  payload[payload.size() - 2] = 0x00;
  payload[payload.size() - 1] = 0x40;
  util::WireReader reader(payload);
  EXPECT_THROW((void)StatusReply::decode(reader), util::WireError);
}

TEST(SvcProtocol, StatusReplyShardCountValidatedBeforeReserve) {
  // A StatusReply whose shard count implies more bytes than the payload
  // holds must throw from the length check, not allocate first.
  util::WireWriter writer;
  StatusReply status;  // empty build/algorithm strings encode fine
  status.encode(writer);
  std::vector<std::uint8_t> payload = writer.take();
  // The trailing u32 is the (empty) shard vector's count; claim 2^31.
  payload[payload.size() - 4] = 0x00;
  payload[payload.size() - 3] = 0x00;
  payload[payload.size() - 2] = 0x00;
  payload[payload.size() - 1] = 0x80;
  util::WireReader reader(payload);
  EXPECT_THROW((void)StatusReply::decode(reader), util::WireError);
}

}  // namespace
}  // namespace rtdls::svc
