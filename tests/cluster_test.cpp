// Tests for the cluster substrate: node commitments, IIT accounting,
// availability snapshots, early release.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/cluster.hpp"

namespace rtdls::cluster {
namespace {

ClusterParams small_params() { return {.node_count = 4, .cms = 1.0, .cps = 100.0}; }

TEST(ClusterParams, Beta) {
  EXPECT_NEAR(small_params().beta(), 100.0 / 101.0, 1e-15);
  EXPECT_TRUE(small_params().valid());
  EXPECT_FALSE(ClusterParams{.node_count = 0}.valid());
  EXPECT_FALSE((ClusterParams{.node_count = 4, .cms = 0.0, .cps = 1.0}).valid());
}

TEST(Node, CommitTracksBusyAndRelease) {
  Node node(0);
  EXPECT_DOUBLE_EQ(node.free_at(), 0.0);
  node.commit(/*task=*/7, /*usable_from=*/10.0, /*start=*/10.0, /*end=*/50.0);
  EXPECT_DOUBLE_EQ(node.free_at(), 50.0);
  EXPECT_EQ(node.current_task(), 7u);
  EXPECT_DOUBLE_EQ(node.busy_time(), 40.0);
  EXPECT_DOUBLE_EQ(node.idle_gap_time(), 0.0);
  EXPECT_EQ(node.commitments(), 1u);
}

TEST(Node, InsertedIdleTimeIsStartMinusUsable) {
  Node node(0);
  // OPR-style: the node was usable at 10 but held idle until r_n = 25.
  node.commit(1, 10.0, 25.0, 60.0);
  EXPECT_DOUBLE_EQ(node.idle_gap_time(), 15.0);
  EXPECT_DOUBLE_EQ(node.busy_time(), 35.0);
}

TEST(Node, OverlappingCommitThrows) {
  Node node(0);
  node.commit(1, 0.0, 0.0, 100.0);
  EXPECT_THROW(node.commit(2, 50.0, 50.0, 120.0), std::logic_error);
}

TEST(Node, BackwardsIntervalThrows) {
  Node node(0);
  EXPECT_THROW(node.commit(1, 0.0, 10.0, 5.0), std::invalid_argument);
}

TEST(Node, ReleaseEarlyCreditsBusyTime) {
  Node node(0);
  node.commit(1, 0.0, 0.0, 100.0);
  node.release_early(80.0);
  EXPECT_DOUBLE_EQ(node.free_at(), 80.0);
  EXPECT_DOUBLE_EQ(node.busy_time(), 80.0);
  EXPECT_EQ(node.current_task(), kNoTask);
  // A new commitment may start at the early release point.
  node.commit(2, 80.0, 80.0, 90.0);
  EXPECT_DOUBLE_EQ(node.free_at(), 90.0);
}

TEST(Node, ReleaseEarlyLaterThanCommitThrows) {
  Node node(0);
  node.commit(1, 0.0, 0.0, 100.0);
  EXPECT_THROW(node.release_early(120.0), std::logic_error);
}

TEST(Cluster, ConstructionAndInvalidParams) {
  Cluster cluster(small_params());
  EXPECT_EQ(cluster.size(), 4u);
  EXPECT_THROW(Cluster(ClusterParams{.node_count = 0}), std::invalid_argument);
}

TEST(Cluster, AvailabilitySortedAndFlooredAtNow) {
  Cluster cluster(small_params());
  cluster.commit(2, 1, 0.0, 0.0, 500.0);
  cluster.commit(0, 2, 0.0, 0.0, 300.0);
  const AvailabilityView view = cluster.availability(100.0);
  ASSERT_EQ(view.times.size(), 4u);
  EXPECT_DOUBLE_EQ(view.times[0], 100.0);  // idle nodes floored at now
  EXPECT_DOUBLE_EQ(view.times[1], 100.0);
  EXPECT_DOUBLE_EQ(view.times[2], 300.0);
  EXPECT_DOUBLE_EQ(view.times[3], 500.0);
}

TEST(Cluster, EarliestFreeNodesOrderAndTies) {
  Cluster cluster(small_params());
  cluster.commit(1, 9, 0.0, 0.0, 400.0);
  const auto ids = cluster.earliest_free_nodes(0.0, 4);
  ASSERT_EQ(ids.size(), 4u);
  // Idle nodes (0, 2, 3) first by id; busy node 1 last.
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 2u);
  EXPECT_EQ(ids[2], 3u);
  EXPECT_EQ(ids[3], 1u);
}

TEST(Cluster, EarliestFreeNodesBoundsChecked) {
  Cluster cluster(small_params());
  EXPECT_THROW(cluster.earliest_free_nodes(0.0, 5), std::invalid_argument);
  EXPECT_TRUE(cluster.earliest_free_nodes(0.0, 0).empty());
}

TEST(Cluster, TotalsAggregateAcrossNodes) {
  Cluster cluster(small_params());
  cluster.commit(0, 1, 0.0, 0.0, 100.0);
  cluster.commit(1, 1, 0.0, 50.0, 100.0);  // 50 of IIT
  EXPECT_DOUBLE_EQ(cluster.total_busy_time(), 150.0);
  EXPECT_DOUBLE_EQ(cluster.total_idle_gap_time(), 50.0);
}

TEST(Cluster, SequentialCommitsOnSameNode) {
  Cluster cluster(small_params());
  cluster.commit(0, 1, 0.0, 0.0, 100.0);
  cluster.commit(0, 2, 100.0, 150.0, 200.0);
  EXPECT_DOUBLE_EQ(cluster.node(0).free_at(), 200.0);
  EXPECT_DOUBLE_EQ(cluster.node(0).idle_gap_time(), 50.0);
  EXPECT_EQ(cluster.node(0).commitments(), 2u);
}

}  // namespace
}  // namespace rtdls::cluster
