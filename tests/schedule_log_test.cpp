// Tests for the committed-schedule log (Gantt export).
#include <gtest/gtest.h>

#include <sstream>

#include "sim/schedule_log.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"
#include "workload/generator.hpp"

namespace rtdls::sim {
namespace {

TEST(ScheduleLog, EntryAccounting) {
  ScheduleLog log;
  log.add({/*task=*/1, /*node=*/0, /*usable_from=*/10.0, /*start=*/25.0, /*end=*/50.0,
           /*alpha=*/0.5});
  log.add({2, 1, 0.0, 0.0, 30.0, 1.0});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log.entries()[0].inserted_idle(), 15.0);
  EXPECT_DOUBLE_EQ(log.total_inserted_idle(), 15.0);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(ScheduleLog, CsvExportParsesBack) {
  ScheduleLog log;
  log.add({7, 3, 100.0, 120.0, 300.0, 0.25});
  std::ostringstream out;
  log.save_csv(out);
  const auto rows = util::parse_csv(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "task");
  EXPECT_EQ(rows[1][0], "7");
  EXPECT_EQ(rows[1][1], "3");
  EXPECT_EQ(rows[1][6], "20");  // inserted idle
}

TEST(ScheduleLog, GanttRendersMarksAndIdle) {
  ScheduleLog log;
  log.add({1, 0, 0.0, 0.0, 50.0, 1.0});
  log.add({2, 1, 0.0, 50.0, 100.0, 1.0});  // 50 units of inserted idle
  const std::string gantt = log.render_gantt(0.0, 100.0, 2, 40);
  EXPECT_NE(gantt.find('1'), std::string::npos);  // task 1's mark
  EXPECT_NE(gantt.find('2'), std::string::npos);
  EXPECT_NE(gantt.find('.'), std::string::npos);  // node 2's idle gap
  EXPECT_THROW(log.render_gantt(10.0, 10.0, 2), std::invalid_argument);
}

TEST(ScheduleLog, SimulatorFillsTheLog) {
  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = 0.7;
  params.total_time = 100000.0;
  params.seed = 12;
  const auto tasks = workload::generate_workload(params);

  ScheduleLog log;
  SimulatorConfig config;
  config.params = params.cluster;
  config.schedule_log = &log;
  const SimMetrics metrics = simulate(config, "EDF-OPR-MN", tasks, params.total_time);

  // One entry per (accepted task, node) pair; idle accounting must agree
  // with the cluster's.
  std::size_t expected_entries = 0;
  (void)expected_entries;
  EXPECT_GT(log.size(), metrics.accepted);  // every task uses >= 1 node
  EXPECT_NEAR(log.total_inserted_idle(), metrics.idle_gap_time, 1e-6);

  // The log is per-simulation state owned by the caller: a DLT run on the
  // same trace must append zero inserted idle.
  ScheduleLog dlt_log;
  config.schedule_log = &dlt_log;
  simulate(config, "EDF-DLT", tasks, params.total_time);
  EXPECT_NEAR(dlt_log.total_inserted_idle(), 0.0, 1e-6);
}

}  // namespace
}  // namespace rtdls::sim
