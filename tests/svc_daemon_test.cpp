// rtdlsd subsystem tests: snapshot -> kill -> restore bit-identity at shard
// and socket level, the concurrent-vs-serial op-log differential, per-request
// deadlines under a deliberately hung request, and protocol-error survival
// over a real socket.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/speed_profile.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/shard.hpp"
#include "svc/snapshot.hpp"

namespace rtdls::svc {
namespace {

std::string test_socket(const std::string& tag) {
  return "/tmp/rtdls_test_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

std::string test_file(const std::string& tag) {
  return "/tmp/rtdls_test_" + std::to_string(::getpid()) + "_" + tag;
}

// --- shard-level snapshot bit-identity --------------------------------------

struct TestOp {
  OpRecord::Kind kind = OpRecord::Kind::kAdmit;
  TaskRecord record;
  cluster::TaskId task = cluster::kNoTask;
};

/// A deterministic workload that produces accepts, rejects, auto-commits,
/// explicit commits, and cancels (including not-waiting errors) - every
/// code path the snapshot must preserve.
std::vector<TestOp> scripted_ops(std::size_t count) {
  std::vector<TestOp> ops;
  ops.reserve(count);
  for (std::size_t step = 0; step < count; ++step) {
    if (step % 5 == 4) {
      TestOp op;
      op.kind = step % 10 == 9 ? OpRecord::Kind::kCancel : OpRecord::Kind::kCommit;
      op.task = static_cast<cluster::TaskId>(step);  // may or may not be waiting
      ops.push_back(op);
      continue;
    }
    TestOp op;
    op.record.id = static_cast<cluster::TaskId>(step + 1);
    op.record.arrival = static_cast<double>(step) * 2200.0;
    op.record.sigma = 120.0 + static_cast<double>(step % 7) * 25.0;
    op.record.rel_deadline = 4000.0 + static_cast<double>(step % 3) * 800.0;
    op.record.user_nodes = step % 11 == 6 ? 3 : 0;
    ops.push_back(op);
  }
  return ops;
}

/// Applies one op and returns its outcome as bytes: the encoded reply on
/// success, the error text on a ShardError. Bit-identity means two shards
/// produce the same string for the same op.
std::string apply_op(AdmissionShard& shard, const TestOp& op) {
  try {
    util::WireWriter writer;
    switch (op.kind) {
      case OpRecord::Kind::kAdmit:
        shard.admit(op.record).encode(writer);
        break;
      case OpRecord::Kind::kCommit:
        shard.commit(op.task).encode(writer);
        break;
      case OpRecord::Kind::kCancel:
        shard.cancel(op.task).encode(writer);
        break;
    }
    const std::vector<std::uint8_t> bytes = writer.take();
    return std::string(bytes.begin(), bytes.end());
  } catch (const ShardError& error) {
    return std::string("ERR:") + error.what();
  }
}

std::vector<std::uint8_t> snapshot_bytes(const AdmissionShard& shard) {
  util::WireWriter writer;
  shard.snapshot_to(writer);
  return writer.take();
}

void expect_snapshot_restore_bit_identity(const std::string& algorithm, bool heterogeneous) {
  SCOPED_TRACE(algorithm + (heterogeneous ? " het" : " hom"));
  ShardConfig config;
  config.params.node_count = 8;
  config.params.cms = 1.0;
  config.params.cps = 100.0;
  if (heterogeneous) {
    config.params.speed_profile = std::make_shared<const cluster::SpeedProfile>(
        std::vector<double>{70.0, 85.0, 95.0, 100.0, 110.0, 120.0, 140.0, 160.0});
  }

  const std::vector<TestOp> ops = scripted_ops(40);
  const std::size_t cut = 20;

  // The uninterrupted shard runs everything.
  AdmissionShard full(algorithm, config);
  for (std::size_t i = 0; i < cut; ++i) apply_op(full, ops[i]);

  // "Kill": capture the snapshot mid-run, restore onto a fresh shard.
  const std::vector<std::uint8_t> mid = snapshot_bytes(full);
  AdmissionShard restored(algorithm, config);
  {
    util::WireReader reader(mid);
    restored.restore_from(reader);
    reader.expect_done();
  }
  // The restored shard's state re-serializes identically.
  EXPECT_EQ(mid, snapshot_bytes(restored));

  // Every subsequent decision (accept/reject, est_completion bits, errors)
  // must be identical between the survivor and the restored shard.
  for (std::size_t i = cut; i < ops.size(); ++i) {
    EXPECT_EQ(apply_op(full, ops[i]), apply_op(restored, ops[i])) << "op " << i;
  }
  EXPECT_EQ(snapshot_bytes(full), snapshot_bytes(restored));
}

TEST(SvcShard, SnapshotRestoreBitIdentityAcrossAlgorithms) {
  for (const char* algorithm :
       {"EDF-DLT", "FIFO-DLT", "EDF-MR2", "FIFO-MR2", "EDF-OPR-MN-BF", "FIFO-OPR-MN-BF"}) {
    expect_snapshot_restore_bit_identity(algorithm, /*heterogeneous=*/false);
    expect_snapshot_restore_bit_identity(algorithm, /*heterogeneous=*/true);
  }
}

TEST(SvcShard, StatelessSessionsMatchIncremental) {
  // The warm session is a pure cache: the same op script through
  // incremental and stateless shards must produce identical outcomes.
  ShardConfig incremental;
  incremental.params.node_count = 8;
  ShardConfig stateless = incremental;
  stateless.incremental = false;

  AdmissionShard a("EDF-DLT", incremental);
  AdmissionShard b("EDF-DLT", stateless);
  for (const TestOp& op : scripted_ops(40)) {
    EXPECT_EQ(apply_op(a, op), apply_op(b, op));
  }
}

// --- daemon-level restore over the socket -----------------------------------

TEST(SvcDaemon, SnapshotKillRestoreOverSocket) {
  const std::string socket_a = test_socket("restore_a");
  const std::string socket_b = test_socket("restore_b");
  const std::string snapshot = test_file("restore.snap");

  auto admit_script = [](Client& client, std::size_t from, std::size_t count,
                         std::vector<std::string>& out) {
    for (std::size_t i = from; i < from + count; ++i) {
      AdmitRequest request;
      request.shard = static_cast<std::uint32_t>(i % 2);
      request.task.id = static_cast<cluster::TaskId>(i + 1);
      request.task.arrival = static_cast<double>(i) * 1700.0;
      request.task.sigma = 140.0 + static_cast<double>(i % 5) * 30.0;
      request.task.rel_deadline = 4500.0;
      const AdmitReply reply = client.admit(request);
      util::WireWriter writer;
      reply.encode(writer);
      const std::vector<std::uint8_t> bytes = writer.take();
      out.emplace_back(bytes.begin(), bytes.end());
    }
  };

  std::vector<std::string> uninterrupted;
  {
    DaemonConfig config;
    config.socket_path = socket_a;
    config.shards = 2;
    Daemon daemon(std::move(config));
    daemon.start();
    Client client(socket_a);
    std::vector<std::string> warmup;
    admit_script(client, 0, 10, warmup);
    const SnapshotReply written = client.snapshot(snapshot);
    EXPECT_EQ(2u, written.shards);
    EXPECT_GT(written.bytes, 0u);
    // The daemon "continues" past the snapshot point...
    admit_script(client, 10, 10, uninterrupted);
    daemon.stop();
  }
  ::unlink(socket_a.c_str());

  // ...and the restored daemon, fed the same requests, answers with the
  // same bytes (est_completion doubles included - exact, not approximate).
  std::vector<std::string> restored;
  {
    DaemonConfig config;
    config.socket_path = socket_b;
    config.restore_path = snapshot;
    Daemon daemon(std::move(config));
    daemon.start();
    EXPECT_EQ(2u, daemon.shard_count());
    EXPECT_EQ(2u, daemon.counters().restores);
    Client client(socket_b);
    admit_script(client, 10, 10, restored);
    daemon.stop();
  }
  EXPECT_EQ(uninterrupted, restored);
  ::unlink(socket_b.c_str());
  ::unlink(snapshot.c_str());
}

// --- concurrent clients vs serial replay ------------------------------------

TEST(SvcDaemon, ConcurrentClientsMatchSerialReplay) {
  const std::string socket_path = test_socket("storm");
  DaemonConfig config;
  config.socket_path = socket_path;
  config.shards = 1;
  config.workers = 4;
  config.record_ops = true;
  const ShardConfig replay_config{config.params, config.incremental, false};
  Daemon daemon(std::move(config));
  daemon.start();

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 30;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&socket_path, t]() {
      Client client(socket_path);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        AdmitRequest request;
        request.shard = 0;
        request.task.id = static_cast<cluster::TaskId>(t * 1000 + i + 1);
        request.task.arrival = static_cast<double>(i) * 2600.0;
        request.task.sigma = 110.0 + static_cast<double>((t + i) % 6) * 20.0;
        request.task.rel_deadline = 4200.0;
        client.admit(request);
        if (i % 7 == 3) {
          // Racing commits/cancels: most will hit kUnknownTask (the plan
          // auto-committed already) - that is part of the interleaving.
          try {
            if (i % 14 == 3) {
              client.commit(0, request.task.id);
            } else {
              client.cancel(0, request.task.id);
            }
          } catch (const ServiceError&) {
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  daemon.stop();

  // The daemon's shard processed SOME serial interleaving of the four
  // request streams (one mutex = total order). Replaying that logged order
  // on a fresh in-process shard must reproduce every reply byte.
  const std::vector<OpRecord>& ops = daemon.shard(0).ops();
  ASSERT_GE(ops.size(), kThreads * kPerThread);
  AdmissionShard replay("EDF-DLT", replay_config);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    util::WireWriter writer;
    switch (ops[i].kind) {
      case OpRecord::Kind::kAdmit:
        replay.admit(ops[i].record).encode(writer);
        break;
      case OpRecord::Kind::kCommit:
        replay.commit(ops[i].task).encode(writer);
        break;
      case OpRecord::Kind::kCancel:
        replay.cancel(ops[i].task).encode(writer);
        break;
    }
    EXPECT_EQ(ops[i].reply, writer.take()) << "op " << i;
  }
  ::unlink(socket_path.c_str());
}

// --- per-request deadlines under a hung request -----------------------------

TEST(SvcDaemon, HungRequestTimesOutWithoutStallingOtherShards) {
  const std::string socket_path = test_socket("deadline");
  DaemonConfig config;
  config.socket_path = socket_path;
  config.shards = 2;
  config.workers = 4;
  config.default_deadline_ms = 500;
  Daemon daemon(std::move(config));
  daemon.start();

  // The hung request: asks to hold shard 0 for 30s, gets cut off by the
  // 500ms request deadline with kTimeout instead of wedging its worker.
  std::thread sleeper([&socket_path]() {
    Client client(socket_path, /*timeout_ms=*/10000);
    const auto start = std::chrono::steady_clock::now();
    try {
      client.debug_sleep(0, 30000);
      FAIL() << "debug_sleep should have hit the per-request deadline";
    } catch (const ServiceError& error) {
      EXPECT_EQ(ErrorCode::kTimeout, error.code());
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    EXPECT_LT(wall, 5.0);  // deadline-bounded, nowhere near the 30s ask
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Other clients on the OTHER shard are unaffected while shard 0 hangs.
  {
    Client client(socket_path);
    AdmitRequest request;
    request.shard = 1;
    request.task.id = 1;
    request.task.sigma = 150.0;
    request.task.rel_deadline = 5000.0;
    const auto start = std::chrono::steady_clock::now();
    const AdmitReply reply = client.admit(request);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    EXPECT_TRUE(reply.accepted);
    EXPECT_LT(wall, 0.4);
  }

  // A contender on the hung shard fails fast on the lock with kTimeout.
  {
    Client client(socket_path);
    AdmitRequest request;
    request.shard = 0;
    request.deadline_ms = 150;
    request.task.id = 2;
    request.task.sigma = 150.0;
    request.task.rel_deadline = 5000.0;
    try {
      client.admit(request);
      FAIL() << "contender should have timed out on the shard lock";
    } catch (const ServiceError& error) {
      EXPECT_EQ(ErrorCode::kTimeout, error.code());
    }
  }

  sleeper.join();
  EXPECT_GE(daemon.counters().timeouts, 2u);
  daemon.stop();
  ::unlink(socket_path.c_str());
}

// --- protocol errors over a real socket -------------------------------------

/// Minimal raw connection for speaking malformed bytes at the daemon.
class RawConn {
 public:
  explicit RawConn(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(static_cast<ssize_t>(bytes.size()),
              ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL));
  }

  /// Reads until one frame decodes (or 5s passes). Returns false on EOF
  /// before a frame.
  bool read_frame(Frame& out) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    std::uint8_t buffer[4096];
    for (;;) {
      if (decoder_.next(out) == FrameDecoder::Status::kFrame) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      pollfd entry{fd_, POLLIN, 0};
      if (::poll(&entry, 1, 200) <= 0) continue;
      const ssize_t received = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (received <= 0) return false;
      decoder_.feed(buffer, static_cast<std::size_t>(received));
    }
  }

  /// True once the peer closes (EOF within 5s).
  bool reaches_eof() {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    std::uint8_t buffer[256];
    while (std::chrono::steady_clock::now() < deadline) {
      pollfd entry{fd_, POLLIN, 0};
      if (::poll(&entry, 1, 200) <= 0) continue;
      if (::recv(fd_, buffer, sizeof(buffer), 0) <= 0) return true;
    }
    return false;
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

ErrorReply decode_error(const Frame& frame) {
  EXPECT_EQ(MsgType::kErrorReply, frame.type);
  util::WireReader reader(frame.payload);
  return ErrorReply::decode(reader);
}

TEST(SvcDaemon, GarbageBytesGetErrorReplyAndCloseDaemonSurvives) {
  const std::string socket_path = test_socket("garbage");
  DaemonConfig config;
  config.socket_path = socket_path;
  config.shards = 1;
  Daemon daemon(std::move(config));
  daemon.start();

  {
    RawConn conn(socket_path);
    ASSERT_TRUE(conn.ok());
    conn.send_bytes(std::vector<std::uint8_t>(64, 0xAB));
    Frame frame;
    ASSERT_TRUE(conn.read_frame(frame));
    EXPECT_EQ(ErrorCode::kBadFrame, decode_error(frame).code);
    EXPECT_TRUE(conn.reaches_eof());  // frame-level corruption closes the stream
  }

  // Unknown types are per-frame errors: the connection keeps serving.
  {
    RawConn conn(socket_path);
    ASSERT_TRUE(conn.ok());
    util::WireWriter writer;
    writer.u32(kFrameMagic);
    writer.u16(kProtocolVersion);
    writer.u16(0x6666);
    writer.u64(41);
    writer.u32(0);
    conn.send_bytes(writer.take());
    Frame frame;
    ASSERT_TRUE(conn.read_frame(frame));
    EXPECT_EQ(41u, frame.request_id);
    EXPECT_EQ(ErrorCode::kUnknownType, decode_error(frame).code);

    conn.send_bytes(encode_message(MsgType::kStatusRequest, 42, StatusRequest{}));
    ASSERT_TRUE(conn.read_frame(frame));
    EXPECT_EQ(MsgType::kStatusReply, frame.type);
    EXPECT_EQ(42u, frame.request_id);
  }

  // Undecodable payload for a known type: kBadPayload, connection survives.
  {
    RawConn conn(socket_path);
    ASSERT_TRUE(conn.ok());
    conn.send_bytes(encode_frame(MsgType::kAdmitRequest, 7, {0x01, 0x02}));
    Frame frame;
    ASSERT_TRUE(conn.read_frame(frame));
    EXPECT_EQ(ErrorCode::kBadPayload, decode_error(frame).code);
    conn.send_bytes(encode_message(MsgType::kStatusRequest, 8, StatusRequest{}));
    ASSERT_TRUE(conn.read_frame(frame));
    EXPECT_EQ(MsgType::kStatusReply, frame.type);
  }

  // And a well-formed client still gets full service afterwards.
  Client client(socket_path);
  const StatusReply status = client.status();
  EXPECT_EQ(1u, status.shards.size());
  EXPECT_GE(daemon.counters().errors, 3u);
  daemon.stop();
  ::unlink(socket_path.c_str());
}

TEST(SvcDaemon, ExtendedStatusCarriesUptimeQueueAndLatency) {
  const std::string socket_path = test_socket("obs_status");
  DaemonConfig config;
  config.socket_path = socket_path;
  config.shards = 2;
  Daemon daemon(std::move(config));
  daemon.start();
  Client client(socket_path);

  for (std::size_t i = 0; i < 6; ++i) {
    AdmitRequest request;
    request.shard = static_cast<std::uint32_t>(i % 2);
    request.task.id = static_cast<cluster::TaskId>(i + 1);
    request.task.arrival = static_cast<double>(i) * 1700.0;
    request.task.sigma = 150.0;
    request.task.rel_deadline = 5000.0;
    client.admit(request);
  }

  const StatusReply status = client.status();
  EXPECT_TRUE(status.extended);  // the client speaks v1.1
  ASSERT_EQ(status.shards.size(), 2u);
  ASSERT_EQ(status.shard_latency.size(), 2u);
  // Per-shard latency: 3 admits landed on each shard; quantiles are
  // ordered and bounded by the max.
  for (const ShardLatency& latency : status.shard_latency) {
    EXPECT_EQ(latency.count, 3u);
    EXPECT_GT(latency.p50_us, 0.0);
    EXPECT_LE(latency.p50_us, latency.p90_us);
    EXPECT_LE(latency.p90_us, latency.p99_us);
    EXPECT_LE(latency.p99_us, latency.max_us * 1.000001);
  }
  // With every request answered, nothing is queued.
  EXPECT_EQ(status.queue_depth, 0u);

  // Uptime advances between two status calls.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const StatusReply later = client.status();
  EXPECT_GT(later.uptime_ms, status.uptime_ms);

  daemon.stop();
  ::unlink(socket_path.c_str());
}

TEST(SvcDaemon, LegacyV10ClientGetsV10Replies) {
  const std::string socket_path = test_socket("obs_legacy");
  DaemonConfig config;
  config.socket_path = socket_path;
  config.shards = 1;
  Daemon daemon(std::move(config));
  daemon.start();

  RawConn conn(socket_path);
  ASSERT_TRUE(conn.ok());
  // A v1.0 status request must get a v1.0 frame back whose payload is the
  // v1.0 StatusReply layout (no extended suffix a v1.0 decoder would choke
  // on as trailing bytes).
  conn.send_bytes(
      encode_message(MsgType::kStatusRequest, 21, StatusRequest{}, kProtocolVersionV10));
  Frame frame;
  ASSERT_TRUE(conn.read_frame(frame));
  EXPECT_EQ(MsgType::kStatusReply, frame.type);
  EXPECT_EQ(kProtocolVersionV10, frame.version);
  util::WireReader reader(frame.payload);
  const StatusReply status = StatusReply::decode(reader);
  EXPECT_TRUE(reader.done());
  EXPECT_FALSE(status.extended);
  EXPECT_EQ(status.shards.size(), 1u);

  // Typed errors also come back at the requester's revision.
  CommitRequest commit;
  commit.shard = 0;
  commit.task = 4242;  // never admitted
  conn.send_bytes(
      encode_message(MsgType::kCommitRequest, 22, commit, kProtocolVersionV10));
  ASSERT_TRUE(conn.read_frame(frame));
  EXPECT_EQ(MsgType::kErrorReply, frame.type);
  EXPECT_EQ(kProtocolVersionV10, frame.version);
  EXPECT_EQ(ErrorCode::kUnknownTask, decode_error(frame).code);

  daemon.stop();
  ::unlink(socket_path.c_str());
}

TEST(SvcDaemon, MetricsOpReturnsPrometheusText) {
  const std::string socket_path = test_socket("obs_metrics");
  DaemonConfig config;
  config.socket_path = socket_path;
  config.shards = 1;
  Daemon daemon(std::move(config));
  daemon.start();
  Client client(socket_path);

  AdmitRequest request;
  request.shard = 0;
  request.task.id = 1;
  request.task.sigma = 150.0;
  request.task.rel_deadline = 5000.0;
  client.admit(request);

  const MetricsReply metrics = client.metrics();
  EXPECT_NE(metrics.text.find("rtdls_daemon_request_latency_us_count"), std::string::npos)
      << metrics.text;
  EXPECT_NE(metrics.text.find("rtdls_daemon_admits_total 1"), std::string::npos)
      << metrics.text;
  EXPECT_NE(metrics.text.find("rtdls_daemon_queue_depth"), std::string::npos);
  EXPECT_NE(metrics.text.find("rtdls_shard0_request_latency_us"), std::string::npos);
  EXPECT_NE(metrics.text.find("quantile=\"0.9\""), std::string::npos);

  // Two daemons must not blend request metrics: a second daemon's scrape
  // starts from zero even while the first is still running.
  const std::string socket_b = test_socket("obs_metrics_b");
  DaemonConfig config_b;
  config_b.socket_path = socket_b;
  config_b.shards = 1;
  Daemon daemon_b(std::move(config_b));
  daemon_b.start();
  Client client_b(socket_b);
  const MetricsReply fresh = client_b.metrics();
  EXPECT_NE(fresh.text.find("rtdls_daemon_request_latency_us_count 0"), std::string::npos)
      << fresh.text;
  daemon_b.stop();
  ::unlink(socket_b.c_str());

  daemon.stop();
  ::unlink(socket_path.c_str());
}

TEST(SvcDaemon, UnknownShardAndUnknownTaskAreTypedErrors) {
  const std::string socket_path = test_socket("errors");
  DaemonConfig config;
  config.socket_path = socket_path;
  config.shards = 1;
  Daemon daemon(std::move(config));
  daemon.start();
  Client client(socket_path);

  AdmitRequest request;
  request.shard = 9;  // out of range
  request.task.id = 1;
  request.task.sigma = 100.0;
  request.task.rel_deadline = 5000.0;
  try {
    client.admit(request);
    FAIL() << "expected kUnknownShard";
  } catch (const ServiceError& error) {
    EXPECT_EQ(ErrorCode::kUnknownShard, error.code());
  }

  try {
    client.commit(0, 12345);
    FAIL() << "expected kUnknownTask";
  } catch (const ServiceError& error) {
    EXPECT_EQ(ErrorCode::kUnknownTask, error.code());
  }

  daemon.stop();
  ::unlink(socket_path.c_str());
}

}  // namespace
}  // namespace rtdls::svc
