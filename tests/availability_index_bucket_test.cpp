// Tests for the bucketed AvailabilityIndex backend (PR 10): backend
// resolution precedence, N=10^4 randomized flat-vs-bucket differentials over
// the three index mutations (commit / release_early / reset), the adversarial
// monotone-arrival pattern that maximizes the flat backend's memmove, desync
// detection on the bucket path, and full-simulation property runs pinning
// bit-identical schedules across both backends (EDF/FIFO x DLT/MR2/OPR-MN-BF,
// homogeneous and heterogeneous, with the admission cross-check armed).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/availability_index.hpp"
#include "cluster/cluster.hpp"
#include "cluster/speed_profile.hpp"
#include "sim/schedule_log.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace rtdls {
namespace {

using cluster::AvailabilityIndex;
using cluster::IndexBackend;
using cluster::NodeId;
using cluster::Time;

/// Saves, clears, and restores RTDLS_INDEX so resolution tests control the
/// environment regardless of how the suite itself was launched.
class ScopedIndexEnv {
 public:
  ScopedIndexEnv() {
    if (const char* value = std::getenv("RTDLS_INDEX")) saved_ = value;
    unsetenv("RTDLS_INDEX");
  }
  ~ScopedIndexEnv() {
    if (saved_) {
      setenv("RTDLS_INDEX", saved_->c_str(), 1);
    } else {
      unsetenv("RTDLS_INDEX");
    }
  }
  void set(const char* value) { setenv("RTDLS_INDEX", value, 1); }
  void clear() { unsetenv("RTDLS_INDEX"); }

 private:
  std::optional<std::string> saved_;
};

TEST(IndexBackendResolution, ExplicitChoiceBeatsEnvironment) {
  ScopedIndexEnv env;
  env.set("flat");
  EXPECT_EQ(cluster::resolve_index_backend(IndexBackend::kBucket, 8), IndexBackend::kBucket);
  env.set("bucket");
  EXPECT_EQ(cluster::resolve_index_backend(IndexBackend::kFlat, 100000),
            IndexBackend::kFlat);
}

TEST(IndexBackendResolution, AutoHonorsEnvironmentThenHeuristic) {
  ScopedIndexEnv env;
  env.set("bucket");
  EXPECT_EQ(cluster::resolve_index_backend(IndexBackend::kAuto, 8), IndexBackend::kBucket);
  env.set("FLAT");  // case-insensitive
  EXPECT_EQ(cluster::resolve_index_backend(IndexBackend::kAuto, 100000),
            IndexBackend::kFlat);
  env.set("b-tree");
  EXPECT_THROW(cluster::resolve_index_backend(IndexBackend::kAuto, 8),
               std::invalid_argument);
  env.clear();
  // Heuristic crossover at 4096 nodes.
  EXPECT_EQ(cluster::resolve_index_backend(IndexBackend::kAuto, 4095), IndexBackend::kFlat);
  EXPECT_EQ(cluster::resolve_index_backend(IndexBackend::kAuto, 4096),
            IndexBackend::kBucket);
  // "auto" in the environment defers to the same heuristic.
  env.set("auto");
  EXPECT_EQ(cluster::resolve_index_backend(IndexBackend::kAuto, 64), IndexBackend::kFlat);
}

TEST(IndexBackendResolution, NamesAndUnresolvedReset) {
  EXPECT_STREQ(cluster::index_backend_name(IndexBackend::kFlat), "flat");
  EXPECT_STREQ(cluster::index_backend_name(IndexBackend::kBucket), "bucket");
  EXPECT_STREQ(cluster::index_backend_name(IndexBackend::kAuto), "auto");
  AvailabilityIndex index;
  EXPECT_THROW(index.reset(8, IndexBackend::kAuto), std::invalid_argument);
}

// --- flat-vs-bucket differentials -------------------------------------------

/// Asserts every query surface agrees between the two backends (and with the
/// authoritative per-node times). `full` toggles the O(N) snapshot compares.
void expect_backends_agree(const AvailabilityIndex& flat, const AvailabilityIndex& bucket,
                           const std::vector<Time>& free_times, Time now, bool full) {
  ASSERT_TRUE(flat.consistent_with(free_times));
  ASSERT_TRUE(bucket.consistent_with(free_times));
  ASSERT_EQ(flat.size(), bucket.size());
  EXPECT_EQ(flat.available_by(now), bucket.available_by(now));
  EXPECT_EQ(flat.available_by(0.0), bucket.available_by(0.0));
  const std::size_t n = flat.size();
  for (std::size_t k : {std::size_t{0}, n / 3, n / 2, n - 1}) {
    EXPECT_EQ(flat.kth_free_time(k), bucket.kth_free_time(k)) << "k=" << k;
  }
  if (!full) return;
  std::vector<Time> times_a, times_b;
  flat.availability_into(now, times_a);
  bucket.availability_into(now, times_b);
  ASSERT_EQ(times_a, times_b) << "availability_into at now=" << now;
  std::vector<NodeId> ids_a, ids_b;
  flat.availability_with_ids_into(now, times_a, ids_a);
  bucket.availability_with_ids_into(now, times_b, ids_b);
  ASSERT_EQ(times_a, times_b) << "availability_with_ids_into times at now=" << now;
  ASSERT_EQ(ids_a, ids_b) << "availability_with_ids_into ids at now=" << now;
  for (std::size_t want : {std::size_t{1}, n / 7, n / 2, n}) {
    if (want == 0) continue;
    flat.earliest_free_nodes_into(now, want, ids_a);
    bucket.earliest_free_nodes_into(now, want, ids_b);
    ASSERT_EQ(ids_a, ids_b) << "earliest_free_nodes_into n=" << want << " now=" << now;
  }
}

TEST(AvailabilityIndexBucket, RandomizedDifferentialAtTenThousandNodes) {
  // The satellite's N=10^4 differential: identical randomized update storms
  // (commits moving entries up, early releases moving them down, plus
  // resets) on both backends, with the full query surface compared along
  // the way. Times come off a coarse grid so duplicate free_at values (the
  // node-id tie-break path) occur constantly.
  constexpr std::size_t kNodes = 10000;
  AvailabilityIndex flat, bucket;
  flat.reset(kNodes, IndexBackend::kFlat);
  bucket.reset(kNodes, IndexBackend::kBucket);
  std::vector<Time> free_times(kNodes, 0.0);
  workload::Xoshiro256StarStar rng(20260809);
  Time now = 0.0;
  for (int step = 0; step < 3000; ++step) {
    const auto node = static_cast<NodeId>(rng() % kNodes);
    const double action = rng.next_double();
    const Time from = free_times[node];
    if (action < 0.65) {
      // Commit: release moves forward, onto a coarse grid for ties.
      const Time to = from + 1.0 + std::floor(rng.next_double() * 40.0);
      flat.update(node, from, to);
      bucket.update(node, from, to);
      free_times[node] = to;
    } else if (action < 0.85) {
      // Early release: move backwards (but not before `now`).
      const Time to = std::max(now, std::floor(from * (0.3 + 0.6 * rng.next_double())));
      flat.update(node, from, to);
      bucket.update(node, from, to);
      free_times[node] = to;
    } else if (action < 0.95) {
      now += std::floor(rng.next_double() * 30.0);
    } else {
      // No-op reposition: to == from must leave both backends untouched.
      EXPECT_EQ(flat.update(node, from, from), 0u);
      EXPECT_EQ(bucket.update(node, from, from), 0u);
    }
    expect_backends_agree(flat, bucket, free_times, now, /*full=*/step % 16 == 0);
  }
  expect_backends_agree(flat, bucket, free_times, now, /*full=*/true);

  // Mid-run reset: both backends return to the all-free state and keep
  // their backend selection (the single-argument overload).
  flat.reset(kNodes);
  bucket.reset(kNodes);
  EXPECT_EQ(flat.backend(), IndexBackend::kFlat);
  EXPECT_EQ(bucket.backend(), IndexBackend::kBucket);
  std::fill(free_times.begin(), free_times.end(), 0.0);
  expect_backends_agree(flat, bucket, free_times, 0.0, /*full=*/true);
  // And both keep working after the reset.
  flat.update(17, 0.0, 99.0);
  bucket.update(17, 0.0, 99.0);
  free_times[17] = 99.0;
  expect_backends_agree(flat, bucket, free_times, 0.0, /*full=*/true);
}

TEST(AvailabilityIndexBucket, AdversarialMonotoneArrivalPattern) {
  // The flat backend's worst case: every update takes the earliest-free
  // node (position 0) and releases it past the current maximum, dragging
  // the entire array through memmove - exactly what a saturated
  // monotone-arrival replay does. The bucket backend must stay bounded by
  // its fanout while producing identical results.
  constexpr std::size_t kNodes = 10000;
  AvailabilityIndex flat, bucket;
  flat.reset(kNodes, IndexBackend::kFlat);
  bucket.reset(kNodes, IndexBackend::kBucket);
  std::vector<Time> free_times(kNodes, 0.0);
  Time horizon = 0.0;
  std::size_t max_bucket_depth = 0;
  for (int step = 0; step < 4000; ++step) {
    // argmin by (free_at, node): the entry at flat position 0.
    NodeId victim = 0;
    for (NodeId id = 1; id < kNodes; ++id) {
      if (free_times[id] < free_times[victim]) victim = id;
    }
    const Time from = free_times[victim];
    horizon += 1.0;
    const Time to = horizon + static_cast<Time>(kNodes);
    const std::size_t flat_depth = flat.update(victim, from, to);
    const std::size_t bucket_depth = bucket.update(victim, from, to);
    free_times[victim] = to;
    // Position 0 -> position N-1: the flat memmove is maximal every time.
    EXPECT_EQ(flat_depth, kNodes - 1);
    max_bucket_depth = std::max(max_bucket_depth, bucket_depth);
    if (step % 64 == 0) {
      expect_backends_agree(flat, bucket, free_times, horizon, /*full=*/true);
    }
  }
  // Erase shift + insert shift, each bucket-local: two fanout-bounded
  // memmoves instead of ten thousand entries.
  EXPECT_LE(max_bucket_depth, 256u);
  expect_backends_agree(flat, bucket, free_times, horizon, /*full=*/true);
}

TEST(AvailabilityIndexBucket, ClusterDifferentialCommitReleaseReset) {
  // Same storm through the Cluster layer (commit / release_early / reset),
  // selecting the backend via ClusterParams - the wiring the simulator and
  // daemon use.
  cluster::ClusterParams flat_params;
  flat_params.node_count = 512;
  flat_params.cms = 1.0;
  flat_params.cps = 100.0;
  flat_params.index_backend = IndexBackend::kFlat;
  cluster::ClusterParams bucket_params = flat_params;
  bucket_params.index_backend = IndexBackend::kBucket;
  cluster::Cluster flat(flat_params);
  cluster::Cluster bucket(bucket_params);
  EXPECT_EQ(flat.index_backend(), IndexBackend::kFlat);
  EXPECT_EQ(bucket.index_backend(), IndexBackend::kBucket);

  workload::Xoshiro256StarStar rng(777);
  std::vector<Time> committed_until(512, 0.0);
  Time now = 0.0;
  std::vector<Time> times_a, times_b;
  std::vector<NodeId> ids_a, ids_b;
  for (int step = 0; step < 600; ++step) {
    const auto node = static_cast<NodeId>(rng() % 512);
    const double action = rng.next_double();
    if (action < 0.70) {
      const Time start = std::max(committed_until[node], now) + rng.next_double() * 50.0;
      const Time end = start + 1.0 + rng.next_double() * 500.0;
      flat.commit(node, static_cast<cluster::TaskId>(step), start, start, end);
      bucket.commit(node, static_cast<cluster::TaskId>(step), start, start, end);
      committed_until[node] = end;
    } else if (action < 0.85) {
      const Time at = committed_until[node] * (0.5 + 0.5 * rng.next_double());
      flat.release_early(node, at);
      bucket.release_early(node, at);
      committed_until[node] = at;
    } else if (action < 0.97) {
      now += rng.next_double() * 100.0;
    } else {
      flat.reset();
      bucket.reset();
      std::fill(committed_until.begin(), committed_until.end(), 0.0);
      now = 0.0;
    }
    ASSERT_TRUE(flat.index_consistent());
    ASSERT_TRUE(bucket.index_consistent());
    // Backend selection survives Cluster::reset().
    ASSERT_EQ(bucket.index_backend(), IndexBackend::kBucket);
    flat.availability_with_ids_into(now, times_a, ids_a);
    bucket.availability_with_ids_into(now, times_b, ids_b);
    ASSERT_EQ(times_a, times_b) << "step " << step;
    ASSERT_EQ(ids_a, ids_b) << "step " << step;
    flat.earliest_free_nodes_into(now, 128, ids_a);
    bucket.earliest_free_nodes_into(now, 128, ids_b);
    ASSERT_EQ(ids_a, ids_b) << "step " << step;
  }
}

TEST(AvailabilityIndexBucket, BucketDesyncThrows) {
  // The bucket path must fail as loudly as the flat one on a desynced
  // mirror: wrong `from` (any bucket) and unknown node ids both throw.
  AvailabilityIndex index;
  index.reset(300, IndexBackend::kBucket);  // several buckets
  EXPECT_THROW(index.update(2, 5.0, 10.0), std::logic_error);    // wrong `from`
  EXPECT_THROW(index.update(299, -1.0, 10.0), std::logic_error); // before every bucket
  EXPECT_THROW(index.update(300, 0.0, 10.0), std::logic_error);  // unknown node
  index.update(2, 0.0, 10.0);
  EXPECT_EQ(index.available_by(0.0), 299u);
  EXPECT_THROW(index.update(2, 0.0, 20.0), std::logic_error);  // stale `from`
  EXPECT_THROW(index.kth_free_time(300), std::invalid_argument);
}

TEST(AvailabilityIndexBucket, InBucketFastPathReportsLocalDepth) {
  // Repositioning within one bucket must not disturb the geometry and must
  // report the bucket-local shift, not a global one.
  AvailabilityIndex index;
  index.reset(256, IndexBackend::kBucket);
  std::vector<Time> free_times(256, 0.0);
  // Spread entries so node i frees at i (one strictly increasing run).
  for (NodeId id = 0; id < 256; ++id) {
    index.update(id, 0.0, static_cast<Time>(id));
    free_times[id] = static_cast<Time>(id);
  }
  ASSERT_TRUE(index.consistent_with(free_times));
  // Node 10 moves from 10.0 to 12.5: two entries (11, 12) shift left.
  EXPECT_EQ(index.update(10, 10.0, 12.5), 2u);
  free_times[10] = 12.5;
  ASSERT_TRUE(index.consistent_with(free_times));
}

// --- schedule bit-identity property runs ------------------------------------

workload::WorkloadParams property_params(std::uint64_t seed, double load) {
  workload::WorkloadParams params;
  params.cluster = {.node_count = 512, .cms = 1.0, .cps = 100.0};
  params.system_load = load;
  params.avg_sigma = 40.0;  // short tasks: dense arrivals, heavy index churn
  params.dc_ratio = 20.0;
  params.total_time = 60000.0;
  params.seed = seed;
  return params;
}

/// Runs one algorithm twice - flat index vs bucket index, admission
/// cross-check armed both times - and requires byte-equal metrics and
/// committed reservations. The index backend is pure representation; any
/// divergence is a bucket-backend ordering bug.
void expect_identical_schedules_across_backends(const std::string& algorithm,
                                                const workload::WorkloadParams& params,
                                                sim::ReleasePolicy release_policy,
                                                bool heterogeneous) {
  const auto tasks = workload::generate_workload(params);

  sim::ScheduleLog flat_log;
  sim::SimulatorConfig flat_config;
  flat_config.params = params.cluster;
  flat_config.params.index_backend = IndexBackend::kFlat;
  flat_config.release_policy = release_policy;
  flat_config.incremental_admission = true;
  flat_config.cross_check_admission = true;
  flat_config.schedule_log = &flat_log;
  if (heterogeneous) {
    flat_config.params.speed_profile = std::make_shared<const cluster::SpeedProfile>(
        cluster::parse_speed_profile("lognormal:0.4,7", params.cluster.node_count, 100.0));
  }

  sim::ScheduleLog bucket_log;
  sim::SimulatorConfig bucket_config = flat_config;
  bucket_config.params.index_backend = IndexBackend::kBucket;
  bucket_config.schedule_log = &bucket_log;

  const sim::SimMetrics flat =
      sim::simulate(flat_config, algorithm, tasks, params.total_time);
  const sim::SimMetrics bucket =
      sim::simulate(bucket_config, algorithm, tasks, params.total_time);

  ASSERT_EQ(flat.accepted, bucket.accepted) << algorithm;
  ASSERT_EQ(flat.rejected, bucket.rejected) << algorithm;
  ASSERT_EQ(flat.reject_reasons, bucket.reject_reasons) << algorithm;
  ASSERT_EQ(flat.deadline_misses, bucket.deadline_misses) << algorithm;
  EXPECT_EQ(flat.response_time.mean(), bucket.response_time.mean()) << algorithm;
  EXPECT_EQ(flat.busy_time, bucket.busy_time) << algorithm;
  EXPECT_EQ(flat.idle_gap_time, bucket.idle_gap_time) << algorithm;

  ASSERT_EQ(flat_log.size(), bucket_log.size()) << algorithm;
  for (std::size_t i = 0; i < flat_log.size(); ++i) {
    const sim::ScheduleEntry& a = flat_log.entries()[i];
    const sim::ScheduleEntry& b = bucket_log.entries()[i];
    ASSERT_EQ(a.task, b.task) << algorithm << " entry " << i;
    ASSERT_EQ(a.node, b.node) << algorithm << " entry " << i;
    ASSERT_EQ(a.start, b.start) << algorithm << " entry " << i;
    ASSERT_EQ(a.end, b.end) << algorithm << " entry " << i;
    ASSERT_EQ(a.alpha, b.alpha) << algorithm << " entry " << i;
  }
}

TEST(AvailabilityIndexBucketProperty, HomogeneousSchedulesBitIdentical) {
  for (const char* algorithm :
       {"EDF-DLT", "FIFO-DLT", "EDF-MR2", "FIFO-MR2", "EDF-OPR-MN-BF", "FIFO-OPR-MN-BF"}) {
    expect_identical_schedules_across_backends(algorithm, property_params(21, 1.0),
                                               sim::ReleasePolicy::kEstimate,
                                               /*heterogeneous=*/false);
  }
}

TEST(AvailabilityIndexBucketProperty, HeterogeneousSchedulesBitIdentical) {
  for (const char* algorithm :
       {"EDF-DLT", "FIFO-MR2", "EDF-OPR-MN-BF", "FIFO-OPR-MN-BF"}) {
    expect_identical_schedules_across_backends(algorithm, property_params(23, 1.0),
                                               sim::ReleasePolicy::kEstimate,
                                               /*heterogeneous=*/true);
  }
}

TEST(AvailabilityIndexBucketProperty, EarlyReleaseSchedulesBitIdentical) {
  // kActual releases reposition entries backwards through release_early;
  // both backends must track the same early-release churn.
  expect_identical_schedules_across_backends("EDF-DLT", property_params(29, 1.1),
                                             sim::ReleasePolicy::kActual,
                                             /*heterogeneous=*/false);
  expect_identical_schedules_across_backends("FIFO-MR2", property_params(31, 1.1),
                                             sim::ReleasePolicy::kActual,
                                             /*heterogeneous=*/true);
}

}  // namespace
}  // namespace rtdls
