// Tests for the experiment harness: specs, runner, reports, figure registry.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "sched/registry.hpp"

namespace rtdls::exp {
namespace {

Scale tiny_scale() {
  Scale scale;
  scale.runs = 2;
  scale.sim_time = 60000.0;
  scale.jobs = 2;
  return scale;
}

SweepSpec tiny_sweep() {
  SweepSpec spec = baseline_sweep(tiny_scale(), "test_sweep", "unit-test sweep");
  spec.loads = {0.3, 0.9};
  spec.algorithms = {"EDF-OPR-MN", "EDF-DLT"};
  return spec;
}

TEST(Scale, EnvOverrides) {
  ::setenv("RTDLS_RUNS", "7", 1);
  ::setenv("RTDLS_SIMTIME", "12345", 1);
  const Scale scale = Scale::from_env();
  EXPECT_EQ(scale.runs, 7u);
  EXPECT_DOUBLE_EQ(scale.sim_time, 12345.0);
  ::unsetenv("RTDLS_RUNS");
  ::unsetenv("RTDLS_SIMTIME");
}

TEST(Scale, FullFlag) {
  ::setenv("RTDLS_FULL", "1", 1);
  const Scale scale = Scale::from_env();
  EXPECT_EQ(scale.runs, 10u);
  EXPECT_DOUBLE_EQ(scale.sim_time, 10000000.0);
  ::unsetenv("RTDLS_FULL");
}

TEST(Scale, GarbageFallsBackToDefaults) {
  ::unsetenv("RTDLS_FULL");
  ::setenv("RTDLS_RUNS", "0", 1);
  const Scale scale = Scale::from_env();
  EXPECT_GE(scale.runs, 1u);
  ::unsetenv("RTDLS_RUNS");
}

TEST(SweepSpec, PaperLoadsAxis) {
  const auto loads = SweepSpec::paper_loads();
  ASSERT_EQ(loads.size(), 10u);
  EXPECT_DOUBLE_EQ(loads.front(), 0.1);
  EXPECT_DOUBLE_EQ(loads.back(), 1.0);
}

TEST(Runner, ProducesOnePointPerLoadAndAlgorithm) {
  const SweepResult result = run_sweep(tiny_sweep());
  ASSERT_EQ(result.curves.size(), 2u);
  for (const CurveResult& curve : result.curves) {
    ASSERT_EQ(curve.reject_ratio().size(), 2u);
    for (const auto& ci : curve.reject_ratio()) {
      EXPECT_GE(ci.mean, 0.0);
      EXPECT_LE(ci.mean, 1.0);
      EXPECT_EQ(ci.samples, 2u);
    }
    // The full metric table is populated for every metric.
    for (const MetricSeries& series : curve.metrics) {
      ASSERT_EQ(series.raw.size(), 4u);  // 2 loads x 2 runs
      ASSERT_EQ(series.per_load.size(), 2u);
    }
    // A reproduction sweep never misses deadlines or violates Theorem 4.
    for (double v : curve.series(SweepMetric::kDeadlineMisses).raw) EXPECT_EQ(v, 0.0);
    for (double v : curve.series(SweepMetric::kTheorem4Violations).raw) EXPECT_EQ(v, 0.0);
    // Utilization and response metrics carry plausible values.
    for (const auto& ci : curve.series(SweepMetric::kUtilization).per_load) {
      EXPECT_GE(ci.mean, 0.0);
      EXPECT_LE(ci.mean, 1.0 + 1e-9);
    }
    for (const auto& ci : curve.series(SweepMetric::kMeanResponse).per_load) {
      EXPECT_GE(ci.mean, 0.0);
    }
  }
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Runner, DeterministicAcrossPoolSizes) {
  // Same spec, sequential vs parallel: identical numbers (seeding is by
  // cell, never by thread).
  const SweepResult sequential = run_sweep(tiny_sweep(), nullptr);
  util::ThreadPool pool(4);
  const SweepResult parallel = run_sweep(tiny_sweep(), &pool);
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
      const MetricSeries& s = sequential.curves[a].metrics[m];
      const MetricSeries& p = parallel.curves[a].metrics[m];
      for (std::size_t i = 0; i < s.raw.size(); ++i) {
        EXPECT_DOUBLE_EQ(s.raw[i], p.raw[i]);
      }
    }
  }
}

TEST(Runner, InvalidSpecsThrow) {
  SweepSpec spec = tiny_sweep();
  spec.loads.clear();
  EXPECT_THROW(run_sweep(spec), std::invalid_argument);
  spec = tiny_sweep();
  spec.algorithms.clear();
  EXPECT_THROW(run_sweep(spec), std::invalid_argument);
  spec = tiny_sweep();
  spec.runs = 0;
  EXPECT_THROW(run_sweep(spec), std::invalid_argument);
}

TEST(Report, TableChartAndCsv) {
  const SweepResult result = run_sweep(tiny_sweep());
  const std::string table = render_sweep_table(result);
  EXPECT_NE(table.find("EDF-DLT"), std::string::npos);
  EXPECT_NE(table.find("delta(0-1)"), std::string::npos);

  const std::string chart = render_sweep_chart(result);
  EXPECT_NE(chart.find("System Load"), std::string::npos);

  const std::string dir = std::filesystem::temp_directory_path() / "rtdls_test_results";
  const std::string path = write_sweep_csv(dir, result);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

TEST(Report, GnuplotScriptReferencesCsvAndSeries) {
  const SweepResult result = run_sweep(tiny_sweep());
  const std::string dir = std::filesystem::temp_directory_path() / "rtdls_test_gp";
  const std::string path = write_sweep_gnuplot(dir, result);
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string script = buffer.str();
  EXPECT_NE(script.find("test_sweep.csv"), std::string::npos);
  EXPECT_NE(script.find("EDF-DLT"), std::string::npos);
  EXPECT_NE(script.find("EDF-OPR-MN"), std::string::npos);
  EXPECT_NE(script.find("yerrorlines"), std::string::npos);
  EXPECT_NE(script.find("set output 'test_sweep.png'"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Figure, RunFigureEvaluatesWinnerChecks) {
  FigureSpec figure;
  figure.id = "test_fig";
  figure.title = "unit-test figure";
  SweepSpec panel = tiny_sweep();
  panel.expected_winner = "EDF-DLT";
  figure.panels.push_back(panel);

  const FigureResult result = run_figure(figure);
  ASSERT_EQ(result.panels.size(), 1u);
  ASSERT_EQ(result.checks.size(), 1u);
  EXPECT_TRUE(result.checks[0].passed) << result.checks[0].detail;
}

TEST(Figure, MissingWinnerAlgorithmFailsCheck) {
  FigureSpec figure;
  figure.id = "test_fig2";
  figure.title = "unit-test figure";
  SweepSpec panel = tiny_sweep();
  panel.expected_winner = "EDF-NOT-THERE";
  figure.panels.push_back(panel);
  const FigureResult result = run_figure(figure);
  ASSERT_EQ(result.checks.size(), 1u);
  EXPECT_FALSE(result.checks[0].passed);
}

TEST(Registry, PaperFiguresWellFormed) {
  const Scale scale = tiny_scale();
  const auto figures = paper_figures(scale);
  ASSERT_EQ(figures.size(), 14u);  // Figures 3-16

  std::set<std::string> panel_ids;
  for (const FigureSpec& figure : figures) {
    EXPECT_FALSE(figure.panels.empty()) << figure.id;
    for (const SweepSpec& panel : figure.panels) {
      EXPECT_TRUE(panel_ids.insert(panel.id).second) << "duplicate " << panel.id;
      EXPECT_FALSE(panel.loads.empty());
      EXPECT_EQ(panel.runs, scale.runs);
      for (const std::string& algorithm : panel.algorithms) {
        EXPECT_NO_THROW(sched::make_algorithm(algorithm)) << algorithm;
      }
      if (!panel.expected_winner.empty()) {
        EXPECT_NE(std::find(panel.algorithms.begin(), panel.algorithms.end(),
                            panel.expected_winner),
                  panel.algorithms.end())
            << panel.id;
      }
    }
  }
}

TEST(Registry, FigurePanelCountsMatchPaper) {
  const Scale scale = tiny_scale();
  EXPECT_EQ(fig03_baseline(scale).panels.size(), 1u);
  EXPECT_EQ(fig04_dcratio_edf(scale).panels.size(), 4u);
  EXPECT_EQ(fig05_usersplit_edf(scale).panels.size(), 2u);
  EXPECT_EQ(fig08_cps_edf(scale).panels.size(), 6u);
  EXPECT_EQ(fig14_usersplit_cps_edf(scale).panels.size(), 8u);
  EXPECT_EQ(fig16_usersplit_cps_fifo(scale).panels.size(), 8u);
}

TEST(Registry, AblationsWellFormed) {
  const Scale scale = tiny_scale();
  for (const FigureSpec& figure : {ablation_release_policy(scale), ablation_multiround(scale),
                                   ablation_opr_an(scale)}) {
    EXPECT_FALSE(figure.panels.empty()) << figure.id;
    for (const SweepSpec& panel : figure.panels) {
      for (const std::string& algorithm : panel.algorithms) {
        EXPECT_NO_THROW(sched::make_algorithm(algorithm)) << algorithm;
      }
    }
  }
}

TEST(Registry, AlgorithmRegistryNames) {
  for (const std::string& name : sched::all_algorithm_names()) {
    const sched::Algorithm algorithm = sched::make_algorithm(name);
    EXPECT_EQ(algorithm.name, name);
    EXPECT_NE(algorithm.rule, nullptr);
  }
  EXPECT_THROW(sched::make_algorithm("EDF-MR0"), std::invalid_argument);
  EXPECT_THROW(sched::make_algorithm("EDF-MR999"), std::invalid_argument);
  EXPECT_THROW(sched::make_algorithm(""), std::invalid_argument);
}

}  // namespace
}  // namespace rtdls::exp
