// Tests for the sparse plan-delta admission session and the het resolver's
// capacity-jump scan.
//
// Three pillars:
//  1. AvailabilityDelta replay: applying a recorded delta to a copy of the
//     pre-state reproduces the post-state bit for bit (homogeneous and het
//     rows) - the invariant the checkpointed session stands on.
//  2. N=512 randomized property runs (EDF/FIFO x DLT/MR2/OPR-MN-BF, het and
//     homogeneous) with the controller cross-check armed: the delta session
//     must stay bitwise schedule-identical to the full Figure-2 test, and
//     its peak availability-state footprint must undercut the historical
//     dense one-row-per-task representation by >= 5x.
//  3. Het resolver differential: the galloped capacity-jump scan must return
//     the exact accept position / reject reason of the linear reference walk
//     on adversarial availability states (deep crossings, mid-scan hard
//     rejects of both flavors, whole-cluster infeasibility).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/availability_delta.hpp"
#include "cluster/speed_profile.hpp"
#include "dlt/het_model.hpp"
#include "sched/het_planner.hpp"
#include "sim/schedule_log.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace rtdls {
namespace {

using cluster::SpeedProfile;

/// Deterministic splitmix64 stream (stdlib distributions are not pinned
/// across platforms; we scale integers ourselves).
struct TestRng {
  std::uint64_t state;
  explicit TestRng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  double uniform(double lo, double hi) {
    const double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
  }
  std::size_t index(std::size_t n) { return static_cast<std::size_t>(next() % n); }
};

// --- delta replay ----------------------------------------------------------

TEST(AvailabilityDelta, ReplayReproducesForwardApplicationBitwise) {
  TestRng rng(7);
  std::vector<cluster::Time> merge_scratch;
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + rng.index(64);
    const std::size_t k = 1 + rng.index(n);
    std::vector<cluster::Time> state(n);
    for (auto& t : state) t = rng.uniform(0.0, 1000.0);
    std::sort(state.begin(), state.end());
    std::vector<cluster::Time> releases(k);
    for (auto& t : releases) t = rng.uniform(0.0, 2000.0);
    std::sort(releases.begin(), releases.end());

    const std::vector<cluster::Time> before = state;
    cluster::AvailabilityDelta delta;
    cluster::apply_releases(state, releases, merge_scratch, &delta);
    ASSERT_EQ(delta.nodes(), k);
    ASSERT_EQ(delta.old_times, std::vector<cluster::Time>(before.begin(), before.begin() + k));
    ASSERT_TRUE(std::is_sorted(state.begin(), state.end()));

    std::vector<cluster::Time> replayed = before;
    cluster::apply_delta(replayed, delta);
    ASSERT_EQ(replayed, state) << "round " << round;
  }
}

TEST(AvailabilityDelta, HetReplayKeepsStrictTimeIdOrder) {
  TestRng rng(11);
  std::vector<std::pair<cluster::Time, cluster::NodeId>> pair_scratch;
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + rng.index(64);
    const std::size_t k = 1 + rng.index(n);
    // Strict (time, id) ordered row.
    std::vector<std::pair<cluster::Time, cluster::NodeId>> row(n);
    for (std::size_t i = 0; i < n; ++i) {
      row[i] = {rng.uniform(0.0, 1000.0), static_cast<cluster::NodeId>(i)};
    }
    std::sort(row.begin(), row.end());
    std::vector<cluster::Time> state(n);
    std::vector<cluster::NodeId> ids(n);
    for (std::size_t i = 0; i < n; ++i) {
      state[i] = row[i].first;
      ids[i] = row[i].second;
    }
    // Slot-aligned releases for the consumed prefix (not pre-sorted, like a
    // het multi-round plan's per-slot completions).
    std::vector<cluster::Time> releases(k);
    std::vector<cluster::NodeId> release_ids(ids.begin(), ids.begin() + k);
    for (auto& t : releases) t = rng.uniform(500.0, 2000.0);

    const std::vector<cluster::Time> before_t = state;
    const std::vector<cluster::NodeId> before_i = ids;
    cluster::AvailabilityDelta delta;
    cluster::apply_releases_het(state, ids, releases, release_ids, pair_scratch, &delta);

    std::vector<cluster::Time> replay_t = before_t;
    std::vector<cluster::NodeId> replay_i = before_i;
    cluster::apply_delta_het(replay_t, replay_i, delta);
    ASSERT_EQ(replay_t, state) << "round " << round;
    ASSERT_EQ(replay_i, ids) << "round " << round;
    for (std::size_t i = 1; i < n; ++i) {
      ASSERT_TRUE(state[i - 1] < state[i] ||
                  (state[i - 1] == state[i] && ids[i - 1] < ids[i]))
          << "round " << round << " position " << i;
    }
  }
}

// --- N=512 session property runs -------------------------------------------

workload::WorkloadParams big_cluster_params(std::uint64_t seed, double load,
                                            double dc_ratio) {
  workload::WorkloadParams params;
  params.cluster = {.node_count = 512, .cms = 1.0, .cps = 100.0};
  params.system_load = load;  // >> 1: only a fraction of arrivals fit, queues deepen
  params.dc_ratio = dc_ratio;  // loose deadlines build the deep queues
  params.total_time = 6000.0;
  params.seed = seed;
  return params;
}

/// Incremental (cross-check armed: throws on any divergence) vs the full
/// stateless test, every committed reservation bit for bit.
void expect_identical_schedules(const std::string& algorithm,
                                const workload::WorkloadParams& params,
                                const std::string& profile_key) {
  const auto tasks = workload::generate_workload(params);

  sim::ScheduleLog incremental_log;
  sim::SimulatorConfig incremental_config;
  incremental_config.params = params.cluster;
  if (!profile_key.empty()) {
    incremental_config.params.speed_profile = std::make_shared<const SpeedProfile>(
        cluster::parse_speed_profile(profile_key, params.cluster.node_count,
                                     params.cluster.cps));
    ASSERT_TRUE(incremental_config.params.heterogeneous());
  }
  incremental_config.incremental_admission = true;
  incremental_config.cross_check_admission = true;
  incremental_config.schedule_log = &incremental_log;

  sim::ScheduleLog full_log;
  sim::SimulatorConfig full_config = incremental_config;
  full_config.incremental_admission = false;
  full_config.cross_check_admission = false;
  full_config.schedule_log = &full_log;

  const sim::SimMetrics inc =
      sim::simulate(incremental_config, algorithm, tasks, params.total_time);
  const sim::SimMetrics full =
      sim::simulate(full_config, algorithm, tasks, params.total_time);

  ASSERT_EQ(inc.arrivals, full.arrivals);
  ASSERT_EQ(inc.accepted, full.accepted) << algorithm;
  ASSERT_EQ(inc.rejected, full.rejected) << algorithm;
  ASSERT_EQ(inc.reject_reasons, full.reject_reasons);
  ASSERT_EQ(inc.theorem4_violations, full.theorem4_violations);
  ASSERT_EQ(inc.deadline_misses, full.deadline_misses);
  EXPECT_EQ(inc.response_time.mean(), full.response_time.mean());
  EXPECT_EQ(inc.busy_time, full.busy_time);

  ASSERT_EQ(incremental_log.size(), full_log.size()) << algorithm;
  for (std::size_t i = 0; i < incremental_log.size(); ++i) {
    const sim::ScheduleEntry& a = incremental_log.entries()[i];
    const sim::ScheduleEntry& b = full_log.entries()[i];
    ASSERT_EQ(a.task, b.task) << algorithm << " entry " << i;
    ASSERT_EQ(a.node, b.node) << algorithm << " entry " << i;
    ASSERT_EQ(a.start, b.start) << algorithm << " entry " << i;
    ASSERT_EQ(a.end, b.end) << algorithm << " entry " << i;
    ASSERT_EQ(a.alpha, b.alpha) << algorithm << " entry " << i;
  }
}

/// (algorithm, speed-profile key; empty = homogeneous).
class DeltaSession
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(DeltaSession, BitIdenticalToDenseFigure2AtN512) {
  const auto& [algorithm, profile] = GetParam();
  if (algorithm.find("-BF") != std::string::npos) {
    // Calendar rules route through the full test (no delta session); they
    // are in the matrix to prove that routing stays bit-identical, not to
    // stress it - and the het backfill scan is quadratic in the queue, so a
    // load-10 burst would dominate the whole suite's runtime.
    expect_identical_schedules(algorithm, big_cluster_params(1, 5.0, 8.0), profile);
    return;
  }
  expect_identical_schedules(algorithm, big_cluster_params(1, 10.0, 25.0), profile);
  expect_identical_schedules(algorithm, big_cluster_params(20070227, 5.0, 8.0), profile);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByRule, DeltaSession,
    ::testing::Combine(::testing::Values("EDF-DLT", "FIFO-DLT", "EDF-MR2", "FIFO-MR2",
                                         "EDF-OPR-MN-BF", "FIFO-OPR-MN-BF"),
                       ::testing::Values("", "lognormal:0.5,3")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>& info) {
      std::string name = std::get<0>(info.param) +
                         (std::get<1>(info.param).empty() ? "_hom" : "_het");
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DeltaSession, PeakStateBytesDropAtLeastFiveFoldVsDenseRows) {
  // The acceptance number of the row-diff refactor: a deep-queue burst at
  // N=512 must hold at least 5x less availability state than the historical
  // dense rows (it is typically far more; the bound is the guarantee).
  const workload::WorkloadParams params = big_cluster_params(7, 10.0, 25.0);
  const auto tasks = workload::generate_workload(params);
  sim::SimulatorConfig config;
  config.params = params.cluster;
  const sim::SimMetrics metrics = sim::simulate(config, "EDF-DLT", tasks, params.total_time);

  ASSERT_GT(metrics.admission_peak_bytes, 0u);
  ASSERT_GT(metrics.admission_peak_dense_bytes, 0u);
  EXPECT_GE(metrics.admission_peak_dense_bytes, 5 * metrics.admission_peak_bytes)
      << "dense " << metrics.admission_peak_dense_bytes << " vs sparse "
      << metrics.admission_peak_bytes;

  // Het sessions mirror an id column; the drop must hold there too.
  sim::SimulatorConfig het_config = config;
  het_config.params.speed_profile = std::make_shared<const SpeedProfile>(
      cluster::parse_speed_profile("lognormal:0.4,7", 512, 100.0));
  const sim::SimMetrics het =
      sim::simulate(het_config, "EDF-DLT", tasks, params.total_time);
  ASSERT_GT(het.admission_peak_bytes, 0u);
  EXPECT_GE(het.admission_peak_dense_bytes, 5 * het.admission_peak_bytes);
}

// --- het resolver differential ---------------------------------------------

// The linear reference walk the capacity-jump scan replaced: hard checks
// and the work-conservation prune position by position, a partition build
// wherever the prune passes. Kept verbatim (same epsilons, same evaluation
// order) as the resolver's behavioral specification.
constexpr double kDeadlineEps = 1e-9;

dlt::Infeasibility reference_hard_reject(double sigma, double cms, cluster::Time deadline,
                                         cluster::Time rn) {
  const cluster::Time slack = deadline - rn;
  if (slack <= 0.0) return dlt::Infeasibility::kDeadlinePassed;
  if (sigma * cms >= slack) return dlt::Infeasibility::kTransmissionTooLong;
  return dlt::Infeasibility::kNone;
}

struct ReferenceOutcome {
  dlt::Infeasibility reason = dlt::Infeasibility::kNone;
  std::size_t nodes = 0;
  cluster::Time est = 0.0;
};

ReferenceOutcome reference_dlt_scan(const cluster::ClusterParams& params, double sigma,
                                    cluster::Time deadline,
                                    const std::vector<cluster::Time>& free_times,
                                    const std::vector<cluster::NodeId>& ids) {
  std::vector<double> cps(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) cps[i] = params.node_cps(ids[i]);
  dlt::HetPartition partition;
  ReferenceOutcome out;
  double capacity = 0.0;
  for (std::size_t n = 1; n <= free_times.size(); ++n) {
    const cluster::Time rn = free_times[n - 1];
    const dlt::Infeasibility hard = reference_hard_reject(sigma, params.cms, deadline, rn);
    if (hard != dlt::Infeasibility::kNone) {
      out.reason = hard;
      return out;
    }
    capacity += (deadline - rn) / cps[n - 1];
    if (capacity < sigma) continue;
    dlt::build_het_partition_into(params, sigma, free_times, cps, n, partition);
    const cluster::Time est = partition.estimated_completion();
    if (est > deadline + kDeadlineEps) continue;
    out.nodes = n;
    out.est = est;
    return out;
  }
  out.reason = dlt::Infeasibility::kNeedsMoreNodes;
  return out;
}

ReferenceOutcome reference_opr_scan(const cluster::ClusterParams& params, double sigma,
                                    cluster::Time deadline,
                                    const std::vector<cluster::Time>& free_times,
                                    const std::vector<cluster::NodeId>& ids) {
  std::vector<double> cps(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) cps[i] = params.node_cps(ids[i]);
  std::vector<double> alpha;
  ReferenceOutcome out;
  double capacity = 0.0;
  for (std::size_t n = 1; n <= free_times.size(); ++n) {
    const cluster::Time rn = free_times[n - 1];
    const dlt::Infeasibility hard = reference_hard_reject(sigma, params.cms, deadline, rn);
    if (hard != dlt::Infeasibility::kNone) {
      out.reason = hard;
      return out;
    }
    capacity += (deadline - rn) / cps[n - 1];
    if (capacity < sigma) continue;
    dlt::general_het_alpha_into(params.cms, cps, n, alpha);
    const double exec = sigma * params.cms + alpha.back() * sigma * cps[n - 1];
    const cluster::Time est = rn + exec;
    if (est > deadline + kDeadlineEps) continue;
    out.nodes = n;
    out.est = est;
    return out;
  }
  out.reason = dlt::Infeasibility::kNeedsMoreNodes;
  return out;
}

TEST(HetResolverJump, MatchesLinearScanOnAdversarialStates) {
  const std::size_t n = 512;
  cluster::ClusterParams params{.node_count = n, .cms = 1.0, .cps = 100.0};
  params.speed_profile = std::make_shared<const SpeedProfile>(
      cluster::parse_speed_profile("lognormal:0.6,5", n, 100.0));
  ASSERT_TRUE(params.heterogeneous());
  // With cms = 1 an oversized load always trips the transmission hard
  // reject before it can exhaust capacity; a cheap channel reaches the
  // kNeedsMoreNodes family (capacity exhausted, transmission fine).
  cluster::ClusterParams cheap_channel = params;
  cheap_channel.cms = 0.01;

  TestRng rng(20070227);
  sched::het::PlannerScratch scratch;
  std::size_t accepts = 0;
  std::size_t hard_rejects = 0;
  std::size_t capacity_rejects = 0;

  for (int round = 0; round < 400; ++round) {
    // Availability states with heavy tails so the capacity crossing lands
    // deep in the prefix and hard rejects trigger mid-scan.
    std::vector<cluster::Time> free_times(n);
    const double spread = rng.uniform(10.0, 50000.0);
    for (auto& t : free_times) {
      t = rng.uniform(0.0, spread);
      if (rng.index(8) == 0) t *= 4.0;  // stragglers
    }
    std::vector<std::pair<cluster::Time, cluster::NodeId>> pairs(n);
    for (std::size_t i = 0; i < n; ++i) {
      pairs[i] = {free_times[i], static_cast<cluster::NodeId>(i)};
    }
    std::sort(pairs.begin(), pairs.end());
    std::vector<cluster::NodeId> ids(n);
    for (std::size_t i = 0; i < n; ++i) {
      free_times[i] = pairs[i].first;
      ids[i] = pairs[i].second;
    }

    workload::Task task;
    task.id = static_cast<cluster::TaskId>(round);
    double sigma = rng.uniform(1.0, 4000.0);
    // Deadlines from hopeless to generous relative to the state.
    double deadline = rng.uniform(0.5, 2.5) * spread;
    cluster::ClusterParams round_params = (round % 3 == 0) ? cheap_channel : params;
    if (round % 5 == 0) {
      // Engineered capacity exhaustion: a deadline clear of every release
      // (no hard reject anywhere) but a load 1.5x the whole cluster's
      // work-conservation capacity, with a channel cheap enough that the
      // transmission check stays clear too - the kNeedsMoreNodes family the
      // random geometry almost never reaches.
      deadline = 4.2 * spread;  // releases top out at 4x spread
      double capacity = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        capacity += (deadline - free_times[i]) / params.node_cps(ids[i]);
      }
      sigma = 1.5 * capacity;
      round_params.cms = 0.02 * spread / sigma;  // sigma*cms << min slack
    }
    task.spec = {0.0, sigma, deadline};

    sched::PlanRequest request;
    request.task = &task;
    request.params = round_params;
    request.free_times = &free_times;
    request.node_ids = &ids;
    request.now = 0.0;

    const ReferenceOutcome ref_dlt =
        reference_dlt_scan(round_params, sigma, deadline, free_times, ids);
    const sched::PlanResult got_dlt = sched::het::plan_dlt_iit(request, scratch);
    ASSERT_EQ(got_dlt.reason, ref_dlt.reason) << "round " << round;
    if (ref_dlt.reason == dlt::Infeasibility::kNone) {
      ASSERT_EQ(got_dlt.plan.nodes, ref_dlt.nodes) << "round " << round;
      ASSERT_EQ(got_dlt.plan.est_completion, ref_dlt.est) << "round " << round;
      ++accepts;
    } else if (ref_dlt.reason == dlt::Infeasibility::kNeedsMoreNodes) {
      ++capacity_rejects;
    } else {
      ++hard_rejects;
    }

    const ReferenceOutcome ref_opr =
        reference_opr_scan(round_params, sigma, deadline, free_times, ids);
    const sched::PlanResult got_opr = sched::het::plan_opr_mn(request, scratch);
    ASSERT_EQ(got_opr.reason, ref_opr.reason) << "round " << round;
    if (ref_opr.reason == dlt::Infeasibility::kNone) {
      ASSERT_EQ(got_opr.plan.nodes, ref_opr.nodes) << "round " << round;
      ASSERT_EQ(got_opr.plan.est_completion, ref_opr.est) << "round " << round;
    }
  }
  // The sweep must actually exercise all three outcome families.
  EXPECT_GE(accepts, 20u);
  EXPECT_GE(hard_rejects, 20u);
  EXPECT_GE(capacity_rejects, 5u);
}

TEST(HetResolverJump, RecoversExactRejectReasonAcrossTheSkippedRange) {
  // Hand-built state: the capacity jump from position 1 leaps far past the
  // first hard-rejecting position; the binary search must surface the
  // reason at the FIRST failing position (kTransmissionTooLong fires while
  // slack is still positive, before kDeadlinePassed does).
  const std::size_t n = 64;
  cluster::ClusterParams params{.node_count = n, .cms = 1.0, .cps = 100.0};
  params.speed_profile =
      std::make_shared<const SpeedProfile>(SpeedProfile::uniform(n, 80.0, 120.0, 3));
  ASSERT_TRUE(params.heterogeneous());

  std::vector<cluster::Time> free_times(n);
  std::vector<cluster::NodeId> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Slack shrinks along the prefix: transmission-too-long from ~half way,
    // deadline passed near the end.
    free_times[i] = static_cast<double>(i) * 2.0;
    ids[i] = static_cast<cluster::NodeId>(i);
  }
  const double deadline = 70.0;   // r_i >= 70 from i = 35: kDeadlinePassed
  const double sigma = 20.0;      // sigma*cms = 20 >= slack from r_i >= 50: TTL first

  workload::Task task;
  task.id = 1;
  task.spec = {0.0, sigma, deadline};
  sched::PlanRequest request;
  request.task = &task;
  request.params = params;
  request.free_times = &free_times;
  request.node_ids = &ids;
  request.now = 0.0;

  sched::het::PlannerScratch scratch;
  const ReferenceOutcome ref = reference_dlt_scan(params, sigma, deadline, free_times, ids);
  const sched::PlanResult got = sched::het::plan_dlt_iit(request, scratch);
  ASSERT_EQ(got.reason, ref.reason);
  ASSERT_EQ(got.reason, dlt::Infeasibility::kTransmissionTooLong);
}

}  // namespace
}  // namespace rtdls
