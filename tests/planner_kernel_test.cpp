// Differential property tests for the batched planning kernels
// (dlt::AlphaRecurrence + sched::het::PlannerBatch + het::QueueScreen).
//
// The kernels' contract is not "close": every incremental / SoA path must
// return the BIT-identical value of the scalar reference it replaced
// (general_het_alpha_into / build_het_partition_into), at every prefix
// length, because admission outcomes are compared bitwise by the
// cross-check. Pillars:
//  1. AlphaRecurrence vs the scalar recurrence across graded sizes
//     n in {1e2, 1e3, 1e4, 1e5}, het and homogeneous columns.
//  2. PlannerBatch walk/batch/window kernels vs their scalar references,
//     full prefix sweeps at small n and sampled prefixes at large n.
//  3. The OPR-MN-BF fixed-point fallback: an engineered (selection,
//     duration) 2-cycle that the bounded iteration used to skip silently
//     must now be detected, counted, and resolved conservatively.
//  4. Cross-check-armed EDF/FIFO x DLT/MR2/OPR-MN-BF simulations (het and
//     homogeneous) under overloads that force front hard-rejections, so the
//     admission QueueScreen's shortcut is exercised against the unscreened
//     stateless reference. These run identically under RTDLS_SIMD=ON/OFF
//     builds in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/calendar.hpp"
#include "cluster/speed_profile.hpp"
#include "dlt/het_model.hpp"
#include "sched/het_planner.hpp"
#include "sched/planner_batch.hpp"
#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace rtdls {
namespace {

using cluster::SpeedProfile;
using cluster::Time;

/// Deterministic splitmix64 stream (same idiom as the other suites).
struct TestRng {
  std::uint64_t state;
  explicit TestRng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  double uniform(double lo, double hi) {
    const double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
  }
  std::size_t index(std::size_t n) { return static_cast<std::size_t>(next() % n); }
};

std::vector<double> random_cps(TestRng& rng, std::size_t n, bool heterogeneous) {
  std::vector<double> cps(n);
  for (auto& c : cps) c = heterogeneous ? rng.uniform(5.0, 500.0) : 100.0;
  return cps;
}

std::vector<Time> sorted_free_times(TestRng& rng, std::size_t n, double spread) {
  std::vector<Time> free_times(n);
  for (auto& t : free_times) t = rng.uniform(0.0, spread);
  std::sort(free_times.begin(), free_times.end());
  return free_times;
}

// --- 1. AlphaRecurrence vs the scalar recurrence ----------------------------

TEST(AlphaRecurrence, BitIdenticalToScalarKernelAcrossGradedSizes) {
  const std::size_t kGrades[] = {100, 1000, 10000, 100000};
  for (const bool het : {true, false}) {
    TestRng rng(het ? 41 : 43);
    const double cms = rng.uniform(0.2, 5.0);
    const std::vector<double> cps = random_cps(rng, kGrades[3], het);

    dlt::AlphaRecurrence cursor;
    cursor.reset(cms);
    std::vector<double> reference;
    std::vector<double> materialized;
    std::size_t grade = 0;
    for (std::size_t n = 1; n <= cps.size(); ++n) {
      cursor.extend(cps[n - 1]);
      if (n != kGrades[grade]) continue;
      ++grade;
      // The scalar reference at this exact prefix: full column each time.
      dlt::general_het_alpha_into(cms, cps, n, reference);
      ASSERT_EQ(cursor.size(), n);
      ASSERT_EQ(cursor.alpha_last(), reference.back()) << "n=" << n << " het=" << het;
      cursor.materialize(materialized);
      ASSERT_EQ(materialized, reference) << "n=" << n << " het=" << het;
    }
    ASSERT_EQ(grade, 4u);
  }
}

TEST(AlphaRecurrence, ResetReusesCapacityAndRestartsCleanly) {
  dlt::AlphaRecurrence cursor;
  std::vector<double> reference;
  std::vector<double> materialized;
  const std::vector<double> cps = {100.0, 40.0, 250.0, 9.0};
  for (int round = 0; round < 3; ++round) {
    const double cms = 1.0 + static_cast<double>(round);
    cursor.reset(cms);
    for (double c : cps) cursor.extend(c);
    dlt::general_het_alpha_into(cms, cps, reference);
    cursor.materialize(materialized);
    ASSERT_EQ(materialized, reference) << "round " << round;
  }
  EXPECT_THROW(cursor.reset(0.0), std::invalid_argument);
  cursor.reset(1.0);
  EXPECT_THROW(cursor.extend(-1.0), std::invalid_argument);
}

TEST(GeneralHetExecutionTime, StreamingPathMatchesMaterializedAlpha) {
  // The allocation-free estimate must equal the formula evaluated on the
  // materialized alpha vector, bit for bit, at every size.
  TestRng rng(47);
  std::vector<double> alpha;
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.index(64);
    const double cms = rng.uniform(0.2, 5.0);
    const double sigma = rng.uniform(0.5, 4000.0);
    const std::vector<double> cps = random_cps(rng, n, round % 2 == 0);
    dlt::general_het_alpha_into(cms, cps, alpha);
    const double expected = sigma * cms + alpha.back() * sigma * cps.back();
    ASSERT_EQ(dlt::general_het_execution_time(cms, cps, sigma), expected)
        << "round " << round;
  }
}

// --- 2. PlannerBatch kernels vs their scalar references ---------------------

TEST(PlannerBatch, OprWalkMatchesScalarAtEveryPrefix) {
  TestRng rng(53);
  sched::het::PlannerBatch batch;
  std::vector<double> alpha;
  for (const std::size_t n : {1024u, 4096u}) {
    const double cms = rng.uniform(0.2, 5.0);
    const double sigma = rng.uniform(10.0, 4000.0);
    const std::vector<double> cps = random_cps(rng, n, true);
    const std::vector<Time> free_times = sorted_free_times(rng, n, 10000.0);

    batch.begin_walk(cms, sigma);
    for (std::size_t prefix = 1; prefix <= n; ++prefix) {
      const Time got = batch.opr_walk_estimate(free_times, cps, prefix);
      dlt::general_het_alpha_into(cms, cps, prefix, alpha);
      const double exec = sigma * cms + alpha.back() * sigma * cps[prefix - 1];
      ASSERT_EQ(got, free_times[prefix - 1] + exec) << "prefix " << prefix;
    }
    batch.materialize_walk_alpha(alpha);
    std::vector<double> reference;
    dlt::general_het_alpha_into(cms, cps, n, reference);
    ASSERT_EQ(alpha, reference);
  }
}

TEST(PlannerBatch, DltWalkMatchesPartitionBuildAcrossGradedSizes) {
  // Full prefix sweeps at small n; strictly increasing sampled prefixes at
  // the large grades (the scalar rebuild is O(n) per prefix, so a full
  // sweep at 1e5 would be 1e10 operations).
  TestRng rng(59);
  sched::het::PlannerBatch batch;
  dlt::HetPartition partition;
  std::vector<double> alpha;
  const cluster::ClusterParams base{.node_count = 1, .cms = 1.0, .cps = 100.0};
  const std::size_t kGrades[] = {100, 1000, 10000, 100000};
  for (const std::size_t n : kGrades) {
    cluster::ClusterParams params = base;
    params.node_count = n;
    params.cms = rng.uniform(0.2, 5.0);
    const double sigma = rng.uniform(10.0, 4000.0);
    const std::vector<double> cps = random_cps(rng, n, true);
    const std::vector<Time> free_times = sorted_free_times(rng, n, 10000.0);

    batch.begin_walk(params.cms, sigma);
    const std::size_t stride = n <= 1000 ? 1 : n / 64;
    for (std::size_t prefix = 1; prefix <= n;
         prefix = (prefix == n ? n + 1 : std::min(n, prefix + stride))) {
      const Time got = batch.dlt_walk_estimate(free_times, cps, prefix);
      dlt::build_het_partition_into(params, sigma, free_times, cps, prefix, partition);
      ASSERT_EQ(got, partition.estimated_completion()) << "n=" << n << " prefix=" << prefix;
    }
    // The last evaluated prefix's normalized alpha, bit for bit.
    batch.materialize_dlt_alpha(alpha);
    ASSERT_EQ(alpha, partition.alpha) << "n=" << n;
  }
}

TEST(PlannerBatch, BatchEstimatesMatchPerPrefixScalarEvaluation) {
  TestRng rng(61);
  std::vector<Time> got;
  std::vector<double> alpha;
  for (const bool het : {true, false}) {
    const std::size_t n = 2048;
    const double cms = rng.uniform(0.2, 5.0);
    const double sigma = rng.uniform(10.0, 4000.0);
    const std::vector<double> cps = random_cps(rng, n, het);
    const std::vector<Time> free_times = sorted_free_times(rng, n, 10000.0);

    sched::het::PlannerBatch::opr_mn_estimates(cms, sigma, free_times, cps, n, got);
    ASSERT_EQ(got.size(), n);
    for (std::size_t prefix = 1; prefix <= n; ++prefix) {
      dlt::general_het_alpha_into(cms, cps, prefix, alpha);
      const double exec = sigma * cms + alpha.back() * sigma * cps[prefix - 1];
      ASSERT_EQ(got[prefix - 1], free_times[prefix - 1] + exec)
          << "het=" << het << " prefix=" << prefix;
    }
  }
}

TEST(PlannerBatch, WindowKernelsMatchScalarBackfillDuration) {
  TestRng rng(67);
  sched::het::PlannerBatch batch;
  std::vector<double> alpha;
  const double cms = 0.8;
  const double sigma = 700.0;
  const std::vector<double> pool_cps = random_cps(rng, 512, true);
  batch.begin_walk(cms, sigma);
  for (std::size_t m = 1; m <= pool_cps.size(); ++m) {
    dlt::general_het_alpha_into(cms, pool_cps, m, alpha);
    const double expected = sigma * cms + alpha.back() * sigma * pool_cps[m - 1];
    // Pool-prefix (cursor) and one-shot (streaming) forms, both bit-exact.
    ASSERT_EQ(batch.window_duration_prefix(pool_cps, m), expected) << "m=" << m;
    ASSERT_EQ(sched::het::PlannerBatch::window_duration(cms, sigma, pool_cps, m), expected)
        << "m=" << m;
  }
}

// --- 3. OPR-MN-BF fixed-point fallback --------------------------------------

TEST(BackfillFixedPoint, EngineeredTwoCycleTakesConservativeFallback) {
  // Node 0 (slow, cps=100) is only free over [0, 50): its one-node window
  // needs sigma*(cms+cps) = 101 > 50. Node 1 (fast, cps=10) is always free
  // and needs 11 < 50. The m=1 fixed point therefore 2-cycles:
  //   seed (instant-free, lowest id) -> node 0 -> duration 101
  //   select over [0, 101]          -> node 1 -> duration 11
  //   select over [0, 11]           -> node 0 -> duration 101  ...
  // The bounded iteration used to skip this m silently; the fallback must
  // detect the non-convergence, count it, select over W = max(101, 11), and
  // accept node 1's self-consistent [0, 11) window.
  cluster::ClusterParams params{.node_count = 2, .cms = 1.0, .cps = 100.0};
  params.speed_profile =
      std::make_shared<const SpeedProfile>(SpeedProfile({100.0, 10.0}));
  ASSERT_TRUE(params.heterogeneous());

  cluster::NodeCalendar calendar(2);
  calendar.reserve(0, 50.0, 1000.0);
  ASSERT_TRUE(calendar.is_free(0, 0.0, 0.0));
  ASSERT_TRUE(calendar.is_free(0, 0.0, 11.0));
  ASSERT_FALSE(calendar.is_free(0, 0.0, 101.0));

  workload::Task task;
  task.id = 1;
  task.spec = {0.0, 1.0, 2000.0};

  sched::PlanRequest request;
  request.task = &task;
  request.params = params;
  request.now = 0.0;
  request.calendar = &calendar;

  sched::het::PlannerScratch scratch;
  const sched::PlanResult result = sched::het::plan_opr_mn_backfill(request, scratch);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(scratch.counters.backfill_fixed_point_fallbacks, 1u);
  ASSERT_EQ(result.plan.nodes, 1u);
  ASSERT_EQ(result.plan.node_ids, std::vector<cluster::NodeId>{1});
  // The accepted window is node 1's own fixed point: exec = 1*(1 + 1*10).
  EXPECT_EQ(result.plan.est_completion, 11.0);
  // Conservative-window guarantee: the member really is free across it.
  EXPECT_TRUE(calendar.is_free(1, 0.0, result.plan.est_completion));
}

TEST(BackfillFixedPoint, RuleExposesAndResetsFallbackCounter) {
  cluster::ClusterParams params{.node_count = 2, .cms = 1.0, .cps = 100.0};
  params.speed_profile =
      std::make_shared<const SpeedProfile>(SpeedProfile({100.0, 10.0}));
  cluster::NodeCalendar calendar(2);
  calendar.reserve(0, 50.0, 1000.0);

  workload::Task task;
  task.id = 1;
  task.spec = {0.0, 1.0, 2000.0};
  std::vector<Time> free_times = {0.0, 0.0};
  std::vector<cluster::NodeId> ids = {0, 1};

  sched::PlanRequest request;
  request.task = &task;
  request.params = params;
  request.free_times = &free_times;
  request.node_ids = &ids;
  request.now = 0.0;
  request.calendar = &calendar;

  const sched::Algorithm algorithm = sched::make_algorithm("EDF-OPR-MN-BF");
  ASSERT_TRUE(algorithm.rule->plan(request).feasible());
  EXPECT_EQ(algorithm.rule->planner_counters().backfill_fixed_point_fallbacks, 1u);
  ASSERT_TRUE(algorithm.rule->plan(request).feasible());
  EXPECT_EQ(algorithm.rule->planner_counters().backfill_fixed_point_fallbacks, 2u);
  algorithm.rule->reset_planner_counters();
  EXPECT_EQ(algorithm.rule->planner_counters().backfill_fixed_point_fallbacks, 0u);
}

// --- 4. cross-check-armed planner property runs -----------------------------

/// Overloaded bursts with deadlines tight enough that waiting tasks' slack
/// runs out at the availability front - the regime the admission
/// QueueScreen short-circuits. The armed cross-check throws on ANY
/// divergence (acceptance, reason, blocking task, every plan bitwise) from
/// the unscreened stateless Figure-2 test.
class PlannerKernelSims
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(PlannerKernelSims, ScreenedIncrementalMatchesUnscreenedReference) {
  const auto& [algorithm, profile] = GetParam();
  workload::WorkloadParams params;
  params.cluster = {.node_count = 256, .cms = 1.0, .cps = 100.0};
  params.system_load = 8.0;
  params.dc_ratio = 3.0;  // tight deadlines: front hard-rejections occur
  params.total_time = 4000.0;
  params.seed = 20070227;
  const auto tasks = workload::generate_workload(params);

  sim::SimulatorConfig config;
  config.params = params.cluster;
  if (!profile.empty()) {
    config.params.speed_profile = std::make_shared<const SpeedProfile>(
        cluster::parse_speed_profile(profile, params.cluster.node_count,
                                     params.cluster.cps));
    ASSERT_TRUE(config.params.heterogeneous());
  }
  const bool calendar_rule = algorithm.find("-BF") != std::string::npos;
  config.incremental_admission = !calendar_rule;
  config.cross_check_admission = !calendar_rule;

  const sim::SimMetrics metrics =
      sim::simulate(config, algorithm, tasks, params.total_time);
  ASSERT_GT(metrics.arrivals, 100u);
  EXPECT_GT(metrics.accepted, 0u) << algorithm;
  EXPECT_GT(metrics.rejected, 0u) << algorithm;
  if (!calendar_rule) {
    // The screen only fires on the hard-rejection families; the overload
    // must actually reach them or this test exercises nothing.
    const std::size_t hard =
        metrics.reject_reasons[static_cast<std::size_t>(
            dlt::Infeasibility::kDeadlinePassed)] +
        metrics.reject_reasons[static_cast<std::size_t>(
            dlt::Infeasibility::kTransmissionTooLong)];
    EXPECT_GT(hard, 0u) << algorithm << " " << profile;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByRule, PlannerKernelSims,
    ::testing::Combine(::testing::Values("EDF-DLT", "FIFO-DLT", "EDF-MR2",
                                         "EDF-OPR-MN", "EDF-OPR-MN-BF"),
                       ::testing::Values("", "lognormal:0.5,3")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>& info) {
      std::string name = std::get<0>(info.param) +
                         (std::get<1>(info.param).empty() ? "_hom" : "_het");
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rtdls
