// End-to-end tests of the cluster simulator: admission bookkeeping,
// guarantee invariants across algorithms, release policies, edge cases.
#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace rtdls::sim {
namespace {

workload::WorkloadParams small_workload(double load = 0.6) {
  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = load;
  params.avg_sigma = 200.0;
  params.dc_ratio = 2.0;
  params.total_time = 300000.0;
  params.seed = 77;
  return params;
}

SimulatorConfig default_config() {
  SimulatorConfig config;
  config.params = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  return config;
}

workload::Task make_task(cluster::TaskId id, double arrival, double sigma, double deadline,
                         std::size_t user_nodes = 8) {
  workload::Task task;
  task.id = id;
  task.spec = {arrival, sigma, deadline};
  task.user_nodes = user_nodes;
  return task;
}

TEST(Simulator, EmptyTraceYieldsEmptyMetrics) {
  const SimMetrics metrics = simulate(default_config(), "EDF-DLT", {}, 1000.0);
  EXPECT_EQ(metrics.arrivals, 0u);
  EXPECT_DOUBLE_EQ(metrics.reject_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.utilization(), 0.0);
}

TEST(Simulator, SingleFeasibleTaskAccepted) {
  const std::vector<workload::Task> tasks{make_task(0, 100.0, 200.0, 3000.0)};
  const SimMetrics metrics = simulate(default_config(), "EDF-DLT", tasks, 10000.0);
  EXPECT_EQ(metrics.arrivals, 1u);
  EXPECT_EQ(metrics.accepted, 1u);
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.theorem4_violations, 0u);
  EXPECT_GT(metrics.busy_time, 0.0);
}

TEST(Simulator, SingleImpossibleTaskRejected) {
  const std::vector<workload::Task> tasks{make_task(0, 100.0, 200.0, 150.0)};
  const SimMetrics metrics = simulate(default_config(), "EDF-DLT", tasks, 10000.0);
  EXPECT_EQ(metrics.rejected, 1u);
  EXPECT_EQ(metrics.reject_reasons[static_cast<std::size_t>(
                dlt::Infeasibility::kTransmissionTooLong)],
            1u);
}

TEST(Simulator, UnsortedTraceThrows) {
  std::vector<workload::Task> tasks{make_task(0, 200.0, 200.0, 3000.0),
                                    make_task(1, 100.0, 200.0, 3000.0)};
  const sched::Algorithm algorithm = sched::make_algorithm("EDF-DLT");
  ClusterSimulator simulator(default_config(), algorithm);
  EXPECT_THROW(simulator.run(tasks, 10000.0), std::invalid_argument);
}

TEST(Simulator, ArrivalAccountingConsistent) {
  const auto tasks = workload::generate_workload(small_workload());
  const SimMetrics metrics = simulate(default_config(), "EDF-DLT", tasks, 300000.0);
  EXPECT_EQ(metrics.arrivals, tasks.size());
  EXPECT_EQ(metrics.accepted + metrics.rejected, metrics.arrivals);
  std::size_t by_reason = 0;
  for (std::size_t count : metrics.reject_reasons) by_reason += count;
  EXPECT_EQ(by_reason, metrics.rejected);
  EXPECT_EQ(metrics.response_time.count(), metrics.accepted);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto tasks = workload::generate_workload(small_workload());
  const SimMetrics a = simulate(default_config(), "EDF-DLT", tasks, 300000.0);
  const SimMetrics b = simulate(default_config(), "EDF-DLT", tasks, 300000.0);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_DOUBLE_EQ(a.response_time.mean(), b.response_time.mean());
  EXPECT_DOUBLE_EQ(a.busy_time, b.busy_time);
}

TEST(Simulator, EveryAcceptedTaskMeetsItsDeadline) {
  // The real-time guarantee: deadline slack never negative (estimates) and
  // no actual deadline misses in the dedicated-channel model.
  for (const std::string& name : sched::all_algorithm_names()) {
    const auto tasks = workload::generate_workload(small_workload(0.9));
    const SimMetrics metrics = simulate(default_config(), name, tasks, 300000.0);
    if (metrics.accepted > 0) {
      EXPECT_GE(metrics.deadline_slack.min(), -1e-6) << name;
    }
    EXPECT_EQ(metrics.deadline_misses, 0u) << name;
    EXPECT_EQ(metrics.theorem4_violations, 0u) << name;
  }
}

TEST(Simulator, Theorem4HoldsAcrossSeedsAndLoads) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (double load : {0.3, 1.0}) {
      workload::WorkloadParams params = small_workload(load);
      params.seed = seed;
      const auto tasks = workload::generate_workload(params);
      const SimMetrics metrics = simulate(default_config(), "EDF-DLT", tasks, 300000.0);
      EXPECT_EQ(metrics.theorem4_violations, 0u) << "seed=" << seed << " load=" << load;
      // The estimate margin (estimate - actual) is Theorem 4's slack: >= 0.
      if (metrics.accepted > 0) {
        EXPECT_GE(metrics.estimate_margin.min(), -1e-6);
      }
    }
  }
}

TEST(Simulator, ActualReleaseNeverWorseThanEstimateRelease) {
  const auto tasks = workload::generate_workload(small_workload(0.8));
  SimulatorConfig estimate_config = default_config();
  SimulatorConfig actual_config = default_config();
  actual_config.release_policy = ReleasePolicy::kActual;
  const SimMetrics est = simulate(estimate_config, "EDF-DLT", tasks, 300000.0);
  const SimMetrics act = simulate(actual_config, "EDF-DLT", tasks, 300000.0);
  // Earlier releases can only help admission (small tolerance for the rare
  // EDF anomaly where an earlier start displaces a later-tested task).
  EXPECT_LE(act.rejected, est.rejected + est.arrivals / 50 + 2);
  EXPECT_EQ(act.theorem4_violations, 0u);
}

TEST(Simulator, SharedLinkCountsMissesInsteadOfViolations) {
  SimulatorConfig config = default_config();
  config.shared_link = true;
  const auto tasks = workload::generate_workload(small_workload(0.9));
  const SimMetrics metrics = simulate(config, "EDF-DLT", tasks, 300000.0);
  // Same admission decisions as the dedicated-link run...
  const SimMetrics reference = simulate(default_config(), "EDF-DLT", tasks, 300000.0);
  EXPECT_EQ(metrics.accepted, reference.accepted);
  // ... but contention can produce actual misses (counted, not asserted 0).
  EXPECT_EQ(metrics.theorem4_violations, 0u);  // not checked in shared mode
}

TEST(Simulator, SharedLinkDelaysMultiRoundTasks) {
  // Regression: multi-round commits used to stamp their timeline straight
  // from the plan and overwrite channel_free_, so a busy shared channel was
  // double-booked and the MR task's "actual" completion ignored the wait.
  // Two single-node MR2 tasks distributing concurrently must now contend:
  // the later commit's actual completion falls behind its dedicated-channel
  // estimate (negative estimate margin).
  const std::vector<workload::Task> tasks{make_task(0, 0.0, 200.0, 50000.0),
                                          make_task(1, 0.0, 200.0, 50000.0)};

  SimulatorConfig dedicated = default_config();
  const SimMetrics baseline = simulate(dedicated, "EDF-MR2", tasks, 60000.0);
  ASSERT_EQ(baseline.accepted, 2u);
  EXPECT_GE(baseline.estimate_margin.min(), -1e-6);  // exact MR timelines: no slip

  SimulatorConfig shared = default_config();
  shared.shared_link = true;
  const SimMetrics contended = simulate(shared, "EDF-MR2", tasks, 60000.0);
  ASSERT_EQ(contended.accepted, 2u);
  // One task waited for the other's installment transmissions.
  EXPECT_LT(contended.estimate_margin.min(), -1.0);
  EXPECT_EQ(contended.theorem4_violations, 0u);  // not counted in shared mode
}

TEST(Simulator, RejectRatioIncreasesWithLoad) {
  double previous = -1.0;
  for (double load : {0.2, 0.6, 1.0}) {
    workload::WorkloadParams params = small_workload(load);
    params.total_time = 600000.0;
    const auto tasks = workload::generate_workload(params);
    const double ratio =
        simulate(default_config(), "EDF-DLT", tasks, params.total_time).reject_ratio();
    EXPECT_GT(ratio, previous) << "load=" << load;
    previous = ratio;
  }
}

TEST(Simulator, UtilizationWithinPhysicalBounds) {
  const auto tasks = workload::generate_workload(small_workload(0.8));
  for (const char* name : {"EDF-DLT", "EDF-OPR-MN", "EDF-UserSplit"}) {
    const SimMetrics metrics = simulate(default_config(), name, tasks, 300000.0);
    EXPECT_GT(metrics.utilization(), 0.0) << name;
    // Draining past the horizon can push busy time slightly above N*T.
    EXPECT_LT(metrics.utilization(), 1.1) << name;
    EXPECT_GE(metrics.iit_fraction(), 0.0) << name;
  }
}

TEST(Simulator, DltLeavesNoInsertedIdleTime) {
  // The headline mechanism: the IIT-utilizing rule has zero inserted idle
  // gaps, while OPR-MN accumulates them.
  const auto tasks = workload::generate_workload(small_workload(0.8));
  const SimMetrics dlt = simulate(default_config(), "EDF-DLT", tasks, 300000.0);
  const SimMetrics opr = simulate(default_config(), "EDF-OPR-MN", tasks, 300000.0);
  EXPECT_NEAR(dlt.idle_gap_time, 0.0, 1e-6);
  EXPECT_GT(opr.idle_gap_time, 0.0);
}

TEST(Simulator, SimultaneousArrivalsHandled) {
  std::vector<workload::Task> tasks;
  for (cluster::TaskId id = 0; id < 4; ++id) {
    tasks.push_back(make_task(id, 100.0, 100.0, 20000.0));
  }
  const SimMetrics metrics = simulate(default_config(), "EDF-DLT", tasks, 30000.0);
  EXPECT_EQ(metrics.arrivals, 4u);
  EXPECT_EQ(metrics.accepted + metrics.rejected, 4u);
  EXPECT_EQ(metrics.theorem4_violations, 0u);
}

TEST(Simulator, MetricsSummaryRenders) {
  const auto tasks = workload::generate_workload(small_workload());
  const SimMetrics metrics = simulate(default_config(), "FIFO-UserSplit", tasks, 300000.0);
  const std::string summary = metrics.summary();
  EXPECT_NE(summary.find("reject_ratio"), std::string::npos);
  EXPECT_NE(summary.find("utilization"), std::string::npos);
}

TEST(Simulator, UnknownAlgorithmThrows) {
  EXPECT_THROW(simulate(default_config(), "EDF-MAGIC", {}, 100.0), std::invalid_argument);
  EXPECT_THROW(simulate(default_config(), "LIFO-DLT", {}, 100.0), std::invalid_argument);
}

}  // namespace
}  // namespace rtdls::sim
