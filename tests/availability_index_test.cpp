// Tests for cluster::AvailabilityIndex (the sorted free-time index behind
// Cluster's availability reads): unit equivalence against the brute-force
// sort it replaced, index-consistency invariants across commit /
// release_early / mid-run reset, and large-N (512 nodes) property tests
// asserting the incremental admission path stays bit-identical to the
// stateless Figure-2 reference on top of the index.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/schedule_log.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace rtdls {
namespace {

using cluster::NodeId;
using cluster::Time;

/// The pre-index availability computation: sort max(free_at, now).
std::vector<Time> reference_availability(const cluster::Cluster& c, Time now) {
  std::vector<Time> out;
  for (std::size_t i = 0; i < c.size(); ++i) {
    out.push_back(std::max(c.node(static_cast<NodeId>(i)).free_at(), now));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The pre-index node selection: stable sort of ids by (floored time, id).
std::vector<NodeId> reference_earliest(const cluster::Cluster& c, Time now, std::size_t n) {
  std::vector<NodeId> ids(c.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    const Time fa = std::max(c.node(a).free_at(), now);
    const Time fb = std::max(c.node(b).free_at(), now);
    if (fa != fb) return fa < fb;
    return a < b;
  });
  ids.resize(n);
  return ids;
}

void expect_index_matches_reference(const cluster::Cluster& c, Time now) {
  ASSERT_TRUE(c.index_consistent());
  std::vector<Time> availability;
  c.availability_into(now, availability);
  const std::vector<Time> expected = reference_availability(c, now);
  ASSERT_EQ(availability.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(availability[i], expected[i]) << "position " << i << " at now=" << now;
  }
  for (std::size_t n : {std::size_t{1}, c.size() / 2, c.size()}) {
    if (n == 0) continue;
    std::vector<NodeId> ids;
    c.earliest_free_nodes_into(now, n, ids);
    EXPECT_EQ(ids, reference_earliest(c, now, n)) << "n=" << n << " now=" << now;
  }
}

TEST(AvailabilityIndex, InitialStateIsAllFreeInIdOrder) {
  cluster::Cluster c({.node_count = 8, .cms = 1.0, .cps = 100.0});
  ASSERT_TRUE(c.index_consistent());
  EXPECT_EQ(c.index().available_by(0.0), 8u);
  EXPECT_EQ(c.index().kth_free_time(0), 0.0);
  EXPECT_EQ(c.index().kth_free_time(7), 0.0);
  expect_index_matches_reference(c, 0.0);
}

TEST(AvailabilityIndex, TracksRandomCommitReleaseSequences) {
  // Randomized sequences of the three mutations the index must mirror,
  // cross-checked against the brute-force sort after every step.
  cluster::Cluster c({.node_count = 24, .cms = 1.0, .cps = 100.0});
  workload::Xoshiro256StarStar rng(12345);
  std::vector<Time> committed_until(24, 0.0);
  Time now = 0.0;
  for (int step = 0; step < 400; ++step) {
    const auto node = static_cast<NodeId>(rng() % 24);
    const double action = rng.next_double();
    if (action < 0.70) {
      // Commit the node to a new interval after its current release.
      const Time start = std::max(committed_until[node], now) + rng.next_double() * 50.0;
      const Time end = start + 1.0 + rng.next_double() * 500.0;
      c.commit(node, static_cast<cluster::TaskId>(step), start, start, end);
      committed_until[node] = end;
    } else if (action < 0.85) {
      // Release it early somewhere inside its committed window.
      const Time at = committed_until[node] * (0.5 + 0.5 * rng.next_double());
      c.release_early(node, at);
      committed_until[node] = at;
    } else {
      now += rng.next_double() * 100.0;
    }
    expect_index_matches_reference(c, now);
  }
}

TEST(AvailabilityIndex, MidRunResetRestoresTheInitialIndex) {
  cluster::Cluster c({.node_count = 16, .cms = 1.0, .cps = 100.0});
  for (NodeId id = 0; id < 16; ++id) {
    c.commit(id, 1, 0.0, 0.0, 100.0 + 10.0 * static_cast<double>(id));
  }
  expect_index_matches_reference(c, 50.0);
  const std::uint64_t version_before = c.version();
  c.reset();
  EXPECT_GT(c.version(), version_before);  // resets must invalidate sessions
  ASSERT_TRUE(c.index_consistent());
  EXPECT_EQ(c.index().available_by(0.0), 16u);
  expect_index_matches_reference(c, 0.0);
  // And the index keeps working after the reset (back-to-back sweep cells).
  c.commit(3, 2, 0.0, 0.0, 42.0);
  expect_index_matches_reference(c, 0.0);
}

TEST(AvailabilityIndex, RankQueriesMatchTheSnapshot) {
  cluster::Cluster c({.node_count = 8, .cms = 1.0, .cps = 100.0});
  for (NodeId id = 0; id < 8; ++id) {
    c.commit(id, 1, 0.0, 0.0, 100.0 * static_cast<double>(id + 1));
  }
  EXPECT_EQ(c.index().available_by(0.0), 0u);
  EXPECT_EQ(c.index().available_by(100.0), 1u);
  EXPECT_EQ(c.index().available_by(350.0), 3u);
  EXPECT_EQ(c.index().available_by(800.0), 8u);
  // kth_free_time(k) is availability()[k] whenever now precedes every
  // release (the instant k+1 nodes are simultaneously available).
  const auto view = c.availability(0.0);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(c.index().kth_free_time(k), view.times[k]);
  }
}

TEST(AvailabilityIndex, DesyncedUpdateThrows) {
  cluster::Cluster c({.node_count = 4, .cms = 1.0, .cps = 100.0});
  cluster::AvailabilityIndex index;
  index.reset(4);
  EXPECT_THROW(index.update(2, 5.0, 10.0), std::logic_error);  // wrong `from`
  EXPECT_THROW(index.update(9, 0.0, 10.0), std::logic_error);  // unknown node
  index.update(2, 0.0, 10.0);
  EXPECT_EQ(index.available_by(0.0), 3u);
}

// --- large-N incremental-vs-full property tests ------------------------------

workload::WorkloadParams large_cluster_params(std::uint64_t seed, double load,
                                              double dc_ratio) {
  workload::WorkloadParams params;
  params.cluster = {.node_count = 512, .cms = 1.0, .cps = 100.0};
  params.system_load = load;
  params.dc_ratio = dc_ratio;
  params.total_time = 30000.0;
  params.seed = seed;
  return params;
}

/// Incremental session (with the controller's full-test cross-check armed,
/// which throws on any divergence) vs the stateless Figure-2 reference:
/// every counter and every committed reservation must agree bit for bit.
void expect_identical_schedules_at_512(const std::string& algorithm,
                                       const workload::WorkloadParams& params,
                                       sim::ReleasePolicy release_policy) {
  const auto tasks = workload::generate_workload(params);

  sim::ScheduleLog incremental_log;
  sim::SimulatorConfig incremental_config;
  incremental_config.params = params.cluster;
  incremental_config.release_policy = release_policy;
  incremental_config.incremental_admission = true;
  incremental_config.cross_check_admission = true;
  incremental_config.schedule_log = &incremental_log;

  sim::ScheduleLog full_log;
  sim::SimulatorConfig full_config = incremental_config;
  full_config.incremental_admission = false;
  full_config.cross_check_admission = false;
  full_config.schedule_log = &full_log;

  const sim::SimMetrics inc =
      sim::simulate(incremental_config, algorithm, tasks, params.total_time);
  const sim::SimMetrics full =
      sim::simulate(full_config, algorithm, tasks, params.total_time);

  ASSERT_EQ(inc.accepted, full.accepted) << algorithm;
  ASSERT_EQ(inc.rejected, full.rejected) << algorithm;
  ASSERT_EQ(inc.reject_reasons, full.reject_reasons) << algorithm;
  ASSERT_EQ(inc.deadline_misses, full.deadline_misses) << algorithm;
  EXPECT_EQ(inc.response_time.mean(), full.response_time.mean()) << algorithm;
  EXPECT_EQ(inc.busy_time, full.busy_time) << algorithm;
  EXPECT_EQ(inc.idle_gap_time, full.idle_gap_time) << algorithm;

  ASSERT_EQ(incremental_log.size(), full_log.size()) << algorithm;
  for (std::size_t i = 0; i < incremental_log.size(); ++i) {
    const sim::ScheduleEntry& a = incremental_log.entries()[i];
    const sim::ScheduleEntry& b = full_log.entries()[i];
    ASSERT_EQ(a.task, b.task) << algorithm << " entry " << i;
    ASSERT_EQ(a.node, b.node) << algorithm << " entry " << i;
    ASSERT_EQ(a.start, b.start) << algorithm << " entry " << i;
    ASSERT_EQ(a.end, b.end) << algorithm << " entry " << i;
    ASSERT_EQ(a.alpha, b.alpha) << algorithm << " entry " << i;
  }
}

TEST(AvailabilityIndexLargeN, IncrementalMatchesFullAt512Nodes) {
  // EDF/FIFO x DLT/MR2 at N=512: the indexed availability reads, the merge
  // in apply_plan, and the galloping n_min search must leave the schedules
  // bit-identical to the stateless reference (cross-check mode throws on
  // the first divergent arrival).
  const char* algorithms[] = {"EDF-DLT", "FIFO-DLT", "EDF-MR2", "FIFO-MR2"};
  const std::uint64_t seeds[] = {1, 11};
  for (const char* algorithm : algorithms) {
    for (std::uint64_t seed : seeds) {
      expect_identical_schedules_at_512(algorithm, large_cluster_params(seed, 1.0, 20.0),
                                        sim::ReleasePolicy::kEstimate);
    }
  }
}

TEST(AvailabilityIndexLargeN, IncrementalMatchesFullUnderEarlyReleaseAt512Nodes) {
  // kActual releases reposition index entries backwards (release_early);
  // the availability version must still invalidate cleanly and the index
  // must stay exact.
  expect_identical_schedules_at_512("EDF-DLT", large_cluster_params(3, 1.1, 20.0),
                                    sim::ReleasePolicy::kActual);
  expect_identical_schedules_at_512("FIFO-MR2", large_cluster_params(5, 1.1, 20.0),
                                    sim::ReleasePolicy::kActual);
}

}  // namespace
}  // namespace rtdls
