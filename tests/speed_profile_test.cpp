// Tests for the per-node speed-profile subsystem: generators, key parsing,
// ClusterParams integration, and the availability snapshot's id/cps columns.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/speed_profile.hpp"

namespace rtdls::cluster {
namespace {

TEST(SpeedProfile, HomogeneousGeneratorIsAllEqual) {
  const SpeedProfile profile = SpeedProfile::homogeneous(8, 100.0);
  EXPECT_EQ(profile.size(), 8u);
  EXPECT_FALSE(profile.heterogeneous());
  EXPECT_FALSE(profile.heterogeneous_against(100.0));
  EXPECT_TRUE(profile.heterogeneous_against(99.0));
  EXPECT_DOUBLE_EQ(profile.mean_cps(), 100.0);
  EXPECT_DOUBLE_EQ(profile.cv(), 0.0);
}

TEST(SpeedProfile, UniformGeneratorBoundsAndDeterminism) {
  const SpeedProfile a = SpeedProfile::uniform(64, 50.0, 150.0, 7);
  const SpeedProfile b = SpeedProfile::uniform(64, 50.0, 150.0, 7);
  const SpeedProfile c = SpeedProfile::uniform(64, 50.0, 150.0, 8);
  EXPECT_EQ(a.values(), b.values());  // same seed, bit-identical
  EXPECT_NE(a.values(), c.values());
  EXPECT_GE(a.min_cps(), 50.0);
  EXPECT_LE(a.max_cps(), 150.0);
  EXPECT_TRUE(a.heterogeneous());
}

TEST(SpeedProfile, TwoTierCountsAndShuffle) {
  const SpeedProfile profile = SpeedProfile::two_tier(16, 50.0, 200.0, 0.25, 3);
  std::size_t fast = 0;
  std::size_t slow = 0;
  for (double cps : profile.values()) {
    if (cps == 50.0) ++fast;
    if (cps == 200.0) ++slow;
  }
  EXPECT_EQ(fast, 4u);  // round(0.25 * 16)
  EXPECT_EQ(slow, 12u);
  // Different seeds shuffle different ids fast.
  const SpeedProfile other = SpeedProfile::two_tier(16, 50.0, 200.0, 0.25, 4);
  EXPECT_NE(profile.values(), other.values());
  // Degenerate fractions stay valid.
  EXPECT_FALSE(SpeedProfile::two_tier(4, 50.0, 200.0, 0.0, 1).heterogeneous_against(200.0));
  EXPECT_FALSE(SpeedProfile::two_tier(1, 50.0, 200.0, 1.0, 1).heterogeneous());
}

TEST(SpeedProfile, LogNormalPreservesMeanAndCv) {
  const SpeedProfile profile = SpeedProfile::log_normal(20000, 100.0, 0.4, 11);
  EXPECT_NEAR(profile.mean_cps(), 100.0, 2.0);  // law of large numbers
  EXPECT_NEAR(profile.cv(), 0.4, 0.02);
  EXPECT_GT(profile.min_cps(), 0.0);
  // cv == 0 degenerates to homogeneous.
  EXPECT_FALSE(SpeedProfile::log_normal(8, 100.0, 0.0, 11).heterogeneous());
}

TEST(SpeedProfile, CsvRoundTripAndErrors) {
  const SpeedProfile profile = SpeedProfile::from_csv_text("# comment\n100\n 50.5 \n200\n");
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_DOUBLE_EQ(profile.cps(1), 50.5);
  EXPECT_THROW(SpeedProfile::from_csv_text(""), std::invalid_argument);
  EXPECT_THROW(SpeedProfile::from_csv_text("100\nnope\n"), std::invalid_argument);
  EXPECT_THROW(SpeedProfile::from_csv_text("100\n-5\n"), std::invalid_argument);
  EXPECT_THROW(SpeedProfile::from_csv_text("nan\n"), std::invalid_argument);
}

TEST(SpeedProfile, ConstructionRejectsBadValues) {
  EXPECT_THROW(SpeedProfile(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(SpeedProfile({100.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(SpeedProfile({100.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(SpeedProfile::uniform(4, 150.0, 50.0, 1), std::invalid_argument);
  EXPECT_THROW(SpeedProfile::two_tier(4, 50.0, 200.0, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(SpeedProfile::log_normal(4, 100.0, -0.1, 1), std::invalid_argument);
}

TEST(SpeedProfile, KeyParsing) {
  const SpeedProfile uniform = parse_speed_profile("uniform:50,150,7", 16, 100.0);
  EXPECT_EQ(uniform.values(), SpeedProfile::uniform(16, 50.0, 150.0, 7).values());
  const SpeedProfile tiered = parse_speed_profile("two_tier:50,200,0.5", 16, 100.0);
  EXPECT_EQ(tiered.values(), SpeedProfile::two_tier(16, 50.0, 200.0, 0.5, 0).values());
  const SpeedProfile lognorm = parse_speed_profile("lognormal:0.3,5", 16, 100.0);
  EXPECT_EQ(lognorm.values(), SpeedProfile::log_normal(16, 100.0, 0.3, 5).values());

  EXPECT_THROW(parse_speed_profile("warp:9", 16, 100.0), std::invalid_argument);
  EXPECT_THROW(parse_speed_profile("uniform:50", 16, 100.0), std::invalid_argument);
  EXPECT_THROW(parse_speed_profile("uniform:50,150,x", 16, 100.0), std::invalid_argument);
  EXPECT_THROW(parse_speed_profile("lognormal:", 16, 100.0), std::invalid_argument);
  EXPECT_THROW(parse_speed_profile("csv:", 16, 100.0), std::invalid_argument);
}

TEST(SpeedProfile, KeyParsingCsvChecksNodeCount) {
  const std::string path = ::testing::TempDir() + "profile_cps.csv";
  {
    std::ofstream out(path);
    out << "100\n80\n120\n";
  }
  const SpeedProfile profile = parse_speed_profile("csv:" + path, 3, 100.0);
  EXPECT_DOUBLE_EQ(profile.cps(2), 120.0);
  EXPECT_THROW(parse_speed_profile("csv:" + path, 4, 100.0), std::invalid_argument);
}

TEST(ClusterParams, HeterogeneityEngagesOnlyWhenSpeedsDiffer) {
  ClusterParams params{.node_count = 4, .cms = 1.0, .cps = 100.0};
  EXPECT_FALSE(params.heterogeneous());
  EXPECT_DOUBLE_EQ(params.node_cps(2), 100.0);

  // All-equal-to-cps profile: still the homogeneous fast path.
  params.speed_profile =
      std::make_shared<const SpeedProfile>(SpeedProfile::homogeneous(4, 100.0));
  EXPECT_TRUE(params.valid());
  EXPECT_FALSE(params.heterogeneous());

  // All-equal but different from the scalar: the profile wins, het engages.
  params.speed_profile =
      std::make_shared<const SpeedProfile>(SpeedProfile::homogeneous(4, 50.0));
  EXPECT_TRUE(params.heterogeneous());
  EXPECT_DOUBLE_EQ(params.node_cps(2), 50.0);

  // Profile/N mismatch invalidates the params.
  params.speed_profile =
      std::make_shared<const SpeedProfile>(SpeedProfile::homogeneous(5, 100.0));
  EXPECT_FALSE(params.valid());
}

TEST(ClusterParams, AvailabilityViewCarriesIdsAndSpeeds) {
  ClusterParams params{.node_count = 4, .cms = 1.0, .cps = 100.0};
  params.speed_profile =
      std::make_shared<const SpeedProfile>(SpeedProfile({40.0, 80.0, 120.0, 160.0}));
  Cluster cluster(params);
  cluster.commit(/*id=*/1, /*task=*/7, 0.0, 0.0, 50.0);
  cluster.commit(/*id=*/3, /*task=*/7, 0.0, 0.0, 20.0);

  const AvailabilityView view = cluster.availability(10.0);
  // Free nodes 0 and 2 floor to now=10 and re-sort by id; busy nodes follow
  // by release time; each position's cps is its node's actual speed.
  ASSERT_EQ(view.times.size(), 4u);
  EXPECT_EQ(view.ids, (std::vector<NodeId>{0, 2, 3, 1}));
  EXPECT_EQ(view.times, (std::vector<Time>{10.0, 10.0, 20.0, 50.0}));
  EXPECT_EQ(view.cps, (std::vector<double>{40.0, 120.0, 160.0, 80.0}));

  // Homogeneous clusters keep the lean times-only snapshot.
  Cluster plain(ClusterParams{.node_count = 2, .cms = 1.0, .cps = 100.0});
  EXPECT_TRUE(plain.availability(0.0).ids.empty());
}

}  // namespace
}  // namespace rtdls::cluster
