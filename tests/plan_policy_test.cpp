// Tests for TaskPlan consistency checks and EDF/FIFO ordering policies.
#include <gtest/gtest.h>

#include "sched/plan.hpp"
#include "sched/policy.hpp"

namespace rtdls::sched {
namespace {

workload::Task make_task(cluster::TaskId id, double arrival, double deadline) {
  workload::Task task;
  task.id = id;
  task.spec = {arrival, 100.0, deadline};
  return task;
}

TaskPlan make_valid_plan() {
  TaskPlan plan;
  plan.task = 1;
  plan.nodes = 2;
  plan.available = {0.0, 10.0};
  plan.reserve_from = {0.0, 10.0};
  plan.node_release = {50.0, 50.0};
  plan.alpha = {0.6, 0.4};
  plan.est_completion = 50.0;
  return plan;
}

TEST(TaskPlan, ValidPlanIsConsistent) { EXPECT_TRUE(make_valid_plan().consistent()); }

TEST(TaskPlan, SizeMismatchInconsistent) {
  TaskPlan plan = make_valid_plan();
  plan.alpha.pop_back();
  EXPECT_FALSE(plan.consistent());
  plan = make_valid_plan();
  plan.nodes = 3;
  EXPECT_FALSE(plan.consistent());
  plan = make_valid_plan();
  plan.nodes = 0;
  EXPECT_FALSE(plan.consistent());
}

TEST(TaskPlan, UnsortedAvailabilityInconsistent) {
  TaskPlan plan = make_valid_plan();
  plan.available = {10.0, 0.0};
  EXPECT_FALSE(plan.consistent());
}

TEST(TaskPlan, AlphaMustBePositiveAndSumToOne) {
  TaskPlan plan = make_valid_plan();
  plan.alpha = {0.5, 0.4};
  EXPECT_FALSE(plan.consistent());
  plan = make_valid_plan();
  plan.alpha = {1.2, -0.2};
  EXPECT_FALSE(plan.consistent());
}

TEST(TaskPlan, ReservationBeforeAvailabilityInconsistent) {
  TaskPlan plan = make_valid_plan();
  plan.reserve_from = {0.0, 5.0};  // node 2 reserved before it frees at 10
  EXPECT_FALSE(plan.consistent());
}

TEST(TaskPlan, ReleaseBeforeReservationInconsistent) {
  TaskPlan plan = make_valid_plan();
  plan.node_release = {50.0, 5.0};
  EXPECT_FALSE(plan.consistent());
}

TEST(TaskPlan, CommitTimeIsEarliestReservation) {
  TaskPlan plan = make_valid_plan();
  EXPECT_DOUBLE_EQ(plan.commit_time(), 0.0);
  plan.reserve_from = {20.0, 30.0};
  plan.available = {20.0, 30.0};
  EXPECT_DOUBLE_EQ(plan.commit_time(), 20.0);
}

TEST(Policy, Names) {
  EXPECT_EQ(policy_name(Policy::kEdf), "EDF");
  EXPECT_EQ(policy_name(Policy::kFifo), "FIFO");
}

TEST(Policy, EdfOrdersByAbsoluteDeadline) {
  const workload::Task early = make_task(1, 100.0, 50.0);   // abs 150
  const workload::Task late = make_task(2, 0.0, 400.0);     // abs 400
  EXPECT_TRUE(policy_less(Policy::kEdf, early, late));
  EXPECT_FALSE(policy_less(Policy::kEdf, late, early));
}

TEST(Policy, FifoOrdersByArrival) {
  const workload::Task first = make_task(1, 0.0, 400.0);
  const workload::Task second = make_task(2, 100.0, 50.0);  // earlier deadline!
  EXPECT_TRUE(policy_less(Policy::kFifo, first, second));
  EXPECT_FALSE(policy_less(Policy::kFifo, second, first));
}

TEST(Policy, TiesBreakByArrivalThenId) {
  const workload::Task a = make_task(3, 10.0, 100.0);
  const workload::Task b = make_task(4, 10.0, 100.0);
  EXPECT_TRUE(policy_less(Policy::kEdf, a, b));  // same deadline+arrival: id
  const workload::Task c = make_task(5, 5.0, 105.0);  // same abs deadline 110
  EXPECT_TRUE(policy_less(Policy::kEdf, c, a));       // earlier arrival first
}

TEST(Policy, OrderTasksSortsFullList) {
  const workload::Task t1 = make_task(1, 0.0, 500.0);
  const workload::Task t2 = make_task(2, 10.0, 100.0);
  const workload::Task t3 = make_task(3, 20.0, 300.0);
  std::vector<const workload::Task*> tasks{&t1, &t2, &t3};

  order_tasks(Policy::kEdf, tasks);
  EXPECT_EQ(tasks[0]->id, 2u);  // abs 110
  EXPECT_EQ(tasks[1]->id, 3u);  // abs 320
  EXPECT_EQ(tasks[2]->id, 1u);  // abs 500

  order_tasks(Policy::kFifo, tasks);
  EXPECT_EQ(tasks[0]->id, 1u);
  EXPECT_EQ(tasks[1]->id, 2u);
  EXPECT_EQ(tasks[2]->id, 3u);
}

}  // namespace
}  // namespace rtdls::sched
