// Tests for the multi-round (multi-installment) extension (Section 6
// future work).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "dlt/het_model.hpp"
#include "dlt/multiround.hpp"

namespace rtdls::dlt {
namespace {

ClusterParams paper_params() { return {.node_count = 16, .cms = 1.0, .cps = 100.0}; }

TEST(MultiRound, SingleRoundNeverExceedsHetEstimate) {
  // The rolled-out exact timeline must respect Theorem 4's bound r_n + E_hat.
  const std::vector<cluster::Time> available = {0.0, 300.0, 600.0, 1200.0};
  const MultiRoundSchedule schedule =
      build_multiround_schedule(paper_params(), 200.0, available, 1);
  const HetPartition part = build_het_partition(paper_params(), 200.0, available);
  EXPECT_LE(schedule.task_completion(), part.estimated_completion() + 1e-6);
}

TEST(MultiRound, LoadConservation) {
  const MultiRoundSchedule schedule =
      build_multiround_schedule(paper_params(), 200.0, {0.0, 100.0, 400.0}, 4);
  ASSERT_EQ(schedule.rounds.size(), 4u);
  double total = 0.0;
  for (const RoundPlan& round : schedule.rounds) {
    double round_sum = 0.0;
    for (double a : round.alpha) round_sum += a;
    EXPECT_NEAR(round_sum, 1.0, 1e-9);  // fractions of each installment
    total += round_sum * 200.0 / 4.0;
  }
  EXPECT_NEAR(total, 200.0, 1e-6);
}

TEST(MultiRound, TimelineIsCausal) {
  const MultiRoundSchedule schedule =
      build_multiround_schedule(paper_params(), 200.0, {0.0, 500.0, 900.0}, 3);
  cluster::Time previous_tx_end = 0.0;
  for (const RoundPlan& round : schedule.rounds) {
    for (std::size_t i = 0; i < round.tx_start.size(); ++i) {
      // Single channel: transmissions never overlap across or within rounds.
      EXPECT_GE(round.tx_start[i] + 1e-9, previous_tx_end);
      previous_tx_end = round.tx_start[i] +
                        round.alpha[i] * (200.0 / 3.0) * paper_params().cms;
      EXPECT_GE(round.completion[i], round.tx_start[i]);
    }
  }
}

TEST(MultiRound, NodeCompletionsCoverAllNodes) {
  const MultiRoundSchedule schedule =
      build_multiround_schedule(paper_params(), 200.0, {0.0, 0.0, 0.0, 0.0}, 2);
  ASSERT_EQ(schedule.node_completion.size(), 4u);
  for (cluster::Time t : schedule.node_completion) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, schedule.task_completion());
  }
}

TEST(MultiRound, MoreRoundsHelpUnderStagger) {
  // With one very late node, splitting into installments lets the early
  // nodes process most of the load before the late node even joins; the
  // completion should not get worse by much and typically improves.
  const std::vector<cluster::Time> available = {0.0, 0.0, 0.0, 3000.0};
  const double single =
      build_multiround_schedule(paper_params(), 400.0, available, 1).task_completion();
  const double four =
      build_multiround_schedule(paper_params(), 400.0, available, 4).task_completion();
  EXPECT_LE(four, single * 1.05);
}

TEST(MultiRound, SingleNodeDegenerates) {
  const MultiRoundSchedule schedule =
      build_multiround_schedule(paper_params(), 200.0, {10.0}, 5);
  // One node, R rounds: still transmit-then-compute sequentially; the total
  // is at least the single-round time (chunks serialize on the one node).
  EXPECT_GE(schedule.task_completion(), 10.0 + 200.0 * 101.0 - 1e-6);
}

TEST(MultiRound, BusyChannelDelaysTheTimeline) {
  // Regression: the shared-link simulator used to stamp MR timelines from
  // the plan (channel assumed free), double-booking a busy channel. The
  // rollout must wait for channel_available before the first transmission.
  const std::vector<cluster::Time> available = {0.0, 0.0, 0.0};
  const MultiRoundSchedule free_channel =
      build_multiround_schedule(paper_params(), 200.0, available, 3);
  const cluster::Time wait = 500.0;
  const MultiRoundSchedule busy_channel =
      build_multiround_schedule(paper_params(), 200.0, available, 3, wait);

  // No transmission may start before the channel frees.
  EXPECT_GE(busy_channel.rounds.front().tx_start.front(), wait);
  // All nodes were idle, so the whole timeline shifts by exactly the wait.
  EXPECT_NEAR(busy_channel.task_completion(), free_channel.task_completion() + wait, 1e-9);
  EXPECT_NEAR(busy_channel.channel_busy_until, free_channel.channel_busy_until + wait,
              1e-9);
  // Default argument preserves the historical dedicated-channel timeline.
  const MultiRoundSchedule defaulted =
      build_multiround_schedule(paper_params(), 200.0, available, 3, 0.0);
  EXPECT_EQ(defaulted.task_completion(), free_channel.task_completion());
}

TEST(MultiRound, ChannelBusyUntilIsTheLastTransmissionEnd) {
  const MultiRoundSchedule schedule =
      build_multiround_schedule(paper_params(), 200.0, {0.0, 100.0, 400.0}, 4);
  cluster::Time last_tx_end = 0.0;
  const double installment = 200.0 / 4.0;
  for (const RoundPlan& round : schedule.rounds) {
    for (std::size_t i = 0; i < round.tx_start.size(); ++i) {
      last_tx_end = std::max(last_tx_end,
                             round.tx_start[i] + round.alpha[i] * installment *
                                                     paper_params().cms);
    }
  }
  EXPECT_NEAR(schedule.channel_busy_until, last_tx_end, 1e-9);
  // The channel frees no later than the slowest node finishes computing.
  EXPECT_LE(schedule.channel_busy_until, schedule.task_completion() + 1e-9);
}

TEST(MultiRound, InvalidInputsThrow) {
  EXPECT_THROW(build_multiround_schedule(paper_params(), 0.0, {1.0}, 2),
               std::invalid_argument);
  EXPECT_THROW(build_multiround_schedule(paper_params(), 1.0, {}, 2), std::invalid_argument);
  EXPECT_THROW(build_multiround_schedule(paper_params(), 1.0, {0.0}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtdls::dlt
