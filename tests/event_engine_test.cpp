// Tests for the discrete-event queue and engine substrate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"

namespace rtdls::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> queue;
  queue.push(5.0, EventPriority::kArrival, 1);
  queue.push(1.0, EventPriority::kArrival, 2);
  queue.push(3.0, EventPriority::kArrival, 3);
  EXPECT_EQ(queue.pop().payload, 2);
  EXPECT_EQ(queue.pop().payload, 3);
  EXPECT_EQ(queue.pop().payload, 1);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PriorityBreaksTimeTies) {
  EventQueue<std::string> queue;
  queue.push(10.0, EventPriority::kArrival, "arrival");
  queue.push(10.0, EventPriority::kReport, "report");
  queue.push(10.0, EventPriority::kCommit, "commit");
  EXPECT_EQ(queue.pop().payload, "commit");
  EXPECT_EQ(queue.pop().payload, "arrival");
  EXPECT_EQ(queue.pop().payload, "report");
}

TEST(EventQueue, SequenceBreaksFullTies) {
  EventQueue<int> queue;
  queue.push(1.0, EventPriority::kArrival, 1);
  queue.push(1.0, EventPriority::kArrival, 2);
  queue.push(1.0, EventPriority::kArrival, 3);
  EXPECT_EQ(queue.pop().payload, 1);  // FIFO among equals
  EXPECT_EQ(queue.pop().payload, 2);
  EXPECT_EQ(queue.pop().payload, 3);
}

TEST(EventQueue, SizeTracking) {
  EventQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  queue.push(1.0, EventPriority::kArrival, 0);
  queue.push(2.0, EventPriority::kArrival, 0);
  EXPECT_EQ(queue.size(), 2u);
  queue.pop();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(Engine, RunsHandlersInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(3.0, EventPriority::kArrival, [&order](Engine&) { order.push_back(3); });
  engine.schedule(1.0, EventPriority::kArrival, [&order](Engine&) { order.push_back(1); });
  engine.schedule(2.0, EventPriority::kArrival, [&order](Engine&) { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.executed(), 3u);
  EXPECT_TRUE(engine.idle());
}

TEST(Engine, HandlersCanScheduleFurtherEvents) {
  Engine engine;
  std::vector<double> times;
  engine.schedule(1.0, EventPriority::kArrival, [&times](Engine& e) {
    times.push_back(e.now());
    e.schedule(5.0, EventPriority::kArrival, [&times](Engine& e2) {
      times.push_back(e2.now());
    });
  });
  engine.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 5.0}));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule(10.0, EventPriority::kArrival, [](Engine& e) {
    EXPECT_THROW(e.schedule(5.0, EventPriority::kArrival, [](Engine&) {}),
                 std::logic_error);
  });
  engine.run();
}

TEST(Engine, SchedulingAtNowIsAllowed) {
  Engine engine;
  int count = 0;
  engine.schedule(10.0, EventPriority::kArrival, [&count](Engine& e) {
    ++count;
    if (count < 3) {
      e.schedule(e.now(), EventPriority::kCommit, [&count](Engine&) { ++count; });
    }
  });
  engine.run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, MaxEventsGuardStops) {
  Engine engine;
  // Self-perpetuating event chain; the guard must stop it.
  std::function<void(Engine&)> perpetual = [&perpetual](Engine& e) {
    e.schedule(e.now() + 1.0, EventPriority::kArrival, perpetual);
  };
  engine.schedule(0.0, EventPriority::kArrival, perpetual);
  engine.run(/*max_events=*/100);
  EXPECT_EQ(engine.executed(), 100u);
}

}  // namespace
}  // namespace rtdls::sim
