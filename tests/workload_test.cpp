// Tests for the workload generator (Section 5 model) and trace persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "dlt/homogeneous.hpp"
#include "dlt/user_split.hpp"
#include "stats/running_stats.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace rtdls::workload {
namespace {

WorkloadParams baseline_params() {
  WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = 0.5;
  params.avg_sigma = 200.0;
  params.dc_ratio = 2.0;
  params.total_time = 500000.0;
  params.seed = 2024;
  return params;
}

TEST(WorkloadParams, DerivedQuantities) {
  const WorkloadParams params = baseline_params();
  const double e_avg =
      dlt::homogeneous_execution_time(params.cluster, 200.0, 16);
  EXPECT_NEAR(params.mean_deadline(), 2.0 * e_avg, 1e-9);
  EXPECT_NEAR(params.mean_interarrival(), e_avg / 0.5, 1e-9);
  EXPECT_TRUE(params.valid());
}

TEST(WorkloadParams, InvalidDetection) {
  WorkloadParams params = baseline_params();
  params.system_load = 0.0;
  EXPECT_FALSE(params.valid());
  params = baseline_params();
  params.avg_sigma = -1.0;
  EXPECT_FALSE(params.valid());
  params = baseline_params();
  params.total_time = 0.0;
  EXPECT_FALSE(params.valid());
  EXPECT_THROW(generate_workload(params), std::invalid_argument);
}

TEST(Generator, ArrivalsSortedWithinHorizonAndIdsSequential) {
  const auto tasks = generate_workload(baseline_params());
  ASSERT_FALSE(tasks.empty());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].id, i);
    EXPECT_GE(tasks[i].arrival(), 0.0);
    EXPECT_LT(tasks[i].arrival(), 500000.0);
    if (i > 0) {
      EXPECT_GE(tasks[i].arrival(), tasks[i - 1].arrival());
    }
  }
}

TEST(Generator, Deterministic) {
  const auto a = generate_workload(baseline_params());
  const auto b = generate_workload(baseline_params());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival(), b[i].arrival());
    EXPECT_DOUBLE_EQ(a[i].sigma(), b[i].sigma());
    EXPECT_DOUBLE_EQ(a[i].rel_deadline(), b[i].rel_deadline());
    EXPECT_EQ(a[i].user_nodes, b[i].user_nodes);
  }
}

TEST(Generator, StreamsProduceDifferentTraces) {
  WorkloadParams params = baseline_params();
  const auto a = generate_workload(params);
  params.stream = 1;
  const auto b = generate_workload(params);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a[0].sigma(), b[0].sigma());
}

TEST(Generator, EveryTaskFeasibleOnWholeCluster) {
  // The paper: D_i is chosen to be larger than E(sigma_i, N).
  const WorkloadParams params = baseline_params();
  for (const Task& task : generate_workload(params)) {
    const double min_cost =
        dlt::homogeneous_execution_time(params.cluster, task.sigma(), 16);
    EXPECT_GT(task.rel_deadline(), min_cost * (1.0 - 1e-12)) << "task " << task.id;
    EXPECT_GT(task.sigma(), 0.0);
  }
}

TEST(Generator, DeadlinesWithinPaperRangeWhenUnclamped) {
  const WorkloadParams params = baseline_params();
  const double avg_d = params.mean_deadline();
  for (const Task& task : generate_workload(params)) {
    // Clamped deadlines (huge sigma) may exceed the nominal range upward;
    // nothing may fall below AvgD/2 or above max(1.5 AvgD, its own clamp).
    EXPECT_GE(task.rel_deadline(), avg_d / 2.0 * (1.0 - 1e-12));
    const double min_cost =
        dlt::homogeneous_execution_time(params.cluster, task.sigma(), 16);
    EXPECT_LE(task.rel_deadline(), std::max(1.5 * avg_d, min_cost * (1.0 + 1e-6)));
  }
}

TEST(Generator, UserNodesWithinMinMaxRange) {
  const WorkloadParams params = baseline_params();
  for (const Task& task : generate_workload(params)) {
    EXPECT_GE(task.user_nodes, 1u);
    EXPECT_LE(task.user_nodes, 16u);
    const auto n_min =
        dlt::user_split_min_nodes(params.cluster, task.sigma(), task.rel_deadline());
    if (n_min.has_value() && *n_min <= 16) {
      EXPECT_GE(task.user_nodes, *n_min) << "task " << task.id;
    }
  }
}

TEST(Generator, EmpiricalLoadNearTarget) {
  WorkloadParams params = baseline_params();
  params.total_time = 3000000.0;
  const auto tasks = generate_workload(params);
  // Truncating N(mu, mu) at zero inflates the mean by the hazard-rate term
  // mu * phi(-1)/(1 - Phi(-1)) ~ 0.2876 mu, so the realized load overshoots
  // the nominal SystemLoad by ~28.8%.
  const double inflation = 1.2876;
  EXPECT_NEAR(empirical_load(params, tasks), 0.5 * inflation, 0.05);
}

TEST(Generator, ArrivalRateMatchesLambda) {
  WorkloadParams params = baseline_params();
  params.total_time = 3000000.0;
  const auto tasks = generate_workload(params);
  const double expected = params.total_time / params.mean_interarrival();
  EXPECT_NEAR(static_cast<double>(tasks.size()) / expected, 1.0, 0.1);
}

TEST(Generator, MeanSigmaAboveNominalDueToTruncation) {
  WorkloadParams params = baseline_params();
  params.total_time = 3000000.0;
  stats::RunningStats sigma;
  for (const Task& task : generate_workload(params)) sigma.add(task.sigma());
  // Analytic truncated-normal mean: 200 * 1.2876 ~ 257.5.
  EXPECT_NEAR(sigma.mean(), 257.5, 7.0);
}

// --- trace persistence -------------------------------------------------------

TEST(Trace, RoundTripPreservesEverything) {
  WorkloadParams params = baseline_params();
  params.total_time = 100000.0;
  const auto tasks = generate_workload(params);
  ASSERT_FALSE(tasks.empty());

  std::stringstream buffer;
  save_trace(buffer, tasks);
  const auto loaded = load_trace(buffer);
  ASSERT_EQ(loaded.size(), tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(loaded[i].id, tasks[i].id);
    EXPECT_DOUBLE_EQ(loaded[i].arrival(), tasks[i].arrival());
    EXPECT_DOUBLE_EQ(loaded[i].sigma(), tasks[i].sigma());
    EXPECT_DOUBLE_EQ(loaded[i].rel_deadline(), tasks[i].rel_deadline());
    EXPECT_EQ(loaded[i].user_nodes, tasks[i].user_nodes);
  }
}

TEST(Trace, EmptyTaskListRoundTrip) {
  std::stringstream buffer;
  save_trace(buffer, {});
  EXPECT_TRUE(load_trace(buffer).empty());
}

TEST(Trace, RejectsWrongHeader) {
  std::stringstream buffer("id,arrival,sigma,WRONG,user_nodes\n1,2,3,4,5\n");
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(Trace, RejectsNonNumericField) {
  std::stringstream buffer("id,arrival,sigma,deadline,user_nodes\n1,2,abc,4,5\n");
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(Trace, RejectsOutOfRangeValues) {
  std::stringstream negative_sigma("id,arrival,sigma,deadline,user_nodes\n1,2,-3,4,5\n");
  EXPECT_THROW(load_trace(negative_sigma), std::runtime_error);
  std::stringstream zero_deadline("id,arrival,sigma,deadline,user_nodes\n1,2,3,0,5\n");
  EXPECT_THROW(load_trace(zero_deadline), std::runtime_error);
}

TEST(Trace, RejectsWrongColumnCount) {
  std::stringstream buffer("id,arrival,sigma,deadline,user_nodes\n1,2,3\n");
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(Trace, FileMissingThrows) {
  EXPECT_THROW(load_trace_file("/nonexistent/dir/trace.csv"), std::runtime_error);
  EXPECT_THROW(save_trace_file("/nonexistent/dir/trace.csv", {}), std::runtime_error);
}

TEST(Trace, ErrorsNameTheOffendingRow) {
  // The simulator rejects unsorted traces at run() with no pointer to the
  // culprit; the loader must instead say exactly which data row is bad.
  std::stringstream nan_sigma(
      "id,arrival,sigma,deadline,user_nodes\n1,2,3,4,5\n2,3,nan,4,5\n");
  try {
    load_trace(nan_sigma);
    FAIL() << "NaN sigma accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("row 2"), std::string::npos) << error.what();
    EXPECT_NE(std::string(error.what()).find("sigma"), std::string::npos) << error.what();
  }
  std::stringstream inf_deadline(
      "id,arrival,sigma,deadline,user_nodes\n1,2,3,inf,5\n");
  EXPECT_THROW(load_trace(inf_deadline), std::runtime_error);
  std::stringstream negative_arrival(
      "id,arrival,sigma,deadline,user_nodes\n1,-2,3,4,5\n");
  EXPECT_THROW(load_trace(negative_arrival), std::runtime_error);
  // id/user_nodes feed integer casts: a -1 id would cast to the kNoTask
  // sentinel, so non-integers and negatives are rejected up front.
  std::stringstream negative_id("id,arrival,sigma,deadline,user_nodes\n-1,2,3,4,5\n");
  EXPECT_THROW(load_trace(negative_id), std::runtime_error);
  std::stringstream fractional_id("id,arrival,sigma,deadline,user_nodes\n1.5,2,3,4,5\n");
  EXPECT_THROW(load_trace(fractional_id), std::runtime_error);
  std::stringstream huge_nodes(
      "id,arrival,sigma,deadline,user_nodes\n1,2,3,4,1e300\n");
  EXPECT_THROW(load_trace(huge_nodes), std::runtime_error);
}

TEST(Trace, RejectsDecreasingArrivalsUnlessSortingRequested) {
  const std::string text =
      "id,arrival,sigma,deadline,user_nodes\n"
      "1,50,3,4,5\n"
      "2,10,3,4,5\n"
      "3,50,7,4,5\n";
  std::stringstream unsorted(text);
  try {
    load_trace(unsorted);
    FAIL() << "decreasing arrivals accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("row 2"), std::string::npos) << error.what();
  }

  // Opt-in sorting reorders by arrival, ties keeping file order (stable).
  std::stringstream resort(text);
  const auto sorted = load_trace(resort, /*sort_arrivals=*/true);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 2u);
  EXPECT_EQ(sorted[1].id, 1u);  // tie at t=50: file order preserved
  EXPECT_EQ(sorted[2].id, 3u);
}

}  // namespace
}  // namespace rtdls::workload
