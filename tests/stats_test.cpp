// Unit tests for src/stats: streaming moments, Student-t machinery,
// confidence intervals, batch summaries.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/running_stats.hpp"
#include "stats/student_t.hpp"
#include "stats/summary.hpp"

namespace rtdls::stats {
namespace {

// --- RunningStats -----------------------------------------------------------

TEST(RunningStats, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stderror(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0 + i * 0.1;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats stats;
  // Classic catastrophic-cancellation scenario: huge mean, tiny variance.
  for (double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) stats.add(x);
  EXPECT_NEAR(stats.variance(), 30.0, 1e-6);
}

// --- log_gamma / incomplete beta ---------------------------------------------

TEST(StudentT, LogGammaKnownValues) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(StudentT, IncompleteBetaEdges) {
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
  EXPECT_THROW(regularized_incomplete_beta(0.0, 1.0, 0.5), std::invalid_argument);
}

TEST(StudentT, IncompleteBetaUniformCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(StudentT, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(regularized_incomplete_beta(2.5, 4.0, 0.3),
              1.0 - regularized_incomplete_beta(4.0, 2.5, 0.7), 1e-10);
}

// --- Student t ----------------------------------------------------------------

TEST(StudentT, CdfSymmetryAndCenter) {
  EXPECT_DOUBLE_EQ(student_t_cdf(0.0, 5.0), 0.5);
  EXPECT_NEAR(student_t_cdf(1.3, 7.0) + student_t_cdf(-1.3, 7.0), 1.0, 1e-12);
}

TEST(StudentT, CdfMatchesTableValues) {
  // P(T <= 2.2622) with 9 dof = 0.975 (classic t-table entry).
  EXPECT_NEAR(student_t_cdf(2.2622, 9.0), 0.975, 1e-4);
  // dof=1 is the Cauchy distribution: CDF(1) = 0.75.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-10);
}

TEST(StudentT, QuantileInvertsCdf) {
  for (double dof : {1.0, 2.0, 5.0, 9.0, 30.0, 120.0}) {
    for (double p : {0.6, 0.8, 0.95, 0.975, 0.995}) {
      const double t = student_t_quantile(p, dof);
      EXPECT_NEAR(student_t_cdf(t, dof), p, 1e-8) << "dof=" << dof << " p=" << p;
    }
  }
}

TEST(StudentT, QuantileSymmetry) {
  EXPECT_NEAR(student_t_quantile(0.25, 7.0), -student_t_quantile(0.75, 7.0), 1e-10);
  EXPECT_DOUBLE_EQ(student_t_quantile(0.5, 7.0), 0.0);
}

TEST(StudentT, CriticalValuesMatchTable) {
  // Two-sided 95% with 9 dof (the paper's 10-run CI): 2.262.
  EXPECT_NEAR(student_t_critical(0.95, 9.0), 2.2622, 2e-4);
  // 95% with 2 dof: 4.3027.
  EXPECT_NEAR(student_t_critical(0.95, 2.0), 4.3027, 2e-4);
  // Large dof approaches the normal 1.96.
  EXPECT_NEAR(student_t_critical(0.95, 1e6), 1.95996, 1e-3);
}

TEST(StudentT, InvalidArguments) {
  EXPECT_THROW(student_t_quantile(0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(student_t_quantile(1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(student_t_quantile(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(student_t_critical(1.5, 5.0), std::invalid_argument);
}

// --- confidence intervals -------------------------------------------------------

TEST(Confidence, KnownInterval) {
  // Samples with mean 10, sd 1, n=4 -> half width = t(0.95,3) * 0.5.
  const std::vector<double> samples{9.0, 10.0, 10.0, 11.0};
  const ConfidenceInterval ci = mean_confidence_interval(samples, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 10.0);
  const double expected = student_t_critical(0.95, 3.0) * std::sqrt(2.0 / 3.0) / 2.0;
  EXPECT_NEAR(ci.half_width, expected, 1e-10);
  EXPECT_DOUBLE_EQ(ci.lower(), ci.mean - ci.half_width);
  EXPECT_DOUBLE_EQ(ci.upper(), ci.mean + ci.half_width);
}

TEST(Confidence, DegenerateSampleCounts) {
  EXPECT_DOUBLE_EQ(mean_confidence_interval(std::vector<double>{}).half_width, 0.0);
  const ConfidenceInterval one = mean_confidence_interval(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.half_width, 0.0);
}

TEST(Confidence, WiderConfidenceWiderInterval) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_LT(mean_confidence_interval(samples, 0.90).half_width,
            mean_confidence_interval(samples, 0.99).half_width);
}

TEST(Confidence, PairedDifference) {
  const std::vector<double> a{0.30, 0.32, 0.28};
  const std::vector<double> b{0.25, 0.26, 0.24};
  const ConfidenceInterval ci = paired_difference_interval(a, b);
  EXPECT_NEAR(ci.mean, 0.05, 1e-12);
  EXPECT_THROW(paired_difference_interval(a, {0.1}), std::invalid_argument);
}

// --- summary / histogram -----------------------------------------------------------

TEST(Summary, Quantiles) {
  Summary summary;
  for (int i = 1; i <= 100; ++i) summary.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(summary.median(), 50.5);
  EXPECT_DOUBLE_EQ(summary.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(summary.quantile(1.0), 100.0);
  EXPECT_NEAR(summary.quantile(0.95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(summary.min(), 1.0);
  EXPECT_DOUBLE_EQ(summary.max(), 100.0);
  EXPECT_DOUBLE_EQ(summary.mean(), 50.5);
}

TEST(Summary, SingleAndEmpty) {
  Summary summary;
  EXPECT_TRUE(summary.empty());
  EXPECT_THROW(summary.quantile(0.5), std::logic_error);
  summary.add(7.0);
  EXPECT_DOUBLE_EQ(summary.quantile(0.3), 7.0);
}

TEST(Summary, QuantileRangeChecked) {
  Summary summary;
  summary.add(1.0);
  EXPECT_THROW(summary.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(summary.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.add(-1.0);  // clamps to first bucket
  histogram.add(0.5);
  histogram.add(9.9);
  histogram.add(25.0);  // clamps to last bucket
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.bucket(0), 2u);
  EXPECT_EQ(histogram.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(histogram.bucket_lo(1), 2.0);
  EXPECT_FALSE(histogram.render().empty());
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rtdls::stats
