// Unit/property tests for the RNG and the workload distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "stats/running_stats.hpp"
#include "workload/distributions.hpp"
#include "workload/rng.hpp"

namespace rtdls::workload {
namespace {

// --- splitmix64 -----------------------------------------------------------

TEST(SplitMix64, ReferenceVector) {
  // Published test vector: seed 1234567 produces these first outputs
  // (https://prng.di.unimi.it / common splitmix64 reference).
  std::uint64_t state = 1234567;
  EXPECT_EQ(splitmix64_next(state), 6457827717110365317ULL);
  EXPECT_EQ(splitmix64_next(state), 3203168211198807973ULL);
  EXPECT_EQ(splitmix64_next(state), 9817491932198370423ULL);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t state = 42;
  const std::uint64_t first = splitmix64_next(state);
  const std::uint64_t second = splitmix64_next(state);
  EXPECT_NE(first, second);
}

// --- xoshiro256** -----------------------------------------------------------

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256StarStar a(99);
  Xoshiro256StarStar b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, StreamsAreIndependentAndDeterministic) {
  Xoshiro256StarStar s0 = Xoshiro256StarStar::for_stream(7, 0);
  Xoshiro256StarStar s1 = Xoshiro256StarStar::for_stream(7, 1);
  Xoshiro256StarStar s0_again = Xoshiro256StarStar::for_stream(7, 0);
  EXPECT_NE(s0(), s1());
  Xoshiro256StarStar s0_ref = Xoshiro256StarStar::for_stream(7, 0);
  (void)s0_again;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(s0_again(), s0_ref());
  }
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256StarStar rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformityMoments) {
  Xoshiro256StarStar rng(31415);
  stats::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.next_double());
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.002);
}

TEST(Xoshiro, LongJumpChangesSequence) {
  Xoshiro256StarStar jumped(123);
  Xoshiro256StarStar plain(123);
  jumped.long_jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (jumped() == plain()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

// --- distributions ---------------------------------------------------------------

TEST(Distributions, ExponentialMoments) {
  Xoshiro256StarStar rng(11);
  stats::RunningStats stats;
  const double mean = 1698.0;  // the paper's 1/lambda at baseline load 0.8
  for (int i = 0; i < 100000; ++i) stats.add(sample_exponential(rng, mean));
  EXPECT_NEAR(stats.mean() / mean, 1.0, 0.02);
  EXPECT_NEAR(stats.stddev() / mean, 1.0, 0.02);  // exp: sd == mean
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Distributions, ExponentialRejectsBadMean) {
  Xoshiro256StarStar rng(1);
  EXPECT_THROW(sample_exponential(rng, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_exponential(rng, -1.0), std::invalid_argument);
}

TEST(Distributions, StandardNormalMoments) {
  Xoshiro256StarStar rng(12);
  stats::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(sample_standard_normal(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Distributions, NormalScalesAndShifts) {
  Xoshiro256StarStar rng(13);
  stats::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(sample_normal(rng, 200.0, 50.0));
  EXPECT_NEAR(stats.mean(), 200.0, 2.0);
  EXPECT_NEAR(stats.stddev(), 50.0, 2.0);
}

TEST(Distributions, TruncatedNormalRespectsFloor) {
  Xoshiro256StarStar rng(14);
  // The paper's sigma model: mean == stddev, ~16% below zero untruncated.
  for (int i = 0; i < 20000; ++i) {
    EXPECT_GE(sample_truncated_normal(rng, 200.0, 200.0, 0.0), 0.0);
  }
}

TEST(Distributions, TruncatedNormalFallsBackWhenImpossible) {
  Xoshiro256StarStar rng(15);
  // Floor far above the distribution: rejection exhausts and clamps.
  const double x = sample_truncated_normal(rng, 0.0, 1.0, 50.0, 8);
  EXPECT_DOUBLE_EQ(x, 50.0);
}

TEST(Distributions, TruncatedNormalMeanShiftsUp) {
  Xoshiro256StarStar rng(16);
  stats::RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(sample_truncated_normal(rng, 200.0, 200.0, 0.0));
  }
  // Truncating the lower tail raises the mean above 200.
  EXPECT_GT(stats.mean(), 200.0);
  EXPECT_LT(stats.mean(), 260.0);
}

TEST(Distributions, UniformRangeAndMoments) {
  Xoshiro256StarStar rng(17);
  stats::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double x = sample_uniform(rng, 1358.5, 4075.5);  // paper deadline range
    EXPECT_GE(x, 1358.5);
    EXPECT_LT(x, 4075.5);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), (1358.5 + 4075.5) / 2.0, 10.0);
  EXPECT_THROW(sample_uniform(rng, 2.0, 1.0), std::invalid_argument);
}

TEST(Distributions, UniformIntCoversRangeUnbiased) {
  Xoshiro256StarStar rng(18);
  std::set<std::uint64_t> seen;
  std::uint64_t counts[6] = {0, 0, 0, 0, 0, 0};
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = sample_uniform_int(rng, 5, 10);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 10u);
    seen.insert(v);
    ++counts[v - 5];
  }
  EXPECT_EQ(seen.size(), 6u);
  for (std::uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 1.0 / 6.0, 0.01);
  }
}

TEST(Distributions, UniformIntDegenerateAndInvalid) {
  Xoshiro256StarStar rng(19);
  EXPECT_EQ(sample_uniform_int(rng, 7, 7), 7u);
  EXPECT_THROW(sample_uniform_int(rng, 3, 2), std::invalid_argument);
}

}  // namespace
}  // namespace rtdls::workload
